"""Message-passing simulators: synchronous rounds and asynchronous events.

Both simulators execute a set of :class:`Process` objects placed on the
nodes of a directed topology.  Processes communicate only along topology
links; every send is accounted in a
:class:`~repro.distributed.messages.MessageStats` ledger.

**Synchronous model** (:class:`SyncSimulator`) — execution proceeds in
rounds: messages sent in round ``r`` are delivered at the start of round
``r + 1``; a run ends when no messages are in flight.  This is the model
under which "time complexity" in Theorems 3/5 is measured (time == number
of rounds).

**Asynchronous model** (:class:`AsyncSimulator`) — an event queue with
per-link delivery delays (deterministic or seeded-random).  Used by the
Chandy–Misra router, whose termination detection is only meaningful under
asynchrony.

Processes are written once and run under either model: the context object
passed to the callbacks exposes the same ``send`` API.
"""

from __future__ import annotations

import heapq
import itertools
import random
from abc import ABC
from typing import Callable, Hashable, Iterable

from repro.distributed.messages import MessageStats
from repro.exceptions import SimulationError

__all__ = ["Process", "SyncContext", "SyncSimulator", "AsyncSimulator"]

NodeId = Hashable
Payload = object


class Process(ABC):
    """A protocol participant placed on one topology node.

    Subclasses override :meth:`on_start` (called once before any message
    flows) and :meth:`on_message` (called once per delivered message).
    ``on_round_end`` is optional and only invoked by the synchronous
    simulator, after all of a round's deliveries.
    """

    def on_start(self, ctx: "SyncContext") -> None:  # noqa: B027 - optional hook
        """Called once at simulation start."""

    def on_message(self, ctx: "SyncContext", sender: NodeId, payload: Payload) -> None:  # noqa: B027
        """Called for each message delivered to this process."""

    def on_round_end(self, ctx: "SyncContext") -> None:  # noqa: B027 - optional hook
        """Synchronous model only: called after each round's deliveries."""


class SyncContext:
    """Capabilities handed to a process during a callback."""

    def __init__(
        self,
        node: NodeId,
        out_neighbors: tuple[NodeId, ...],
        outbox: list[tuple[NodeId, NodeId, Payload]],
        stats: MessageStats,
    ) -> None:
        self.node = node
        self.out_neighbors = out_neighbors
        self._outbox = outbox
        self._stats = stats
        self.round_index = 0
        self.time = 0.0

    def send(self, neighbor: NodeId, payload: Payload) -> None:
        """Send *payload* along the link to *neighbor* (must be adjacent)."""
        if neighbor not in self.out_neighbors:
            raise SimulationError(
                f"{self.node!r} has no link to {neighbor!r}; "
                f"out-neighbors: {self.out_neighbors!r}"
            )
        self._stats.record(self.node, neighbor)
        self._outbox.append((self.node, neighbor, payload))

    def broadcast(self, payload: Payload) -> None:
        """Send *payload* to every out-neighbor."""
        for neighbor in self.out_neighbors:
            self.send(neighbor, payload)


class _TopologyMixin:
    def _index_topology(
        self, nodes: Iterable[NodeId], links: Iterable[tuple[NodeId, NodeId]]
    ) -> None:
        self.nodes = list(nodes)
        node_set = set(self.nodes)
        if len(node_set) != len(self.nodes):
            raise SimulationError("duplicate nodes in topology")
        out: dict[NodeId, list[NodeId]] = {v: [] for v in self.nodes}
        for tail, head in links:
            if tail not in node_set or head not in node_set:
                raise SimulationError(f"link {tail!r}->{head!r} references unknown node")
            out[tail].append(head)
        self.out_neighbors = {v: tuple(ns) for v, ns in out.items()}


class SyncSimulator(_TopologyMixin):
    """Synchronous-round message-passing execution.

    Parameters
    ----------
    nodes, links:
        The directed topology processes may communicate over.
    processes:
        Mapping node -> :class:`Process`.
    max_rounds:
        Safety valve; exceeded runs raise :class:`SimulationError`
        (a distributed algorithm that fails to quiesce is a bug).
    """

    def __init__(
        self,
        nodes: Iterable[NodeId],
        links: Iterable[tuple[NodeId, NodeId]],
        processes: dict[NodeId, Process],
        max_rounds: int = 1_000_000,
        fault: Callable[[int, list], list] | None = None,
    ) -> None:
        self._index_topology(nodes, links)
        missing = [v for v in self.nodes if v not in processes]
        if missing:
            raise SimulationError(f"no process for nodes: {missing!r}")
        self.processes = processes
        self.max_rounds = max_rounds
        self.stats = MessageStats()
        #: Fault-injection hook: called once per round with
        #: ``(round_index, in_flight_messages)`` and may drop, duplicate,
        #: or reorder entries before delivery.  Used by the failure-mode
        #: tests; None means a reliable network.
        self.fault = fault

    def run(self) -> MessageStats:
        """Execute to quiescence; returns the message/round ledger."""
        outbox: list[tuple[NodeId, NodeId, Payload]] = []
        contexts = {
            v: SyncContext(v, self.out_neighbors[v], outbox, self.stats)
            for v in self.nodes
        }
        for v in self.nodes:
            self.processes[v].on_start(contexts[v])

        round_index = 0
        while outbox:
            round_index += 1
            if round_index > self.max_rounds:
                raise SimulationError(
                    f"no quiescence after {self.max_rounds} rounds "
                    f"({len(outbox)} messages still in flight)"
                )
            in_flight, outbox = outbox, []
            if self.fault is not None:
                in_flight = self.fault(round_index, in_flight)
            # Rebind every context's outbox to the new round's buffer.
            for ctx in contexts.values():
                ctx._outbox = outbox
                ctx.round_index = round_index
            for sender, receiver, payload in in_flight:
                self.processes[receiver].on_message(contexts[receiver], sender, payload)
            for v in self.nodes:
                self.processes[v].on_round_end(contexts[v])
        self.stats.rounds = round_index
        return self.stats


class AsyncSimulator(_TopologyMixin):
    """Asynchronous event-driven execution with per-link delays.

    Each send is delivered after ``delay(tail, head)`` time units (default:
    uniform random in ``(0.5, 1.5]`` from a seeded RNG, so executions are
    reproducible but interleavings are nontrivial).  ``rounds`` in the
    resulting ledger holds the number of delivered events; the final
    virtual clock is available as :attr:`end_time`.
    """

    def __init__(
        self,
        nodes: Iterable[NodeId],
        links: Iterable[tuple[NodeId, NodeId]],
        processes: dict[NodeId, Process],
        delay: Callable[[NodeId, NodeId], float] | None = None,
        seed: int = 0,
        max_events: int = 10_000_000,
    ) -> None:
        self._index_topology(nodes, links)
        missing = [v for v in self.nodes if v not in processes]
        if missing:
            raise SimulationError(f"no process for nodes: {missing!r}")
        self.processes = processes
        self.max_events = max_events
        self.stats = MessageStats()
        rng = random.Random(seed)
        self._delay = delay if delay is not None else (
            lambda tail, head: 0.5 + rng.random()
        )
        self.end_time = 0.0

    def run(self) -> MessageStats:
        """Execute until the event queue drains."""
        counter = itertools.count()  # tie-breaker for deterministic order
        queue: list[tuple[float, int, NodeId, NodeId, Payload]] = []
        outbox: list[tuple[NodeId, NodeId, Payload]] = []
        contexts = {
            v: SyncContext(v, self.out_neighbors[v], outbox, self.stats)
            for v in self.nodes
        }

        def flush(now: float) -> None:
            while outbox:
                sender, receiver, payload = outbox.pop()
                at = now + self._delay(sender, receiver)
                heapq.heappush(queue, (at, next(counter), sender, receiver, payload))

        for v in self.nodes:
            self.processes[v].on_start(contexts[v])
        flush(0.0)

        delivered = 0
        while queue:
            at, _seq, sender, receiver, payload = heapq.heappop(queue)
            delivered += 1
            if delivered > self.max_events:
                raise SimulationError(f"no quiescence after {self.max_events} events")
            ctx = contexts[receiver]
            ctx.time = at
            self.processes[receiver].on_message(ctx, sender, payload)
            flush(at)
            self.end_time = at
        self.stats.rounds = delivered
        return self.stats
