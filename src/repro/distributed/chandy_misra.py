"""Chandy–Misra asynchronous SSSP with diffusing-computation termination.

Chandy & Misra (CACM 1982) — the distributed shortest-path algorithm the
paper's Theorem 3 cites.  It is a diffusing computation in the style of
Dijkstra–Scholten:

* The source starts the computation by proposing distances to neighbors.
* A node receiving a shorter distance adopts it, re-proposes downstream,
  and tracks an *engagement* edge to the first unacknowledged proposer.
* Every proposal is eventually acknowledged; a node acknowledges its
  engagement parent once all its own proposals are acknowledged.  When the
  source collects all its acks, distances are final everywhere.

The implementation runs under the asynchronous simulator (arbitrary
per-link delays), so the termination protocol is actually load-bearing —
under asynchrony a node cannot otherwise know whether a better distance is
still in flight.

Message types (2-tuples): ``("dist", value)`` and ``("ack",)``.
"""

from __future__ import annotations

import math
from typing import Callable, Hashable, Mapping

from repro.distributed.messages import MessageStats
from repro.distributed.simulator import AsyncSimulator, Process, SyncContext
from repro.exceptions import SimulationError

__all__ = ["ChandyMisraSSSP"]

NodeId = Hashable
INF = math.inf


class _CMProcess(Process):
    def __init__(self, node: NodeId, is_source: bool, weights: Mapping[NodeId, float]) -> None:
        self.node = node
        self.is_source = is_source
        self.weights = weights
        self.dist = 0.0 if is_source else INF
        self.parent: NodeId | None = None
        self.pending_acks = 0
        self.engaged_to: NodeId | None = None  # unacknowledged proposer
        self.finished = False  # source only: termination observed

    def on_start(self, ctx: SyncContext) -> None:
        if self.is_source:
            self._propose(ctx)
            if self.pending_acks == 0:
                self.finished = True

    def on_message(self, ctx: SyncContext, sender: NodeId, payload: object) -> None:
        kind = payload[0]  # type: ignore[index]
        if kind == "ack":
            self.pending_acks -= 1
            self._maybe_release(ctx)
        elif kind == "dist":
            candidate = float(payload[1])  # type: ignore[index]
            if candidate < self.dist:
                self.dist = candidate
                self.parent = sender
                # Classic Dijkstra–Scholten: only a proposal finding this
                # node *idle* defers its ack (the node joins the tree under
                # the sender); anything else is acked after processing.
                # Re-engaging to later senders can create engagement
                # cycles and deadlock the termination detection.
                idle = self.engaged_to is None and self.pending_acks == 0
                deferred = idle and not self.is_source
                if deferred:
                    self.engaged_to = sender
                self._propose(ctx)
                if not deferred:
                    ctx.send(sender, ("ack",))
                self._maybe_release(ctx)
            else:
                ctx.send(sender, ("ack",))
        else:  # pragma: no cover - protocol violation
            raise SimulationError(f"unknown message kind {kind!r}")

    def _propose(self, ctx: SyncContext) -> None:
        # Proposals go only to weighted out-neighbors; the remaining
        # channels are reverse (ack) channels.
        for neighbor, weight in self.weights.items():
            ctx.send(neighbor, ("dist", self.dist + weight))
            self.pending_acks += 1

    def _maybe_release(self, ctx: SyncContext) -> None:
        if self.pending_acks == 0:
            if self.engaged_to is not None:
                ctx.send(self.engaged_to, ("ack",))
                self.engaged_to = None
            elif self.is_source:
                self.finished = True


class ChandyMisraSSSP:
    """Asynchronous SSSP with termination detection.

    Parameters mirror
    :class:`~repro.distributed.bellman_ford_dist.DistributedBellmanFord`;
    *delay* / *seed* control the asynchronous schedule.

    Example
    -------
    >>> cm = ChandyMisraSSSP([0, 1, 2], [(0, 1, 1.0), (1, 2, 1.0), (0, 2, 5.0)])
    >>> dist, stats = cm.run(0)
    >>> dist[2]
    2.0
    """

    def __init__(
        self,
        nodes: list[NodeId],
        weighted_links: list[tuple[NodeId, NodeId, float]],
        delay: Callable[[NodeId, NodeId], float] | None = None,
        seed: int = 0,
    ) -> None:
        for tail, head, weight in weighted_links:
            if weight < 0:
                raise ValueError(f"negative weight {weight!r} on {tail!r}->{head!r}")
        self.nodes = list(nodes)
        self.weighted_links = list(weighted_links)
        self.delay = delay
        self.seed = seed

    def run(self, source: NodeId) -> tuple[dict[NodeId, float], MessageStats]:
        """Compute exact distances from *source* under asynchrony."""
        out_weights: dict[NodeId, dict[NodeId, float]] = {v: {} for v in self.nodes}
        for tail, head, weight in self.weighted_links:
            previous = out_weights[tail].get(head)
            if previous is None or weight < previous:
                out_weights[tail][head] = weight
        # Proposals follow link direction; acks flow back, so the
        # communication topology includes the reverse channel of every link
        # (control channels are bidirectional in practice).
        channels = {(t, h) for t, heads in out_weights.items() for h in heads}
        channels |= {(h, t) for (t, h) in channels}
        links = sorted(channels, key=repr)

        processes: dict[NodeId, _CMProcess] = {
            v: _CMProcess(v, v == source, out_weights[v]) for v in self.nodes
        }
        sim = AsyncSimulator(
            self.nodes, links, processes, delay=self.delay, seed=self.seed
        )
        stats = sim.run()
        if not processes[source].finished:
            raise SimulationError(
                "Chandy-Misra terminated without the source observing "
                "completion (termination-detection bug)"
            )
        dist = {v: processes[v].dist for v in self.nodes}
        self.parents = {v: processes[v].parent for v in self.nodes}
        return dist, stats
