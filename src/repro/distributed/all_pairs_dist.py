"""Concurrent distributed all-pairs routing (Corollary 2).

Corollary 2 claims all-pairs optimal semilightpaths in ``O(k²n²)``
messages *and* ``O(k²n²)`` time on the distributed model (via Haldar's
all-pairs algorithm).  Rather than porting Haldar's algorithm wholesale,
this module realizes the corollary's operational point — all sources
resolved in **one** distributed execution — by running ``n`` instances of
the Theorem 3 protocol concurrently: every message carries its source tag
and every node keeps per-source distance tables.

Compared to ``n`` sequential single-source runs this sends the same
messages but overlaps them: the round count is the *maximum* over sources
instead of the sum, which is where the concurrency pays.  Message totals
are bounded by ``n`` times the single-source count (the Corollary 2
budget up to the same constants as Theorem 3).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Hashable

from repro.core.semilightpath import Hop, Semilightpath
from repro.distributed.messages import MessageStats
from repro.distributed.simulator import Process, SyncContext, SyncSimulator
from repro.exceptions import SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.network import WDMNetwork

__all__ = ["DistributedAllPairs", "AllPairsDistResult"]

NodeId = Hashable
INF = math.inf


@dataclass(frozen=True)
class AllPairsDistResult:
    """All-pairs distances and paths from one concurrent execution."""

    paths: dict[tuple[NodeId, NodeId], Semilightpath]
    stats: MessageStats

    def cost(self, source: NodeId, target: NodeId) -> float:
        """Optimal pair cost; ``inf`` when unreachable."""
        path = self.paths.get((source, target))
        return INF if path is None else path.total_cost


class _MultiSourceProcess(Process):
    """Per-source fragment state, all sources interleaved in one process."""

    def __init__(self, network: "WDMNetwork", node: NodeId) -> None:
        self.node = node
        self.lambda_in = sorted(network.lambda_in(node))
        self.lambda_out = sorted(network.lambda_out(node))
        model = network.conversion(node)
        self.conversions = list(model.finite_pairs(self.lambda_in, self.lambda_out))
        self.out_costs = {
            link.head: dict(link.costs) for link in network.out_links(node)
        }
        # Per-source tables, created lazily.
        self.dist_x: dict[NodeId, dict[int, float]] = {}
        self.dist_y: dict[NodeId, dict[int, float]] = {}
        self.parent_x: dict[NodeId, dict[int, NodeId]] = {}
        self.parent_y: dict[NodeId, dict[int, int | None]] = {}

    def _tables(self, source: NodeId):
        if source not in self.dist_x:
            self.dist_x[source] = {lam: INF for lam in self.lambda_in}
            self.dist_y[source] = {lam: INF for lam in self.lambda_out}
            self.parent_x[source] = {}
            self.parent_y[source] = {}
        return (
            self.dist_x[source],
            self.dist_y[source],
            self.parent_x[source],
            self.parent_y[source],
        )

    def on_start(self, ctx: SyncContext) -> None:
        # This node is the source of its own instance.
        _dx, dy, _px, py = self._tables(self.node)
        improved = []
        for lam in dy:
            dy[lam] = 0.0
            py[lam] = None
            improved.append(lam)
        self._announce(ctx, self.node, improved)

    def on_message(self, ctx: SyncContext, sender: NodeId, payload: object) -> None:
        source, wavelength, value = payload  # type: ignore[misc]
        dx, dy, px, py = self._tables(source)
        if wavelength not in dx:  # pragma: no cover - protocol bug
            raise SimulationError(
                f"{self.node!r} received wavelength {wavelength} it cannot hear"
            )
        if value >= dx[wavelength]:
            return
        dx[wavelength] = value
        px[wavelength] = sender
        improved = []
        for p, q, cost in self.conversions:
            if p != wavelength:
                continue
            candidate = value + cost
            if candidate < dy[q]:
                dy[q] = candidate
                py[q] = p
                improved.append(q)
        self._announce(ctx, source, improved)

    def _announce(self, ctx: SyncContext, source: NodeId, improved: list[int]) -> None:
        if not improved:
            return
        improved_set = set(improved)
        dy = self.dist_y[source]
        for neighbor, costs in self.out_costs.items():
            for lam, weight in costs.items():
                if lam in improved_set:
                    ctx.send(neighbor, (source, lam, dy[lam] + weight))


class DistributedAllPairs:
    """Run all ``n`` source instances concurrently in one simulation.

    Example
    -------
    >>> from repro.topology.reference import paper_figure1_network
    >>> result = DistributedAllPairs(paper_figure1_network()).run()
    >>> result.cost(1, 7)
    2.0
    """

    def __init__(self, network: "WDMNetwork") -> None:
        self.network = network

    def run(self) -> AllPairsDistResult:
        """Execute to quiescence; returns all pairs plus the ledger."""
        network = self.network
        processes = {
            v: _MultiSourceProcess(network, v) for v in network.nodes()
        }
        links = [(link.tail, link.head) for link in network.links()]
        sim = SyncSimulator(network.nodes(), links, processes)
        stats = sim.run()

        paths: dict[tuple[NodeId, NodeId], Semilightpath] = {}
        for source in network.nodes():
            for target in network.nodes():
                if source == target:
                    continue
                table = processes[target].dist_x.get(source)
                if not table:
                    continue
                best_lam, best = None, INF
                for lam, value in table.items():
                    if value < best:
                        best, best_lam = value, lam
                if best_lam is None or best == INF:
                    continue
                paths[(source, target)] = self._reconstruct(
                    processes, source, target, best_lam, best
                )
        return AllPairsDistResult(paths=paths, stats=stats)

    def _reconstruct(
        self,
        processes: dict[NodeId, _MultiSourceProcess],
        source: NodeId,
        target: NodeId,
        final_wavelength: int,
        total: float,
    ) -> Semilightpath:
        hops_reversed: list[Hop] = []
        node, wavelength = target, final_wavelength
        fuel = sum(len(p.lambda_in) for p in processes.values()) + 1
        while True:
            fuel -= 1
            if fuel < 0:  # pragma: no cover
                raise SimulationError("parent walk exceeded the state space")
            prev = processes[node].parent_x[source][wavelength]
            hops_reversed.append(Hop(tail=prev, head=node, wavelength=wavelength))
            converted_from = processes[prev].parent_y[source][wavelength]
            if converted_from is None:
                break
            node, wavelength = prev, converted_from
        return Semilightpath(hops=tuple(reversed(hops_reversed)), total_cost=total)
