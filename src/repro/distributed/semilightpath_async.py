"""Asynchronous distributed semilightpath routing with termination detection.

The synchronous router (:mod:`repro.distributed.semilightpath_dist`)
relies on round structure for termination: when no messages are in
flight, the computation is done.  Real control networks are asynchronous;
there, a node cannot locally tell "no improvement is in flight".  The
paper cites Chandy & Misra precisely because their diffusing-computation
termination detection solves this.

This module runs the embedded Liang–Shen relaxation under the
asynchronous simulator with Dijkstra–Scholten-style termination at
*process* granularity:

* every distance proposal ``("dist", source_tag_unused, λ, value)`` must
  be acknowledged exactly once;
* a process is *engaged* from the first proposal that activates it until
  its own deficit (unacked proposals it sent) returns to zero, at which
  point it acks its engager;
* when the source's deficit reaches zero, every distance table in the
  network is final.

The async execution must agree with the synchronous router and the
centralized optimum under every delivery schedule — property-tested over
random seeds.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Callable, Hashable

from repro.core.semilightpath import Hop, Semilightpath
from repro.distributed.messages import MessageStats
from repro.distributed.simulator import AsyncSimulator, Process, SyncContext
from repro.distributed.semilightpath_dist import DistributedRouteResult
from repro.exceptions import NoPathError, SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.network import WDMNetwork

__all__ = ["AsyncSemilightpathRouter"]

NodeId = Hashable
INF = math.inf


class _AsyncNodeProcess(Process):
    """One node's ``G_v`` fragment plus Dijkstra–Scholten accounting."""

    def __init__(self, network: "WDMNetwork", node: NodeId, is_source: bool) -> None:
        self.node = node
        self.is_source = is_source
        self.dist_x: dict[int, float] = {lam: INF for lam in network.lambda_in(node)}
        self.dist_y: dict[int, float] = {lam: INF for lam in network.lambda_out(node)}
        self.parent_x: dict[int, NodeId] = {}
        self.parent_y: dict[int, int | None] = {}
        model = network.conversion(node)
        self.conversions = list(
            model.finite_pairs(sorted(self.dist_x), sorted(self.dist_y))
        )
        self.out_costs: dict[NodeId, dict[int, float]] = {
            link.head: dict(link.costs) for link in network.out_links(node)
        }
        # Termination accounting.
        self.pending_acks = 0
        self.engaged_to: NodeId | None = None
        self.finished = False  # source only

    def on_start(self, ctx: SyncContext) -> None:
        if self.is_source:
            improved = []
            for lam in self.dist_y:
                self.dist_y[lam] = 0.0
                self.parent_y[lam] = None
                improved.append(lam)
            self._announce(ctx, improved)
            if self.pending_acks == 0:
                self.finished = True

    def on_message(self, ctx: SyncContext, sender: NodeId, payload: object) -> None:
        kind = payload[0]  # type: ignore[index]
        if kind == "ack":
            self.pending_acks -= 1
            self._maybe_release(ctx)
            return
        if kind != "dist":  # pragma: no cover - protocol violation
            raise SimulationError(f"unknown message kind {kind!r}")
        _kind, wavelength, value = payload  # type: ignore[misc]
        if wavelength not in self.dist_x:  # pragma: no cover
            raise SimulationError(
                f"{self.node!r} received wavelength {wavelength} it cannot hear"
            )
        if value >= self.dist_x[wavelength]:
            ctx.send(sender, ("ack",))
            return
        self.dist_x[wavelength] = value
        self.parent_x[wavelength] = sender
        improved: list[int] = []
        for p, q, cost in self.conversions:
            if p != wavelength:
                continue
            candidate = value + cost
            if candidate < self.dist_y[q]:
                self.dist_y[q] = candidate
                self.parent_y[q] = p
                improved.append(q)
        # Classic Dijkstra–Scholten engagement: only a proposal that finds
        # this process *idle* gets its ack deferred (the process joins the
        # tree under that sender).  Every other proposal is acked right
        # after processing — re-engaging to later senders can create
        # engagement cycles and deadlock the detection.
        idle = self.engaged_to is None and self.pending_acks == 0
        if idle and not self.is_source:
            self.engaged_to = sender
            deferred = True
        else:
            deferred = False
        self._announce(ctx, improved)
        if not deferred:
            ctx.send(sender, ("ack",))
        self._maybe_release(ctx)

    def _announce(self, ctx: SyncContext, improved: list[int]) -> None:
        if not improved:
            return
        improved_set = set(improved)
        for neighbor, costs in self.out_costs.items():
            for lam, weight in costs.items():
                if lam in improved_set:
                    ctx.send(neighbor, ("dist", lam, self.dist_y[lam] + weight))
                    self.pending_acks += 1

    def _maybe_release(self, ctx: SyncContext) -> None:
        if self.pending_acks == 0:
            if self.engaged_to is not None:
                ctx.send(self.engaged_to, ("ack",))
                self.engaged_to = None
            elif self.is_source:
                self.finished = True


class AsyncSemilightpathRouter:
    """Theorem 3's protocol under full asynchrony with termination detection.

    Parameters
    ----------
    network:
        The WDM network.
    delay:
        Optional per-link delay function for the asynchronous schedule.
    seed:
        Seed for random delays (schedules are reproducible).
    """

    def __init__(
        self,
        network: "WDMNetwork",
        delay: Callable[[NodeId, NodeId], float] | None = None,
        seed: int = 0,
    ) -> None:
        self.network = network
        self.delay = delay
        self.seed = seed

    def route(self, source: NodeId, target: NodeId) -> DistributedRouteResult:
        """Route under an asynchronous schedule; exact message counts.

        Message totals include the acknowledgement traffic the
        termination detection requires (roughly doubling Theorem 3's
        ``O(km)`` proposal count — the classic price of detecting
        quiescence without rounds).
        """
        if source == target:
            raise ValueError("source and target must differ")
        network = self.network
        processes = {
            v: _AsyncNodeProcess(network, v, is_source=(v == source))
            for v in network.nodes()
        }
        # Acks flow against proposal direction: include reverse channels.
        channels = {(link.tail, link.head) for link in network.links()}
        channels |= {(h, t) for (t, h) in channels}
        sim = AsyncSimulator(
            network.nodes(),
            sorted(channels, key=repr),
            processes,
            delay=self.delay,
            seed=self.seed,
        )
        stats = sim.run()
        if not processes[source].finished:
            raise SimulationError(
                "asynchronous run quiesced without the source observing "
                "termination (detection bug)"
            )

        target_proc = processes[target]
        best_lam, best = None, INF
        for lam, value in target_proc.dist_x.items():
            if value < best:
                best, best_lam = value, lam
        if best_lam is None or best == INF:
            raise NoPathError(source, target)
        path = self._reconstruct(processes, source, best_lam, best, target)
        return DistributedRouteResult(path=path, stats=stats)

    def _reconstruct(
        self,
        processes: dict[NodeId, _AsyncNodeProcess],
        source: NodeId,
        final_wavelength: int,
        total: float,
        target: NodeId,
    ) -> Semilightpath:
        hops_reversed: list[Hop] = []
        node, wavelength = target, final_wavelength
        fuel = sum(len(p.dist_x) for p in processes.values()) + 1
        while True:
            fuel -= 1
            if fuel < 0:  # pragma: no cover
                raise SimulationError("parent walk exceeded the state space")
            prev = processes[node].parent_x[wavelength]
            hops_reversed.append(Hop(tail=prev, head=node, wavelength=wavelength))
            converted_from = processes[prev].parent_y[wavelength]
            if converted_from is None:
                break
            node, wavelength = prev, converted_from
        return Semilightpath(hops=tuple(reversed(hops_reversed)), total_cost=total)
