"""Message accounting for the distributed simulators.

Theorems 3 and 5 are statements about *message* and *round* counts;
:class:`MessageStats` is the ledger both simulators write and the
benchmarks read.  Messages are attributed to the directed physical link
they traverse — computation local to a node is free, matching the paper's
distributed computational model ("the communication costs on these
[virtual intra-node] links are negligible").
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Hashable

__all__ = ["MessageStats"]

NodeId = Hashable


@dataclass
class MessageStats:
    """Ledger of messages and rounds for one distributed execution."""

    total_messages: int = 0
    rounds: int = 0
    per_link: Counter = field(default_factory=Counter)

    def record(self, tail: NodeId, head: NodeId, count: int = 1) -> None:
        """Record *count* messages sent over the link ``tail -> head``."""
        self.total_messages += count
        self.per_link[(tail, head)] += count

    @property
    def max_link_load(self) -> int:
        """Largest number of messages carried by any single link."""
        return max(self.per_link.values(), default=0)

    def merge(self, other: "MessageStats") -> None:
        """Fold *other*'s counts into this ledger (rounds are summed)."""
        self.total_messages += other.total_messages
        self.rounds += other.rounds
        self.per_link.update(other.per_link)
