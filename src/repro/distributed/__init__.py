"""Distributed message-passing substrate and the distributed router.

The paper's Theorems 3 and 5 claim a distributed implementation of the
semilightpath algorithm with ``O(km)`` messages and ``O(kn)`` time (resp.
``O(mk₀)`` / ``O(nk₀)`` in the restricted regime).  This subpackage builds
the machinery to *measure* those claims:

* :mod:`~repro.distributed.simulator` — a synchronous-round and an
  asynchronous event-driven message-passing simulator over an arbitrary
  directed topology, with exact per-link message accounting,
* :mod:`~repro.distributed.bellman_ford_dist` — classic synchronous
  distributed Bellman–Ford SSSP (the textbook distributed shortest-path
  building block),
* :mod:`~repro.distributed.chandy_misra` — the asynchronous
  Chandy–Misra-style diffusing-computation SSSP the paper cites,
* :mod:`~repro.distributed.semilightpath_dist` — the distributed
  Liang–Shen router: every physical node simulates its fragment of
  ``G_{s,t}`` (its bipartite ``G_v``), so only ``E_org`` edges cost
  messages — exactly the accounting in Theorem 3's proof.
"""

from repro.distributed.all_pairs_dist import AllPairsDistResult, DistributedAllPairs
from repro.distributed.bellman_ford_dist import DistributedBellmanFord
from repro.distributed.chandy_misra import ChandyMisraSSSP
from repro.distributed.messages import MessageStats
from repro.distributed.semilightpath_async import AsyncSemilightpathRouter
from repro.distributed.semilightpath_dist import (
    DistributedRouteResult,
    DistributedSemilightpathRouter,
)
from repro.distributed.simulator import (
    AsyncSimulator,
    Process,
    SyncContext,
    SyncSimulator,
)

__all__ = [
    "Process",
    "SyncContext",
    "SyncSimulator",
    "AsyncSimulator",
    "MessageStats",
    "DistributedBellmanFord",
    "ChandyMisraSSSP",
    "DistributedSemilightpathRouter",
    "DistributedRouteResult",
    "AsyncSemilightpathRouter",
    "DistributedAllPairs",
    "AllPairsDistResult",
]
