"""Distributed Liang–Shen semilightpath routing (Theorems 3 and 5).

The paper's distributed algorithm embeds ``G_{s,t}`` into the physical
network: every node ``v`` locally stores its fragment of the auxiliary
graph — the bipartite ``G_v`` (states ``X_v``/``Y_v`` and the conversion
edges between them) — while the ``E_org`` edges coincide with physical
links.  Relaxations across conversion edges are free local computation;
only relaxations across ``E_org`` edges cost a message.  The single-source
shortest-path computation itself is the classic distributed Bellman–Ford
(the synchronous analogue of the Chandy–Misra algorithm the paper cites).

Message format: ``(wavelength, value)`` sent along a physical link
``u → v`` means "a semilightpath reaching ``v`` whose last hop uses
*wavelength* on this link costs *value*" — i.e. a candidate distance for
the auxiliary state ``(v, wavelength) ∈ X_v``.

After quiescence the optimal path is reconstructed by walking the local
parent tables backwards from the target (in a deployment this would be a
single ``O(path length)`` trace message; the simulation reads the tables
directly).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Hashable

from repro.core.semilightpath import Hop, Semilightpath
from repro.distributed.messages import MessageStats
from repro.distributed.simulator import Process, SyncContext, SyncSimulator
from repro.exceptions import NoPathError, SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.network import WDMNetwork

__all__ = ["DistributedSemilightpathRouter", "DistributedRouteResult"]

NodeId = Hashable
INF = math.inf


@dataclass(frozen=True)
class DistributedRouteResult:
    """Outcome of one distributed routing query."""

    path: Semilightpath
    stats: MessageStats

    @property
    def cost(self) -> float:
        """Optimal semilightpath cost found by the distributed run."""
        return self.path.total_cost


class _NodeProcess(Process):
    """One physical node simulating its ``G_v`` fragment of ``G_{s,t}``."""

    def __init__(
        self,
        network: "WDMNetwork",
        node: NodeId,
        is_source: bool,
    ) -> None:
        self.node = node
        self.is_source = is_source
        # Local auxiliary state distances.
        self.dist_x: dict[int, float] = {lam: INF for lam in network.lambda_in(node)}
        self.dist_y: dict[int, float] = {lam: INF for lam in network.lambda_out(node)}
        # Parent tables for path reconstruction:
        #   parent_x[λ] = physical predecessor that proposed X state λ
        #   parent_y[λ'] = X-state wavelength converted from (None == via s')
        self.parent_x: dict[int, NodeId] = {}
        self.parent_y: dict[int, int | None] = {}
        # Local conversion edges p -> q with cost, restricted to the
        # wavelengths that actually occur on incident links.
        model = network.conversion(node)
        self.conversions: list[tuple[int, int, float]] = list(
            model.finite_pairs(sorted(self.dist_x), sorted(self.dist_y))
        )
        # Outgoing physical links: neighbor -> {wavelength: w(e, λ)}.
        self.out_costs: dict[NodeId, dict[int, float]] = {
            link.head: dict(link.costs) for link in network.out_links(node)
        }

    def on_start(self, ctx: SyncContext) -> None:
        if self.is_source:
            # s' reaches every Y_s state at cost 0.
            improved = []
            for lam in self.dist_y:
                self.dist_y[lam] = 0.0
                self.parent_y[lam] = None
                improved.append(lam)
            self._announce(ctx, improved)

    def on_message(self, ctx: SyncContext, sender: NodeId, payload: object) -> None:
        wavelength, value = payload  # type: ignore[misc]
        if wavelength not in self.dist_x:  # pragma: no cover - protocol bug
            raise SimulationError(
                f"{self.node!r} received wavelength {wavelength} it cannot hear"
            )
        if value >= self.dist_x[wavelength]:
            return  # not an improvement
        self.dist_x[wavelength] = value
        self.parent_x[wavelength] = sender
        # Free local relaxation across the bipartite conversion edges.
        improved: list[int] = []
        for p, q, cost in self.conversions:
            if p != wavelength:
                continue
            candidate = value + cost
            if candidate < self.dist_y[q]:
                self.dist_y[q] = candidate
                self.parent_y[q] = p
                improved.append(q)
        self._announce(ctx, improved)

    def _announce(self, ctx: SyncContext, improved: list[int]) -> None:
        """Relax the E_org edges out of every improved Y state (messages)."""
        if not improved:
            return
        improved_set = set(improved)
        for neighbor, costs in self.out_costs.items():
            for lam, weight in costs.items():
                if lam in improved_set:
                    ctx.send(neighbor, (lam, self.dist_y[lam] + weight))


class DistributedSemilightpathRouter:
    """Distributed optimal semilightpath routing over a simulated network.

    Example
    -------
    >>> from repro.topology.reference import paper_figure1_network
    >>> router = DistributedSemilightpathRouter(paper_figure1_network())
    >>> result = router.route(1, 7)
    >>> result.path.source, result.path.target
    (1, 7)
    """

    def __init__(self, network: "WDMNetwork") -> None:
        self.network = network

    def route(self, source: NodeId, target: NodeId) -> DistributedRouteResult:
        """Run the distributed protocol for one ``(source, target)`` query.

        Returns the optimal semilightpath plus exact message/round counts
        (Theorem 3 predicts ``O(km)`` messages and ``O(kn)`` rounds;
        Theorem 5 predicts ``O(mk₀)`` / ``O(nk₀)`` when availability is
        ``k₀``-bounded).  Raises :class:`NoPathError` when unreachable.
        """
        if source == target:
            raise ValueError("source and target must differ")
        network = self.network
        processes = {
            v: _NodeProcess(network, v, is_source=(v == source))
            for v in network.nodes()
        }
        links = [(link.tail, link.head) for link in network.links()]
        sim = SyncSimulator(network.nodes(), links, processes)
        stats = sim.run()

        # t'': the best X_t state.
        target_proc = processes[target]
        best_lam = None
        best = INF
        for lam, value in target_proc.dist_x.items():
            if value < best:
                best = value
                best_lam = lam
        if best_lam is None or best == INF:
            raise NoPathError(source, target)

        path = self._reconstruct(processes, source, target, best_lam, best)
        return DistributedRouteResult(path=path, stats=stats)

    def _reconstruct(
        self,
        processes: dict[NodeId, _NodeProcess],
        source: NodeId,
        target: NodeId,
        final_wavelength: int,
        total: float,
    ) -> Semilightpath:
        """Walk the local parent tables backwards from the target."""
        hops_reversed: list[Hop] = []
        node = target
        wavelength = final_wavelength
        fuel = sum(len(p.dist_x) for p in processes.values()) + 1
        while True:
            fuel -= 1
            if fuel < 0:
                raise SimulationError("parent-table walk exceeded the state space")
            prev = processes[node].parent_x[wavelength]
            hops_reversed.append(Hop(tail=prev, head=node, wavelength=wavelength))
            converted_from = processes[prev].parent_y[wavelength]
            if converted_from is None:
                break  # a Y state seeded by s' — prev is the source
            node = prev
            wavelength = converted_from
        return Semilightpath(hops=tuple(reversed(hops_reversed)), total_cost=total)
