"""Synchronous distributed Bellman–Ford SSSP.

The textbook distributed shortest-path algorithm: the source announces
distance 0; every node keeps its best known distance and, whenever it
improves, announces ``dist + w(link)`` to each out-neighbor on the next
round.  On a weighted digraph with nonnegative weights the algorithm
quiesces within ``n`` rounds (hop-diameter, precisely) and the final
distances are exact.

This runs over :class:`~repro.distributed.simulator.SyncSimulator` and is
the reference against which the embedded semilightpath router
(:mod:`repro.distributed.semilightpath_dist`) is validated: routing on the
*materialized* ``G_{s,t}`` with this class must give the same distances as
the embedded execution on the physical network.
"""

from __future__ import annotations

import math
from typing import Hashable, Mapping

from repro.distributed.messages import MessageStats
from repro.distributed.simulator import Process, SyncContext, SyncSimulator

__all__ = ["DistributedBellmanFord"]

NodeId = Hashable
INF = math.inf


class _BFProcess(Process):
    """One node's Bellman–Ford state: best distance + parent."""

    def __init__(self, node: NodeId, is_source: bool, weights: Mapping[NodeId, float]) -> None:
        self.node = node
        self.is_source = is_source
        self.weights = weights  # out-neighbor -> link weight
        self.dist = 0.0 if is_source else INF
        self.parent: NodeId | None = None

    def on_start(self, ctx: SyncContext) -> None:
        if self.is_source:
            self._announce(ctx)

    def on_message(self, ctx: SyncContext, sender: NodeId, payload: object) -> None:
        candidate = float(payload)  # type: ignore[arg-type]
        if candidate < self.dist:
            self.dist = candidate
            self.parent = sender
            self._announce(ctx)

    def _announce(self, ctx: SyncContext) -> None:
        for neighbor in ctx.out_neighbors:
            ctx.send(neighbor, self.dist + self.weights[neighbor])


class DistributedBellmanFord:
    """Run distributed Bellman–Ford over a weighted directed topology.

    Parameters
    ----------
    nodes:
        Topology nodes.
    weighted_links:
        ``(tail, head, weight)`` triples; weights must be nonnegative.

    Example
    -------
    >>> bf = DistributedBellmanFord([0, 1, 2], [(0, 1, 2.0), (1, 2, 3.0)])
    >>> dist, stats = bf.run(0)
    >>> dist[2]
    5.0
    """

    def __init__(
        self,
        nodes: list[NodeId],
        weighted_links: list[tuple[NodeId, NodeId, float]],
    ) -> None:
        for tail, head, weight in weighted_links:
            if weight < 0:
                raise ValueError(
                    f"negative weight {weight!r} on {tail!r}->{head!r}"
                )
        self.nodes = list(nodes)
        self.weighted_links = list(weighted_links)

    def run(self, source: NodeId) -> tuple[dict[NodeId, float], MessageStats]:
        """Compute distances from *source*; returns (dist, message ledger)."""
        out_weights: dict[NodeId, dict[NodeId, float]] = {v: {} for v in self.nodes}
        links = []
        for tail, head, weight in self.weighted_links:
            # Parallel links: keep the cheapest (the others can never win).
            previous = out_weights[tail].get(head)
            if previous is None or weight < previous:
                out_weights[tail][head] = weight
        for tail, heads in out_weights.items():
            for head in heads:
                links.append((tail, head))

        processes: dict[NodeId, _BFProcess] = {
            v: _BFProcess(v, v == source, out_weights[v]) for v in self.nodes
        }
        sim = SyncSimulator(self.nodes, links, processes)
        stats = sim.run()
        dist = {v: processes[v].dist for v in self.nodes}
        self.parents = {v: processes[v].parent for v in self.nodes}
        return dist, stats
