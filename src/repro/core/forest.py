"""Lazy path decoding from one shortest-path parent forest.

:func:`~repro.core.routing.run_tree` answers a same-source batch by
running one Dijkstra over ``G_all`` and eagerly decoding **every**
reachable target — the right call when the whole tree will be read, but
wasteful when a coalesced batch asks for 3 of 60 targets: decoding is a
Python-level walk per target (path reconstruction, hop mapping,
``Semilightpath`` construction) and dominates once the search itself is
amortized.

:class:`LazyForest` splits the two costs.  One kernel run to exhaustion
produces the parent forest; each target's path is decoded on first
request and memoized.  A batch of q same-source queries therefore costs
one search plus exactly q decodes — never n — and repeated targets are
dictionary hits.

Lifetime contract (the "batched-decoding" contract)
---------------------------------------------------
Because decoding is deferred, the forest must outlive the kernel's
result arrays.  :func:`run_forest` therefore always runs the kernel on
**private** buffers — never a router's shared scratch — so a forest and
every path it decodes stay valid indefinitely: after the next query, the
next epoch, or the originating router being dropped.  This is the
difference from the eager :func:`~repro.core.routing.run_tree`, which may
borrow reusable scratch precisely because it finishes all decoding
before returning.
"""

from __future__ import annotations

import math
from typing import Hashable

from repro.core.auxiliary import AllPairsGraph
from repro.core.routing import _decode
from repro.core.semilightpath import Semilightpath
from repro.shortestpath import resolve_kernel
from repro.shortestpath.dijkstra import DijkstraResult
from repro.shortestpath.paths import reconstruct_path

__all__ = ["LazyForest", "run_forest"]

NodeId = Hashable

_MISSING = object()


class LazyForest:
    """One exhausted same-source run over ``G_all``, decoded on demand.

    Produced by :func:`run_forest`; not constructed directly.  Paths are
    hop-identical to :func:`~repro.core.routing.run_tree`'s — both decode
    the same parent forest, this one just later.
    """

    __slots__ = ("aux", "source", "run", "_paths")

    def __init__(
        self, aux: AllPairsGraph, source: NodeId, run: DijkstraResult
    ) -> None:
        self.aux = aux
        self.source = source
        self.run = run
        self._paths: dict[NodeId, Semilightpath | None] = {}

    @property
    def decoded_targets(self) -> int:
        """How many targets have been decoded so far (memoization probe)."""
        return len(self._paths)

    def path_to(self, target: NodeId) -> Semilightpath | None:
        """The optimal semilightpath to *target*, ``None`` if unreachable.

        The source itself maps to ``None`` (a tree has no path to its own
        root — matching its absence from :func:`run_tree` trees); unknown
        targets raise ``KeyError`` like any tree lookup.
        """
        cached = self._paths.get(target, _MISSING)
        if cached is not _MISSING:
            return cached
        path: Semilightpath | None = None
        sink_id = self.aux.sink_ids[target]
        if target != self.source and self.run.dist[sink_id] != math.inf:
            aux_path = reconstruct_path(self.run.parent, sink_id)
            path = _decode(self.aux.decode, aux_path, self.run.dist[sink_id])
        self._paths[target] = path
        return path

    def cost(self, target: NodeId) -> float:
        """Optimal cost to *target* straight off the distance array.

        No decode happens — ``dist[sink]`` already is the Eq. (1) total —
        so cost probes stay O(1) even on never-decoded targets.
        """
        if target == self.source:
            return 0.0
        return self.run.dist[self.aux.sink_ids[target]]

    def materialize(self) -> dict[NodeId, Semilightpath]:
        """Decode every reachable target; same shape as :func:`run_tree`.

        Already-decoded paths are reused, so materializing after a few
        lookups costs only the remaining targets.
        """
        tree: dict[NodeId, Semilightpath] = {}
        for target in self.aux.sink_ids:
            path = self.path_to(target)
            if path is not None:
                tree[target] = path
        return tree


def run_forest(
    aux: AllPairsGraph,
    source: NodeId,
    heap: str = "flat",
) -> LazyForest:
    """One Corollary 1 run from *source*, packaged for lazy decoding.

    Always runs on private buffers (see the module docstring's lifetime
    contract), so callers may cache the forest across queries and epochs.
    """
    source_id = aux.source_ids[source]
    run = resolve_kernel(heap)(aux.graph, source_id, scratch=None)
    return LazyForest(aux, source, run)
