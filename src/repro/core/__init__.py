"""Core WDM model and the paper's optimal-semilightpath algorithm.

The modules here implement Sections II-IV of Liang & Shen:

* :mod:`~repro.core.wavelengths` / :mod:`~repro.core.network` — the network
  model ``G = (V, E)`` with per-link available-wavelength sets ``Λ(e)`` and
  costs ``w(e, λ)``,
* :mod:`~repro.core.conversion` — per-node wavelength-conversion cost
  functions ``c_v(λ_p, λ_q)``,
* :mod:`~repro.core.semilightpath` — the semilightpath object and its cost
  (paper Eq. 1),
* :mod:`~repro.core.auxiliary` — the transforms ``G_M``, ``G_v``, ``G'``,
  ``G_{s,t}``, ``G_all`` (Section III-A),
* :mod:`~repro.core.routing` — :class:`LiangShenRouter` (Theorem 1,
  Corollary 1),
* :mod:`~repro.core.restrictions` — Restrictions 1-2 and the Theorem 2
  node-simplicity guarantee.
"""

from repro.core.auxiliary import (
    AllPairsGraph,
    AuxiliarySizes,
    LayeredGraph,
    RoutingGraph,
    build_all_pairs_graph,
    build_layered_graph,
    build_routing_graph,
)
from repro.core.batch import BatchRouter
from repro.core.bounded import BoundedConversionRouter, conversion_cost_profile
from repro.core.ksp import k_shortest_semilightpaths
from repro.core.lightpath import LightpathRouter
from repro.core.conversion import (
    CallableConversion,
    ConversionModel,
    FixedCostConversion,
    FullConversion,
    MatrixConversion,
    NoConversion,
    RangeLimitedConversion,
)
from repro.core.network import Link, WDMNetwork
from repro.core.restrictions import (
    check_restriction1,
    check_restriction2,
    enforce_restrictions,
    is_node_simple,
)
from repro.core.parallel import route_all_pairs_parallel
from repro.core.routing import AllPairsResult, LiangShenRouter, RouteResult
from repro.core.semilightpath import Hop, Semilightpath
from repro.core.wavelengths import wavelength_name

__all__ = [
    "WDMNetwork",
    "Link",
    "wavelength_name",
    "ConversionModel",
    "FullConversion",
    "NoConversion",
    "FixedCostConversion",
    "RangeLimitedConversion",
    "MatrixConversion",
    "CallableConversion",
    "Hop",
    "Semilightpath",
    "LayeredGraph",
    "RoutingGraph",
    "AllPairsGraph",
    "AuxiliarySizes",
    "build_layered_graph",
    "build_routing_graph",
    "build_all_pairs_graph",
    "LiangShenRouter",
    "RouteResult",
    "AllPairsResult",
    "route_all_pairs_parallel",
    "BoundedConversionRouter",
    "conversion_cost_profile",
    "k_shortest_semilightpaths",
    "LightpathRouter",
    "BatchRouter",
    "check_restriction1",
    "check_restriction2",
    "enforce_restrictions",
    "is_node_simple",
]
