"""Operation counters reported by the routers.

Complexity claims are about *work*, not wall-clock; the benchmark harness
therefore records, for every routing query, the auxiliary-graph sizes and
the heap/relaxation counts of the underlying shortest-path run.  Wall-clock
is measured separately by pytest-benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.auxiliary import AuxiliarySizes

__all__ = ["QueryStats"]


@dataclass(frozen=True)
class QueryStats:
    """Work accounting for one routing query.

    Attributes
    ----------
    sizes:
        Sizes of the auxiliary graph the query ran on (Observations 1-5).
    settled:
        Nodes extracted with final distance from the priority queue.
    relaxations:
        Edge relaxations attempted.
    heap:
        Raw heap operation counts (``pushes`` / ``pops`` / ``decreases``).
    """

    sizes: AuxiliarySizes
    settled: int = 0
    relaxations: int = 0
    heap: dict[str, int] = field(default_factory=dict)

    @property
    def total_heap_ops(self) -> int:
        """Sum of all heap operations."""
        return sum(self.heap.values())
