"""Wavelength-conversion cost models ``c_v(λ_p, λ_q)``.

The paper models conversion capability at node ``v`` as a cost function:
``c_v(λ_p, λ_q)`` is the cost of switching an incoming signal on ``λ_p`` to
an outgoing ``λ_q``; ``c_v(λ, λ) = 0`` always, and an unsupported pair has
infinite cost.  In the auxiliary graphs an infinite cost simply means *no
edge* between the corresponding bipartite nodes.

This module provides a small hierarchy of models covering the situations the
WDM literature actually uses:

================================  ==================================================
model                             semantics
================================  ==================================================
:class:`FullConversion`           every pair convertible at a (possibly
                                  wavelength-dependent) cost
:class:`NoConversion`             only ``λ → λ`` possible (pure lightpaths)
:class:`FixedCostConversion`      alias of full conversion at one flat cost
:class:`RangeLimitedConversion`   convertible iff ``|p - q| <= range_limit``
                                  (models limited-range optoelectronic converters)
:class:`MatrixConversion`         explicit per-pair cost table (sparse dict)
:class:`CallableConversion`       arbitrary user function
================================  ==================================================

All models are immutable and shareable across nodes.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Callable, Iterable, Iterator, Mapping

from repro._validation import check_nonnegative

__all__ = [
    "ConversionModel",
    "FullConversion",
    "NoConversion",
    "FixedCostConversion",
    "RangeLimitedConversion",
    "MatrixConversion",
    "CallableConversion",
]

INF = math.inf


class ConversionModel(ABC):
    """Abstract conversion cost function for one node.

    Subclasses implement :meth:`_convert_cost` for ``p != q``; the base class
    enforces the paper's invariant ``c_v(λ, λ) = 0``.
    """

    def cost(self, from_wavelength: int, to_wavelength: int) -> float:
        """Cost of converting ``from_wavelength`` to ``to_wavelength``.

        Returns ``math.inf`` when the conversion is not supported.  Equal
        wavelengths always cost 0, regardless of the subclass.
        """
        if from_wavelength == to_wavelength:
            return 0.0
        return self._convert_cost(from_wavelength, to_wavelength)

    @abstractmethod
    def _convert_cost(self, from_wavelength: int, to_wavelength: int) -> float:
        """Cost for a *distinct* pair; ``math.inf`` when unsupported."""

    def supports(self, from_wavelength: int, to_wavelength: int) -> bool:
        """True when the conversion has finite cost."""
        return self.cost(from_wavelength, to_wavelength) < INF

    def finite_pairs(
        self, in_wavelengths: Iterable[int], out_wavelengths: Iterable[int]
    ) -> Iterator[tuple[int, int, float]]:
        """Yield ``(λ_in, λ_out, cost)`` for every supported pair.

        This is the enumeration the bipartite graph ``G_v`` construction
        performs; subclasses with structure (e.g. :class:`NoConversion`)
        override it to skip the quadratic scan.
        """
        outs = list(out_wavelengths)
        for p in in_wavelengths:
            for q in outs:
                c = self.cost(p, q)
                if c < INF:
                    yield p, q, c

    def max_finite_cost(self, wavelengths: Iterable[int]) -> float:
        """Largest finite conversion cost over pairs drawn from *wavelengths*.

        Used by the Restriction 2 checker.  Returns ``0.0`` when no distinct
        pair is convertible.
        """
        ws = list(wavelengths)
        best = 0.0
        for p in ws:
            for q in ws:
                c = self.cost(p, q)
                if c < INF and c > best:
                    best = c
        return best


class FullConversion(ConversionModel):
    """Any-to-any conversion at a per-pair cost from a callable or constant.

    Parameters
    ----------
    cost:
        Either a nonnegative float applied to every distinct pair, or a
        callable ``(from_wavelength, to_wavelength) -> float`` returning a
        nonnegative finite cost.
    """

    def __init__(self, cost: float | Callable[[int, int], float] = 1.0) -> None:
        if callable(cost):
            self._fn: Callable[[int, int], float] | None = cost
            self._flat = 0.0
        else:
            self._fn = None
            self._flat = check_nonnegative(cost, "cost")

    def _convert_cost(self, from_wavelength: int, to_wavelength: int) -> float:
        if self._fn is not None:
            return check_nonnegative(
                self._fn(from_wavelength, to_wavelength), "conversion cost"
            )
        return self._flat

    def __repr__(self) -> str:
        inner = "<callable>" if self._fn is not None else repr(self._flat)
        return f"FullConversion({inner})"


class FixedCostConversion(FullConversion):
    """Full conversion at one flat cost (a named convenience subclass)."""

    def __init__(self, cost: float) -> None:
        super().__init__(check_nonnegative(cost, "cost"))


class NoConversion(ConversionModel):
    """Wavelength continuity: only ``λ → λ`` is possible.

    A network where every node uses this model can only route *lightpaths*
    (the special case the paper mentions where the number of conversions is
    zero).
    """

    def _convert_cost(self, from_wavelength: int, to_wavelength: int) -> float:
        return INF

    def finite_pairs(
        self, in_wavelengths: Iterable[int], out_wavelengths: Iterable[int]
    ) -> Iterator[tuple[int, int, float]]:
        outs = set(out_wavelengths)
        for p in in_wavelengths:
            if p in outs:
                yield p, p, 0.0

    def max_finite_cost(self, wavelengths: Iterable[int]) -> float:
        return 0.0

    def __repr__(self) -> str:
        return "NoConversion()"


class RangeLimitedConversion(ConversionModel):
    """Conversion possible only between nearby wavelengths.

    Models limited-range converters: ``λ_p → λ_q`` is supported iff
    ``|p - q| <= range_limit``, at a cost that may depend on the distance.

    Parameters
    ----------
    range_limit:
        Maximum index distance convertible (``>= 0``).
    cost_per_step:
        Cost is ``cost_per_step * |p - q|`` (so adjacent conversions are
        cheapest).  Defaults to 1.0.
    """

    def __init__(self, range_limit: int, cost_per_step: float = 1.0) -> None:
        if range_limit < 0:
            raise ValueError(f"range_limit must be >= 0, got {range_limit}")
        self.range_limit = int(range_limit)
        self.cost_per_step = check_nonnegative(cost_per_step, "cost_per_step")

    def _convert_cost(self, from_wavelength: int, to_wavelength: int) -> float:
        distance = abs(from_wavelength - to_wavelength)
        if distance > self.range_limit:
            return INF
        return self.cost_per_step * distance

    def __repr__(self) -> str:
        return (
            f"RangeLimitedConversion(range_limit={self.range_limit}, "
            f"cost_per_step={self.cost_per_step})"
        )


class MatrixConversion(ConversionModel):
    """Explicit sparse per-pair cost table.

    Parameters
    ----------
    costs:
        Mapping ``(from_wavelength, to_wavelength) -> cost``.  Pairs absent
        from the mapping are unsupported (infinite).  Diagonal entries, if
        present, must be 0.
    """

    def __init__(self, costs: Mapping[tuple[int, int], float]) -> None:
        table: dict[tuple[int, int], float] = {}
        for (p, q), c in costs.items():
            if p == q and c != 0:
                raise ValueError(
                    f"c(λ, λ) must be 0, got {c!r} for wavelength {p}"
                )
            if math.isinf(c):
                continue  # infinite == absent
            table[(p, q)] = check_nonnegative(c, f"cost of ({p}, {q})")
        self._table = table

    def _convert_cost(self, from_wavelength: int, to_wavelength: int) -> float:
        return self._table.get((from_wavelength, to_wavelength), INF)

    def finite_pairs(
        self, in_wavelengths: Iterable[int], out_wavelengths: Iterable[int]
    ) -> Iterator[tuple[int, int, float]]:
        ins = set(in_wavelengths)
        outs = set(out_wavelengths)
        # Same-wavelength pass-through is always free.  Sorted, not set
        # order: enumeration order decides auxiliary-edge insertion
        # order, and the delta-overlay byte-parity oracle requires that
        # a filtered wavelength set enumerate as a subsequence of the
        # full one (hash order does not guarantee that; sorted does).
        for p in sorted(ins & outs):
            yield p, p, 0.0
        for (p, q), c in self._table.items():
            if p != q and p in ins and q in outs:
                yield p, q, c

    def pairs(self) -> Iterator[tuple[int, int, float]]:
        """Yield every finite off-diagonal entry ``(from, to, cost)``."""
        for (p, q), c in self._table.items():
            if p != q:
                yield p, q, c

    def __repr__(self) -> str:
        return f"MatrixConversion({len(self._table)} finite pairs)"


class CallableConversion(ConversionModel):
    """Adapter turning an arbitrary function into a conversion model.

    The function must return a nonnegative cost or ``math.inf``; it is never
    consulted for equal wavelengths.
    """

    def __init__(self, fn: Callable[[int, int], float]) -> None:
        if not callable(fn):
            raise TypeError(f"fn must be callable, got {type(fn).__name__}")
        self._fn = fn

    def _convert_cost(self, from_wavelength: int, to_wavelength: int) -> float:
        c = self._fn(from_wavelength, to_wavelength)
        if c < 0 or c != c:
            raise ValueError(f"conversion cost must be >= 0, got {c!r}")
        return c

    def __repr__(self) -> str:
        return f"CallableConversion({self._fn!r})"
