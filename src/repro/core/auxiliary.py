"""The paper's auxiliary-graph constructions (Section III-A and Corollary 1).

Liang & Shen reduce optimal semilightpath routing to a plain shortest-path
query through a chain of transformations:

1. **``G_M``** — the directed multigraph with one parallel link per
   available wavelength on each physical link (``m₁ = Σ_e |Λ(e)|`` links).
2. **``G_v``** — per node, a weighted bipartite graph: left side ``X_v`` has
   one node per wavelength in ``Λ_in(G_M, v)``, right side ``Y_v`` one node
   per wavelength in ``Λ_out(G_M, v)``; an edge ``(v,λ) → (v,λ')`` exists
   when ``λ = λ'`` (weight 0) or the conversion ``λ → λ'`` is supported at
   ``v`` (weight ``c_v(λ, λ')``).
3. **``G'``** — the union of all ``G_v`` plus the *original* edges
   ``E_org``: for each ``G_M`` link ``u → v`` on wavelength ``λ``, an edge
   from ``(u, λ) ∈ Y_u`` to ``(v, λ) ∈ X_v`` with weight ``w(⟨u,v⟩, λ)``.
4. **``G_{s,t}``** — ``G'`` plus a virtual source ``s'`` (zero-weight edges
   to every node of ``Y_s``) and a virtual sink ``t''`` (zero-weight edges
   from every node of ``X_t``).  A shortest ``s' → t''`` path maps 1-to-1
   onto an optimal semilightpath.
5. **``G_all``** — for Corollary 1: ``G'`` plus *per-node* virtual
   terminals ``v'`` / ``v''`` for every node, enabling all-pairs queries
   with ``n`` shortest-path-tree runs.

Auxiliary-graph nodes are described by :class:`AuxNode`; decoding a
shortest path back into a :class:`~repro.core.semilightpath.Semilightpath`
lives in :mod:`repro.core.routing`.

Size accounting (:class:`AuxiliarySizes`) records the exact measured sizes
next to the paper's bounds from Observations 1-5 so that tests and the
``bench_construction`` benchmark can verify them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Hashable, Iterator, NamedTuple

from repro.exceptions import UnknownNodeError
from repro.shortestpath.structures import GraphBuilder, StaticGraph

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.network import WDMNetwork

__all__ = [
    "AuxNode",
    "AuxiliarySizes",
    "LayeredGraph",
    "RoutingGraph",
    "AllPairsGraph",
    "multigraph_edges",
    "build_layered_graph",
    "build_routing_graph",
    "build_all_pairs_graph",
]

NodeId = Hashable

#: AuxNode.kind values
KIND_IN = "in"  #: a node of X_v — wavelength λ arriving at v
KIND_OUT = "out"  #: a node of Y_v — wavelength λ leaving v
KIND_SOURCE = "source"  #: a virtual source terminal (s' or v')
KIND_SINK = "sink"  #: a virtual sink terminal (t'' or v'')


class AuxNode(NamedTuple):
    """Descriptor of one auxiliary-graph node.

    ``kind`` is one of ``"in"`` (``X_v`` side), ``"out"`` (``Y_v`` side),
    ``"source"`` (a virtual ``v'``), ``"sink"`` (a virtual ``v''``).
    ``wavelength`` is ``-1`` for virtual terminals.
    """

    kind: str
    node: NodeId
    wavelength: int

    def label(self) -> str:
        """Readable label matching the paper's ``(v, λ_j)`` notation."""
        if self.kind == KIND_SOURCE:
            return f"{self.node}'"
        if self.kind == KIND_SINK:
            return f"{self.node}''"
        side = "X" if self.kind == KIND_IN else "Y"
        return f"({self.node},λ{self.wavelength + 1}):{side}"


def multigraph_edges(network: "WDMNetwork") -> Iterator[tuple[NodeId, NodeId, int, float]]:
    """Yield the links of ``G_M``: ``(u, v, wavelength, weight)``.

    One entry per physical link per available wavelength —
    ``m₁ = Σ_e |Λ(e)|`` entries in total.
    """
    for link in network.links():
        for wavelength in sorted(link.costs):
            yield link.tail, link.head, wavelength, link.costs[wavelength]


@dataclass(frozen=True)
class AuxiliarySizes:
    """Measured auxiliary-graph sizes with the paper's bounds.

    Attributes mirror Observations 1-5: for each quantity the ``*_bound``
    field is the closed-form upper bound the paper proves; tests assert
    ``value <= bound``.
    """

    n: int
    m: int
    k: int
    k0: int
    d: int
    m1: int  #: |E_M| = Σ|Λ(e)|
    num_layer_nodes: int  #: |V'|
    num_layer_edges: int  #: |E'|
    num_org_edges: int  #: |E_org|
    num_conversion_edges: int  #: Σ_v |E_v|
    max_bipartite_nodes: int  #: max_v (|X_v| + |Y_v|)
    max_bipartite_edges: int  #: max_v |E_v|

    @property
    def bound_layer_nodes(self) -> int:
        """Observation 2: ``|V'| <= 2kn``."""
        return 2 * self.k * self.n

    @property
    def bound_layer_nodes_restricted(self) -> int:
        """Observation 5, corrected: ``|V'| <= 2·m·k₀`` (restricted regime).

        The paper states ``|V'| <= Σ_e |Λ(e)| <= mk₀``, but
        ``Σ_v |Λ_in(G_M, v)| <= Σ_e |Λ(e)|`` and
        ``Σ_v |Λ_out(G_M, v)| <= Σ_e |Λ(e)|`` hold *separately*, so their
        sum is bounded by ``2·Σ_e |Λ(e)| <= 2mk₀``.  The paper's own
        Figure 1 example already exceeds the uncorrected bound
        (``|V'| = 36 > mk₀ = 33``); the factor-2 slip does not affect any
        asymptotic claim.
        """
        return 2 * self.m * self.k0

    @property
    def bound_layer_edges(self) -> int:
        """Observation 2: ``|E'| <= k²n + km``."""
        return self.k * self.k * self.n + self.k * self.m

    @property
    def bound_layer_edges_restricted(self) -> int:
        """Observation 5: ``|E'| <= d²nk₀² + mk₀``."""
        return self.d * self.d * self.n * self.k0 * self.k0 + self.m * self.k0

    @property
    def bound_bipartite_nodes(self) -> int:
        """Observation 1: ``|X_v| + |Y_v| <= 2k``."""
        return 2 * self.k

    @property
    def bound_bipartite_nodes_restricted(self) -> int:
        """Observation 4: ``|X_v| + |Y_v| <= 2dk₀``."""
        return 2 * self.d * self.k0

    @property
    def bound_bipartite_edges(self) -> int:
        """Observation 1: ``|E_v| <= k²``."""
        return self.k * self.k

    @property
    def bound_bipartite_edges_restricted(self) -> int:
        """Observation 4: ``|E_v| <= d²k₀²``."""
        return self.d * self.d * self.k0 * self.k0

    @property
    def bound_org_edges(self) -> int:
        """``|E_org| = m₁ <= km``."""
        return self.k * self.m

    def within_bounds(self) -> bool:
        """True when every measured size respects its Observation bound."""
        return (
            self.num_layer_nodes <= self.bound_layer_nodes
            and self.num_layer_edges <= self.bound_layer_edges
            and self.max_bipartite_nodes <= self.bound_bipartite_nodes
            and self.max_bipartite_edges <= self.bound_bipartite_edges
            and self.num_org_edges <= self.bound_org_edges
            and self.num_layer_nodes <= self.bound_layer_nodes_restricted
            and self.num_layer_edges <= self.bound_layer_edges_restricted
            and self.max_bipartite_nodes <= self.bound_bipartite_nodes_restricted
            and self.max_bipartite_edges <= self.bound_bipartite_edges_restricted
        )


class LayeredGraph:
    """The layered graph ``G'`` with its decode tables.

    Attributes
    ----------
    graph:
        The :class:`StaticGraph` over dense auxiliary ids.
    decode:
        ``decode[aux_id]`` is the :class:`AuxNode` descriptor.
    x_ids / y_ids:
        ``x_ids[(v, λ)]`` / ``y_ids[(v, λ)]`` map back to auxiliary ids for
        the ``X_v`` / ``Y_v`` sides.
    x_by_node / y_by_node:
        ``x_by_node[v]`` / ``y_by_node[v]`` list the auxiliary ids of
        ``X_v`` / ``Y_v`` in increasing-λ order (absent when empty).
        These index tables make per-node seeding O(|Y_v|) — the overlay
        single-pair query path seeds Dijkstra from ``y_by_node[s]`` and
        terminates on the min over ``x_by_node[t]``.
    """

    def __init__(
        self,
        network: "WDMNetwork",
        graph: StaticGraph,
        decode: list[AuxNode],
        x_ids: dict[tuple[NodeId, int], int],
        y_ids: dict[tuple[NodeId, int], int],
        sizes: AuxiliarySizes,
    ) -> None:
        self.network = network
        self.graph = graph
        self.decode = decode
        self.x_ids = x_ids
        self.y_ids = y_ids
        self.sizes = sizes
        # Insertion order of x_ids/y_ids is node order then sorted λ, so
        # per-node appends come out sorted by wavelength.
        x_by_node: dict[NodeId, list[int]] = {}
        for (v, _lam), aid in x_ids.items():
            x_by_node.setdefault(v, []).append(aid)
        y_by_node: dict[NodeId, list[int]] = {}
        for (v, _lam), aid in y_ids.items():
            y_by_node.setdefault(v, []).append(aid)
        self.x_by_node = x_by_node
        self.y_by_node = y_by_node

    def bipartite_nodes(self, node: NodeId) -> tuple[list[int], list[int]]:
        """Auxiliary ids of ``X_v`` and ``Y_v`` for *node* (sorted by λ).

        O(|X_v| + |Y_v|) via the per-node index tables (the lists are
        copied so callers cannot corrupt the tables).
        """
        return list(self.x_by_node.get(node, ())), list(self.y_by_node.get(node, ()))


class RoutingGraph(LayeredGraph):
    """``G_{s,t}``: the layered graph plus virtual terminals ``s'``, ``t''``."""

    def __init__(self, source: NodeId, target: NodeId, source_id: int, sink_id: int, **kw) -> None:
        super().__init__(**kw)
        self.source = source
        self.target = target
        self.source_id = source_id
        self.sink_id = sink_id


class AllPairsGraph(LayeredGraph):
    """``G_all``: the layered graph plus ``v'`` / ``v''`` for every node."""

    def __init__(
        self,
        source_ids: dict[NodeId, int],
        sink_ids: dict[NodeId, int],
        **kw,
    ) -> None:
        super().__init__(**kw)
        self.source_ids = source_ids
        self.sink_ids = sink_ids


def _emit_layered(
    network: "WDMNetwork",
    extra_nodes: int,
) -> tuple[GraphBuilder, list[AuxNode], dict, dict, dict[str, int]]:
    """Shared construction of ``G'``'s nodes and edges.

    Reserves room for *extra_nodes* virtual terminals (added by the caller
    afterwards).  Returns the builder, decode list, the ``x_ids`` / ``y_ids``
    maps, and raw size counters.
    """
    decode: list[AuxNode] = []
    x_ids: dict[tuple[NodeId, int], int] = {}
    y_ids: dict[tuple[NodeId, int], int] = {}

    # Pass 1: enumerate X_v / Y_v node sets (Λ_in / Λ_out of G_M == of G).
    for v in network.nodes():
        for lam in sorted(network.lambda_in(v)):
            x_ids[(v, lam)] = len(decode)
            decode.append(AuxNode(KIND_IN, v, lam))
        for lam in sorted(network.lambda_out(v)):
            y_ids[(v, lam)] = len(decode)
            decode.append(AuxNode(KIND_OUT, v, lam))

    builder = GraphBuilder(len(decode) + extra_nodes)

    # Pass 2: conversion edges E_v inside each bipartite graph G_v.
    num_conversion_edges = 0
    max_bip_nodes = 0
    max_bip_edges = 0
    for v in network.nodes():
        lam_in = sorted(network.lambda_in(v))
        lam_out = sorted(network.lambda_out(v))
        max_bip_nodes = max(max_bip_nodes, len(lam_in) + len(lam_out))
        model = network.conversion(v)
        count = 0
        for p, q, cost in model.finite_pairs(lam_in, lam_out):
            builder.add_edge(x_ids[(v, p)], y_ids[(v, q)], cost)
            count += 1
        num_conversion_edges += count
        max_bip_edges = max(max_bip_edges, count)

    # Pass 3: original edges E_org from the multigraph G_M.
    num_org_edges = 0
    for u, v, lam, weight in multigraph_edges(network):
        builder.add_edge(y_ids[(u, lam)], x_ids[(v, lam)], weight)
        num_org_edges += 1

    counters = {
        "num_conversion_edges": num_conversion_edges,
        "num_org_edges": num_org_edges,
        "max_bipartite_nodes": max_bip_nodes,
        "max_bipartite_edges": max_bip_edges,
        "num_layer_nodes": len(decode),
    }
    return builder, decode, x_ids, y_ids, counters


def _sizes(network: "WDMNetwork", counters: dict[str, int]) -> AuxiliarySizes:
    return AuxiliarySizes(
        n=network.num_nodes,
        m=network.num_links,
        k=network.num_wavelengths,
        k0=network.max_link_wavelengths,
        d=network.max_degree,
        m1=network.total_link_wavelengths,
        num_layer_nodes=counters["num_layer_nodes"],
        num_layer_edges=counters["num_conversion_edges"] + counters["num_org_edges"],
        num_org_edges=counters["num_org_edges"],
        num_conversion_edges=counters["num_conversion_edges"],
        max_bipartite_nodes=counters["max_bipartite_nodes"],
        max_bipartite_edges=counters["max_bipartite_edges"],
    )


def build_layered_graph(network: "WDMNetwork") -> LayeredGraph:
    """Construct ``G' = (V', E', ω₂)`` (paper Observations 2-3).

    Runs in ``O(k²n + km)`` time and space (``O(d²nk₀² + mk₀)`` in the
    restricted regime) — one pass to enumerate bipartite nodes, one to emit
    conversion edges, one to emit ``E_org``.
    """
    builder, decode, x_ids, y_ids, counters = _emit_layered(network, extra_nodes=0)
    return LayeredGraph(
        network=network,
        graph=builder.build(),
        decode=decode,
        x_ids=x_ids,
        y_ids=y_ids,
        sizes=_sizes(network, counters),
    )


def build_routing_graph(network: "WDMNetwork", source: NodeId, target: NodeId) -> RoutingGraph:
    """Construct ``G_{s,t}`` for a single-pair query (Theorem 1 setup).

    Adds a virtual source ``s'`` with zero-weight edges to all of ``Y_s``
    and a virtual sink ``t''`` with zero-weight edges from all of ``X_t``.
    ``source == target`` is rejected — a semilightpath has at least one
    link.
    """
    if not network.has_node(source):
        raise UnknownNodeError(source)
    if not network.has_node(target):
        raise UnknownNodeError(target)
    if source == target:
        raise ValueError("source and target must differ")

    builder, decode, x_ids, y_ids, counters = _emit_layered(network, extra_nodes=2)
    source_id = len(decode)
    sink_id = len(decode) + 1
    decode = decode + [AuxNode(KIND_SOURCE, source, -1), AuxNode(KIND_SINK, target, -1)]

    for (v, _lam), aux in y_ids.items():
        if v == source:
            builder.add_edge(source_id, aux, 0.0)
    for (v, _lam), aux in x_ids.items():
        if v == target:
            builder.add_edge(aux, sink_id, 0.0)

    return RoutingGraph(
        source=source,
        target=target,
        source_id=source_id,
        sink_id=sink_id,
        network=network,
        graph=builder.build(),
        decode=decode,
        x_ids=x_ids,
        y_ids=y_ids,
        sizes=_sizes(network, counters),
    )


def build_all_pairs_graph(network: "WDMNetwork") -> AllPairsGraph:
    """Construct ``G_all`` (Corollary 1 setup).

    Every node ``v`` gains virtual terminals ``v'`` (zero-weight edges into
    ``Y_v``) and ``v''`` (zero-weight edges out of ``X_v``); one
    shortest-path tree rooted at each ``v'`` then answers all ``n - 1``
    queries out of ``v``.
    """
    num_real = network.num_nodes
    builder, decode, x_ids, y_ids, counters = _emit_layered(
        network, extra_nodes=2 * num_real
    )
    source_ids: dict[NodeId, int] = {}
    sink_ids: dict[NodeId, int] = {}
    next_id = len(decode)
    for v in network.nodes():
        source_ids[v] = next_id
        decode.append(AuxNode(KIND_SOURCE, v, -1))
        next_id += 1
        sink_ids[v] = next_id
        decode.append(AuxNode(KIND_SINK, v, -1))
        next_id += 1

    for (v, _lam), aux in y_ids.items():
        builder.add_edge(source_ids[v], aux, 0.0)
    for (v, _lam), aux in x_ids.items():
        builder.add_edge(aux, sink_ids[v], 0.0)

    return AllPairsGraph(
        source_ids=source_ids,
        sink_ids=sink_ids,
        network=network,
        graph=builder.build(),
        decode=decode,
        x_ids=x_ids,
        y_ids=y_ids,
        sizes=_sizes(network, counters),
    )
