"""Restrictions 1-2 and the Theorem 2 node-simplicity guarantee.

The paper's model allows an optimal semilightpath to revisit a node on
different wavelengths (Figs. 5-6).  Two cost-structure restrictions rule
this out:

* **Restriction 1** — for any ``λ_p ∈ Λ_in(G, v)`` and
  ``λ_q ∈ Λ_out(G, v)``, the conversion ``c_v(λ_p, λ_q)`` is well defined
  (finite): a node that can receive on ``λ_p`` and transmit on ``λ_q`` can
  convert between them.
* **Restriction 2** — the largest conversion cost anywhere is strictly
  less than the smallest link cost anywhere (Eq. 2).

**Theorem 2**: under both restrictions, the optimal semilightpath visits
each node at most once.  :func:`enforce_restrictions` raises when the
network violates either restriction; :func:`is_node_simple` is the property
the theorem guarantees (re-exported from the path object for convenience).
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

from repro.core.semilightpath import Semilightpath
from repro.exceptions import RestrictionViolation

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.network import WDMNetwork

__all__ = [
    "check_restriction1",
    "check_restriction2",
    "enforce_restrictions",
    "is_node_simple",
]


def check_restriction1(network: "WDMNetwork") -> list[tuple[object, int, int]]:
    """Return every Restriction 1 violation as ``(node, λ_p, λ_q)``.

    Empty list means the restriction holds: at every node, any wavelength
    receivable on an incoming link can be converted to any wavelength
    transmittable on an outgoing link.
    """
    violations: list[tuple[object, int, int]] = []
    for v in network.nodes():
        lam_in = network.lambda_in(v)
        lam_out = network.lambda_out(v)
        model = network.conversion(v)
        for p in sorted(lam_in):
            for q in sorted(lam_out):
                if not model.supports(p, q):
                    violations.append((v, p, q))
    return violations


def check_restriction2(network: "WDMNetwork") -> tuple[bool, float, float]:
    """Check Eq. (2): ``max conversion cost < min link cost``.

    Returns ``(holds, max_conversion_cost, min_link_cost)``.  Only
    conversions between wavelengths actually receivable/transmittable at
    each node are considered, matching the quantifiers in Eq. (2).  A
    network with no links vacuously satisfies the restriction.
    """
    min_link = network.min_link_cost()
    max_conv = 0.0
    for v in network.nodes():
        lam_in = network.lambda_in(v)
        lam_out = network.lambda_out(v)
        model = network.conversion(v)
        for p in sorted(lam_in):
            for q in sorted(lam_out):
                c = model.cost(p, q)
                if c < math.inf and c > max_conv:
                    max_conv = c
    return max_conv < min_link, max_conv, min_link


def enforce_restrictions(network: "WDMNetwork") -> None:
    """Raise :class:`RestrictionViolation` unless Restrictions 1-2 hold."""
    violations = check_restriction1(network)
    if violations:
        v, p, q = violations[0]
        raise RestrictionViolation(
            f"Restriction 1 violated at node {v!r}: cannot convert "
            f"λ{p + 1} -> λ{q + 1} (and {len(violations) - 1} more violations)"
        )
    holds, max_conv, min_link = check_restriction2(network)
    if not holds:
        raise RestrictionViolation(
            f"Restriction 2 violated: max conversion cost {max_conv!r} is "
            f"not < min link cost {min_link!r}"
        )


def is_node_simple(path: Semilightpath) -> bool:
    """True when the semilightpath visits every node at most once.

    This is the property Theorem 2 guarantees for optimal semilightpaths on
    networks satisfying Restrictions 1-2.
    """
    return path.is_node_simple
