"""K-shortest semilightpaths (Yen's algorithm on ``G_{s,t}``).

Operators rarely want just *the* optimum: path protection, crankback on
reservation conflicts, and load balancing all need ranked alternatives.
This module runs Yen's K-shortest-loopless-paths algorithm directly on the
paper's auxiliary graph ``G_{s,t}`` and decodes each auxiliary path into a
semilightpath.

Two semantic notes:

* "Loopless" means *auxiliary-node*-simple.  Distinct auxiliary paths can
  decode to the same hop sequence with different conversion placements of
  equal cost; the enumeration deduplicates by decoded semilightpath so
  callers see materially different alternatives.
* Because semilightpaths may legally revisit physical nodes (paper
  Figs. 5-6), the enumeration does *not* force physical-node-simplicity —
  it enumerates exactly the walks the paper's model admits, cheapest
  first.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Hashable

from repro.core.auxiliary import KIND_IN, KIND_OUT, build_routing_graph
from repro.core.semilightpath import Hop, Semilightpath
from repro.exceptions import NoPathError
from repro.shortestpath.dijkstra import dijkstra
from repro.shortestpath.paths import reconstruct_path
from repro.shortestpath.structures import GraphBuilder

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.network import WDMNetwork

__all__ = ["k_shortest_semilightpaths"]

NodeId = Hashable


def _shortest_with_bans(
    graph_edges: list[tuple[int, int, float]],
    num_nodes: int,
    source: int,
    target: int,
    banned_edges: set[tuple[int, int, float]],
    banned_nodes: set[int],
    heap: str,
) -> tuple[list[int], float] | None:
    """Dijkstra on the edge list minus bans; returns (node path, cost)."""
    builder = GraphBuilder(num_nodes)
    for tail, head, weight in graph_edges:
        if tail in banned_nodes or head in banned_nodes:
            continue
        if (tail, head, weight) in banned_edges:
            continue
        builder.add_edge(tail, head, weight)
    run = dijkstra(builder.build(), source, target=target, heap=heap)
    if run.dist[target] == math.inf:
        return None
    return reconstruct_path(run.parent, target), run.dist[target]


def k_shortest_semilightpaths(
    network: "WDMNetwork",
    source: NodeId,
    target: NodeId,
    k: int,
    heap: str = "binary",
) -> list[Semilightpath]:
    """The *k* cheapest distinct semilightpaths, ascending by cost.

    Returns fewer than *k* when the network admits fewer distinct
    alternatives.  Raises :class:`NoPathError` when no semilightpath
    exists at all.

    Complexity: Yen's algorithm — ``O(k · n' · SSSP(G_{s,t}))`` with
    ``n'`` the auxiliary path length; fine for provisioning-scale use.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    aux = build_routing_graph(network, source, target)
    edges = [(t, h, w) for t, h, w, _tag in aux.graph.edges()]
    num_nodes = aux.graph.num_nodes

    def decode(ids: list[int], cost: float) -> Semilightpath:
        hops = []
        for i in range(len(ids) - 1):
            a, b = aux.decode[ids[i]], aux.decode[ids[i + 1]]
            if a.kind == KIND_OUT and b.kind == KIND_IN:
                hops.append(Hop(tail=a.node, head=b.node, wavelength=a.wavelength))
        return Semilightpath(hops=tuple(hops), total_cost=cost)

    first = _shortest_with_bans(
        edges, num_nodes, aux.source_id, aux.sink_id, set(), set(), heap
    )
    if first is None:
        raise NoPathError(source, target)

    accepted_aux: list[tuple[list[int], float]] = [first]
    results: list[Semilightpath] = [decode(*first)]
    seen_paths = {results[0].hops}
    # Candidate pool: (cost, aux path).  A list kept sorted is fine at
    # provisioning-scale k.
    candidates: list[tuple[float, list[int]]] = []

    adjacency: dict[tuple[int, int], list[float]] = {}
    for tail, head, weight in edges:
        adjacency.setdefault((tail, head), []).append(weight)

    while len(results) < k:
        base_path, _base_cost = accepted_aux[-1]
        # Spur from every prefix of the last accepted path.
        for i in range(len(base_path) - 1):
            spur_node = base_path[i]
            root = base_path[: i + 1]
            banned_edges: set[tuple[int, int, float]] = set()
            for accepted, _cost in accepted_aux:
                if accepted[: i + 1] == root and len(accepted) > i + 1:
                    tail, head = accepted[i], accepted[i + 1]
                    for weight in adjacency.get((tail, head), []):
                        banned_edges.add((tail, head, weight))
            banned_nodes = set(root[:-1])
            spur = _shortest_with_bans(
                edges, num_nodes, spur_node, aux.sink_id, banned_edges, banned_nodes, heap
            )
            if spur is None:
                continue
            spur_ids, spur_cost = spur
            root_cost = 0.0
            for j in range(i):
                weights = adjacency[(base_path[j], base_path[j + 1])]
                root_cost += min(weights)
            total = root_cost + spur_cost
            full = root[:-1] + spur_ids
            if all(existing != full for _c, existing in candidates) and all(
                accepted != full for accepted, _c in accepted_aux
            ):
                candidates.append((total, full))
        if not candidates:
            break
        candidates.sort(key=lambda item: item[0])
        best_cost, best_ids = candidates.pop(0)
        accepted_aux.append((best_ids, best_cost))
        path = decode(best_ids, best_cost)
        if path.hops not in seen_paths:
            seen_paths.add(path.hops)
            results.append(path)
    return results
