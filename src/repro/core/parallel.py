"""Process-parallel all-pairs routing (Corollary 1's embarrassing parallelism).

Corollary 1 answers all ``n(n-1)`` ordered pairs with ``n`` independent
shortest-path-tree runs over one shared ``G_all``.  The runs share no
mutable state, so they partition perfectly across OS processes — the only
engineering problem is getting ``G_all`` into the workers without paying
a per-task serialization bill.

:func:`route_all_pairs_parallel` gets ``G_all`` into the workers two ways:

* **Shared memory (default, ``shared=True``):** the parent publishes the
  CSR arrays once into a :class:`~repro.shortestpath.shared.SharedCSR`
  segment and each worker *attaches* through the pool initializer — a
  header parse plus one small metadata unpickle, independent of graph
  size.  No worker ever pickles or copies the arrays, under any start
  method; the segment is unlinked when the pool finishes.
* **Legacy (``shared=False``):** with the **fork** start method the
  parent stores ``G_all`` in a module global and forked children inherit
  it through copy-on-write memory; with **spawn**/**forkserver** the
  graph is pickled once per worker through the initializer.  This is the
  path whose per-worker cost motivated the shared segment — the bench
  records both so the regression stays visible.

Sources are grouped into contiguous chunks (several per worker, for load
balance against uneven tree sizes) and each worker returns its decoded
trees plus the per-run work counters; the parent merges chunks in source
order, so the resulting :class:`~repro.core.routing.AllPairsResult` is
identical — same paths, same dict iteration order, same aggregated
``QueryStats`` — to a serial :meth:`LiangShenRouter.route_all_pairs` run.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from typing import TYPE_CHECKING, Hashable

from repro.core.auxiliary import AllPairsGraph, build_all_pairs_graph
from repro.core.instrumentation import QueryStats
from repro.core.routing import AllPairsResult, run_tree
from repro.core.semilightpath import Semilightpath
from repro.shortestpath.flat import ScratchBuffers

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.network import WDMNetwork

__all__ = ["route_all_pairs_parallel"]

NodeId = Hashable

#: Worker-side shared state: set by fork inheritance or the pool initializer.
_SHARED: dict[str, object] = {}


def _worker_init(payload: tuple[AllPairsGraph, str, object] | None) -> None:
    """Pool initializer: install the shared graph (spawn/forkserver only).

    Under fork the payload is ``None`` and the worker keeps the module
    global it inherited from the parent.
    """
    if payload is not None:
        _SHARED["aux"], _SHARED["heap"], _SHARED["fault_hook"] = payload


def _worker_init_shared(payload: tuple[str, str, object]) -> None:
    """Pool initializer for the shared-memory path: attach by name.

    The payload carries only the segment *name* — deliberately, even
    under fork (where the worker could inherit the parent's handle), so
    every worker exercises the same zero-copy attach that spawned
    workers and the router server's pool rely on.
    """
    from repro.shortestpath.shared import attach_all_pairs_graph

    segment, heap, fault_hook = payload
    _SHARED["aux"] = attach_all_pairs_graph(segment)
    _SHARED["heap"] = heap
    _SHARED["fault_hook"] = fault_hook


def _route_chunk(
    job: tuple[int, list[NodeId]],
) -> tuple[int, list[tuple[NodeId, dict[NodeId, Semilightpath]]], int, int, dict[str, int]]:
    """Run one tree per source in the chunk against the shared ``G_all``."""
    index, sources = job
    aux: AllPairsGraph = _SHARED["aux"]  # type: ignore[assignment]
    heap: str = _SHARED["heap"]  # type: ignore[assignment]
    fault_hook = _SHARED.get("fault_hook")
    if fault_hook is not None:
        fault_hook(index)  # chaos layer: may raise inside this worker
    # Scratch is reused across this worker's chunks; kernels that manage
    # their own per-query state (the addressable heaps) simply ignore it.
    scratch = _SHARED.get("scratch")
    if scratch is None:
        scratch = _SHARED["scratch"] = ScratchBuffers(aux.graph.num_nodes)
    trees: list[tuple[NodeId, dict[NodeId, Semilightpath]]] = []
    settled = relaxations = 0
    heap_totals: dict[str, int] = {}
    for source in sources:
        tree, run = run_tree(aux, source, heap=heap, scratch=scratch)
        trees.append((source, tree))
        settled += run.settled
        relaxations += run.relaxations
        for key, value in run.heap_stats.items():
            heap_totals[key] = heap_totals.get(key, 0) + value
    return index, trees, settled, relaxations, heap_totals


def _chunk(sources: list[NodeId], num_chunks: int) -> list[list[NodeId]]:
    """Split *sources* into up to *num_chunks* contiguous, balanced chunks."""
    num_chunks = max(1, min(num_chunks, len(sources)))
    size, extra = divmod(len(sources), num_chunks)
    chunks: list[list[NodeId]] = []
    start = 0
    for i in range(num_chunks):
        end = start + size + (1 if i < extra else 0)
        chunks.append(sources[start:end])
        start = end
    return chunks


def route_all_pairs_parallel(
    network: "WDMNetwork",
    workers: int,
    heap: str = "flat",
    aux: AllPairsGraph | None = None,
    chunks_per_worker: int = 4,
    fault_hook=None,
    shared: bool = True,
) -> AllPairsResult:
    """Corollary 1 with the ``n`` tree runs fanned across a process pool.

    Parameters
    ----------
    network:
        The network to route on (must match *aux* when one is given).
    workers:
        Process count.  ``1`` runs serially in this process (no pool).
    heap:
        Kernel per tree run, as in :class:`~repro.core.routing.LiangShenRouter`.
        Addressable-heap *factories* cannot cross a process boundary; pass
        a heap name.
    aux:
        A prebuilt ``G_all`` to share (e.g. a router's cached one);
        built here when omitted.
    chunks_per_worker:
        Oversubscription factor for load balancing — tree runs on
        high-degree sources settle more nodes than leaf sources.
    fault_hook:
        Optional picklable ``hook(chunk_index)`` called at the start of
        every worker chunk — the chaos layer's worker-crash injection
        point (e.g. :class:`repro.faults.injector.ChunkCrash`).  Applied
        only on the pool path (``workers > 1``); a hook that raises
        surfaces the exception through the pool exactly like a real
        worker crash.
    shared:
        When True (default) the CSR arrays are published once into a
        shared-memory segment and workers attach zero-copy views; when
        False the legacy fork-inherit / pickle-per-worker path runs.
        Falls back to the legacy path automatically if the platform has
        no usable shared memory.

    Returns
    -------
    AllPairsResult
        Identical paths and aggregated stats to the serial run.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if not isinstance(heap, str):
        raise TypeError("parallel all-pairs requires a heap name, not a factory")
    if aux is None:
        aux = build_all_pairs_graph(network)
    sources = network.nodes()

    if workers == 1 or len(sources) <= 1:
        paths: dict[tuple[NodeId, NodeId], Semilightpath] = {}
        settled = relaxations = 0
        heap_totals: dict[str, int] = {}
        scratch = ScratchBuffers(aux.graph.num_nodes)
        for source in sources:
            tree, run = run_tree(aux, source, heap=heap, scratch=scratch)
            for target, path in tree.items():
                paths[(source, target)] = path
            settled += run.settled
            relaxations += run.relaxations
            for key, value in run.heap_stats.items():
                heap_totals[key] = heap_totals.get(key, 0) + value
        return AllPairsResult(
            paths=paths,
            stats=QueryStats(
                sizes=aux.sizes,
                settled=settled,
                relaxations=relaxations,
                heap=heap_totals,
            ),
        )

    methods = multiprocessing.get_all_start_methods()
    ctx = multiprocessing.get_context("fork" if "fork" in methods else None)
    segment = None
    if shared:
        try:
            from repro.shortestpath.shared import share_all_pairs_graph

            segment = share_all_pairs_graph(aux)
        except Exception:
            segment = None  # no /dev/shm (or equivalent): legacy path
    if segment is not None:
        initializer = _worker_init_shared
        payload = (segment.name, heap, fault_hook)
    else:
        initializer = _worker_init
        # Fork children inherit _SHARED through copy-on-write — no
        # pickling at all.  Other start methods get the graph through the
        # initializer, pickled once per worker rather than once per task.
        payload = (
            None
            if ctx.get_start_method() == "fork"
            else (aux, heap, fault_hook)
        )
        _SHARED["aux"] = aux
        _SHARED["heap"] = heap
        _SHARED["fault_hook"] = fault_hook
    jobs = list(enumerate(_chunk(sources, workers * chunks_per_worker)))
    try:
        with ProcessPoolExecutor(
            max_workers=workers,
            mp_context=ctx,
            initializer=initializer,
            initargs=(payload,),
        ) as pool:
            results = list(pool.map(_route_chunk, jobs))
    finally:
        _SHARED.clear()
        if segment is not None:
            segment.unlink()

    paths = {}
    settled = relaxations = 0
    heap_totals = {}
    results.sort(key=lambda chunk_result: chunk_result[0])
    for _index, trees, chunk_settled, chunk_relaxations, chunk_heap in results:
        for source, tree in trees:
            for target, path in tree.items():
                paths[(source, target)] = path
        settled += chunk_settled
        relaxations += chunk_relaxations
        for key, value in chunk_heap.items():
            heap_totals[key] = heap_totals.get(key, 0) + value
    return AllPairsResult(
        paths=paths,
        stats=QueryStats(
            sizes=aux.sizes,
            settled=settled,
            relaxations=relaxations,
            heap=heap_totals,
        ),
    )
