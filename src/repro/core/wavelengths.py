"""Wavelength representation.

Wavelengths are plain 0-based integer indices into the network's universe
``Λ = {λ₁, …, λ_k}``: wavelength ``i`` models the paper's ``λ_{i+1}``.
Keeping them as ints (rather than wrapper objects) keeps the hot loops of
the auxiliary-graph construction allocation-free; this module centralizes
the few conveniences the rest of the code needs on top of that.
"""

from __future__ import annotations

from typing import Iterable

from repro.exceptions import WavelengthError

__all__ = ["wavelength_name", "check_wavelength", "normalize_wavelengths"]


def wavelength_name(wavelength: int) -> str:
    """Human-readable name matching the paper's notation.

    >>> wavelength_name(0)
    'λ1'
    """
    return f"λ{wavelength + 1}"


def check_wavelength(wavelength: int, num_wavelengths: int) -> int:
    """Validate that *wavelength* is an index into a size-``k`` universe."""
    if isinstance(wavelength, bool) or not isinstance(wavelength, int):
        raise WavelengthError(
            f"wavelength must be an int index, got {type(wavelength).__name__}"
        )
    if not 0 <= wavelength < num_wavelengths:
        raise WavelengthError(
            f"wavelength {wavelength} out of range [0, {num_wavelengths})"
        )
    return wavelength


def normalize_wavelengths(
    wavelengths: Iterable[int], num_wavelengths: int
) -> frozenset[int]:
    """Return *wavelengths* as a validated frozenset of indices.

    Duplicates are tolerated (sets collapse them); out-of-range entries
    raise :class:`~repro.exceptions.WavelengthError`.
    """
    result = frozenset(wavelengths)
    for w in result:
        check_wavelength(w, num_wavelengths)
    return result
