"""Semilightpath objects and their cost (paper Eq. 1).

A semilightpath is a directed *walk* ``e₁ … e_l`` through the network with a
wavelength chosen per link; wavelength changes at intermediate nodes incur
conversion costs.  Walks (not just simple paths) are the correct domain:
the paper's Figs. 5-6 show an optimal semilightpath that revisits a node,
which only Restrictions 1-2 rule out (Theorem 2).

The cost decomposition:

```
C(P) = Σᵢ w(eᵢ, λᵢ)  +  Σᵢ c_{head(eᵢ)}(λᵢ, λᵢ₊₁)
```

is implemented in :meth:`Semilightpath.evaluate_cost` *independently* of the
routers, so tests can cross-check a router's claimed optimum against a
ground-truth evaluation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Hashable, Iterator, Sequence

from repro.exceptions import InvalidPathError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.core.network import WDMNetwork

__all__ = ["Hop", "Conversion", "Semilightpath"]

NodeId = Hashable


@dataclass(frozen=True)
class Hop:
    """One link traversal: the link ``tail -> head`` on *wavelength*."""

    tail: NodeId
    head: NodeId
    wavelength: int

    def __repr__(self) -> str:
        return f"{self.tail!r}-[λ{self.wavelength + 1}]->{self.head!r}"


@dataclass(frozen=True)
class Conversion:
    """A converter setting: at *node*, switch ``from_wavelength -> to_wavelength``."""

    node: NodeId
    from_wavelength: int
    to_wavelength: int

    def __repr__(self) -> str:
        return (
            f"Conversion({self.node!r}: λ{self.from_wavelength + 1}"
            f"->λ{self.to_wavelength + 1})"
        )


@dataclass(frozen=True)
class Semilightpath:
    """A wavelength-annotated walk plus its (claimed) total cost.

    Instances are typically produced by a router; ``total_cost`` is the
    router's claim and :meth:`evaluate_cost` recomputes it from first
    principles.  The structural walk invariants (consecutive hops chain) are
    checked at construction; network-dependent validity (wavelength
    availability, conversion support) is checked by :meth:`validate`.
    """

    hops: tuple[Hop, ...]
    total_cost: float = field(default=math.nan)

    def __post_init__(self) -> None:
        if not self.hops:
            raise InvalidPathError("a semilightpath must contain at least one hop")
        for i in range(len(self.hops) - 1):
            if self.hops[i].head != self.hops[i + 1].tail:
                raise InvalidPathError(
                    f"hop {i} ends at {self.hops[i].head!r} but hop {i + 1} "
                    f"starts at {self.hops[i + 1].tail!r}"
                )

    # -- structure ----------------------------------------------------------

    @property
    def source(self) -> NodeId:
        """First node of the walk."""
        return self.hops[0].tail

    @property
    def target(self) -> NodeId:
        """Last node of the walk."""
        return self.hops[-1].head

    @property
    def num_hops(self) -> int:
        """Number of links traversed (``l``)."""
        return len(self.hops)

    def nodes(self) -> list[NodeId]:
        """The node sequence, length ``l + 1`` (repeats possible)."""
        result = [self.hops[0].tail]
        result.extend(h.head for h in self.hops)
        return result

    def wavelengths(self) -> list[int]:
        """Wavelength used on each hop, in order."""
        return [h.wavelength for h in self.hops]

    def conversions(self) -> list[Conversion]:
        """Converter settings at intermediate nodes, in path order.

        Only *actual* switches are included (consecutive hops on different
        wavelengths); staying on the same wavelength needs no converter.
        """
        result = []
        for i in range(len(self.hops) - 1):
            a, b = self.hops[i], self.hops[i + 1]
            if a.wavelength != b.wavelength:
                result.append(
                    Conversion(
                        node=a.head,
                        from_wavelength=a.wavelength,
                        to_wavelength=b.wavelength,
                    )
                )
        return result

    @property
    def num_conversions(self) -> int:
        """Number of wavelength switches along the walk."""
        return sum(
            1
            for i in range(len(self.hops) - 1)
            if self.hops[i].wavelength != self.hops[i + 1].wavelength
        )

    @property
    def is_lightpath(self) -> bool:
        """True when a single wavelength is used end-to-end (no conversion)."""
        return self.num_conversions == 0

    @property
    def is_node_simple(self) -> bool:
        """True when no node appears twice in the walk (Theorem 2 regime)."""
        seen = set()
        for node in self.nodes():
            if node in seen:
                return False
            seen.add(node)
        return True

    def __iter__(self) -> Iterator[Hop]:
        return iter(self.hops)

    def __len__(self) -> int:
        return len(self.hops)

    # -- cost & validity ------------------------------------------------------

    def evaluate_cost(self, network: "WDMNetwork") -> float:
        """Recompute Eq. (1) from the network's cost structure.

        Raises the appropriate exception from :mod:`repro.exceptions` when
        the walk uses an unavailable wavelength or an unsupported
        conversion; returns the exact total otherwise.
        """
        total = 0.0
        for hop in self.hops:
            total += network.link_cost(hop.tail, hop.head, hop.wavelength)
        for i in range(len(self.hops) - 1):
            a, b = self.hops[i], self.hops[i + 1]
            c = network.conversion_cost(a.head, a.wavelength, b.wavelength)
            if math.isinf(c):
                from repro.exceptions import ConversionError

                raise ConversionError(a.head, a.wavelength, b.wavelength)
            total += c
        return total

    def validate(self, network: "WDMNetwork") -> None:
        """Raise unless the walk is realizable on *network*.

        Checks that every hop's link exists and offers the hop's wavelength,
        and that every wavelength switch is supported by the node's
        conversion model.  Also verifies the claimed ``total_cost`` when it
        is not NaN (within float tolerance).
        """
        actual = self.evaluate_cost(network)
        if not math.isnan(self.total_cost) and not math.isclose(
            actual, self.total_cost, rel_tol=1e-9, abs_tol=1e-9
        ):
            raise InvalidPathError(
                f"claimed cost {self.total_cost!r} != evaluated cost {actual!r}"
            )

    # -- construction helpers ---------------------------------------------------

    @staticmethod
    def from_sequence(
        nodes: Sequence[NodeId],
        wavelengths: Sequence[int],
        network: "WDMNetwork | None" = None,
    ) -> "Semilightpath":
        """Build a path from a node sequence and per-hop wavelengths.

        ``len(wavelengths)`` must equal ``len(nodes) - 1``.  When *network*
        is given, the claimed cost is evaluated from it; otherwise it is
        left NaN.
        """
        if len(nodes) < 2:
            raise InvalidPathError("need at least two nodes")
        if len(wavelengths) != len(nodes) - 1:
            raise InvalidPathError(
                f"need exactly {len(nodes) - 1} wavelengths, got {len(wavelengths)}"
            )
        hops = tuple(
            Hop(tail=nodes[i], head=nodes[i + 1], wavelength=wavelengths[i])
            for i in range(len(nodes) - 1)
        )
        path = Semilightpath(hops=hops)
        if network is not None:
            path = Semilightpath(hops=hops, total_cost=path.evaluate_cost(network))
        return path

    def __repr__(self) -> str:
        route = " ".join(repr(h) for h in self.hops)
        cost = "nan" if math.isnan(self.total_cost) else f"{self.total_cost:g}"
        return f"Semilightpath({route}, cost={cost})"
