"""Conversion-budget routing: optimal semilightpaths with at most ``q`` switches.

Section IV of the paper motivates scarcity: "the number of transmitters
and receivers (tuning) at each node usually is bounded".  A natural
operational constraint in that spirit — standard in the WDM literature —
is a cap on the number of wavelength conversions a path may perform
(converters are the expensive, contended resource).  ``q = 0`` demands a
pure lightpath; ``q = ∞`` recovers the unconstrained problem.

The reduction extends the paper's own: take ``G_{s,t}`` and form its
product with the conversion counter ``0..q``.  Every auxiliary node is
replicated ``q + 1`` times; pass-through and ``E_org`` edges stay within a
layer, proper conversion edges step from layer ``c`` to ``c + 1``.  A
shortest path from ``s'`` at layer 0 to the sink (reachable from every
layer) is the optimum with at most ``q`` conversions — the same
single-source machinery, on a graph ``q + 1`` times larger:
``O(q·(k²n + km) + q·kn·log(q·kn))`` total.

:func:`conversion_cost_profile` sweeps the budget and reports the full
cost-vs-conversions trade-off curve in one pass per budget.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Hashable

from repro.core.auxiliary import (
    KIND_IN,
    KIND_OUT,
    AuxNode,
    build_routing_graph,
)
from repro.core.instrumentation import QueryStats
from repro.core.routing import RouteResult
from repro.core.semilightpath import Hop, Semilightpath
from repro.exceptions import NoPathError
from repro.shortestpath.dijkstra import dijkstra
from repro.shortestpath.paths import reconstruct_path
from repro.shortestpath.structures import GraphBuilder

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.network import WDMNetwork

__all__ = ["BoundedConversionRouter", "conversion_cost_profile"]

NodeId = Hashable


@dataclass(frozen=True)
class _ProductGraph:
    graph: object
    decode: list[AuxNode]
    layers: int
    source_id: int
    sink_id: int
    base_size: int

    def layer_of(self, product_id: int) -> int:
        return product_id // self.base_size

    def base_of(self, product_id: int) -> int:
        return product_id % self.base_size


class BoundedConversionRouter:
    """Optimal semilightpath routing under a conversion budget.

    Parameters
    ----------
    network:
        The WDM network.
    heap:
        Heap name or factory for the Dijkstra core (default binary).

    Example
    -------
    >>> from repro.topology.reference import paper_figure1_network
    >>> router = BoundedConversionRouter(paper_figure1_network())
    >>> free = router.route(1, 6, max_conversions=2)
    >>> free.path.num_conversions <= 2
    True
    """

    def __init__(self, network: "WDMNetwork", heap: str = "binary") -> None:
        self.network = network
        self.heap = heap

    def route(self, source: NodeId, target: NodeId, max_conversions: int) -> RouteResult:
        """Minimum-cost semilightpath using at most *max_conversions* switches.

        Raises :class:`NoPathError` when no semilightpath within the budget
        exists (e.g. ``max_conversions = 0`` and no wavelength-continuous
        route).  ``max_conversions`` must be a nonnegative int.
        """
        if max_conversions < 0:
            raise ValueError(f"max_conversions must be >= 0, got {max_conversions}")
        product = self._build_product(source, target, max_conversions)
        run = dijkstra(
            product.graph, product.source_id, target=product.sink_id, heap=self.heap
        )
        if run.dist[product.sink_id] == math.inf:
            raise NoPathError(source, target)
        ids = reconstruct_path(run.parent, product.sink_id)
        path = self._decode(product, ids, run.dist[product.sink_id])
        aux = build_routing_graph(self.network, source, target)  # for sizes
        stats = QueryStats(
            sizes=aux.sizes,
            settled=run.settled,
            relaxations=run.relaxations,
            heap=dict(run.heap_stats),
        )
        return RouteResult(path=path, stats=stats)

    def _build_product(self, source: NodeId, target: NodeId, q: int) -> _ProductGraph:
        aux = build_routing_graph(self.network, source, target)
        base = aux.graph.num_nodes
        layers = q + 1
        # Product ids: layer * base + aux_id; plus one global sink at the end.
        builder = GraphBuilder(layers * base + 1)
        global_sink = layers * base
        for tail, head, weight, _tag in aux.graph.edges():
            a = aux.decode[tail]
            b = aux.decode[head]
            is_conversion = (
                a.kind == KIND_IN
                and b.kind == KIND_OUT
                and a.wavelength != b.wavelength
            )
            for layer in range(layers):
                if is_conversion:
                    if layer + 1 < layers:
                        builder.add_edge(
                            layer * base + tail, (layer + 1) * base + head, weight
                        )
                else:
                    builder.add_edge(layer * base + tail, layer * base + head, weight)
        # Sink reachable from every layer's t'' copy at zero cost.
        for layer in range(layers):
            builder.add_edge(layer * base + aux.sink_id, global_sink, 0.0)
        return _ProductGraph(
            graph=builder.build(),
            decode=aux.decode,
            layers=layers,
            source_id=aux.source_id,  # layer 0 copy
            sink_id=global_sink,
            base_size=base,
        )

    def _decode(
        self, product: _ProductGraph, ids: list[int], total: float
    ) -> Semilightpath:
        hops: list[Hop] = []
        base_ids = [product.base_of(i) for i in ids if i != product.sink_id]
        for i in range(len(base_ids) - 1):
            a = product.decode[base_ids[i]]
            b = product.decode[base_ids[i + 1]]
            if a.kind == KIND_OUT and b.kind == KIND_IN:
                hops.append(Hop(tail=a.node, head=b.node, wavelength=a.wavelength))
        return Semilightpath(hops=tuple(hops), total_cost=total)


def conversion_cost_profile(
    network: "WDMNetwork",
    source: NodeId,
    target: NodeId,
    max_budget: int | None = None,
) -> list[tuple[int, float]]:
    """The cost-vs-conversion-budget trade-off curve.

    Returns ``(budget, optimal_cost)`` pairs for budgets ``0, 1, …`` until
    the unconstrained optimum is reached (or *max_budget* is hit).  Budgets
    for which no path exists are omitted.  The final entry equals the
    unconstrained optimum of :class:`~repro.core.routing.LiangShenRouter`
    whenever the sweep was not cut short by *max_budget*.

    Note that the curve can have plateaus before its final value (cost is
    non-increasing in the budget but not strictly), so the sweep stops on
    reaching the unconstrained optimum, not on the first flat step.
    """
    from repro.core.routing import LiangShenRouter

    unconstrained = LiangShenRouter(network).route(source, target).cost
    router = BoundedConversionRouter(network)
    profile: list[tuple[int, float]] = []
    budget = 0
    ceiling = max_budget if max_budget is not None else network.num_nodes * 2
    while budget <= ceiling:
        try:
            cost = router.route(source, target, max_conversions=budget).cost
        except NoPathError:
            budget += 1
            continue
        profile.append((budget, cost))
        if cost <= unconstrained + 1e-12:
            break
        budget += 1
    if not profile:
        raise NoPathError(source, target)
    return profile
