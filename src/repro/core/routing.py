"""The Liang–Shen optimal-semilightpath router (Theorem 1, Corollary 1).

:class:`LiangShenRouter` answers three kinds of query:

* :meth:`~LiangShenRouter.route` — single pair ``(s, t)``: build
  ``G_{s,t}``, run Dijkstra from ``s'`` with early stop at ``t''``, decode
  the auxiliary path into a :class:`~repro.core.semilightpath.Semilightpath`
  (Theorem 1's ``O(k²n + km + kn·log(kn))`` procedure).
* :meth:`~LiangShenRouter.route_tree` — one source to all targets: build
  ``G_all`` and run a full shortest-path tree from ``v'`` (the building
  block of Corollary 1).
* :meth:`~LiangShenRouter.route_all_pairs` — all pairs: one tree per node
  over a single shared ``G_all``.

The decode step relies on the structure of ``G_{s,t}`` paths: they
alternate between *conversion* edges (inside one node's ``G_v``, from an
``X_v`` node to a ``Y_v`` node) and *original* edges (``Y_u → X_v``, one
per ``G_M`` link), book-ended by the zero-weight virtual edges at ``s'``
and ``t''``.  Each original edge contributes a hop; conversion edges carry
no hop but determine the wavelength switches, which the
:class:`Semilightpath` recovers from consecutive hop wavelengths.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Hashable

from repro.core.auxiliary import (
    KIND_IN,
    KIND_OUT,
    AllPairsGraph,
    AuxNode,
    build_all_pairs_graph,
    build_routing_graph,
)
from repro.core.instrumentation import QueryStats
from repro.core.semilightpath import Hop, Semilightpath
from repro.exceptions import NoPathError
from repro.shortestpath.dijkstra import DijkstraResult, dijkstra
from repro.shortestpath.heaps import AddressableHeap
from repro.shortestpath.paths import reconstruct_path

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.network import WDMNetwork

__all__ = ["RouteResult", "AllPairsResult", "LiangShenRouter"]

NodeId = Hashable


@dataclass(frozen=True)
class RouteResult:
    """A routed semilightpath plus the work it took to find it."""

    path: Semilightpath
    stats: QueryStats

    @property
    def cost(self) -> float:
        """Total cost of the routed semilightpath (Eq. 1)."""
        return self.path.total_cost


@dataclass(frozen=True)
class AllPairsResult:
    """Optimal semilightpaths for every ordered reachable pair.

    ``paths[(s, t)]`` holds the optimal semilightpath; unreachable pairs are
    absent.  ``stats`` aggregates the per-tree work.
    """

    paths: dict[tuple[NodeId, NodeId], Semilightpath]
    stats: QueryStats

    def cost(self, source: NodeId, target: NodeId) -> float:
        """Optimal cost for the pair, ``math.inf`` when unreachable."""
        path = self.paths.get((source, target))
        return math.inf if path is None else path.total_cost


class LiangShenRouter:
    """Optimal semilightpath routing via the layered-graph reduction.

    Parameters
    ----------
    network:
        The :class:`~repro.core.network.WDMNetwork` to route on.
    heap:
        Priority-queue implementation for the Dijkstra core: ``"binary"``
        (default — fastest in CPython), ``"pairing"``, ``"fibonacci"``
        (the structure Theorem 1's bound cites), or a factory callable.

    Example
    -------
    >>> from repro.topology.reference import paper_figure1_network
    >>> net = paper_figure1_network()
    >>> router = LiangShenRouter(net)
    >>> result = router.route(1, 7)
    >>> result.path.source, result.path.target
    (1, 7)
    """

    def __init__(
        self,
        network: "WDMNetwork",
        heap: str | Callable[[], AddressableHeap] = "binary",
    ) -> None:
        self.network = network
        self.heap = heap

    # -- single pair (Theorem 1) ---------------------------------------------

    def route(self, source: NodeId, target: NodeId) -> RouteResult:
        """Find an optimal semilightpath from *source* to *target*.

        Raises :class:`~repro.exceptions.NoPathError` when no semilightpath
        exists (including when the endpoints have no usable wavelengths).
        """
        aux = build_routing_graph(self.network, source, target)
        run = dijkstra(aux.graph, aux.source_id, target=aux.sink_id, heap=self.heap)
        if run.dist[aux.sink_id] == math.inf:
            raise NoPathError(source, target)
        aux_path = reconstruct_path(run.parent, aux.sink_id)
        path = _decode(aux.decode, aux_path, run.dist[aux.sink_id])
        return RouteResult(path=path, stats=_stats(aux.sizes, run))

    # -- one-to-all / all pairs (Corollary 1) -----------------------------------

    def route_tree(self, source: NodeId) -> dict[NodeId, Semilightpath]:
        """Optimal semilightpaths from *source* to every reachable node.

        Builds ``G_all`` and runs a single full Dijkstra from ``source'``;
        this is one iteration of Corollary 1.
        """
        aux = build_all_pairs_graph(self.network)
        return self._tree_from(aux, source)[0]

    def route_all_pairs(self) -> AllPairsResult:
        """Corollary 1: optimal semilightpaths for all ordered pairs.

        One shared ``G_all`` build plus ``n`` shortest-path-tree runs:
        ``O(k²n² + kmn + kn²·log(kn))`` total.
        """
        aux = build_all_pairs_graph(self.network)
        paths: dict[tuple[NodeId, NodeId], Semilightpath] = {}
        settled = 0
        relaxations = 0
        heap_totals: dict[str, int] = {}
        for source in self.network.nodes():
            tree, run = self._tree_from(aux, source)
            for target, path in tree.items():
                paths[(source, target)] = path
            settled += run.settled
            relaxations += run.relaxations
            for key, value in run.heap_stats.items():
                heap_totals[key] = heap_totals.get(key, 0) + value
        stats = QueryStats(
            sizes=aux.sizes,
            settled=settled,
            relaxations=relaxations,
            heap=heap_totals,
        )
        return AllPairsResult(paths=paths, stats=stats)

    def _tree_from(
        self, aux: AllPairsGraph, source: NodeId
    ) -> tuple[dict[NodeId, Semilightpath], DijkstraResult]:
        source_id = aux.source_ids[source]
        run = dijkstra(aux.graph, source_id, heap=self.heap)
        tree: dict[NodeId, Semilightpath] = {}
        for target, sink_id in aux.sink_ids.items():
            if target == source or run.dist[sink_id] == math.inf:
                continue
            aux_path = reconstruct_path(run.parent, sink_id)
            tree[target] = _decode(aux.decode, aux_path, run.dist[sink_id])
        return tree, run


def _stats(sizes, run: DijkstraResult) -> QueryStats:
    return QueryStats(
        sizes=sizes,
        settled=run.settled,
        relaxations=run.relaxations,
        heap=dict(run.heap_stats),
    )


def _decode(decode: list[AuxNode], aux_path: list[int], total: float) -> Semilightpath:
    """Map an auxiliary-graph path back to a semilightpath.

    Every ``Y_u(λ) → X_v(λ)`` step is an ``E_org`` edge, i.e. one hop of the
    semilightpath on wavelength ``λ``; all other steps are virtual or
    conversion edges and contribute no hop.
    """
    hops: list[Hop] = []
    for i in range(len(aux_path) - 1):
        a = decode[aux_path[i]]
        b = decode[aux_path[i + 1]]
        if a.kind == KIND_OUT and b.kind == KIND_IN:
            # By construction E_org edges preserve the wavelength.
            assert a.wavelength == b.wavelength, "corrupt E_org edge"
            hops.append(Hop(tail=a.node, head=b.node, wavelength=a.wavelength))
    return Semilightpath(hops=tuple(hops), total_cost=total)
