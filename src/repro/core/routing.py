"""The Liang–Shen optimal-semilightpath router (Theorem 1, Corollary 1).

:class:`LiangShenRouter` answers three kinds of query:

* :meth:`~LiangShenRouter.route` — single pair ``(s, t)``.  The default
  **overlay** path builds the layered graph ``G'`` once per router and
  answers every query on it without mutation or copying: Dijkstra is
  seeded multi-source on ``Y_s`` (all distance 0, exactly what the
  virtual ``s'`` terminal's zero-weight fan-out achieves) and terminates
  on the first settled node of ``X_t`` (nodes settle in nondecreasing
  distance order, so that node attains ``min over X_t`` — what the
  virtual ``t''`` terminal computes).  This drops the dominant
  ``O(k²n + km)`` construction term from every warm query, leaving only
  Theorem 1's ``O(kn·log(kn))`` search term.  ``overlay=False`` restores
  the per-query ``G_{s,t}`` rebuild (Theorem 1's literal procedure —
  kept for tests, teaching, and complexity accounting).
* :meth:`~LiangShenRouter.route_tree` — one source to all targets: one
  shortest-path tree over the cached ``G_all`` (the building block of
  Corollary 1).
* :meth:`~LiangShenRouter.route_all_pairs` — all pairs: one tree per
  node over the shared cached ``G_all``, optionally fanned out across a
  process pool (``workers=...``, see :mod:`repro.core.parallel`).

A router instance treats its network as **frozen**: ``G'`` and ``G_all``
are built lazily on first use and cached for the router's lifetime.
Call :meth:`~LiangShenRouter.invalidate` (or build a new router, as the
provisioning layers do per residual snapshot) after mutating the
network.

The decode step relies on the structure of auxiliary paths: they
alternate between *conversion* edges (inside one node's ``G_v``, from an
``X_v`` node to a ``Y_v`` node) and *original* edges (``Y_u → X_v``, one
per ``G_M`` link).  Each original edge contributes a hop; conversion
edges carry no hop but determine the wavelength switches, which the
:class:`Semilightpath` recovers from consecutive hop wavelengths.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Hashable

from repro.core.auxiliary import (
    KIND_IN,
    KIND_OUT,
    AllPairsGraph,
    AuxNode,
    LayeredGraph,
    build_all_pairs_graph,
    build_layered_graph,
    build_routing_graph,
)
from repro.core.instrumentation import QueryStats
from repro.core.semilightpath import Hop, Semilightpath
from repro.exceptions import InvalidPathError, NoPathError, UnknownNodeError
from repro.shortestpath import resolve_kernel
from repro.shortestpath.dijkstra import DijkstraResult
from repro.shortestpath.flat import ScratchBuffers, ScratchPool
from repro.shortestpath.heaps import AddressableHeap
from repro.shortestpath.paths import reconstruct_path

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.network import WDMNetwork

__all__ = [
    "RouteResult",
    "AllPairsResult",
    "LiangShenRouter",
    "run_tree",
    "decode_warm_tree",
    "decode_warm_targets",
]

NodeId = Hashable


@dataclass(frozen=True)
class RouteResult:
    """A routed semilightpath plus the work it took to find it."""

    path: Semilightpath
    stats: QueryStats

    @property
    def cost(self) -> float:
        """Total cost of the routed semilightpath (Eq. 1)."""
        return self.path.total_cost


@dataclass(frozen=True)
class AllPairsResult:
    """Optimal semilightpaths for every ordered reachable pair.

    ``paths[(s, t)]`` holds the optimal semilightpath; unreachable pairs are
    absent.  ``stats`` aggregates the per-tree work.
    """

    paths: dict[tuple[NodeId, NodeId], Semilightpath]
    stats: QueryStats

    def cost(self, source: NodeId, target: NodeId) -> float:
        """Optimal cost for the pair, ``math.inf`` when unreachable."""
        path = self.paths.get((source, target))
        return math.inf if path is None else path.total_cost


class LiangShenRouter:
    """Optimal semilightpath routing via the layered-graph reduction.

    Parameters
    ----------
    network:
        The :class:`~repro.core.network.WDMNetwork` to route on.  Treated
        as frozen: the auxiliary graphs are cached per router instance
        (see :meth:`invalidate`).
    heap:
        Shortest-path kernel name, resolved once through the registry in
        :mod:`repro.shortestpath`: ``"flat"`` (default — heapq + lazy
        deletion over CSR arrays with reusable scratch buffers, the
        serving fast path), ``"bucket"`` (Dial bucket queue on
        integer-lattice weights, transparent flat fallback otherwise),
        ``"binary"``, ``"pairing"``, ``"fibonacci"`` (the addressable
        structures Theorem 1's complexity accounting uses; Fibonacci is
        the one the bound cites), or a factory callable returning an
        addressable heap.
    overlay:
        When True (default), single-pair queries run on the shared
        layered graph ``G'`` (built once, never mutated).  When False,
        every query rebuilds ``G_{s,t}`` — Theorem 1's literal
        construction, kept for tests and complexity accounting.
    restricted:
        The Theorem 4 fast path for networks with small per-link
        wavelength counts.  ``"auto"`` (default) enables it when
        :func:`repro.shortestpath.restricted.restricted_applicable`
        holds (measured ``k₀`` at or below the benched crossover and
        strictly below ``k``); ``True`` / ``False`` force it.  When
        active, ``G'`` comes from the fused restricted builder
        (CSR-identical to the general one) and one-to-all queries run
        terminal-free on ``G'`` instead of ``G_all`` — hop-identical
        trees in time independent of ``k``.  :meth:`route_all_pairs` is
        unaffected either way: it stays on the shared ``G_all`` so
        serial and process-parallel runs remain byte-identical.

    Example
    -------
    >>> from repro.topology.reference import paper_figure1_network
    >>> net = paper_figure1_network()
    >>> router = LiangShenRouter(net)
    >>> result = router.route(1, 7)
    >>> result.path.source, result.path.target
    (1, 7)
    """

    def __init__(
        self,
        network: "WDMNetwork",
        heap: str | Callable[[], AddressableHeap] = "flat",
        overlay: bool = True,
        restricted: bool | str = "auto",
    ) -> None:
        self.network = network
        self.heap = heap
        self._kernel = resolve_kernel(heap)
        self.overlay = overlay
        if restricted == "auto":
            # Runtime-lazy import: repro.core's package init pulls this
            # module in, and repro.shortestpath.restricted imports
            # repro.core.auxiliary — a top-level import here would leave
            # one side partially initialized depending on entry point.
            from repro.shortestpath.restricted import restricted_applicable

            self.restricted = restricted_applicable(network)
        else:
            self.restricted = bool(restricted)
        self._layered: LayeredGraph | None = None
        self._all_pairs: AllPairsGraph | None = None
        self._pool = ScratchPool()

    # -- cached auxiliary graphs ---------------------------------------------

    def layered_graph(self) -> LayeredGraph:
        """The shared ``G'`` overlay (built lazily, cached).

        With :attr:`restricted` active the fused Theorem 4 builder is
        used; its output is CSR-identical to
        :func:`~repro.core.auxiliary.build_layered_graph`, so queries
        (and their tie-breaking) are unaffected by the choice.
        """
        if self._layered is None:
            if self.restricted:
                from repro.shortestpath.restricted import build_restricted_graph

                self._layered = build_restricted_graph(self.network)
            else:
                self._layered = build_layered_graph(self.network)
        return self._layered

    def all_pairs_graph(self) -> AllPairsGraph:
        """The shared ``G_all`` (built lazily, cached)."""
        if self._all_pairs is None:
            self._all_pairs = build_all_pairs_graph(self.network)
        return self._all_pairs

    def invalidate(self) -> None:
        """Drop the cached auxiliary graphs after a network mutation."""
        self._layered = None
        self._all_pairs = None

    # -- single pair (Theorem 1) ---------------------------------------------

    def route(self, source: NodeId, target: NodeId) -> RouteResult:
        """Find an optimal semilightpath from *source* to *target*.

        Raises :class:`~repro.exceptions.NoPathError` when no semilightpath
        exists (including when the endpoints have no usable wavelengths).
        """
        if not self.overlay:
            return self._route_rebuild(source, target)
        if not self.network.has_node(source):
            raise UnknownNodeError(source)
        if not self.network.has_node(target):
            raise UnknownNodeError(target)
        if source == target:
            raise ValueError("source and target must differ")
        aux = self.layered_graph()
        seeds = aux.y_by_node.get(source)
        sinks = aux.x_by_node.get(target)
        if not seeds or not sinks:
            raise NoPathError(source, target)
        run = self._run(aux.graph, seeds, targets=sinks)
        if run.stopped_at < 0:
            raise NoPathError(source, target)
        best = run.dist[run.stopped_at]
        aux_path = reconstruct_path(run.parent, run.stopped_at)
        path = _decode(aux.decode, aux_path, best)
        return RouteResult(path=path, stats=_stats(aux.sizes, run))

    def _route_rebuild(self, source: NodeId, target: NodeId) -> RouteResult:
        """Theorem 1 verbatim: build ``G_{s,t}``, search ``s' → t''``."""
        aux = build_routing_graph(self.network, source, target)
        run = self._run(aux.graph, aux.source_id, target=aux.sink_id)
        if run.dist[aux.sink_id] == math.inf:
            raise NoPathError(source, target)
        aux_path = reconstruct_path(run.parent, aux.sink_id)
        path = _decode(aux.decode, aux_path, run.dist[aux.sink_id])
        return RouteResult(path=path, stats=_stats(aux.sizes, run))

    def route_via_all_pairs(self, source: NodeId, target: NodeId) -> RouteResult:
        """Single-pair query over the cached ``G_all`` (no graph build).

        Answers are hop-for-hop identical to :meth:`route`: ``G_all``
        shares the ``X``/``Y`` id space with ``G'`` (terminals are
        appended after), the virtual ``source'`` fans out to ``Y_s`` at
        distance 0 exactly like the overlay's multi-source seeding, and
        the strict-improvement relaxation makes ``parent[t'']`` the first
        — i.e. minimum ``(dist, id)`` — settling member of ``X_t``, the
        very node the overlay query stops at.  The degraded-mode fallback
        uses this to serve Theorem-1 rebuild semantics off one cached
        ``G_all`` instead of reconstructing ``G_{s,t}`` per query.
        """
        if not self.network.has_node(source):
            raise UnknownNodeError(source)
        if not self.network.has_node(target):
            raise UnknownNodeError(target)
        if source == target:
            raise ValueError("source and target must differ")
        aux = self.all_pairs_graph()
        sink = aux.sink_ids[target]
        run = self._run(aux.graph, aux.source_ids[source], target=sink)
        if run.dist[sink] == math.inf:
            raise NoPathError(source, target)
        aux_path = reconstruct_path(run.parent, sink)
        path = _decode(aux.decode, aux_path, run.dist[sink])
        return RouteResult(path=path, stats=_stats(aux.sizes, run))

    # -- one-to-all / all pairs (Corollary 1) -----------------------------------

    def route_tree(self, source: NodeId) -> dict[NodeId, Semilightpath]:
        """Optimal semilightpaths from *source* to every reachable node.

        One full Dijkstra from ``source'`` over the cached ``G_all``; this
        is one iteration of Corollary 1.  A known node with no usable
        outgoing wavelengths yields an empty tree; an unknown node raises
        :class:`~repro.exceptions.UnknownNodeError` (matching :meth:`route`).
        """
        return self.tree_from(source)[0]

    def tree_from(
        self, source: NodeId
    ) -> tuple[dict[NodeId, Semilightpath], DijkstraResult]:
        """One Corollary 1 tree plus the run it took (for stats callers).

        With :attr:`restricted` active the tree runs terminal-free on
        ``G'`` (Theorem 4): hop-identical paths, but the run's
        settled/relaxation counts exclude the ``2n`` virtual terminals
        ``G_all`` would also have visited.
        """
        if not self.network.has_node(source):
            raise UnknownNodeError(source)
        if self.restricted:
            return self._restricted_tree(source)
        aux = self.all_pairs_graph()
        return run_tree(
            aux, source, heap=self.heap, scratch=self._pool.get(aux.graph.num_nodes)
        )

    def _restricted_tree(
        self, source: NodeId
    ) -> tuple[dict[NodeId, Semilightpath], DijkstraResult]:
        """Theorem 4 one-to-all: terminal-free over ``G'``."""
        from repro.shortestpath.restricted import run_restricted_tree

        aux = self.layered_graph()
        run, best = run_restricted_tree(
            aux,
            source,
            self._kernel,
            scratch=self._pool.get(aux.graph.num_nodes),
        )
        tree: dict[NodeId, Semilightpath] = {}
        for target, x in best.items():
            aux_path = reconstruct_path(run.parent, x)
            tree[target] = _decode(aux.decode, aux_path, run.dist[x])
        return tree, run

    def route_all_pairs(self, workers: int | None = None) -> AllPairsResult:
        """Corollary 1: optimal semilightpaths for all ordered pairs.

        One shared ``G_all`` build plus ``n`` shortest-path-tree runs:
        ``O(k²n² + kmn + kn²·log(kn))`` total.  With ``workers`` > 1 the
        ``n`` independent tree runs are partitioned across a process pool
        (:func:`repro.core.parallel.route_all_pairs_parallel`); results
        are identical to the serial run.
        """
        aux = self.all_pairs_graph()
        if workers is not None and workers > 1:
            from repro.core.parallel import route_all_pairs_parallel

            return route_all_pairs_parallel(
                self.network, workers=workers, heap=self.heap, aux=aux
            )
        paths: dict[tuple[NodeId, NodeId], Semilightpath] = {}
        settled = 0
        relaxations = 0
        heap_totals: dict[str, int] = {}
        scratch = self._pool.get(aux.graph.num_nodes)
        for source in self.network.nodes():
            tree, run = run_tree(aux, source, heap=self.heap, scratch=scratch)
            for target, path in tree.items():
                paths[(source, target)] = path
            settled += run.settled
            relaxations += run.relaxations
            for key, value in run.heap_stats.items():
                heap_totals[key] = heap_totals.get(key, 0) + value
        stats = QueryStats(
            sizes=aux.sizes,
            settled=settled,
            relaxations=relaxations,
            heap=heap_totals,
        )
        return AllPairsResult(paths=paths, stats=stats)

    # Backwards-compatible internal entry point: the service cache and the
    # batch router drive tree construction over an explicitly shared aux.
    def _tree_from(
        self, aux: AllPairsGraph, source: NodeId
    ) -> tuple[dict[NodeId, Semilightpath], DijkstraResult]:
        return run_tree(
            aux, source, heap=self.heap, scratch=self._pool.get(aux.graph.num_nodes)
        )

    # -- kernel dispatch -----------------------------------------------------

    def _run(self, graph, sources, target=None, targets=None) -> DijkstraResult:
        return self._kernel(
            graph,
            sources,
            target=target,
            targets=targets,
            scratch=self._pool.get(graph.num_nodes),
        )


def run_tree(
    aux: AllPairsGraph,
    source: NodeId,
    heap: str | Callable[[], AddressableHeap] = "flat",
    scratch: ScratchBuffers | ScratchPool | None = None,
) -> tuple[dict[NodeId, Semilightpath], DijkstraResult]:
    """One Corollary 1 shortest-path tree over a shared ``G_all``.

    Module-level so process-pool workers (:mod:`repro.core.parallel`) can
    run trees against a forked/pickled ``aux`` without a router instance.
    The tree is fully decoded before returning, so reusable *scratch* is
    safe to pass.
    """
    source_id = aux.source_ids[source]
    run = resolve_kernel(heap)(aux.graph, source_id, scratch=scratch)
    tree: dict[NodeId, Semilightpath] = {}
    for target, sink_id in aux.sink_ids.items():
        if target == source or run.dist[sink_id] == math.inf:
            continue
        aux_path = reconstruct_path(run.parent, sink_id)
        tree[target] = _decode(aux.decode, aux_path, run.dist[sink_id])
    return tree, run


def decode_warm_tree(
    aux: AllPairsGraph, source: NodeId, run
) -> dict[NodeId, Semilightpath]:
    """Decode a full Corollary 1 tree from a warm run's parent forest.

    *run* is anything exposing ``dist`` / ``parent`` arrays over
    ``aux.graph`` ids after running to exhaustion (in practice a
    :class:`~repro.shortestpath.flat.WarmRun`); the decode mirrors
    :func:`run_tree` exactly.
    """
    tree: dict[NodeId, Semilightpath] = {}
    for target, sink_id in aux.sink_ids.items():
        if target == source or run.dist[sink_id] == math.inf:
            continue
        aux_path = reconstruct_path(run.parent, sink_id)
        tree[target] = _decode(aux.decode, aux_path, run.dist[sink_id])
    return tree


def decode_warm_targets(
    aux: AllPairsGraph,
    source: NodeId,
    run,
    targets,
    tree: dict[NodeId, Semilightpath],
) -> None:
    """Re-decode only *targets* of a warm tree, updating *tree* in place.

    After a fail-only delta, :meth:`WarmRun.repair` reports which
    auxiliary nodes were damaged; only paths ending in a damaged sink
    need re-decoding — the incremental cache keeps every other decoded
    path, which is what keeps patched tree refreshes proportional to
    the damage.  A target that became unreachable is removed.
    """
    for target in targets:
        if target == source:
            continue
        sink_id = aux.sink_ids[target]
        if run.dist[sink_id] == math.inf:
            tree.pop(target, None)
        else:
            aux_path = reconstruct_path(run.parent, sink_id)
            tree[target] = _decode(aux.decode, aux_path, run.dist[sink_id])


def _stats(sizes, run: DijkstraResult) -> QueryStats:
    return QueryStats(
        sizes=sizes,
        settled=run.settled,
        relaxations=run.relaxations,
        heap=dict(run.heap_stats),
    )


def _decode(decode: list[AuxNode], aux_path: list[int], total: float) -> Semilightpath:
    """Map an auxiliary-graph path back to a semilightpath.

    Every ``Y_u(λ) → X_v(λ)`` step is an ``E_org`` edge, i.e. one hop of the
    semilightpath on wavelength ``λ``; all other steps are virtual or
    conversion edges and contribute no hop.
    """
    hops: list[Hop] = []
    for i in range(len(aux_path) - 1):
        a = decode[aux_path[i]]
        b = decode[aux_path[i + 1]]
        if a.kind == KIND_OUT and b.kind == KIND_IN:
            # By construction E_org edges preserve the wavelength; a
            # mismatch means the auxiliary graph or parent array is
            # corrupt.  A real exception (not an assert) so the check
            # survives ``python -O``.
            if a.wavelength != b.wavelength:
                raise InvalidPathError(
                    f"corrupt E_org edge in auxiliary path: "
                    f"{a.label()} -> {b.label()} changes wavelength"
                )
            hops.append(Hop(tail=a.node, head=b.node, wavelength=a.wavelength))
    return Semilightpath(hops=tuple(hops), total_cost=total)
