"""The WDM network model ``G = (V, E)`` (paper Section II).

A :class:`WDMNetwork` is a directed graph whose links each carry a set of
available wavelengths ``Λ(e) ⊆ Λ`` with per-wavelength costs ``w(e, λ)``,
and whose nodes each have a wavelength-conversion cost model
``c_v(λ_p, λ_q)``.

Node labels are arbitrary hashable objects (ints, strings, tuples); the
network maintains a stable dense integer index for each node, which the
auxiliary-graph builders use internally.

Wavelengths are 0-based integer indices into the universe of size
:attr:`WDMNetwork.num_wavelengths` (see :mod:`repro.core.wavelengths`).
An unavailable ``(link, wavelength)`` pair simply does not appear in the
link's cost table — the paper's "infinite weight" case.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Hashable, Iterator, Mapping

from repro._validation import check_positive_int
from repro.core.conversion import ConversionModel, FullConversion
from repro.core.wavelengths import check_wavelength
from repro.exceptions import (
    NetworkStructureError,
    UnknownLinkError,
    UnknownNodeError,
    WavelengthUnavailableError,
)

__all__ = ["Link", "WDMNetwork"]

NodeId = Hashable


@dataclass(frozen=True)
class Link:
    """One directed link with its available wavelengths and costs.

    ``costs`` maps each available wavelength (the set ``Λ(e)``) to the
    finite nonnegative cost ``w(e, λ)`` of using it on this link.
    """

    tail: NodeId
    head: NodeId
    costs: Mapping[int, float]

    @property
    def wavelengths(self) -> frozenset[int]:
        """The available-wavelength set ``Λ(e)``."""
        return frozenset(self.costs)

    def cost(self, wavelength: int) -> float:
        """``w(e, λ)``; ``math.inf`` when λ ∉ Λ(e)."""
        return self.costs.get(wavelength, math.inf)

    def __repr__(self) -> str:
        lams = ",".join(f"λ{w + 1}" for w in sorted(self.costs))
        return f"Link({self.tail!r}->{self.head!r}, {{{lams}}})"


class WDMNetwork:
    """Directed WDM network with per-link wavelength availability.

    Parameters
    ----------
    num_wavelengths:
        Size ``k`` of the wavelength universe ``Λ``.
    default_conversion:
        Conversion model assigned to nodes that are not given an explicit
        one via :meth:`set_conversion`.  Defaults to
        :class:`~repro.core.conversion.FullConversion` with unit cost.

    Example
    -------
    >>> net = WDMNetwork(num_wavelengths=2)
    >>> net.add_node("a"); net.add_node("b")
    >>> net.add_link("a", "b", {0: 1.0, 1: 2.5})
    Link('a'->'b', {λ1,λ2})
    >>> net.link_cost("a", "b", 1)
    2.5
    >>> sorted(net.available_wavelengths("a", "b"))
    [0, 1]
    """

    def __init__(
        self,
        num_wavelengths: int,
        default_conversion: ConversionModel | None = None,
    ) -> None:
        self._k = check_positive_int(num_wavelengths, "num_wavelengths")
        self._default_conversion = (
            default_conversion if default_conversion is not None else FullConversion(1.0)
        )
        self._index: dict[NodeId, int] = {}
        self._labels: list[NodeId] = []
        self._conversions: dict[NodeId, ConversionModel] = {}
        self._out: dict[NodeId, dict[NodeId, Link]] = {}
        self._in: dict[NodeId, dict[NodeId, Link]] = {}
        self._num_links = 0

    # -- construction ------------------------------------------------------

    def add_node(self, node: NodeId, conversion: ConversionModel | None = None) -> None:
        """Add *node*; optionally give it a node-specific conversion model."""
        if node in self._index:
            raise NetworkStructureError(f"node already exists: {node!r}")
        self._index[node] = len(self._labels)
        self._labels.append(node)
        self._out[node] = {}
        self._in[node] = {}
        if conversion is not None:
            self._conversions[node] = conversion

    def add_nodes(self, nodes: Iterator[NodeId] | list[NodeId]) -> None:
        """Add several nodes with the default conversion model."""
        for node in nodes:
            self.add_node(node)

    def add_link(self, tail: NodeId, head: NodeId, costs: Mapping[int, float]) -> Link:
        """Add the directed link ``tail -> head``.

        *costs* maps each wavelength in ``Λ(e)`` to its finite nonnegative
        cost ``w(e, λ)``.  An empty mapping is allowed (a dark link no
        semilightpath can use).  Self-loops and duplicate links are
        rejected — the paper's ``G`` is a simple digraph (parallel capacity
        appears only in the derived multigraph ``G_M``).
        """
        self._check_node(tail)
        self._check_node(head)
        if tail == head:
            raise NetworkStructureError(f"self-loop not allowed at {tail!r}")
        if head in self._out[tail]:
            raise NetworkStructureError(f"duplicate link: {tail!r} -> {head!r}")
        table: dict[int, float] = {}
        for wavelength, cost in costs.items():
            check_wavelength(wavelength, self._k)
            c = float(cost)
            if math.isinf(c):
                continue  # infinite == unavailable == absent
            if c < 0 or c != c:
                raise NetworkStructureError(
                    f"w(e, λ) must be >= 0 and finite, got {cost!r} for "
                    f"link {tail!r} -> {head!r}, wavelength {wavelength}"
                )
            table[wavelength] = c
        link = Link(tail=tail, head=head, costs=table)
        self._out[tail][head] = link
        self._in[head][tail] = link
        self._num_links += 1
        return link

    def set_conversion(self, node: NodeId, conversion: ConversionModel) -> None:
        """Assign a conversion model to an existing node."""
        self._check_node(node)
        self._conversions[node] = conversion

    # -- size parameters (paper Section II) ---------------------------------

    @property
    def num_nodes(self) -> int:
        """``n = |V|``."""
        return len(self._labels)

    @property
    def num_links(self) -> int:
        """``m = |E|``."""
        return self._num_links

    @property
    def num_wavelengths(self) -> int:
        """``k = |Λ|``."""
        return self._k

    def in_degree(self, node: NodeId) -> int:
        """``d_in(G, v)``."""
        self._check_node(node)
        return len(self._in[node])

    def out_degree(self, node: NodeId) -> int:
        """``d_out(G, v)``."""
        self._check_node(node)
        return len(self._out[node])

    @property
    def max_degree(self) -> int:
        """``d = max{d_in, d_out}`` over all nodes (0 for an empty graph)."""
        best = 0
        for node in self._labels:
            best = max(best, len(self._in[node]), len(self._out[node]))
        return best

    @property
    def max_link_wavelengths(self) -> int:
        """``k₀ = max_e |Λ(e)|`` — the Section IV restriction parameter."""
        best = 0
        for link in self.links():
            best = max(best, len(link.costs))
        return best

    @property
    def total_link_wavelengths(self) -> int:
        """``m₁ = Σ_e |Λ(e)|`` — the number of links of ``G_M``."""
        return sum(len(link.costs) for link in self.links())

    # -- queries -------------------------------------------------------------

    def nodes(self) -> list[NodeId]:
        """Node labels in insertion order."""
        return list(self._labels)

    def has_node(self, node: NodeId) -> bool:
        """True when *node* exists."""
        return node in self._index

    def node_index(self, node: NodeId) -> int:
        """Stable dense integer index of *node* (insertion order)."""
        self._check_node(node)
        return self._index[node]

    def node_label(self, index: int) -> NodeId:
        """Inverse of :meth:`node_index`."""
        return self._labels[index]

    def links(self) -> Iterator[Link]:
        """Iterate every link (insertion order within each tail)."""
        for tail in self._labels:
            yield from self._out[tail].values()

    def has_link(self, tail: NodeId, head: NodeId) -> bool:
        """True when the directed link exists."""
        return tail in self._index and head in self._out[tail]

    def link(self, tail: NodeId, head: NodeId) -> Link:
        """The :class:`Link` ``tail -> head`` (raises if absent)."""
        self._check_node(tail)
        self._check_node(head)
        try:
            return self._out[tail][head]
        except KeyError:
            raise UnknownLinkError(tail, head) from None

    def out_links(self, node: NodeId) -> list[Link]:
        """``E_out(G, v)``."""
        self._check_node(node)
        return list(self._out[node].values())

    def in_links(self, node: NodeId) -> list[Link]:
        """``E_in(G, v)``."""
        self._check_node(node)
        return list(self._in[node].values())

    def successors(self, node: NodeId) -> list[NodeId]:
        """Heads of ``E_out(G, v)``."""
        self._check_node(node)
        return list(self._out[node])

    def predecessors(self, node: NodeId) -> list[NodeId]:
        """Tails of ``E_in(G, v)``."""
        self._check_node(node)
        return list(self._in[node])

    def available_wavelengths(self, tail: NodeId, head: NodeId) -> frozenset[int]:
        """``Λ(e)`` for the link ``tail -> head``."""
        return self.link(tail, head).wavelengths

    def link_cost(self, tail: NodeId, head: NodeId, wavelength: int) -> float:
        """``w(e, λ)``; raises when λ ∉ Λ(e)."""
        check_wavelength(wavelength, self._k)
        link = self.link(tail, head)
        cost = link.costs.get(wavelength)
        if cost is None:
            raise WavelengthUnavailableError(tail, head, wavelength)
        return cost

    @property
    def default_conversion(self) -> ConversionModel:
        """The model used by nodes without an explicit one."""
        return self._default_conversion

    def explicit_conversion(self, node: NodeId) -> ConversionModel | None:
        """The node-specific model set via :meth:`add_node`/:meth:`set_conversion`.

        ``None`` when the node falls back to :attr:`default_conversion` —
        callers rebuilding a network (serializers, the verification
        shrinker) use this to preserve the explicit/default distinction.
        """
        self._check_node(node)
        return self._conversions.get(node)

    def conversion(self, node: NodeId) -> ConversionModel:
        """The conversion model of *node*."""
        self._check_node(node)
        return self._conversions.get(node, self._default_conversion)

    def conversion_cost(self, node: NodeId, from_wavelength: int, to_wavelength: int) -> float:
        """``c_v(λ_p, λ_q)``; ``math.inf`` when unsupported."""
        check_wavelength(from_wavelength, self._k)
        check_wavelength(to_wavelength, self._k)
        return self.conversion(node).cost(from_wavelength, to_wavelength)

    # -- wavelength-set accessors used by the constructions ------------------

    def lambda_in(self, node: NodeId) -> frozenset[int]:
        """``Λ_in(G, v) = ⋃_{e ∈ E_in(v)} Λ(e)``."""
        result: set[int] = set()
        for link in self.in_links(node):
            result.update(link.costs)
        return frozenset(result)

    def lambda_out(self, node: NodeId) -> frozenset[int]:
        """``Λ_out(G, v) = ⋃_{e ∈ E_out(v)} Λ(e)``."""
        result: set[int] = set()
        for link in self.out_links(node):
            result.update(link.costs)
        return frozenset(result)

    def min_link_cost(self) -> float:
        """``min_{e, λ} w(e, λ)`` — Restriction 2's right-hand side.

        Returns ``math.inf`` for a network with no usable (link, wavelength)
        pair.
        """
        best = math.inf
        for link in self.links():
            for cost in link.costs.values():
                if cost < best:
                    best = cost
        return best

    # -- misc -----------------------------------------------------------------

    def copy(self) -> "WDMNetwork":
        """Deep-enough copy: fresh structure, shared immutable models."""
        clone = WDMNetwork(self._k, self._default_conversion)
        for node in self._labels:
            clone.add_node(node, self._conversions.get(node))
        for link in self.links():
            clone.add_link(link.tail, link.head, dict(link.costs))
        return clone

    def _check_node(self, node: NodeId) -> None:
        if node not in self._index:
            raise UnknownNodeError(node)

    def __repr__(self) -> str:
        return (
            f"WDMNetwork(n={self.num_nodes}, m={self.num_links}, "
            f"k={self._k})"
        )
