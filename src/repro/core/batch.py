"""Batch routing over one shared ``G_all``.

:class:`LiangShenRouter` rebuilds its auxiliary graph per query — the
accounting both papers use, and the right default when the network's
costs change between queries (the dynamic provisioner's situation).  When
the network is *static* and many queries arrive (planning studies,
all-to-one analyses, repeated lookups), the Corollary 1 graph ``G_all``
can be built once and reused: each query is then a single Dijkstra run,
and full trees are cached per source.

:class:`BatchRouter` is that amortization.  It is read-only with respect
to the network; if the network changes, build a new instance (documented
contract — there is deliberately no invalidation machinery).
"""

from __future__ import annotations

import math
from typing import Hashable

from repro.core.auxiliary import build_all_pairs_graph
from repro.core.routing import LiangShenRouter
from repro.core.semilightpath import Semilightpath
from repro.exceptions import NoPathError

__all__ = ["BatchRouter"]

NodeId = Hashable


class BatchRouter:
    """Amortized routing: one ``G_all`` build, per-source tree caching.

    Example
    -------
    >>> from repro.topology.reference import paper_figure1_network
    >>> router = BatchRouter(paper_figure1_network())
    >>> router.route(1, 7).total_cost
    2.0
    >>> router.cost(1, 6)
    3.5
    """

    def __init__(self, network, heap: str = "binary") -> None:
        self.network = network
        self._inner = LiangShenRouter(network, heap=heap)
        self._aux = build_all_pairs_graph(network)
        self._trees: dict[NodeId, dict[NodeId, Semilightpath]] = {}

    @property
    def cached_sources(self) -> int:
        """Number of sources whose full tree is cached."""
        return len(self._trees)

    def _tree(self, source: NodeId) -> dict[NodeId, Semilightpath]:
        if source not in self._trees:
            tree, _run = self._inner._tree_from(self._aux, source)
            self._trees[source] = tree
        return self._trees[source]

    def route(self, source: NodeId, target: NodeId) -> Semilightpath:
        """Optimal semilightpath (raises :class:`NoPathError` if none)."""
        if source == target:
            raise ValueError("source and target must differ")
        tree = self._tree(source)
        path = tree.get(target)
        if path is None:
            raise NoPathError(source, target)
        return path

    def cost(self, source: NodeId, target: NodeId) -> float:
        """Optimal cost, ``math.inf`` when unreachable."""
        if source == target:
            return 0.0
        path = self._tree(source).get(target)
        return math.inf if path is None else path.total_cost

    def tree(self, source: NodeId) -> dict[NodeId, Semilightpath]:
        """The full shortest-path tree from *source* (cached)."""
        return dict(self._tree(source))
