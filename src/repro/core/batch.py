"""Batch routing over one shared ``G_all``.

:class:`LiangShenRouter` answers single-pair queries over its cached
``G'`` overlay, but each query is still a fresh Dijkstra run.  When the
network is *static* and many queries arrive (planning studies,
all-to-one analyses, repeated lookups), the Corollary 1 graph ``G_all``
earns more: each query becomes a dictionary lookup into a cached
per-source shortest-path tree, amortizing even the search.

:class:`BatchRouter` is that amortization.  It is read-only with respect
to the network; if the network changes, build a new instance (documented
contract — there is deliberately no invalidation machinery; the
epoch-versioned :class:`~repro.service.cache.EpochRouterCache` is the
mutable-network counterpart).

Per source the router caches a :class:`~repro.core.forest.LazyForest`:
one kernel run to exhaustion, with each target's path decoded on first
lookup and memoized (see :mod:`repro.core.forest` for the lifetime
contract).  Point queries on a fresh source therefore pay one search
plus *one* decode instead of one search plus ``n`` decodes;
:meth:`BatchRouter.tree` materializes the rest on demand.

The forest cache keeps hit/miss/eviction counters, and
``max_cached_trees`` bounds its memory with LRU eviction — for
all-to-one sweeps over huge node sets where caching every source tree
would dominate the footprint.  The counters are deliberately plain
attributes so
:meth:`repro.service.metrics.MetricsRegistry.bind_batch_router` can
publish them without this module depending on the service layer.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from typing import Hashable

from repro.core.forest import LazyForest, run_forest
from repro.core.routing import LiangShenRouter
from repro.core.semilightpath import Semilightpath
from repro.exceptions import NoPathError

__all__ = ["BatchRouter"]

NodeId = Hashable


class BatchRouter:
    """Amortized routing: one ``G_all`` build, per-source tree caching.

    Parameters
    ----------
    network:
        The (static) network to route on.
    heap:
        Dijkstra heap choice, forwarded to :class:`LiangShenRouter`.
    max_cached_trees:
        Optional bound on cached source trees; least-recently-used trees
        are evicted past it (``None`` = unbounded, the default).

    Example
    -------
    >>> from repro.topology.reference import paper_figure1_network
    >>> router = BatchRouter(paper_figure1_network())
    >>> router.route(1, 7).total_cost
    2.0
    >>> router.cost(1, 6)
    3.5
    >>> (router.cache_hits, router.cache_misses)
    (1, 1)
    """

    def __init__(
        self,
        network,
        heap: str = "flat",
        max_cached_trees: int | None = None,
    ) -> None:
        if max_cached_trees is not None and max_cached_trees < 1:
            raise ValueError("max_cached_trees must be positive (or None)")
        self.network = network
        self.heap = heap
        self.max_cached_trees = max_cached_trees
        self._inner = LiangShenRouter(network, heap=heap)
        self._aux = self._inner.all_pairs_graph()
        self._forests: OrderedDict[NodeId, LazyForest] = OrderedDict()
        self.cache_hits = 0
        self.cache_misses = 0
        self.cache_evictions = 0

    @property
    def cached_sources(self) -> int:
        """Number of sources whose forest is cached."""
        return len(self._forests)

    def cache_counters(self) -> dict[str, int]:
        """Hit/miss/eviction counts of the per-source forest cache."""
        return {
            "hits": self.cache_hits,
            "misses": self.cache_misses,
            "evictions": self.cache_evictions,
        }

    def _forest(self, source: NodeId) -> LazyForest:
        forest = self._forests.get(source)
        if forest is not None:
            self.cache_hits += 1
            self._forests.move_to_end(source)
            return forest
        self.cache_misses += 1
        forest = run_forest(self._aux, source, heap=self.heap)
        self._forests[source] = forest
        if (
            self.max_cached_trees is not None
            and len(self._forests) > self.max_cached_trees
        ):
            self._forests.popitem(last=False)
            self.cache_evictions += 1
        return forest

    def route(self, source: NodeId, target: NodeId) -> Semilightpath:
        """Optimal semilightpath (raises :class:`NoPathError` if none)."""
        if source == target:
            raise ValueError("source and target must differ")
        path = self._forest(source).path_to(target)
        if path is None:
            raise NoPathError(source, target)
        return path

    def cost(self, source: NodeId, target: NodeId) -> float:
        """Optimal cost, ``math.inf`` when unreachable (no decode at all)."""
        if source == target:
            return 0.0
        return self._forest(source).cost(target)

    def tree(self, source: NodeId) -> dict[NodeId, Semilightpath]:
        """The full shortest-path tree from *source* (cached, materialized)."""
        return self._forest(source).materialize()
