"""Pure-lightpath routing: per-wavelength shortest paths.

The paper's introduction frames lightpaths (no conversion anywhere) as the
special case of semilightpaths with zero switches.  For that case the
layered machinery is overkill: the wavelength-continuity constraint
decomposes the problem into ``k`` independent shortest-path queries, one
per wavelength subgraph, in ``O(k·(m + n log n))`` total — asymptotically
the same as Theorem 1 with the ``k²n`` conversion term deleted.

:class:`LightpathRouter` implements that decomposition.  It returns the
same answers as :class:`~repro.core.routing.LiangShenRouter` on networks
whose nodes all use :class:`~repro.core.conversion.NoConversion`, and the
same answer as :class:`~repro.core.bounded.BoundedConversionRouter` with
``max_conversions=0`` on *any* network — both equalities are tested.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Hashable

from repro.core.instrumentation import QueryStats
from repro.core.routing import RouteResult
from repro.core.semilightpath import Hop, Semilightpath
from repro.core.auxiliary import build_layered_graph
from repro.exceptions import NoPathError
from repro.shortestpath.dijkstra import dijkstra
from repro.shortestpath.paths import reconstruct_path
from repro.shortestpath.structures import GraphBuilder

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.network import WDMNetwork

__all__ = ["LightpathRouter"]

NodeId = Hashable


class LightpathRouter:
    """Optimal *lightpath* (conversion-free) routing.

    Example
    -------
    >>> from repro.topology.reference import paper_figure1_network
    >>> router = LightpathRouter(paper_figure1_network())
    >>> result = router.route(1, 7)
    >>> result.path.is_lightpath
    True
    """

    def __init__(self, network: "WDMNetwork", heap: str = "binary") -> None:
        self.network = network
        self.heap = heap
        # The per-wavelength subgraphs are query-independent: build once.
        self._subgraphs: list = []
        n = network.num_nodes
        for wavelength in range(network.num_wavelengths):
            builder = GraphBuilder(n)
            present = False
            for link in network.links():
                cost = link.costs.get(wavelength)
                if cost is not None:
                    builder.add_edge(
                        network.node_index(link.tail),
                        network.node_index(link.head),
                        cost,
                    )
                    present = True
            self._subgraphs.append(builder.build() if present else None)
        # Size accounting for QueryStats is also query-independent.
        self._sizes = build_layered_graph(network).sizes

    def route(self, source: NodeId, target: NodeId) -> RouteResult:
        """Cheapest single-wavelength path from *source* to *target*.

        Raises :class:`NoPathError` when no wavelength offers a continuous
        path.
        """
        best = self.route_per_wavelength(source, target)
        finite = [(w, p) for w, p in best.items() if p is not None]
        if not finite:
            raise NoPathError(source, target)
        wavelength, path = min(finite, key=lambda item: item[1].total_cost)
        stats = QueryStats(sizes=self._sizes)
        return RouteResult(path=path, stats=stats)

    def route_per_wavelength(
        self, source: NodeId, target: NodeId
    ) -> dict[int, Semilightpath | None]:
        """The best lightpath on *each* wavelength (None if disconnected).

        Useful for wavelength-assignment policies: the caller sees the
        whole per-λ cost landscape, not just the global winner.
        """
        if source == target:
            raise ValueError("source and target must differ")
        network = self.network
        source_index = network.node_index(source)
        target_index = network.node_index(target)
        results: dict[int, Semilightpath | None] = {}
        for wavelength, subgraph in enumerate(self._subgraphs):
            if subgraph is None:
                results[wavelength] = None
                continue
            run = dijkstra(
                subgraph, source_index, target=target_index, heap=self.heap
            )
            if run.dist[target_index] == math.inf:
                results[wavelength] = None
                continue
            indices = reconstruct_path(run.parent, target_index)
            labels = [network.node_label(i) for i in indices]
            hops = tuple(
                Hop(tail=labels[i], head=labels[i + 1], wavelength=wavelength)
                for i in range(len(labels) - 1)
            )
            results[wavelength] = Semilightpath(
                hops=hops, total_cost=run.dist[target_index]
            )
        return results
