"""Persistent router server: shared-memory CSR + a warm process pool.

The pieces (see docs/serving.md):

* :mod:`repro.server.protocol` — the length-prefixed binary frame format
  (``ROUTE``/``ROUTE_BATCH``/``ALL_PAIRS_CHUNK``/``PATCH``/``SNAPSHOT``/
  ``STATS``/``SHUTDOWN``) plus the wire encoding of semilightpaths.
* :mod:`repro.server.server` — :class:`RouterServer`: publishes ``G_all``
  once into a :class:`~repro.shortestpath.shared.SharedCSR` segment, owns
  a pool of warm worker processes attached zero-copy, applies ``PATCH``
  fault batches write-through under the seqlock epoch, detects and
  respawns crashed workers.
* :mod:`repro.server.client` — :class:`RouterClient`: a socket client
  whose ``route`` matches the in-process router's contract (returns a
  :class:`~repro.core.semilightpath.Semilightpath`, raises
  :class:`~repro.exceptions.NoPathError`) so it drops in as a service
  backend, and whose ``route_all_pairs(workers=)`` fans chunk requests
  across connections.
"""

from repro.server.client import RouterClient
from repro.server.protocol import (
    HEADER_SIZE,
    MAX_PAYLOAD,
    Op,
    decode_frame,
    encode_frame,
    valid_ip,
    valid_port,
)
from repro.server.server import RouterServer

__all__ = [
    "HEADER_SIZE",
    "MAX_PAYLOAD",
    "Op",
    "RouterClient",
    "RouterServer",
    "decode_frame",
    "encode_frame",
    "valid_ip",
    "valid_port",
]
