"""Length-prefixed binary frames for the router server.

Frame layout (12-byte header, little-endian, then the payload)::

    offset  size  field
    0       4     magic   b"RSRV"
    4       1     version (currently 1)
    5       1     opcode  (:class:`Op`)
    6       2     flags   (reserved, must be 0)
    8       4     payload length in bytes (<= MAX_PAYLOAD)
    12      n     payload (pickle; empty allowed)

The shape follows SeQUeNCe's ``communication.py`` (length-prefixed
pickled messages over a trusted socket): payloads are pickled Python
values, so the server must only ever be exposed on localhost/UDS or an
otherwise trusted network — the protocol authenticates nothing and
pickle will execute what it is given.  Malformed input never crashes the
server: every parse failure raises :class:`~repro.exceptions.ProtocolError`
which the connection handler answers with an ``ERR`` frame before
dropping the connection.

This module is deliberately socket-light: :func:`encode_frame` /
:func:`decode_frame` are pure bytes functions (property-tested for
round-trip in ``tests/server/test_protocol.py``), with thin
:func:`send_frame` / :func:`read_frame` wrappers doing blocking I/O.
"""

from __future__ import annotations

import argparse
import enum
import pickle
import socket
import struct
from typing import TYPE_CHECKING, Any

from repro.exceptions import ProtocolError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.semilightpath import Semilightpath

__all__ = [
    "MAGIC",
    "VERSION",
    "HEADER_SIZE",
    "MAX_PAYLOAD",
    "Op",
    "encode_frame",
    "decode_frame",
    "send_frame",
    "read_frame",
    "encode_path",
    "decode_path",
    "valid_ip",
    "valid_port",
]

MAGIC = b"RSRV"
VERSION = 1
_HEADER = struct.Struct("<4sBBHI")
HEADER_SIZE = _HEADER.size
#: Hard cap on one frame's payload; an ALL_PAIRS_CHUNK reply for the
#: largest bench network is ~2 MiB, so 64 MiB leaves ample headroom while
#: still rejecting a garbage length field before any allocation.
MAX_PAYLOAD = 64 * 1024 * 1024


class Op(enum.IntEnum):
    """Request opcodes (< 0x40) and reply opcodes (>= 0x40)."""

    ROUTE = 0x01
    ROUTE_BATCH = 0x02
    ALL_PAIRS_CHUNK = 0x03
    PATCH = 0x04
    SNAPSHOT = 0x05
    STATS = 0x06
    SHUTDOWN = 0x07
    #: Debug-only (server started with ``debug=True``): worker sleeps for
    #: ``payload`` seconds.  Exists so tests can pin a request inside a
    #: worker long enough to SIGKILL it mid-flight.
    SLEEP = 0x1F
    OK = 0x40
    ERR = 0x41


_OPCODES = frozenset(int(op) for op in Op)


def encode_frame(op: Op | int, payload: Any = None) -> bytes:
    """One full frame for *payload* (pickled; ``None`` pickles tiny)."""
    raw = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    if len(raw) > MAX_PAYLOAD:
        raise ProtocolError(
            f"payload of {len(raw)} bytes exceeds MAX_PAYLOAD ({MAX_PAYLOAD})"
        )
    return _HEADER.pack(MAGIC, VERSION, int(op), 0, len(raw)) + raw


def decode_frame(data: bytes) -> tuple[Op, Any, int]:
    """Parse one frame off the front of *data*.

    Returns ``(opcode, payload, bytes_consumed)``.  Raises
    :class:`ProtocolError` on truncation, bad magic, wrong version,
    unknown opcode, nonzero reserved flags, an oversized length field,
    or an undecodable payload.
    """
    if len(data) < HEADER_SIZE:
        raise ProtocolError(
            f"truncated frame: {len(data)} bytes, need {HEADER_SIZE} for a header"
        )
    magic, version, opcode, flags, length = _HEADER.unpack_from(data, 0)
    if magic != MAGIC:
        raise ProtocolError(f"bad magic {magic!r} (expected {MAGIC!r})")
    if version != VERSION:
        raise ProtocolError(f"unsupported protocol version {version}")
    if flags != 0:
        raise ProtocolError(f"reserved flags set: {flags:#06x}")
    if opcode not in _OPCODES:
        raise ProtocolError(f"unknown opcode {opcode:#04x}")
    if length > MAX_PAYLOAD:
        raise ProtocolError(
            f"declared payload of {length} bytes exceeds MAX_PAYLOAD"
        )
    end = HEADER_SIZE + length
    if len(data) < end:
        raise ProtocolError(
            f"truncated frame: {len(data)} bytes, header declares {end}"
        )
    try:
        payload = pickle.loads(data[HEADER_SIZE:end])
    except Exception as exc:
        raise ProtocolError(f"undecodable payload: {exc}") from exc
    return Op(opcode), payload, end


def send_frame(sock: socket.socket, op: Op | int, payload: Any = None) -> None:
    """Write one frame to *sock* (blocking, whole frame)."""
    sock.sendall(encode_frame(op, payload))


def _recv_exact(sock: socket.socket, count: int) -> bytes | None:
    """Read exactly *count* bytes; ``None`` on EOF before the first byte."""
    chunks: list[bytes] = []
    got = 0
    while got < count:
        chunk = sock.recv(count - got)
        if not chunk:
            if got == 0:
                return None
            raise ProtocolError(
                f"connection closed mid-frame ({got}/{count} bytes)"
            )
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def read_frame(sock: socket.socket) -> tuple[Op, Any] | None:
    """Read one frame from *sock*; ``None`` on a clean EOF between frames."""
    header = _recv_exact(sock, HEADER_SIZE)
    if header is None:
        return None
    magic, version, opcode, flags, length = _HEADER.unpack_from(header, 0)
    if magic != MAGIC:
        raise ProtocolError(f"bad magic {magic!r} (expected {MAGIC!r})")
    if version != VERSION:
        raise ProtocolError(f"unsupported protocol version {version}")
    if flags != 0:
        raise ProtocolError(f"reserved flags set: {flags:#06x}")
    if opcode not in _OPCODES:
        raise ProtocolError(f"unknown opcode {opcode:#04x}")
    if length > MAX_PAYLOAD:
        raise ProtocolError(
            f"declared payload of {length} bytes exceeds MAX_PAYLOAD"
        )
    body = _recv_exact(sock, length) if length else b""
    if body is None:
        raise ProtocolError("connection closed between header and payload")
    try:
        payload = pickle.loads(body)
    except Exception as exc:
        raise ProtocolError(f"undecodable payload: {exc}") from exc
    return Op(opcode), payload


# -- semilightpath wire form --------------------------------------------------


def encode_path(path: "Semilightpath | None"):
    """``(hop_triples, total_cost)`` — or ``None`` for unreachable.

    Hops collapse to plain ``(tail, head, wavelength)`` tuples so the
    wire form is independent of dataclass internals; costs travel as the
    exact float (pickle round-trips doubles bit-for-bit), which is what
    lets the ``liang:server`` oracle demand byte-identical answers.
    """
    if path is None:
        return None
    return (
        tuple((h.tail, h.head, h.wavelength) for h in path.hops),
        path.total_cost,
    )


def decode_path(wire) -> "Semilightpath | None":
    """Rebuild a :class:`Semilightpath` from :func:`encode_path` output."""
    if wire is None:
        return None
    from repro.core.semilightpath import Hop, Semilightpath

    hops, total_cost = wire
    return Semilightpath(
        hops=tuple(Hop(tail, head, lam) for tail, head, lam in hops),
        total_cost=total_cost,
    )


# -- argparse validators (the SeQUeNCe ``valid_ip`` / ``valid_port`` shape) ---


def valid_ip(ip: str) -> str:
    """Argparse type: a parseable IPv4 address (``repro serve --host``)."""
    try:
        socket.inet_aton(ip)
    except OSError:
        raise argparse.ArgumentTypeError(f"{ip!r} is not a valid IPv4 address")
    return ip


def valid_port(port: str) -> int:
    """Argparse type: an integer TCP port in [1, 65535] (0 = ephemeral)."""
    try:
        value = int(port)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{port!r} is not an integer port")
    if not 0 <= value <= 65535:
        raise argparse.ArgumentTypeError(
            f"port {value} outside the valid range 0-65535"
        )
    return value
