"""Socket client for the router server.

:class:`RouterClient` speaks the :mod:`repro.server.protocol` frames over
one persistent connection (TCP or UDS).  Its ``route`` matches the
in-process router contract — returns a
:class:`~repro.core.semilightpath.Semilightpath`, raises
:class:`~repro.exceptions.NoPathError` on unreachable pairs — so it can
stand in wherever a routing backend is expected (e.g. behind the service
cache).  Transient failures (a worker crashing mid-request surfaces as
:class:`~repro.exceptions.WorkerCrashError`) are retried through the
existing :class:`~repro.faults.resilience.RetryPolicy`; everything else
maps to :class:`~repro.exceptions.RemoteRouterError`.

``route_all_pairs(workers=)`` reproduces the serial
:meth:`~repro.core.routing.LiangShenRouter.route_all_pairs` result
byte-identically: sources are split into the same contiguous chunks as
:func:`repro.core.parallel.route_all_pairs_parallel`, fanned over
*workers* client connections (the server's pool parallelizes only across
in-flight requests), and merged in chunk order.
"""

from __future__ import annotations

import socket
import threading
from queue import Empty, Queue
from typing import Any, Hashable

from repro.core.instrumentation import QueryStats
from repro.core.routing import AllPairsResult
from repro.core.semilightpath import Semilightpath
from repro.exceptions import (
    NoPathError,
    ProtocolError,
    RemoteRouterError,
    WorkerCrashError,
)
from repro.faults.resilience import RetryPolicy
from repro.server import protocol
from repro.server.protocol import Op

__all__ = ["RouterClient"]

NodeId = Hashable

#: Error names the server may send that map back to *retryable* errors.
_TRANSIENT_ERRORS = {"WorkerCrashError", "TransientBackendError"}


def _map_error(payload: Any) -> Exception:
    """Turn an ``ERR`` payload ``(type_name, message)`` into an exception."""
    try:
        name, message = payload
    except (TypeError, ValueError):
        return ProtocolError(f"malformed ERR payload: {payload!r}")
    if name in _TRANSIENT_ERRORS:
        return WorkerCrashError(message)
    if name == "ProtocolError":
        return ProtocolError(message)
    return RemoteRouterError(f"{name}: {message}")


class RouterClient:
    """A client for one :class:`~repro.server.server.RouterServer`.

    Parameters
    ----------
    address:
        A ``(host, port)`` tuple (TCP) or a UDS path string — exactly
        what ``RouterServer.address`` returns.
    retry:
        Policy for transient failures; ``None`` installs the default
        3-attempt policy.  Pass ``RetryPolicy(max_attempts=1)`` to see
        raw :class:`WorkerCrashError`\\ s (the kill tests do).
    timeout:
        Socket timeout per frame exchange, seconds.
    """

    def __init__(
        self,
        address,
        *,
        retry: RetryPolicy | None = None,
        timeout: float = 120.0,
    ) -> None:
        self._address = address
        self._timeout = timeout
        self._retry = retry if retry is not None else RetryPolicy()
        self._sock: socket.socket | None = None
        self._lock = threading.Lock()

    # -- connection management ------------------------------------------------

    def _connect(self) -> socket.socket:
        if isinstance(self._address, str):
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        else:
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.settimeout(self._timeout)
        try:
            sock.connect(
                self._address
                if isinstance(self._address, str)
                else tuple(self._address)
            )
        except OSError as exc:
            sock.close()
            raise RemoteRouterError(
                f"cannot connect to router server at {self._address!r}: {exc}"
            ) from exc
        return sock

    def _drop(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def close(self) -> None:
        """Close the connection (idempotent; the server keeps running)."""
        with self._lock:
            self._drop()

    def __enter__(self) -> "RouterClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- frame exchange -------------------------------------------------------

    def _call(self, op: Op, payload: Any = None):
        """One request/reply exchange; raises the mapped server error."""
        with self._lock:
            if self._sock is None:
                self._sock = self._connect()
            try:
                protocol.send_frame(self._sock, op, payload)
                reply = protocol.read_frame(self._sock)
            except ProtocolError as exc:
                self._drop()
                raise ProtocolError(f"reply stream corrupted: {exc}") from exc
            except OSError as exc:
                self._drop()
                raise RemoteRouterError(
                    f"connection to router server lost: {exc}"
                ) from exc
            if reply is None:
                self._drop()
                raise RemoteRouterError("server closed the connection")
        rop, rpayload = reply
        if rop == Op.OK:
            return rpayload
        if rop == Op.ERR:
            raise _map_error(rpayload)
        raise ProtocolError(f"unexpected reply opcode {int(rop):#04x}")

    def _call_retrying(self, op: Op, payload: Any = None):
        return self._retry.call(lambda: self._call(op, payload))

    # -- routing API ----------------------------------------------------------

    def route(self, source: NodeId, target: NodeId) -> Semilightpath:
        """Optimal semilightpath, or :class:`NoPathError` — router contract."""
        reply = self._call_retrying(Op.ROUTE, (source, target))
        path = protocol.decode_path(reply["path"])
        if path is None:
            raise NoPathError(source, target)
        return path

    def route_with_epoch(
        self, source: NodeId, target: NodeId
    ) -> tuple[Semilightpath | None, int]:
        """Like :meth:`route`, plus the segment epoch the answer saw.

        Returns ``(path, epoch)`` with ``None`` for unreachable pairs
        instead of raising — the cluster soak uses the epoch to pick the
        fault-state oracle each answer must match byte-for-byte.
        """
        reply = self._call_retrying(Op.ROUTE, (source, target))
        return protocol.decode_path(reply["path"]), reply["epoch"]

    def route_batch(
        self, pairs: list[tuple[NodeId, NodeId]]
    ) -> list[Semilightpath | None]:
        """Paths for *pairs* in order; ``None`` marks unreachable pairs."""
        reply = self._call_retrying(Op.ROUTE_BATCH, list(pairs))
        return [protocol.decode_path(wire) for wire in reply["paths"]]

    def route_all_pairs(
        self,
        workers: int | None = None,
        chunks_per_worker: int = 4,
    ) -> AllPairsResult:
        """All ``n(n-1)`` pairs via chunked requests; serial-identical.

        *workers* counts client-side connections issuing chunks
        concurrently (defaults to the server's worker count); the
        server's pool does the actual tree runs.
        """
        from repro.core.parallel import _chunk

        snapshot = self.snapshot()
        sources = snapshot["sources"]
        if workers is None:
            workers = snapshot["workers"]
        if workers < 1:
            raise ValueError("workers must be >= 1")
        chunks = _chunk(sources, workers * chunks_per_worker)
        jobs: Queue = Queue()
        for index, chunk in enumerate(chunks):
            jobs.put((index, chunk))
        results: list[Any] = [None] * len(chunks)
        errors: list[Exception] = []

        def drain() -> None:
            client = RouterClient(
                self._address, retry=self._retry, timeout=self._timeout
            )
            try:
                while not errors:
                    try:
                        index, chunk = jobs.get_nowait()
                    except Empty:
                        return
                    reply = client._call_retrying(
                        Op.ALL_PAIRS_CHUNK, (index, chunk)
                    )
                    results[index] = reply["chunk"]
            except Exception as exc:  # noqa: BLE001 - re-raised in the caller
                errors.append(exc)
            finally:
                client.close()

        threads = [
            threading.Thread(target=drain, name=f"all-pairs-{i}", daemon=True)
            for i in range(min(workers, len(chunks)))
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            raise errors[0]

        paths: dict[tuple[NodeId, NodeId], Semilightpath] = {}
        settled = relaxations = 0
        heap_totals: dict[str, int] = {}
        for chunk_reply in results:
            _index, trees, chunk_settled, chunk_relax, chunk_heap = chunk_reply
            for source, tree in trees:
                for target, wire in tree:
                    paths[(source, target)] = protocol.decode_path(wire)
            settled += chunk_settled
            relaxations += chunk_relax
            for key, value in chunk_heap.items():
                heap_totals[key] = heap_totals.get(key, 0) + value
        return AllPairsResult(
            paths=paths,
            stats=QueryStats(
                sizes=snapshot["sizes"],
                settled=settled,
                relaxations=relaxations,
                heap=heap_totals,
            ),
        )

    # -- control plane --------------------------------------------------------

    def patch(
        self,
        ops: list[tuple[str, tuple]],
        *,
        origin: str | None = None,
        seq: int | None = None,
    ) -> dict[str, Any]:
        """Apply a fault batch: ``[("fail_link", (u, v)), ...]``.

        Not retried: a PATCH is not idempotent (events bump the delta
        epoch), so transient failures surface to the caller.  With
        *origin* and *seq* the batch is sent as a gossip envelope — the
        server dedups on ``(origin, seq)`` and answers ``duplicate``
        for a re-delivery, which is what makes replica flooding (and a
        frontend re-sending a patch to a second replica) idempotent.
        """
        if origin is None:
            return self._call(Op.PATCH, list(ops))
        if seq is None:
            raise ValueError("a gossip-enveloped patch needs both origin and seq")
        return self._call(
            Op.PATCH, {"ops": list(ops), "origin": origin, "seq": seq}
        )

    def snapshot(self) -> dict[str, Any]:
        """Static facts: segment name/sizes, sources, epoch, worker count."""
        return self._call_retrying(Op.SNAPSHOT)

    def stats(self) -> dict[str, Any]:
        """Live counters: per-worker pid/liveness, respawns, pending jobs."""
        return self._call_retrying(Op.STATS)

    def sleep(self, seconds: float) -> dict[str, Any]:
        """Debug servers only: pin a worker in ``time.sleep`` (kill tests)."""
        return self._call(Op.SLEEP, seconds)

    def shutdown(self) -> dict[str, Any]:
        """Ask the server to shut down cleanly (unlinks its segment)."""
        try:
            return self._call(Op.SHUTDOWN)
        finally:
            self.close()
