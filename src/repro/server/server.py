"""The persistent router server: warm workers over one shared segment.

:class:`RouterServer` publishes ``G_all`` exactly once into a
:class:`~repro.shortestpath.shared.SharedCSR` segment, then forks a pool
of worker processes that *attach* (header parse + small metadata
unpickle — no graph pickling, see docs/serving.md) and stay warm across
requests, each holding a per-source :class:`~repro.core.forest.LazyForest`
cache that is dropped whenever the segment's seqlock epoch moves.

Request flow::

    client ──frame──▶ listener thread ──▶ per-connection handler thread
        ──job──▶ task queue ──▶ worker process (claims, computes under
        read_stable) ──▶ result queue ──▶ collector thread ──▶ handler
        replies OK/ERR

``PATCH`` never touches the workers: the server process owns a
:class:`~repro.shortestpath.delta.DeltaOverlay` bound to the *shared*
weights array, so fault events write through to the segment inside a
``SharedCSR.patch()`` seqlock bracket; workers notice the epoch bump and
invalidate their forest caches on the next request.

Replica gossip: a server given *peers* (the other replicas of its shard
in a :class:`~repro.cluster.ShardManager` tier) floods every accepted
``PATCH`` to them over the same wire protocol, tagged with an
``(origin, seq)`` envelope.  Peers deduplicate on the envelope — a
re-delivered patch is acknowledged as ``duplicate`` without touching the
overlay — so flooding converges for any replica count without loops and
a fault accepted at *any* replica reaches all of them without a rebuild.

Crash handling: a monitor thread polls worker liveness.  When a worker
dies, every job it had claimed (announced on the result queue before
computing) fails with :class:`~repro.exceptions.WorkerCrashError` — a
*transient* error the client's RetryPolicy will retry — and a fresh
worker is spawned into the dead slot.  The claim announcement leaves a
microscopic window (between dequeue and claim) where a crash could
strand a job; the per-request timeout bounds that to an error, never a
hang.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import secrets
import socket
import tempfile
import threading
import time
from queue import Empty
from typing import TYPE_CHECKING, Any, Hashable

from repro.core.auxiliary import build_all_pairs_graph
from repro.exceptions import (
    ProtocolError,
    RemoteRouterError,
    SemilightError,
    WorkerCrashError,
)
from repro.faults.resilience import RetryPolicy
from repro.server import protocol
from repro.server.protocol import Op
from repro.shortestpath.delta import DeltaOverlay
from repro.shortestpath.shared import (
    attach_all_pairs_graph,
    share_all_pairs_graph,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.network import WDMNetwork

__all__ = ["RouterServer"]

NodeId = Hashable

#: DeltaOverlay events a PATCH frame may invoke, by name.
PATCH_EVENTS = frozenset(
    {
        "fail_channel",
        "recover_channel",
        "fail_link",
        "recover_link",
        "fail_converter",
        "recover_converter",
    }
)


def _worker_main(segment: str, heap: str, index: int, tasks, results) -> None:
    """Worker process body: attach once, serve jobs until the poison pill.

    Every computation runs under ``SharedCSR.read_stable`` so a PATCH
    racing the tree run forces a retry instead of returning answers from
    a half-written weights array; the forest cache is keyed to the even
    epoch the last stable read observed and cleared whenever it moves.
    """
    import signal

    # Terminal Ctrl-C delivers SIGINT to the whole process group; the
    # parent's graceful-shutdown path reaps workers via poison pills, so
    # workers must not race it by dying on the signal themselves.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    aux = attach_all_pairs_graph(segment)
    shared = aux.shared_csr
    state: dict[str, Any] = {"epoch": shared.epoch, "forests": {}}

    def refresh() -> None:
        epoch = shared.epoch
        if epoch != state["epoch"]:
            state["forests"].clear()
            state["epoch"] = epoch

    def route_one(source: NodeId, target: NodeId):
        forest = state["forests"].get(source)
        if forest is None:
            from repro.core.forest import run_forest

            forest = state["forests"][source] = run_forest(aux, source, heap=heap)
        return protocol.encode_path(forest.path_to(target))

    def execute(op: int, payload: Any):
        if op == Op.ROUTE:
            source, target = payload

            def compute():
                refresh()
                return route_one(source, target)

            value, epoch = shared.read_stable(compute)
            return {"path": value, "epoch": epoch}
        if op == Op.ROUTE_BATCH:

            def compute():
                refresh()
                return [route_one(s, t) for s, t in payload]

            value, epoch = shared.read_stable(compute)
            return {"paths": value, "epoch": epoch}
        if op == Op.ALL_PAIRS_CHUNK:
            index_, sources = payload

            def compute():
                refresh()
                from repro.core.routing import run_tree
                from repro.shortestpath.flat import ScratchBuffers

                scratch = state.get("scratch")
                if scratch is None:
                    scratch = state["scratch"] = ScratchBuffers(
                        aux.graph.num_nodes
                    )
                trees = []
                settled = relaxations = 0
                heap_totals: dict[str, int] = {}
                for s in sources:
                    tree, run = run_tree(aux, s, heap=heap, scratch=scratch)
                    trees.append(
                        (
                            s,
                            [
                                (t, protocol.encode_path(p))
                                for t, p in tree.items()
                            ],
                        )
                    )
                    settled += run.settled
                    relaxations += run.relaxations
                    for key, value in run.heap_stats.items():
                        heap_totals[key] = heap_totals.get(key, 0) + value
                return (index_, trees, settled, relaxations, heap_totals)

            value, epoch = shared.read_stable(compute)
            return {"chunk": value, "epoch": epoch}
        if op == Op.SLEEP:
            time.sleep(float(payload))
            return {"slept": float(payload)}
        raise RemoteRouterError(f"worker cannot execute opcode {op:#04x}")

    while True:
        job = tasks.get()
        if job is None:
            break
        job_id, op, payload = job
        results.put(("claim", job_id, index))
        try:
            value = execute(op, payload)
        except Exception as exc:  # noqa: BLE001 - serialized back to the client
            results.put(
                ("done", job_id, False, (type(exc).__name__, str(exc)))
            )
        else:
            results.put(("done", job_id, True, value))
    shared.close()


class _Job:
    """One in-flight request handed to the worker pool."""

    __slots__ = ("id", "op", "event", "ok", "value", "worker")

    def __init__(self, job_id: int, op: int) -> None:
        self.id = job_id
        self.op = op
        self.event = threading.Event()
        self.ok = False
        self.value: Any = None
        self.worker: int | None = None

    def fail(self, name: str, message: str) -> None:
        self.ok = False
        self.value = (name, message)
        self.event.set()


class RouterServer:
    """A TCP/UDS router server over one shared ``G_all`` segment.

    Parameters
    ----------
    network:
        The network to serve; ``G_all`` is built and published once.
    workers:
        Warm worker processes (>= 1).
    host / port:
        TCP bind address; ``port=0`` picks an ephemeral port.  Mutually
        exclusive with *uds*.
    uds:
        Unix-domain socket path; generated under a temp dir when ``""``.
    heap:
        Kernel name workers run trees with (must be a name, it crosses a
        process boundary).
    debug:
        Enables the ``SLEEP`` opcode (tests pin a worker to kill it).
    request_timeout:
        Seconds a handler waits on the pool before failing the request.
    peers:
        Addresses of the other replicas of this server's shard; every
        accepted ``PATCH`` is flooded to them (see the module docstring).
        Usually wired after ``start()`` via :meth:`add_peer` because
        ephemeral addresses are only known then.
    drain_timeout:
        Seconds ``close()`` waits for claimed jobs to finish (and their
        replies to flush) before tearing the pool down.
    """

    def __init__(
        self,
        network: "WDMNetwork",
        *,
        workers: int = 2,
        host: str | None = None,
        port: int = 0,
        uds: str | None = None,
        heap: str = "flat",
        debug: bool = False,
        request_timeout: float = 120.0,
        peers: "list | None" = None,
        drain_timeout: float = 2.0,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if not isinstance(heap, str):
            raise TypeError("the server requires a heap name, not a factory")
        if uds is not None and host is not None:
            raise ValueError("pass either a TCP host or a UDS path, not both")
        self._network = network
        self._heap = heap
        self._debug = debug
        self._request_timeout = request_timeout
        self._drain_timeout = drain_timeout
        self._num_workers = workers
        self._uds = uds
        self._host = host if host is not None else "127.0.0.1"
        self._port = port
        self._started = False
        self._closing = threading.Event()
        self._closed = threading.Event()
        self._close_guard = threading.Lock()
        self._close_started = False
        self._lock = threading.Lock()
        self._jobs: dict[int, _Job] = {}
        self._active = 0  # dispatches between frame read and reply sent
        self._job_ids = itertools.count(1)
        self._threads: list[threading.Thread] = []
        self._connections: set[socket.socket] = set()
        self._respawns = 0
        self._requests = 0
        #: Gossip identity and flood bookkeeping (replica tiers).
        self.gossip_id = f"g{secrets.token_hex(6)}"
        self._gossip_seq = itertools.count(1)
        self._gossip_seen: dict[str, set[int]] = {}
        self._gossip_lock = threading.Lock()
        self._peers: list[Any] = []
        self._peer_clients: dict[Any, Any] = {}
        self._gossip_forwarded = 0
        self._gossip_failed = 0
        self._gossip_duplicates = 0
        for peer in peers or ():
            self.add_peer(peer)

        base_aux = build_all_pairs_graph(network)
        self._shared = share_all_pairs_graph(base_aux)
        # Rebind the aux graph over the segment's own arrays so the
        # DeltaOverlay's weight writes land in shared memory, where every
        # attached worker sees them.
        self._aux = attach_all_pairs_graph(self._shared)
        self._delta = DeltaOverlay(self._aux)
        self._sources = list(self._aux.source_ids)

        ctx_name = (
            "fork"
            if "fork" in multiprocessing.get_all_start_methods()
            else None
        )
        self._ctx = multiprocessing.get_context(ctx_name)
        self._tasks = self._ctx.Queue()
        self._results = self._ctx.Queue()
        self._workers: list[multiprocessing.process.BaseProcess] = []
        self._listener: socket.socket | None = None

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> "RouterServer":
        """Bind, spawn the pool, and begin serving; returns ``self``."""
        if self._started:
            raise RuntimeError("server already started")
        self._started = True
        if self._uds is not None:
            if self._uds == "":
                self._uds = os.path.join(
                    tempfile.mkdtemp(prefix="repro_serve_"), "router.sock"
                )
            listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            listener.bind(self._uds)
        else:
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind((self._host, self._port))
            self._port = listener.getsockname()[1]
        listener.listen(64)
        listener.settimeout(0.2)
        self._listener = listener
        for index in range(self._num_workers):
            self._workers.append(self._spawn_worker(index))
        for name, fn in (
            ("collector", self._collector_loop),
            ("monitor", self._monitor_loop),
            ("acceptor", self._accept_loop),
        ):
            thread = threading.Thread(
                target=fn, name=f"router-{name}", daemon=True
            )
            thread.start()
            self._threads.append(thread)
        return self

    @property
    def address(self):
        """The bound address: a UDS path string or a ``(host, port)`` pair."""
        if self._uds is not None:
            return self._uds
        return (self._host, self._port)

    @property
    def segment_name(self) -> str:
        """The shared segment's name (``/dev/shm/<name>`` on Linux)."""
        return self._shared.name

    def worker_pids(self) -> list[int]:
        """Live worker PIDs (test hook for the kill/respawn suite)."""
        return [p.pid for p in self._workers if p.pid is not None]

    def join(self, timeout: float | None = None) -> bool:
        """Block until the server closes (a SHUTDOWN frame or ``close()``).

        Polls rather than parking in a single untimed wait: the kernel
        may deliver a process-directed SIGTERM to *any* thread, and a
        main thread stuck in an untimed ``sem_wait`` never reaches a
        bytecode boundary to run the Python-level handler.  Waking every
        200 ms guarantees :meth:`install_signal_handlers`'s handler
        actually fires.
        """
        if timeout is not None:
            deadline = time.monotonic() + timeout
            while not self._closing.is_set():
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._closing.wait(min(0.2, remaining))
            return True
        while not self._closing.wait(0.2):
            pass
        return True

    def add_peer(self, address) -> None:
        """Register a replica peer to flood accepted PATCH frames to.

        *address* is a UDS path string or ``(host, port)`` pair — exactly
        what ``RouterServer.address`` returns.  Safe to call after
        ``start()`` (a shard manager wires the full replica mesh once
        every replica has bound its ephemeral address).
        """
        key = address if isinstance(address, str) else tuple(address)
        with self._gossip_lock:
            if key not in self._peers:
                self._peers.append(key)

    def install_signal_handlers(self) -> None:
        """Route SIGTERM/SIGINT into the graceful ``close()`` path.

        Must be called from the main thread (CPython delivers signals
        there).  The handler drains claimed jobs, reaps the pool, and
        unlinks the shared segment, so a supervisor's TERM leaves no
        ``/dev/shm`` residue; ``join()`` returns once the handler runs.
        """
        import signal

        def _handle(signum, frame):  # noqa: ARG001 - signal signature
            self.close()

        signal.signal(signal.SIGTERM, _handle)
        signal.signal(signal.SIGINT, _handle)

    def close(self) -> None:
        """Drain, stop serving, reap the pool, unlink the segment.

        Idempotent; a second caller (e.g. a ``with`` block racing a
        SHUTDOWN frame) blocks until the first finishes, so "close
        returned" always means "segment unlinked".  In-flight jobs get
        up to ``drain_timeout`` seconds to finish and flush their
        replies before the pool is torn down — a SIGTERM mid-request
        drains instead of stranding clients.
        """
        with self._close_guard:
            first = not self._close_started
            self._close_started = True
        if not first:
            self._closed.wait(timeout=15.0)
            return
        # 1) Stop accepting new connections, but first adopt anything
        #    already sitting in the listen backlog — a client that
        #    connected (and possibly wrote a frame) before the signal
        #    landed would be RST by closing the listener, never having
        #    been accepted.  Adopted connections join the drain like any
        #    other.  The acceptor keeps the collector and the live
        #    connections running during the drain.
        if self._listener is not None:
            try:
                self._listener.settimeout(0)
                while True:
                    conn, _addr = self._listener.accept()
                    conn.settimeout(None)
                    with self._lock:
                        self._connections.add(conn)
                    threading.Thread(
                        target=self._serve_connection,
                        args=(conn,),
                        name="router-conn",
                        daemon=True,
                    ).start()
            except OSError:
                pass
            try:
                self._listener.close()
            except OSError:
                pass
        # 2) Drain: wait for queued jobs AND in-flight dispatches to
        #    finish.  Quiescence must hold for a short stable window —
        #    a frame already buffered on a connection when the signal
        #    landed may not have been *read* yet, so a single empty
        #    check would tear the socket down under its reply.
        deadline = time.monotonic() + max(0.0, self._drain_timeout)
        quiet_since: float | None = None
        while time.monotonic() < deadline:
            with self._lock:
                busy = bool(self._jobs) or self._active > 0
            now = time.monotonic()
            if busy:
                quiet_since = None
            elif quiet_since is None:
                quiet_since = now
            elif now - quiet_since >= 0.1:
                break
            time.sleep(0.01)
        # 3) Tear down.
        self._closing.set()
        with self._gossip_lock:
            peer_clients = list(self._peer_clients.values())
            self._peer_clients.clear()
        for peer_client in peer_clients:
            try:
                peer_client.close()
            except Exception:  # noqa: BLE001 - best-effort cleanup
                pass
        with self._lock:
            conns = list(self._connections)
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        for _ in self._workers:
            self._tasks.put(None)
        deadline = time.monotonic() + 5.0
        for proc in self._workers:
            proc.join(timeout=max(0.0, deadline - time.monotonic()))
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
        with self._lock:
            jobs = list(self._jobs.values())
            self._jobs.clear()
        for job in jobs:
            job.fail("RemoteRouterError", "server shut down")
        for thread in self._threads:
            thread.join(timeout=2.0)
        self._tasks.close()
        self._results.close()
        self._shared.unlink()
        if self._uds is not None and os.path.exists(self._uds):
            try:
                os.unlink(self._uds)
            except OSError:
                pass
        self._closed.set()

    def __enter__(self) -> "RouterServer":
        return self.start() if not self._started else self

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- worker pool ----------------------------------------------------------

    def _spawn_worker(self, index: int):
        proc = self._ctx.Process(
            target=_worker_main,
            args=(
                self._shared.name,
                self._heap,
                index,
                self._tasks,
                self._results,
            ),
            daemon=True,
            name=f"router-worker-{index}",
        )
        proc.start()
        return proc

    def _collector_loop(self) -> None:
        while not self._closing.is_set():
            try:
                message = self._results.get(timeout=0.1)
            except (Empty, OSError, EOFError):
                continue
            kind = message[0]
            if kind == "claim":
                _, job_id, worker_index = message
                with self._lock:
                    job = self._jobs.get(job_id)
                    if job is not None:
                        job.worker = worker_index
            elif kind == "done":
                _, job_id, ok, value = message
                with self._lock:
                    job = self._jobs.pop(job_id, None)
                if job is not None:
                    job.ok = ok
                    job.value = value
                    job.event.set()

    def _monitor_loop(self) -> None:
        while not self._closing.is_set():
            for index, proc in enumerate(self._workers):
                if proc.is_alive() or self._closing.is_set():
                    continue
                # Reap, fail everything the dead worker had claimed with
                # a *retryable* error, and refill the slot.
                proc.join(timeout=0.1)
                with self._lock:
                    stranded = [
                        job
                        for job in self._jobs.values()
                        if job.worker == index
                    ]
                    for job in stranded:
                        del self._jobs[job.id]
                    self._respawns += 1
                for job in stranded:
                    job.fail(
                        "WorkerCrashError",
                        f"worker {index} (pid {proc.pid}) died mid-request",
                    )
                self._workers[index] = self._spawn_worker(index)
            time.sleep(0.05)

    def _submit(self, op: int, payload: Any):
        """Queue one job on the pool and wait for its result."""
        job = _Job(next(self._job_ids), op)
        with self._lock:
            self._jobs[job.id] = job
        self._tasks.put((job.id, op, payload))
        if not job.event.wait(timeout=self._request_timeout):
            with self._lock:
                self._jobs.pop(job.id, None)
            raise RemoteRouterError(
                f"request timed out after {self._request_timeout}s"
            )
        if job.ok:
            return job.value
        name, message = job.value
        if name == "WorkerCrashError":
            raise WorkerCrashError(message)
        raise RemoteRouterError(f"{name}: {message}")

    # -- request dispatch -----------------------------------------------------

    def _apply_patch(self, payload) -> dict[str, Any]:
        """Apply a fault batch write-through under the seqlock bracket.

        Two payload shapes:

        * the legacy list form ``[("fail_link", (u, v)), ...]`` — a
          locally-originated patch; the server stamps it with its own
          gossip identity and floods it to every registered peer;
        * the envelope ``{"ops": [...], "origin": str, "seq": int}`` —
          a gossiped patch from a peer; applied once (``(origin, seq)``
          dedup) and re-flooded so the patch reaches the whole replica
          mesh even when peers are not fully connected.

        A duplicate envelope is acknowledged with ``{"duplicate": True}``
        and does **not** touch the overlay — flooding may deliver the
        same patch along several paths and the delta epoch must count
        each fault event exactly once per replica.
        """
        origin = self.gossip_id
        seq: int | None = None
        if isinstance(payload, dict):
            try:
                ops = payload["ops"]
                origin = payload["origin"]
                seq = payload["seq"]
            except (KeyError, TypeError) as exc:
                raise ProtocolError(
                    "PATCH envelope needs 'ops', 'origin', 'seq'"
                ) from exc
            if not isinstance(origin, str) or not isinstance(seq, int):
                raise ProtocolError("PATCH envelope origin/seq malformed")
        else:
            ops = payload
        if not isinstance(ops, (list, tuple)):
            raise ProtocolError("PATCH payload must be a list of (event, args)")
        for entry in ops:
            if (
                not isinstance(entry, (list, tuple))
                or len(entry) != 2
                or entry[0] not in PATCH_EVENTS
            ):
                raise ProtocolError(f"invalid PATCH op: {entry!r}")
        with self._gossip_lock:
            if seq is None:
                # Locally originated: stamp and pre-mark our own id as
                # seen so the flood cannot bounce back and re-apply.
                seq = next(self._gossip_seq)
                self._gossip_seen.setdefault(origin, set()).add(seq)
            else:
                seen = self._gossip_seen.setdefault(origin, set())
                if origin == self.gossip_id or seq in seen:
                    self._gossip_duplicates += 1
                    return {
                        "duplicate": True,
                        "origin": origin,
                        "seq": seq,
                        "epoch": self._shared.epoch,
                        "delta_epoch": self._delta.delta_epoch,
                    }
                seen.add(seq)
        changed = 0
        inexpressible: list[str] = []
        with self._lock:
            with self._shared.patch():
                for name, args in ops:
                    slots = getattr(self._delta, name)(*args)
                    if slots is None:
                        # Applied ops stay applied; the caller must treat
                        # the overlay as needing a rebuild (mirrors the
                        # in-process EpochRouterCache degrade path).
                        inexpressible.append(name)
                    else:
                        changed += len(slots)
        forwarded, failed = self._forward_patch(ops, origin, seq)
        return {
            "epoch": self._shared.epoch,
            "delta_epoch": self._delta.delta_epoch,
            "changed_slots": changed,
            "masked_edges": self._delta.masked_edges,
            "inexpressible": inexpressible,
            "origin": origin,
            "seq": seq,
            "forwarded": forwarded,
            "failed": failed,
        }

    def _forward_patch(self, ops, origin: str, seq: int) -> tuple[int, int]:
        """Flood an accepted patch to every peer (outside all locks).

        Runs synchronously in the handler thread *after* the local apply
        so "PATCH acknowledged" means "every reachable replica has it".
        Each peer's dedup makes re-flooding terminate: a peer that has
        already seen ``(origin, seq)`` acknowledges without forwarding.
        A dead peer costs one failed send (counted, never fatal) — the
        tier's fault model is that replicas crash and the survivors keep
        answering.
        """
        with self._gossip_lock:
            peers = list(self._peers)
        if not peers:
            return 0, 0
        from repro.server.client import RouterClient

        envelope = {"ops": [tuple(op) for op in ops], "origin": origin,
                    "seq": seq}
        forwarded = failed = 0
        for peer in peers:
            with self._gossip_lock:
                client = self._peer_clients.get(peer)
                if client is None and not self._closing.is_set():
                    client = RouterClient(
                        peer,
                        retry=RetryPolicy(max_attempts=1),
                        timeout=self._request_timeout,
                    )
                    self._peer_clients[peer] = client
            if client is None:
                failed += 1
                continue
            try:
                client.patch(list(envelope["ops"]), origin=origin, seq=seq)
                forwarded += 1
            except Exception:  # noqa: BLE001 - peer down is not our failure
                failed += 1
                with self._gossip_lock:
                    self._peer_clients.pop(peer, None)
                try:
                    client.close()
                except Exception:  # noqa: BLE001 - best-effort cleanup
                    pass
        with self._gossip_lock:
            self._gossip_forwarded += forwarded
            self._gossip_failed += failed
        return forwarded, failed

    def _snapshot(self) -> dict[str, Any]:
        return {
            "segment": self._shared.name,
            "nodes": self._shared.num_nodes,
            "edges": self._shared.num_edges,
            "epoch": self._shared.epoch,
            "delta_epoch": self._delta.delta_epoch,
            "masked_edges": self._delta.masked_edges,
            "sizes": self._aux.sizes,
            "sources": list(self._sources),
            "workers": self._num_workers,
            "heap": self._heap,
        }

    def _stats(self) -> dict[str, Any]:
        with self._lock:
            pending = len(self._jobs)
        with self._gossip_lock:
            gossip = {
                "id": self.gossip_id,
                "peers": len(self._peers),
                "forwarded": self._gossip_forwarded,
                "failed": self._gossip_failed,
                "duplicates": self._gossip_duplicates,
            }
        return {
            "workers": [
                {"index": i, "pid": p.pid, "alive": p.is_alive()}
                for i, p in enumerate(self._workers)
            ],
            "respawns": self._respawns,
            "requests": self._requests,
            "pending": pending,
            "epoch": self._shared.epoch,
            "delta_epoch": self._delta.delta_epoch,
            "gossip": gossip,
        }

    def _dispatch(self, op: Op, payload: Any):
        self._requests += 1
        if op in (Op.ROUTE, Op.ROUTE_BATCH, Op.ALL_PAIRS_CHUNK):
            return self._submit(op, payload)
        if op == Op.SLEEP:
            if not self._debug:
                raise ProtocolError("SLEEP requires a debug server")
            return self._submit(op, payload)
        if op == Op.PATCH:
            return self._apply_patch(payload)
        if op == Op.SNAPSHOT:
            return self._snapshot()
        if op == Op.STATS:
            return self._stats()
        if op == Op.SHUTDOWN:
            return {"closing": True}
        raise ProtocolError(f"server cannot handle opcode {int(op):#04x}")

    # -- socket plumbing ------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._closing.is_set():
            try:
                conn, _addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            conn.settimeout(None)
            with self._lock:
                self._connections.add(conn)
            thread = threading.Thread(
                target=self._serve_connection,
                args=(conn,),
                name="router-conn",
                daemon=True,
            )
            thread.start()

    def _serve_connection(self, conn: socket.socket) -> None:
        try:
            while not self._closing.is_set():
                try:
                    frame = protocol.read_frame(conn)
                except ProtocolError as exc:
                    # The stream framing can no longer be trusted: answer
                    # once (best effort) and drop the connection.
                    try:
                        protocol.send_frame(
                            conn, Op.ERR, ("ProtocolError", str(exc))
                        )
                    except OSError:
                        pass
                    return
                except OSError:
                    return
                if frame is None:
                    return
                op, payload = frame
                with self._lock:
                    self._active += 1
                try:
                    try:
                        reply = self._dispatch(op, payload)
                    except SemilightError as exc:
                        protocol.send_frame(
                            conn, Op.ERR, (type(exc).__name__, str(exc))
                        )
                        continue
                    except Exception as exc:  # noqa: BLE001 - never kill the server
                        protocol.send_frame(
                            conn, Op.ERR, (type(exc).__name__, str(exc))
                        )
                        continue
                    protocol.send_frame(conn, Op.OK, reply)
                finally:
                    with self._lock:
                        self._active -= 1
                if op == Op.SHUTDOWN:
                    threading.Thread(
                        target=self.close, name="router-shutdown", daemon=True
                    ).start()
                    return
        except OSError:
            pass
        finally:
            with self._lock:
                self._connections.discard(conn)
            try:
                conn.close()
            except OSError:
                pass
