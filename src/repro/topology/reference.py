"""Fixed reference networks.

* :func:`paper_figure1_network` — the worked example of the paper's
  Section III-A (Figs. 1-4), with the exact per-link availability table
  ``Λ(e)`` transcribed from the text and the ``λ₂ → λ₃`` conversion at
  node 3 disabled (visible in Fig. 3).
* :func:`nsfnet_network` — the classic 14-node NSFNET T1 backbone used
  throughout the WDM literature.
* :func:`arpanet_network` — a 20-node ARPANET-like WAN.
"""

from __future__ import annotations

from typing import Mapping

from repro.core.conversion import ConversionModel, FullConversion, MatrixConversion
from repro.core.network import WDMNetwork
from repro.topology.generators import build_network

__all__ = [
    "paper_figure1_network",
    "PAPER_LAMBDA_TABLE",
    "nsfnet_network",
    "NSFNET_FIBERS",
    "cost239_network",
    "COST239_FIBERS",
    "arpanet_network",
]


#: The exact availability table from Section III-A (0-based wavelength
#: indices; the paper's λ_j is index j-1).
PAPER_LAMBDA_TABLE: Mapping[tuple[int, int], frozenset[int]] = {
    (1, 2): frozenset({0, 2}),
    (1, 4): frozenset({0, 1, 3}),
    (2, 3): frozenset({0, 3}),
    (2, 7): frozenset({0, 1, 2}),
    (3, 1): frozenset({1, 2}),
    (3, 7): frozenset({2, 3}),
    (4, 5): frozenset({2}),
    (5, 3): frozenset({1, 3}),
    (5, 6): frozenset({0, 2}),
    (6, 4): frozenset({1, 2}),
    (6, 7): frozenset({1, 2, 3}),
}


def paper_figure1_network(
    link_cost: float = 1.0,
    conversion_cost: float = 0.5,
    forbid_node3_l2_to_l3: bool = True,
) -> WDMNetwork:
    """The 7-node, 11-link, ``k = 4`` example of Figs. 1-4.

    The paper gives ``Λ(e)`` exactly but no numeric costs; uniform costs
    are used (``w(e, λ) = link_cost`` and full conversion at
    *conversion_cost*), keeping Restriction 2 satisfied at the defaults.
    Figure 3 shows that node 3 cannot convert ``λ₂ → λ₃``; that single
    exclusion is reproduced unless *forbid_node3_l2_to_l3* is False.
    """
    network = WDMNetwork(
        num_wavelengths=4, default_conversion=FullConversion(conversion_cost)
    )
    for node in range(1, 8):
        network.add_node(node)
    for (tail, head), wavelengths in PAPER_LAMBDA_TABLE.items():
        network.add_link(tail, head, {w: link_cost for w in sorted(wavelengths)})
    if forbid_node3_l2_to_l3:
        table = {
            (p, q): conversion_cost
            for p in range(4)
            for q in range(4)
            if p != q and (p, q) != (1, 2)  # λ2 -> λ3 forbidden at node 3
        }
        network.set_conversion(3, MatrixConversion(table))
    return network


#: NSFNET-style T1 backbone (14 nodes, 22 undirected fibers).  Adjacency
#: follows the renderings common in WDM routing studies (variants differ by
#: one or two links); every node keeps degree <= 4.
NSFNET_FIBERS: tuple[tuple[str, str], ...] = (
    ("WA", "CA1"),
    ("WA", "CA2"),
    ("WA", "IL"),
    ("CA1", "CA2"),
    ("CA1", "UT"),
    ("CA2", "TX"),
    ("UT", "CO"),
    ("UT", "MI"),
    ("CO", "TX"),
    ("CO", "NE"),
    ("TX", "DC"),
    ("TX", "GA"),
    ("NE", "IL"),
    ("NE", "DC"),
    ("IL", "PA"),
    ("PA", "GA"),
    ("PA", "NY"),
    ("GA", "NJ"),
    ("MI", "NJ"),
    ("MI", "NY"),
    ("NY", "DC"),
    ("NJ", "DC"),
)


def nsfnet_network(
    num_wavelengths: int = 8,
    conversion: ConversionModel | None = None,
    seed: int = 0,
    **kw,
) -> WDMNetwork:
    """The NSFNET T1 backbone as a bidirectional WDM network.

    Keyword arguments (wavelength/cost policies) forward to
    :func:`~repro.topology.generators.build_network`; by default every
    fiber carries all wavelengths at unit cost with 0.5-cost full
    conversion.
    """
    nodes = sorted({u for u, _ in NSFNET_FIBERS} | {v for _, v in NSFNET_FIBERS})
    arcs: list[tuple[str, str]] = []
    for u, v in NSFNET_FIBERS:
        arcs.append((u, v))
        arcs.append((v, u))
    return build_network(
        nodes, arcs, num_wavelengths, conversion=conversion, seed=seed, **kw
    )


#: COST239-style European Optical Network (11 nodes, 24 undirected
#: fibers) — the dense-mesh European reference used in WDM survivability
#: studies (published variants differ by a couple of links).
COST239_FIBERS: tuple[tuple[str, str], ...] = (
    ("London", "Amsterdam"),
    ("London", "Paris"),
    ("London", "Brussels"),
    ("London", "Copenhagen"),
    ("Amsterdam", "Brussels"),
    ("Amsterdam", "Luxembourg"),
    ("Amsterdam", "Berlin"),
    ("Amsterdam", "Copenhagen"),
    ("Brussels", "Paris"),
    ("Brussels", "Luxembourg"),
    ("Brussels", "Milan"),
    ("Paris", "Luxembourg"),
    ("Paris", "Zurich"),
    ("Paris", "Milan"),
    ("Luxembourg", "Zurich"),
    ("Luxembourg", "Prague"),
    ("Zurich", "Milan"),
    ("Zurich", "Vienna"),
    ("Zurich", "Berlin"),
    ("Milan", "Vienna"),
    ("Vienna", "Prague"),
    ("Vienna", "Berlin"),
    ("Vienna", "Copenhagen"),
    ("Prague", "Berlin"),
    ("Berlin", "Copenhagen"),
)


def cost239_network(num_wavelengths: int = 8, seed: int = 0, **kw) -> WDMNetwork:
    """The COST239 European Optical Network (bidirectional fibers)."""
    nodes = sorted({u for u, _ in COST239_FIBERS} | {v for _, v in COST239_FIBERS})
    arcs: list[tuple[str, str]] = []
    for u, v in COST239_FIBERS:
        arcs.append((u, v))
        arcs.append((v, u))
    return build_network(nodes, arcs, num_wavelengths, seed=seed, **kw)


#: A 20-node ARPANET-like continental WAN (25 undirected fibers, d <= 4).
ARPANET_FIBERS: tuple[tuple[int, int], ...] = (
    (0, 1), (0, 2), (1, 3), (2, 4), (3, 5),
    (4, 5), (4, 6), (5, 7), (6, 8), (7, 9),
    (8, 9), (8, 10), (9, 11), (10, 12), (11, 13),
    (12, 13), (12, 14), (13, 15), (14, 16), (15, 17),
    (16, 17), (16, 18), (17, 19), (18, 19), (2, 6),
)


def arpanet_network(num_wavelengths: int = 8, seed: int = 0, **kw) -> WDMNetwork:
    """A 20-node ARPANET-like sparse WAN (bidirectional fibers)."""
    arcs: list[tuple[int, int]] = []
    for u, v in ARPANET_FIBERS:
        arcs.append((u, v))
        arcs.append((v, u))
    nodes = range(20)
    return build_network(nodes, arcs, num_wavelengths, seed=seed, **kw)
