"""Network topology and workload generators.

Everything the benchmarks and tests route over is generated here:

* :mod:`~repro.topology.generators` — parametric topologies (ring, line,
  grid, torus, degree-bounded random, Waxman, Erdős–Rényi, complete),
* :mod:`~repro.topology.reference` — fixed reference networks: the paper's
  Figure 1 example (exact ``Λ(e)`` table), NSFNET, an ARPANET-like WAN,
* :mod:`~repro.topology.wavelength_assign` — ``Λ(e)`` assignment policies
  (all wavelengths, random subsets, ``k₀``-bounded subsets for Section IV),
* :mod:`~repro.topology.cost_models` — ``w(e, λ)`` cost policies and
  conversion-model factories, including generators that satisfy or violate
  Restrictions 1-2.
"""

from repro.topology.converters import place_converters, sparse_conversion_network
from repro.topology.traffic_matrices import gravity_demands, uniform_demands
from repro.topology.cost_models import (
    distance_scaled_costs,
    restriction2_conversion,
    uniform_costs,
    wavelength_dependent_costs,
)
from repro.topology.generators import (
    complete_network,
    degree_bounded_network,
    grid_network,
    line_network,
    random_sparse_network,
    ring_network,
    torus_network,
    waxman_network,
)
from repro.topology.reference import (
    arpanet_network,
    cost239_network,
    nsfnet_network,
    paper_figure1_network,
)
from repro.topology.wavelength_assign import (
    all_wavelengths,
    bounded_random_wavelengths,
    random_wavelengths,
)

__all__ = [
    "ring_network",
    "line_network",
    "grid_network",
    "torus_network",
    "degree_bounded_network",
    "random_sparse_network",
    "waxman_network",
    "complete_network",
    "paper_figure1_network",
    "nsfnet_network",
    "cost239_network",
    "arpanet_network",
    "all_wavelengths",
    "random_wavelengths",
    "bounded_random_wavelengths",
    "uniform_costs",
    "distance_scaled_costs",
    "wavelength_dependent_costs",
    "restriction2_conversion",
    "place_converters",
    "sparse_conversion_network",
    "gravity_demands",
    "uniform_demands",
]
