"""Cost models: ``w(e, λ)`` policies and conversion-model factories.

Link-cost policies are callables ``(rng, tail, head, wavelength) -> float``
invoked per available (link, wavelength) pair during generation.  The
conversion factories build :class:`~repro.core.conversion.ConversionModel`
instances, including :func:`restriction2_conversion`, which constructs a
conversion model guaranteed (together with a link-cost floor) to satisfy
the paper's Restriction 2.
"""

from __future__ import annotations

import random
from typing import Callable, Hashable

from repro._validation import check_finite, check_nonnegative
from repro.core.conversion import (
    ConversionModel,
    FixedCostConversion,
    FullConversion,
    MatrixConversion,
    NoConversion,
    RangeLimitedConversion,
)

__all__ = [
    "LinkCostPolicy",
    "uniform_costs",
    "random_costs",
    "distance_scaled_costs",
    "wavelength_dependent_costs",
    "restriction2_conversion",
    "random_matrix_conversion",
]

NodeId = Hashable
LinkCostPolicy = Callable[[random.Random, NodeId, NodeId, int], float]


def uniform_costs(cost: float = 1.0) -> LinkCostPolicy:
    """Every (link, wavelength) costs the same."""
    c = check_finite(cost, "cost")

    def policy(rng: random.Random, tail: NodeId, head: NodeId, wavelength: int) -> float:
        return c

    return policy


def random_costs(low: float = 1.0, high: float = 10.0) -> LinkCostPolicy:
    """Cost drawn uniformly from ``[low, high]`` per (link, wavelength)."""
    lo = check_finite(low, "low")
    hi = check_finite(high, "high")
    if hi < lo:
        raise ValueError(f"high ({high}) must be >= low ({low})")

    def policy(rng: random.Random, tail: NodeId, head: NodeId, wavelength: int) -> float:
        return rng.uniform(lo, hi)

    return policy


def distance_scaled_costs(
    positions: dict[NodeId, tuple[float, float]], scale: float = 1.0
) -> LinkCostPolicy:
    """Cost proportional to Euclidean distance between link endpoints.

    Natural for WAN topologies with geographic embeddings (Waxman, NSFNET):
    longer fiber costs more to traverse regardless of wavelength.
    """
    s = check_finite(scale, "scale")

    def policy(rng: random.Random, tail: NodeId, head: NodeId, wavelength: int) -> float:
        (x1, y1), (x2, y2) = positions[tail], positions[head]
        return s * ((x1 - x2) ** 2 + (y1 - y2) ** 2) ** 0.5

    return policy


def wavelength_dependent_costs(
    base: float = 1.0, per_wavelength: float = 0.1
) -> LinkCostPolicy:
    """Cost grows linearly with the wavelength index.

    Models systems where higher-index channels are less desirable (e.g.
    worse amplifier gain flatness); gives the optimizer a reason to prefer
    low channels and convert when they are unavailable.
    """
    b = check_finite(base, "base")
    step = check_nonnegative(per_wavelength, "per_wavelength")

    def policy(rng: random.Random, tail: NodeId, head: NodeId, wavelength: int) -> float:
        return b + step * wavelength

    return policy


def restriction2_conversion(min_link_cost: float, fraction: float = 0.5) -> ConversionModel:
    """A full-conversion model guaranteed to satisfy Restriction 2.

    Restriction 2 requires every conversion cost to be strictly below every
    link cost; this returns :class:`FixedCostConversion` at
    ``fraction * min_link_cost`` (with ``0 < fraction < 1``), so any network
    whose link costs are all ``>= min_link_cost`` satisfies Eq. (2).
    """
    floor = check_finite(min_link_cost, "min_link_cost")
    if not 0 < fraction < 1:
        raise ValueError(f"fraction must be in (0, 1), got {fraction}")
    if floor <= 0:
        raise ValueError("min_link_cost must be > 0 for Restriction 2 to be satisfiable")
    return FixedCostConversion(fraction * floor)


def random_matrix_conversion(
    rng: random.Random,
    num_wavelengths: int,
    support_probability: float = 0.7,
    low: float = 0.1,
    high: float = 1.0,
) -> MatrixConversion:
    """A random sparse conversion table.

    Each ordered distinct pair is supported independently with
    *support_probability* at a cost uniform in ``[low, high]``.  Useful for
    adversarial tests where Restriction 1 does not hold.
    """
    table: dict[tuple[int, int], float] = {}
    for p in range(num_wavelengths):
        for q in range(num_wavelengths):
            if p != q and rng.random() < support_probability:
                table[(p, q)] = rng.uniform(low, high)
    return MatrixConversion(table)


# Re-exported for convenience so generator call sites can name models
# without importing repro.core.conversion directly.
CONVERSION_MODELS = {
    "full": FullConversion,
    "none": NoConversion,
    "fixed": FixedCostConversion,
    "range": RangeLimitedConversion,
}
