"""Demand-matrix generators for planning studies.

The static planner consumes :class:`~repro.wdm.planner.Demand` lists;
these helpers produce realistic matrices:

* :func:`uniform_demands` — every ordered pair with probability ``p``,
* :func:`gravity_demands` — the classic gravity model: demand volume
  between ``u`` and ``v`` proportional to ``weight(u) * weight(v)``,
  with node weights supplied or drawn log-uniformly (cities differ in
  size by orders of magnitude).
"""

from __future__ import annotations

import math
import random
from typing import Hashable, Mapping, Sequence

from repro._validation import check_positive_int, check_probability
from repro.wdm.planner import Demand

__all__ = ["uniform_demands", "gravity_demands"]

NodeId = Hashable


def uniform_demands(
    nodes: Sequence[NodeId],
    probability: float = 0.3,
    max_count: int = 2,
    seed: int = 0,
) -> list[Demand]:
    """Each ordered pair demands ``1..max_count`` circuits w.p. *probability*."""
    check_probability(probability, "probability")
    check_positive_int(max_count, "max_count")
    rng = random.Random(seed)
    demands = []
    for source in nodes:
        for target in nodes:
            if source == target:
                continue
            if rng.random() < probability:
                demands.append(Demand(source, target, rng.randint(1, max_count)))
    return demands


def gravity_demands(
    nodes: Sequence[NodeId],
    total_circuits: int,
    weights: Mapping[NodeId, float] | None = None,
    seed: int = 0,
) -> list[Demand]:
    """Gravity-model demand matrix summing to ~*total_circuits* circuits.

    Pair ``(u, v)`` receives circuits proportional to
    ``weight(u) * weight(v)``; fractional allocations are rounded
    stochastically so small pairs still occasionally appear.  When
    *weights* is None, node weights are drawn log-uniformly over one
    order of magnitude (seeded).
    """
    check_positive_int(total_circuits, "total_circuits")
    if len(nodes) < 2:
        raise ValueError("need at least two nodes")
    rng = random.Random(seed)
    if weights is None:
        weights = {v: 10 ** rng.uniform(0.0, 1.0) for v in nodes}
    else:
        for v in nodes:
            if v not in weights:
                raise ValueError(f"missing weight for node {v!r}")
            if weights[v] <= 0:
                raise ValueError(f"weight for {v!r} must be > 0")

    pairs = [(u, v) for u in nodes for v in nodes if u != v]
    masses = [weights[u] * weights[v] for u, v in pairs]
    total_mass = sum(masses)
    demands = []
    for (u, v), mass in zip(pairs, masses):
        share = total_circuits * mass / total_mass
        count = int(math.floor(share))
        if rng.random() < share - count:
            count += 1
        if count > 0:
            demands.append(Demand(u, v, count))
    return demands
