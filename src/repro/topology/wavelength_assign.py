"""Wavelength-availability (``Λ(e)``) assignment policies.

A policy is a callable ``(rng, tail, head) -> set[int]`` invoked once per
directed link while a generator builds a network.  The policies here cover
the two regimes the paper analyzes:

* the general problem (Section III) — any ``Λ(e) ⊆ Λ``, e.g.
  :func:`all_wavelengths` or :func:`random_wavelengths`,
* the restricted problem (Section IV) — ``|Λ(e)| ≤ k₀`` with
  ``k₀ = o(n)``, via :func:`bounded_random_wavelengths`.
"""

from __future__ import annotations

import random
from typing import Callable, Hashable

from repro._validation import check_positive_int, check_probability

__all__ = [
    "WavelengthPolicy",
    "all_wavelengths",
    "random_wavelengths",
    "bounded_random_wavelengths",
]

NodeId = Hashable
WavelengthPolicy = Callable[[random.Random, NodeId, NodeId], set[int]]


def all_wavelengths(num_wavelengths: int) -> WavelengthPolicy:
    """Every link carries the full universe ``Λ``.

    This is the worst case for auxiliary-graph size (``|Λ(e)| = k``) and
    the regime where the paper's general bounds are tight.
    """
    k = check_positive_int(num_wavelengths, "num_wavelengths")

    def policy(rng: random.Random, tail: NodeId, head: NodeId) -> set[int]:
        return set(range(k))

    return policy


def random_wavelengths(
    num_wavelengths: int, availability: float = 0.5, min_size: int = 1
) -> WavelengthPolicy:
    """Each wavelength is available on each link independently w.p. *availability*.

    When the coin flips leave a link with fewer than *min_size* wavelengths,
    extra distinct wavelengths are drawn uniformly to reach *min_size* (so
    generated networks stay routable).
    """
    k = check_positive_int(num_wavelengths, "num_wavelengths")
    p = check_probability(availability, "availability")
    if not 0 <= min_size <= k:
        raise ValueError(f"min_size must be in [0, {k}], got {min_size}")

    def policy(rng: random.Random, tail: NodeId, head: NodeId) -> set[int]:
        chosen = {w for w in range(k) if rng.random() < p}
        while len(chosen) < min_size:
            chosen.add(rng.randrange(k))
        return chosen

    return policy


def bounded_random_wavelengths(
    num_wavelengths: int, k0: int, min_size: int = 1
) -> WavelengthPolicy:
    """``Λ(e)`` is a uniform random subset with ``min_size <= |Λ(e)| <= k₀``.

    The Section IV workload: the universe may be huge (``k`` can exceed
    ``n``) but every link carries at most ``k₀`` wavelengths.  Sizes are
    drawn uniformly from ``[min_size, k₀]`` and membership uniformly from
    ``Λ``, so consecutive links rarely share wavelengths when ``k >> k₀`` —
    exactly the regime where conversion becomes mandatory.
    """
    k = check_positive_int(num_wavelengths, "num_wavelengths")
    k0 = check_positive_int(k0, "k0")
    if k0 > k:
        raise ValueError(f"k0 ({k0}) must be <= num_wavelengths ({k})")
    if not 1 <= min_size <= k0:
        raise ValueError(f"min_size must be in [1, {k0}], got {min_size}")

    def policy(rng: random.Random, tail: NodeId, head: NodeId) -> set[int]:
        size = rng.randint(min_size, k0)
        return set(rng.sample(range(k), size))

    return policy
