"""Sparse converter placement.

Full wavelength conversion at every node is the expensive ideal; real
deployments place converters at a *subset* of nodes (sparse conversion).
These helpers reconfigure a network's per-node conversion models so the
converter-density ablation (``benchmarks/bench_converter_density.py``)
can sweep from "no conversion anywhere" (pure lightpath routing) to "full
conversion everywhere" (the paper's default example setting).
"""

from __future__ import annotations

import random
from typing import Hashable, Sequence

from repro._validation import check_probability
from repro.core.conversion import ConversionModel, NoConversion
from repro.core.network import WDMNetwork

__all__ = ["place_converters", "sparse_conversion_network"]

NodeId = Hashable


def place_converters(
    network: WDMNetwork,
    converter_nodes: Sequence[NodeId],
    model: ConversionModel,
) -> None:
    """Give *converter_nodes* the conversion *model*; all others get none.

    Mutates *network* in place.  Nodes not in *converter_nodes* are set to
    :class:`~repro.core.conversion.NoConversion` (pass-through only).
    """
    converter_set = set(converter_nodes)
    unknown = [v for v in converter_set if not network.has_node(v)]
    if unknown:
        raise ValueError(f"unknown converter nodes: {unknown!r}")
    none = NoConversion()
    for node in network.nodes():
        network.set_conversion(node, model if node in converter_set else none)


def sparse_conversion_network(
    network: WDMNetwork,
    density: float,
    model: ConversionModel,
    seed: int = 0,
) -> WDMNetwork:
    """A copy of *network* with converters at a random *density* of nodes.

    ``density = 0`` yields a conversion-free network (lightpath routing
    only); ``density = 1`` puts *model* everywhere.  The draw is seeded
    and the node count rounds to ``round(density * n)`` so sweeps are
    smooth.
    """
    check_probability(density, "density")
    clone = network.copy()
    nodes = clone.nodes()
    count = round(density * len(nodes))
    rng = random.Random(seed)
    chosen = rng.sample(nodes, count) if count else []
    place_converters(clone, chosen, model)
    return clone
