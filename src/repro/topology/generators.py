"""Parametric topology generators.

Each generator returns a fully populated
:class:`~repro.core.network.WDMNetwork`: topology, per-link ``Λ(e)`` (from a
wavelength policy), per-(link, wavelength) costs (from a cost policy), and a
conversion model shared by all nodes.  All randomness flows through one
seeded :class:`random.Random`, so every generated network is reproducible.

The defaults match the paper's "large sparse WAN" assumptions: undirected
physical fibers are modeled as two oppositely directed links (Section II),
``m = O(n)``, bounded degree.
"""

from __future__ import annotations

import math
import random
from typing import Hashable, Iterable

from repro._validation import check_positive_int, check_probability
from repro.core.conversion import ConversionModel, FullConversion
from repro.core.network import WDMNetwork
from repro.topology.cost_models import LinkCostPolicy, uniform_costs
from repro.topology.wavelength_assign import WavelengthPolicy, all_wavelengths

__all__ = [
    "ring_network",
    "line_network",
    "grid_network",
    "torus_network",
    "degree_bounded_network",
    "random_sparse_network",
    "waxman_network",
    "complete_network",
    "dumbbell_network",
    "build_network",
    "assign_splitters",
]

NodeId = Hashable


def build_network(
    nodes: Iterable[NodeId],
    arcs: Iterable[tuple[NodeId, NodeId]],
    num_wavelengths: int,
    wavelength_policy: WavelengthPolicy | None = None,
    cost_policy: LinkCostPolicy | None = None,
    conversion: ConversionModel | None = None,
    seed: int = 0,
) -> WDMNetwork:
    """Assemble a :class:`WDMNetwork` from explicit nodes and directed arcs.

    This is the shared back end of every generator; it is public because
    callers with bespoke topologies (e.g. traces) want the same policy
    plumbing.

    Parameters
    ----------
    nodes, arcs:
        The topology.  Arcs are directed; duplicates raise.
    num_wavelengths:
        Universe size ``k``.
    wavelength_policy:
        ``Λ(e)`` policy; defaults to all wavelengths on every link.
    cost_policy:
        ``w(e, λ)`` policy; defaults to uniform cost 1.
    conversion:
        Conversion model shared by all nodes; defaults to
        :class:`FullConversion` with cost 0.5 (satisfies Restriction 2
        under the default unit link costs).
    seed:
        Seed for the policy RNG.
    """
    k = check_positive_int(num_wavelengths, "num_wavelengths")
    rng = random.Random(seed)
    wl_policy = wavelength_policy if wavelength_policy is not None else all_wavelengths(k)
    c_policy = cost_policy if cost_policy is not None else uniform_costs(1.0)
    model = conversion if conversion is not None else FullConversion(0.5)

    network = WDMNetwork(num_wavelengths=k, default_conversion=model)
    for node in nodes:
        network.add_node(node)
    for tail, head in arcs:
        wavelengths = wl_policy(rng, tail, head)
        costs = {w: c_policy(rng, tail, head, w) for w in sorted(wavelengths)}
        network.add_link(tail, head, costs)
    return network


def _bidirect(edges: Iterable[tuple[NodeId, NodeId]]) -> list[tuple[NodeId, NodeId]]:
    """Expand undirected fibers into two directed links each."""
    arcs: list[tuple[NodeId, NodeId]] = []
    for u, v in edges:
        arcs.append((u, v))
        arcs.append((v, u))
    return arcs


def ring_network(num_nodes: int, num_wavelengths: int, bidirectional: bool = True, **kw) -> WDMNetwork:
    """A ring of *num_nodes* nodes (``m = O(n)``, ``d <= 2``).

    Extra keyword arguments are forwarded to :func:`build_network`.
    """
    n = check_positive_int(num_nodes, "num_nodes")
    if n < 2:
        raise ValueError("a ring needs at least 2 nodes")
    edges = [(i, (i + 1) % n) for i in range(n)]
    arcs = _bidirect(edges) if bidirectional else list(edges)
    return build_network(range(n), arcs, num_wavelengths, **kw)


def line_network(num_nodes: int, num_wavelengths: int, bidirectional: bool = True, **kw) -> WDMNetwork:
    """A simple path topology (useful for hand-checkable tests)."""
    n = check_positive_int(num_nodes, "num_nodes")
    if n < 2:
        raise ValueError("a line needs at least 2 nodes")
    edges = [(i, i + 1) for i in range(n - 1)]
    arcs = _bidirect(edges) if bidirectional else list(edges)
    return build_network(range(n), arcs, num_wavelengths, **kw)


def grid_network(rows: int, cols: int, num_wavelengths: int, **kw) -> WDMNetwork:
    """A ``rows x cols`` 4-neighbor mesh — planar, ``d <= 4``.

    Nodes are labeled ``(r, c)`` tuples.
    """
    check_positive_int(rows, "rows")
    check_positive_int(cols, "cols")
    nodes = [(r, c) for r in range(rows) for c in range(cols)]
    edges = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                edges.append(((r, c), (r, c + 1)))
            if r + 1 < rows:
                edges.append(((r, c), (r + 1, c)))
    return build_network(nodes, _bidirect(edges), num_wavelengths, **kw)


def torus_network(rows: int, cols: int, num_wavelengths: int, **kw) -> WDMNetwork:
    """A wrap-around mesh (regular degree 4 when ``rows, cols >= 3``)."""
    check_positive_int(rows, "rows")
    check_positive_int(cols, "cols")
    nodes = [(r, c) for r in range(rows) for c in range(cols)]
    edges = set()
    for r in range(rows):
        for c in range(cols):
            right = (r, (c + 1) % cols)
            down = ((r + 1) % rows, c)
            if right != (r, c):
                edges.add(tuple(sorted([(r, c), right])))
            if down != (r, c):
                edges.add(tuple(sorted([(r, c), down])))
    return build_network(nodes, _bidirect(sorted(edges)), num_wavelengths, **kw)


def degree_bounded_network(
    num_nodes: int,
    num_wavelengths: int,
    max_degree: int = 4,
    seed: int = 0,
    **kw,
) -> WDMNetwork:
    """Connected random topology with degree at most *max_degree*.

    Built as a random spanning tree (guaranteeing strong connectivity once
    bidirected) plus random chords that respect the degree bound.  The
    result matches the paper's sparse-WAN regime: ``m = O(n)`` and constant
    ``d``.
    """
    n = check_positive_int(num_nodes, "num_nodes")
    d_max = check_positive_int(max_degree, "max_degree")
    if n >= 2 and d_max < 2:
        raise ValueError("max_degree must be >= 2 to connect more than one node")
    rng = random.Random(seed)
    order = list(range(n))
    rng.shuffle(order)
    degree = [0] * n
    edges: set[tuple[int, int]] = set()
    # Random tree: attach each node to a random earlier node with spare degree.
    for i in range(1, n):
        candidates = [order[j] for j in range(i) if degree[order[j]] < d_max]
        if not candidates:
            # All earlier nodes saturated; fall back to the previous tree node
            # (its degree grows past d_max only in this degenerate case).
            candidates = [order[i - 1]]
        parent = rng.choice(candidates)
        child = order[i]
        edges.add((min(parent, child), max(parent, child)))
        degree[parent] += 1
        degree[child] += 1
    # Random chords up to the degree budget: try n extra times.
    for _ in range(n):
        u, v = rng.randrange(n), rng.randrange(n)
        if u == v:
            continue
        key = (min(u, v), max(u, v))
        if key in edges:
            continue
        if degree[u] < d_max and degree[v] < d_max:
            edges.add(key)
            degree[u] += 1
            degree[v] += 1
    kw.setdefault("seed", seed)
    return build_network(range(n), _bidirect(sorted(edges)), num_wavelengths, **kw)


def random_sparse_network(
    num_nodes: int,
    num_wavelengths: int,
    average_degree: float = 3.0,
    seed: int = 0,
    **kw,
) -> WDMNetwork:
    """Erdős–Rényi-style sparse digraph over a connectivity backbone.

    A random ring backbone guarantees strong connectivity; additional
    directed arcs are sampled to reach ``m ≈ average_degree * n``.
    """
    n = check_positive_int(num_nodes, "num_nodes")
    if n < 2:
        raise ValueError("need at least 2 nodes")
    if average_degree < 2:
        raise ValueError("average_degree must be >= 2 (ring backbone)")
    rng = random.Random(seed)
    order = list(range(n))
    rng.shuffle(order)
    arcs: set[tuple[int, int]] = set()
    for i in range(n):
        arcs.add((order[i], order[(i + 1) % n]))
    target_m = int(average_degree * n)
    attempts = 0
    while len(arcs) < target_m and attempts < 20 * target_m:
        attempts += 1
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            arcs.add((u, v))
    kw.setdefault("seed", seed)
    return build_network(range(n), sorted(arcs), num_wavelengths, **kw)


def waxman_network(
    num_nodes: int,
    num_wavelengths: int,
    alpha: float = 0.4,
    beta: float = 0.2,
    domain: float = 1.0,
    seed: int = 0,
    connect: bool = True,
    **kw,
) -> WDMNetwork:
    """Waxman random WAN: geometric nodes, distance-decaying link probability.

    Nodes are placed uniformly in a ``domain x domain`` square; an
    undirected fiber joins ``u, v`` with probability
    ``alpha * exp(-dist / (beta * L))`` where ``L`` is the domain diagonal —
    the classic model for wide-area optical network studies.  With
    *connect*, a random spanning tree is added so the network is strongly
    connected.

    The node positions are stored on the returned network as
    ``network.positions`` for distance-scaled cost policies.
    """
    n = check_positive_int(num_nodes, "num_nodes")
    check_probability(alpha, "alpha")
    if beta <= 0:
        raise ValueError(f"beta must be > 0, got {beta}")
    rng = random.Random(seed)
    positions = {i: (rng.uniform(0, domain), rng.uniform(0, domain)) for i in range(n)}
    diagonal = domain * math.sqrt(2.0)
    edges: set[tuple[int, int]] = set()
    for u in range(n):
        for v in range(u + 1, n):
            (x1, y1), (x2, y2) = positions[u], positions[v]
            dist = math.hypot(x1 - x2, y1 - y2)
            if rng.random() < alpha * math.exp(-dist / (beta * diagonal)):
                edges.add((u, v))
    if connect and n > 1:
        order = list(range(n))
        rng.shuffle(order)
        for i in range(1, n):
            a, b = order[i - 1], order[i]
            edges.add((min(a, b), max(a, b)))
    kw.setdefault("seed", seed)
    network = build_network(range(n), _bidirect(sorted(edges)), num_wavelengths, **kw)
    network.positions = positions  # type: ignore[attr-defined]
    return network


def complete_network(num_nodes: int, num_wavelengths: int, **kw) -> WDMNetwork:
    """Complete digraph — the dense regime where CFZ's bound is tight."""
    n = check_positive_int(num_nodes, "num_nodes")
    arcs = [(u, v) for u in range(n) for v in range(n) if u != v]
    return build_network(range(n), arcs, num_wavelengths, **kw)


def dumbbell_network(
    cluster_size: int, num_wavelengths: int, bridge_length: int = 1, **kw
) -> WDMNetwork:
    """Two complete clusters joined by a path of bottleneck fibers.

    The canonical stress topology for blocking and fairness studies: all
    inter-cluster traffic funnels through the bridge, so contention (and
    per-pair unfairness) concentrates there by construction.  Left-cluster
    nodes are ``("L", i)``-style ints ``0 .. cluster_size-1``, right are
    ``cluster_size+bridge .. end``; bridge nodes sit between.
    """
    s = check_positive_int(cluster_size, "cluster_size")
    b = check_positive_int(bridge_length, "bridge_length")
    left = list(range(s))
    bridge = list(range(s, s + b))
    right = list(range(s + b, 2 * s + b))
    nodes = left + bridge + right
    edges: list[tuple[int, int]] = []
    for cluster in (left, right):
        for i, u in enumerate(cluster):
            for v in cluster[i + 1 :]:
                edges.append((u, v))
    chain = [left[-1]] + bridge + [right[0]]
    for a, c in zip(chain, chain[1:]):
        edges.append((a, c))
    return build_network(nodes, _bidirect(edges), num_wavelengths, **kw)


def assign_splitters(
    network: WDMNetwork,
    density: float = 1.0,
    tap_share: float = 0.5,
    seed: int = 0,
):
    """Draw a seeded per-node splitter-capability map for *network*.

    *density* is the fraction of multicast-capable (``MC``) nodes — the
    knob the sparse-splitter literature sweeps.  Each remaining node is
    tap-and-continue (``TAC``) with probability *tap_share* and multicast
    incapable (``MI``) otherwise.  Deterministic in ``(network node
    order, density, tap_share, seed)``; returns a
    :class:`~repro.multicast.splitters.SplitterMap`.
    """
    # Imported lazily: the multicast package sits *above* topology (its
    # verify module builds scenarios through these generators).
    from repro.multicast.splitters import MC, MI, TAC, SplitterMap

    check_probability(density, "density")
    check_probability(tap_share, "tap_share")
    rng = random.Random(seed)
    table: dict[NodeId, str] = {}
    for node in network.nodes():
        if rng.random() < density:
            capability = MC
        elif rng.random() < tap_share:
            capability = TAC
        else:
            capability = MI
        if capability != MC:
            table[node] = capability
    return SplitterMap(table)
