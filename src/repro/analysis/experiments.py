"""One-command regeneration of every EXPERIMENTS.md table.

:func:`run_all` executes each experiment from DESIGN.md's index at a
configurable scale and returns a JSON-serializable report; the CLI
subcommand ``python -m repro experiments`` prints it (and optionally
writes ``results.json``).  The benchmark suite asserts the *shapes*; this
module is the convenience driver that produces the raw numbers cited in
EXPERIMENTS.md without going through pytest.
"""

from __future__ import annotations

import math
import time
from typing import Any, Callable

from repro.analysis.comparison import run_comparison
from repro.analysis.complexity import fit_power_law
from repro.analysis.counting import measure_sizes
from repro.core.conversion import FixedCostConversion
from repro.core.routing import LiangShenRouter
from repro.distributed.semilightpath_dist import DistributedSemilightpathRouter
from repro.exceptions import NoPathError
from repro.topology.generators import degree_bounded_network
from repro.topology.reference import nsfnet_network, paper_figure1_network
from repro.topology.wavelength_assign import (
    bounded_random_wavelengths,
    random_wavelengths,
)
from repro.wdm.first_fit import FirstFitProvisioner
from repro.wdm.provisioning import SemilightpathProvisioner
from repro.wdm.simulation import DynamicSimulation
from repro.wdm.traffic import TrafficGenerator

__all__ = ["run_all", "EXPERIMENTS"]


def _sparse(n: int, seed: int = 0):
    k = max(1, math.ceil(math.log2(n)))
    return degree_bounded_network(
        n, k, max_degree=4, seed=seed,
        wavelength_policy=random_wavelengths(k, availability=0.6),
        conversion=FixedCostConversion(0.5),
    )


def _exp_fig_example(scale: int) -> dict[str, Any]:
    net = paper_figure1_network()
    router = LiangShenRouter(net)
    result = router.route(1, 7)
    sizes = measure_sizes(net).sizes
    return {
        "m1": net.total_link_wavelengths,
        "layer_nodes": sizes.num_layer_nodes,
        "layer_edges": sizes.num_layer_edges,
        "route_1_7_cost": result.cost,
        "bounds_ok": sizes.within_bounds(),
    }


def _exp_thm1(scale: int) -> dict[str, Any]:
    ns = [64 * 2**i for i in range(scale + 2)]
    times = []
    for n in ns:
        net = _sparse(n, seed=1)
        nodes = net.nodes()
        router = LiangShenRouter(net)
        start = time.perf_counter()
        router.route(nodes[0], nodes[-1])
        router.route(nodes[1], nodes[n // 2])
        times.append(time.perf_counter() - start)
    fit = fit_power_law(ns, times)
    return {"ns": ns, "seconds": times, "exponent": fit.exponent}


def _exp_sec3c(scale: int) -> dict[str, Any]:
    ns = [64 * 2**i for i in range(scale + 2)]
    rows = run_comparison(ns, queries_per_n=2, repeats=1, seed=7)
    return {
        "rows": [
            {
                "n": r.n, "m": r.m, "k": r.k,
                "liang_shen_s": r.liang_shen_seconds,
                "cfz_s": r.cfz_seconds,
                "speedup": r.speedup,
                "agree": r.costs_agree,
            }
            for r in rows
        ]
    }


def _exp_thm4(scale: int) -> dict[str, Any]:
    n, k0 = 64 * scale, 3
    ks = [8, 64, 512]
    times = []
    for k in ks:
        net = degree_bounded_network(
            n, k, max_degree=4, seed=9,
            wavelength_policy=bounded_random_wavelengths(k, k0),
            conversion=FixedCostConversion(0.5),
        )
        nodes = net.nodes()
        router = LiangShenRouter(net)
        start = time.perf_counter()
        for t in (nodes[-1], nodes[n // 2]):
            try:
                router.route(nodes[0], t)
            except NoPathError:
                pass
        times.append(time.perf_counter() - start)
    return {"n": n, "k0": k0, "ks": ks, "seconds": times}


def _exp_thm3(scale: int) -> dict[str, Any]:
    rows = []
    for n in [32 * 2**i for i in range(scale + 1)]:
        net = _sparse(n, seed=14)
        nodes = net.nodes()
        try:
            result = DistributedSemilightpathRouter(net).route(nodes[0], nodes[-1])
        except NoPathError:
            continue
        rows.append(
            {
                "n": n,
                "k": net.num_wavelengths,
                "m": net.num_links,
                "messages": result.stats.total_messages,
                "km": net.num_wavelengths * net.num_links,
                "rounds": result.stats.rounds,
                "kn": net.num_wavelengths * n,
            }
        )
    return {"rows": rows}


def _exp_rwa(scale: int) -> dict[str, Any]:
    net = nsfnet_network(num_wavelengths=4)
    requests = 200 * scale
    curve = []
    for load in (10.0, 20.0, 40.0, 60.0):
        trace = TrafficGenerator(net.nodes(), load, 1.0, seed=23).generate(requests)
        semi = DynamicSimulation(SemilightpathProvisioner(net)).run(trace)
        ff = DynamicSimulation(FirstFitProvisioner(net)).run(trace)
        curve.append(
            {
                "load": load,
                "semilightpath": semi.blocking_probability,
                "first_fit": ff.blocking_probability,
                "conversions_per_conn": semi.mean_conversions,
            }
        )
    return {"requests": requests, "curve": curve}


def _exp_multicast(scale: int) -> dict[str, Any]:
    """Light-hierarchy cost/usage/blocking vs splitter density.

    For each density, every node draws MC with that probability (the
    remainder split between TAC and MI), and a fixed seeded batch of
    multicast requests is routed on NSFNET.  Reported per density:
    mean hierarchy cost and channel count over the requests joinable at
    *every* density (so the cost column is comparable), plus how many of
    the full batch were blocked.
    """
    import random as _random

    from repro.exceptions import MulticastBlockedError
    from repro.multicast.hierarchy import MulticastRequest
    from repro.multicast.router import MulticastRouter
    from repro.topology.generators import assign_splitters

    net = nsfnet_network(num_wavelengths=4)
    nodes = net.nodes()
    rng = _random.Random(1998)
    requests = []
    while len(requests) < 10 * scale:
        source, *members = rng.sample(nodes, 1 + rng.randint(2, 4))
        requests.append(MulticastRequest(source=source, members=tuple(members)))

    densities = (0.0, 0.25, 0.5, 0.75, 1.0)
    routed: dict[float, dict[int, Any]] = {}
    blocked: dict[float, int] = {}
    for density in densities:
        splitters = assign_splitters(net, density=density, tap_share=0.5, seed=7)
        routed[density] = {}
        blocked[density] = 0
        router = MulticastRouter(net, splitters=splitters)
        for index, request in enumerate(requests):
            try:
                hierarchy = router.route(request).hierarchy
            except MulticastBlockedError:
                blocked[density] += 1
                continue
            routed[density][index] = hierarchy
    always = [
        i for i in range(len(requests))
        if all(i in routed[d] for d in densities)
    ]
    rows = []
    for density in densities:
        common = [routed[density][i] for i in always]
        rows.append(
            {
                "density": density,
                "blocked": blocked[density],
                "mean_cost": (
                    sum(h.total_cost for h in common) / len(common)
                    if common else math.nan
                ),
                "mean_channels": (
                    sum(len(h.channel_keys()) for h in common) / len(common)
                    if common else math.nan
                ),
            }
        )
    return {"requests": len(requests), "comparable": len(always), "rows": rows}


#: Experiment registry: id -> callable(scale) -> result dict.
EXPERIMENTS: dict[str, Callable[[int], dict[str, Any]]] = {
    "FIG1-4": _exp_fig_example,
    "THM1": _exp_thm1,
    "SEC3C": _exp_sec3c,
    "THM3": _exp_thm3,
    "THM4": _exp_thm4,
    "RWA": _exp_rwa,
    "MCAST": _exp_multicast,
}


def run_all(scale: int = 1, only: list[str] | None = None) -> dict[str, Any]:
    """Run the experiment suite at *scale* (1 = quick, 2 = fuller sweeps).

    *only* restricts to a subset of experiment ids.  Returns a
    JSON-serializable mapping id -> results, with per-experiment wall time.
    """
    if scale < 1:
        raise ValueError(f"scale must be >= 1, got {scale}")
    selected = EXPERIMENTS if only is None else {
        key: EXPERIMENTS[key] for key in only
    }
    report: dict[str, Any] = {}
    for name, fn in selected.items():
        start = time.perf_counter()
        result = fn(scale)
        result["elapsed_seconds"] = time.perf_counter() - start
        report[name] = result
    return report
