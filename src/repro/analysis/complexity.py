"""Empirical growth-rate estimation for the scaling benchmarks.

The paper's claims are asymptotic; the benchmarks verify their *shape* by
sweeping a size parameter and fitting a power law ``y = c·xᵇ`` to the
measurements (ordinary least squares in log-log space).  A Theorem 1 sweep
over ``n`` with ``k = O(log n)``, ``m = O(n)`` should fit an exponent near
1 (up to log factors); the CFZ baseline should fit near 2.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

__all__ = ["PowerLawFit", "fit_power_law", "growth_table"]


@dataclass(frozen=True)
class PowerLawFit:
    """Least-squares fit of ``y = coefficient * x ** exponent``."""

    exponent: float
    coefficient: float
    r_squared: float

    def predict(self, x: float) -> float:
        """Model prediction at *x*."""
        return self.coefficient * x**self.exponent


def fit_power_law(xs: Sequence[float], ys: Sequence[float]) -> PowerLawFit:
    """Fit ``y = c·xᵇ`` through log-log least squares.

    Requires at least two strictly positive points; raises ``ValueError``
    otherwise.
    """
    if len(xs) != len(ys):
        raise ValueError(f"length mismatch: {len(xs)} xs vs {len(ys)} ys")
    points = [(x, y) for x, y in zip(xs, ys) if x > 0 and y > 0]
    if len(points) < 2:
        raise ValueError("need at least two positive (x, y) points")
    lx = [math.log(x) for x, _ in points]
    ly = [math.log(y) for _, y in points]
    n = len(points)
    mean_x = sum(lx) / n
    mean_y = sum(ly) / n
    sxx = sum((v - mean_x) ** 2 for v in lx)
    sxy = sum((a - mean_x) * (b - mean_y) for a, b in zip(lx, ly))
    if sxx == 0:
        raise ValueError("all x values identical; exponent is undefined")
    slope = sxy / sxx
    intercept = mean_y - slope * mean_x
    # Coefficient of determination in log space.
    ss_res = sum((b - (slope * a + intercept)) ** 2 for a, b in zip(lx, ly))
    ss_tot = sum((b - mean_y) ** 2 for b in ly)
    r2 = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return PowerLawFit(exponent=slope, coefficient=math.exp(intercept), r_squared=r2)


def growth_table(
    xs: Sequence[float], series: dict[str, Sequence[float]], x_name: str = "n"
) -> str:
    """Fixed-width table of several measurement series over one sweep.

    Appends a fitted exponent per series — the number the scaling
    benchmarks compare against the paper's bounds.
    """
    header = f"{x_name:>10s}" + "".join(f" {name:>14s}" for name in series)
    lines = [header]
    for i, x in enumerate(xs):
        row = f"{x:10g}"
        for values in series.values():
            row += f" {values[i]:14.6g}"
        lines.append(row)
    fits = []
    for name, values in series.items():
        try:
            fit = fit_power_law(xs, values)
            fits.append(f"{name}: x^{fit.exponent:.2f} (R²={fit.r_squared:.3f})")
        except ValueError:
            fits.append(f"{name}: (not fittable)")
    lines.append("fitted: " + ", ".join(fits))
    return "\n".join(lines)
