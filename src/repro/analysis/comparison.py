"""The Section III-C comparison harness: Liang–Shen vs CFZ.

The paper's central practical claim: on large sparse networks with few
wavelengths (``m = O(n)``, ``k = O(log n)``), the layered-graph algorithm
beats the CFZ wavelength-graph algorithm by a factor of
``Ω(n / max{k, d, log n})`` — e.g. ``O(n log² n)`` vs ``O(n² log n)``.

:func:`run_comparison` sweeps ``n``, generates the paper's regime
(degree-bounded sparse networks, ``k = ⌈log₂ n⌉``), times both routers on
identical queries, and reports per-``n`` rows with the measured speedup.
Used by ``benchmarks/bench_vs_cfz.py`` and ``examples/scaling_study.py``.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.baseline.cfz import CFZRouter
from repro.core.network import WDMNetwork
from repro.core.routing import LiangShenRouter
from repro.topology.generators import degree_bounded_network
from repro.topology.wavelength_assign import random_wavelengths

__all__ = ["ComparisonRow", "run_comparison", "paper_regime_network"]


@dataclass(frozen=True)
class ComparisonRow:
    """One sweep point of the ours-vs-CFZ study."""

    n: int
    m: int
    k: int
    d: int
    liang_shen_seconds: float
    cfz_seconds: float
    cost_liang_shen: float
    cost_cfz: float

    @property
    def speedup(self) -> float:
        """CFZ time / Liang–Shen time (> 1 means we win)."""
        if self.liang_shen_seconds == 0:
            return math.inf
        return self.cfz_seconds / self.liang_shen_seconds

    @property
    def costs_agree(self) -> bool:
        """Both algorithms found the same optimum (they must)."""
        return math.isclose(
            self.cost_liang_shen, self.cost_cfz, rel_tol=1e-9, abs_tol=1e-9
        )


def paper_regime_network(n: int, seed: int = 0) -> WDMNetwork:
    """A network in the paper's comparison regime.

    ``m = O(n)`` (degree-bounded random sparse topology, ``d ≤ 4``) and
    ``k = ⌈log₂ n⌉`` wavelengths with ~60% availability per link —
    the "k and m relatively small, n relatively large" case where the
    improvement is claimed to be most significant.
    """
    k = max(1, math.ceil(math.log2(n)))
    return degree_bounded_network(
        n,
        k,
        max_degree=4,
        seed=seed,
        wavelength_policy=random_wavelengths(k, availability=0.6),
    )


def run_comparison(
    ns: Sequence[int],
    network_factory: Callable[[int, int], WDMNetwork] = paper_regime_network,
    queries_per_n: int = 3,
    repeats: int = 1,
    seed: int = 0,
    cfz_engine: str = "dense",
) -> list[ComparisonRow]:
    """Time both routers across an ``n`` sweep on identical queries.

    For each ``n`` the total wall-clock of *queries_per_n* single-pair
    queries (endpoints spread across the node list) is measured,
    best-of-*repeats*.  Construction cost is included for both — each
    query rebuilds its auxiliary graph, exactly as both papers account it.
    """
    rows: list[ComparisonRow] = []
    for n in ns:
        network = network_factory(n, seed)
        nodes = network.nodes()
        pairs = [
            (nodes[(i * 7919) % n], nodes[((i * 7919) % n + n // 2) % n])
            for i in range(queries_per_n)
        ]
        pairs = [(s, t) for s, t in pairs if s != t]
        ls = LiangShenRouter(network)
        cfz = CFZRouter(network, engine=cfz_engine)

        def run_all(router) -> tuple[float, float]:
            best = math.inf
            total_cost = 0.0
            for _ in range(repeats):
                start = time.perf_counter()
                total_cost = 0.0
                for s, t in pairs:
                    total_cost += router.route(s, t).cost
                best = min(best, time.perf_counter() - start)
            return best, total_cost

        t_ls, cost_ls = run_all(ls)
        t_cfz, cost_cfz = run_all(cfz)
        rows.append(
            ComparisonRow(
                n=n,
                m=network.num_links,
                k=network.num_wavelengths,
                d=network.max_degree,
                liang_shen_seconds=t_ls,
                cfz_seconds=t_cfz,
                cost_liang_shen=cost_ls,
                cost_cfz=cost_cfz,
            )
        )
    return rows
