"""Measurement and analysis utilities for the reproduction experiments.

* :mod:`~repro.analysis.counting` — auxiliary-graph size measurement
  against the paper's Observations 1-5 bounds,
* :mod:`~repro.analysis.complexity` — empirical growth-rate estimation
  (log-log least-squares exponents) for the scaling benchmarks,
* :mod:`~repro.analysis.comparison` — the Section III-C ours-vs-CFZ
  comparison harness.
"""

from repro.analysis.complexity import fit_power_law, growth_table
from repro.analysis.comparison import ComparisonRow, run_comparison
from repro.analysis.counting import SizeReport, measure_sizes
from repro.analysis.criticality import (
    Criticality,
    channel_criticality,
    fiber_criticality,
)
from repro.analysis.fairness import blocking_concentration, gini, worst_pairs

__all__ = [
    "measure_sizes",
    "SizeReport",
    "fit_power_law",
    "growth_table",
    "run_comparison",
    "ComparisonRow",
    "Criticality",
    "channel_criticality",
    "fiber_criticality",
    "gini",
    "worst_pairs",
    "blocking_concentration",
]
