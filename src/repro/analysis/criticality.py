"""Resource criticality analysis.

Which single channel or fiber, if lost, hurts a source-target pair (or
the whole network) the most?  Operations teams use this to rank
maintenance risk; it is also a compact demonstration of the library's
compositionality — the analysis is just "re-route on a mutated network"
over the paper's router.

Costs are compared as *regret*: ``new_optimum - old_optimum`` (``inf``
when the pair disconnects).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Hashable

from repro.core.network import WDMNetwork
from repro.core.routing import LiangShenRouter
from repro.exceptions import NoPathError

__all__ = ["Criticality", "channel_criticality", "fiber_criticality"]

NodeId = Hashable


@dataclass(frozen=True)
class Criticality:
    """Impact of removing one resource on one pair's optimum."""

    resource: tuple
    baseline: float
    degraded: float  # math.inf when the pair disconnects

    @property
    def regret(self) -> float:
        """Cost increase caused by the loss (``inf`` = disconnection)."""
        return self.degraded - self.baseline

    @property
    def disconnects(self) -> bool:
        """True when losing the resource severs the pair."""
        return math.isinf(self.degraded)


def _without_channel(
    network: WDMNetwork, tail: NodeId, head: NodeId, wavelength: int
) -> WDMNetwork:
    pruned = WDMNetwork(network.num_wavelengths)
    for node in network.nodes():
        pruned.add_node(node, network.conversion(node))
    for link in network.links():
        costs = dict(link.costs)
        if (link.tail, link.head) == (tail, head):
            costs.pop(wavelength, None)
        pruned.add_link(link.tail, link.head, costs)
    return pruned


def _without_fiber(network: WDMNetwork, a: NodeId, b: NodeId) -> WDMNetwork:
    fiber = frozenset((a, b))
    pruned = WDMNetwork(network.num_wavelengths)
    for node in network.nodes():
        pruned.add_node(node, network.conversion(node))
    for link in network.links():
        if frozenset((link.tail, link.head)) == fiber:
            continue
        pruned.add_link(link.tail, link.head, dict(link.costs))
    return pruned


def channel_criticality(
    network: WDMNetwork, source: NodeId, target: NodeId
) -> list[Criticality]:
    """Regret of losing each channel the optimal path currently uses.

    Only channels on the current optimum can have positive regret for a
    single loss (any other channel's removal leaves the optimum intact),
    so the sweep is restricted to them.  Sorted by regret, descending
    (disconnections first).
    """
    baseline_path = LiangShenRouter(network).route(source, target).path
    baseline = baseline_path.total_cost
    results = []
    for hop in baseline_path.hops:
        pruned = _without_channel(network, hop.tail, hop.head, hop.wavelength)
        try:
            degraded = LiangShenRouter(pruned).route(source, target).cost
        except NoPathError:
            degraded = math.inf
        results.append(
            Criticality(
                resource=(hop.tail, hop.head, hop.wavelength),
                baseline=baseline,
                degraded=degraded,
            )
        )
    results.sort(key=lambda c: (c.regret, repr(c.resource)), reverse=True)
    return results


def fiber_criticality(
    network: WDMNetwork, source: NodeId, target: NodeId
) -> list[Criticality]:
    """Regret of losing each fiber on the current optimal route."""
    baseline_path = LiangShenRouter(network).route(source, target).path
    baseline = baseline_path.total_cost
    fibers = {frozenset((h.tail, h.head)) for h in baseline_path.hops}
    results = []
    for fiber in fibers:
        a, b = sorted(fiber, key=repr)
        pruned = _without_fiber(network, a, b)
        try:
            degraded = LiangShenRouter(pruned).route(source, target).cost
        except NoPathError:
            degraded = math.inf
        results.append(
            Criticality(resource=(a, b), baseline=baseline, degraded=degraded)
        )
    results.sort(key=lambda c: c.regret, reverse=True)
    return results
