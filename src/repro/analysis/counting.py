"""Auxiliary-graph size measurement against the paper's bounds.

:func:`measure_sizes` builds the layered graph for a network and reports
every quantity in Observations 1-5 next to its proven bound, as a
:class:`SizeReport` whose :meth:`SizeReport.rows` render the per-quantity
comparison (used directly by ``benchmarks/bench_construction.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.auxiliary import AuxiliarySizes, build_layered_graph

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.network import WDMNetwork

__all__ = ["SizeReport", "measure_sizes"]


@dataclass(frozen=True)
class SizeReport:
    """Measured sizes plus bound comparisons for one network."""

    sizes: AuxiliarySizes

    def rows(self) -> list[tuple[str, int, int, bool]]:
        """``(quantity, measured, bound, within)`` rows for all bounds.

        General-regime bounds (Observations 1-2) and restricted-regime
        bounds (Observations 4-5, with the corrected ``2mk₀`` node bound)
        are both included — the restricted bounds hold for *every* network
        since ``k₀`` is measured.
        """
        s = self.sizes
        checks = [
            ("|V'| <= 2kn", s.num_layer_nodes, s.bound_layer_nodes),
            ("|E'| <= k^2 n + km", s.num_layer_edges, s.bound_layer_edges),
            ("max |X_v|+|Y_v| <= 2k", s.max_bipartite_nodes, s.bound_bipartite_nodes),
            ("max |E_v| <= k^2", s.max_bipartite_edges, s.bound_bipartite_edges),
            ("|E_org| <= km", s.num_org_edges, s.bound_org_edges),
            ("|V'| <= 2mk0 (restricted)", s.num_layer_nodes, s.bound_layer_nodes_restricted),
            (
                "|E'| <= d^2 n k0^2 + mk0 (restricted)",
                s.num_layer_edges,
                s.bound_layer_edges_restricted,
            ),
            (
                "max |X_v|+|Y_v| <= 2dk0 (restricted)",
                s.max_bipartite_nodes,
                s.bound_bipartite_nodes_restricted,
            ),
            (
                "max |E_v| <= d^2 k0^2 (restricted)",
                s.max_bipartite_edges,
                s.bound_bipartite_edges_restricted,
            ),
        ]
        return [(name, measured, bound, measured <= bound) for name, measured, bound in checks]

    @property
    def all_within(self) -> bool:
        """True when every measured size respects its bound."""
        return all(within for _, _, _, within in self.rows())

    def format(self) -> str:
        """Fixed-width text table of the bound comparison."""
        lines = [f"{'quantity':42s} {'measured':>10s} {'bound':>10s}  ok"]
        for name, measured, bound, within in self.rows():
            lines.append(f"{name:42s} {measured:10d} {bound:10d}  {'yes' if within else 'NO'}")
        return "\n".join(lines)


def measure_sizes(network: "WDMNetwork") -> SizeReport:
    """Build ``G'`` for *network* and report sizes vs bounds."""
    return SizeReport(sizes=build_layered_graph(network).sizes)
