"""Markdown rendering of experiment results.

Takes the JSON-shaped report from
:func:`repro.analysis.experiments.run_all` and renders the same tables
EXPERIMENTS.md quotes, so ``python -m repro experiments --markdown``
regenerates the document's data sections from a live run.
"""

from __future__ import annotations

from typing import Any

__all__ = ["render_markdown"]


def _table(headers: list[str], rows: list[list[Any]]) -> str:
    def fmt(value: Any) -> str:
        if isinstance(value, float):
            return f"{value:.4g}"
        return str(value)

    lines = [
        "| " + " | ".join(headers) + " |",
        "|" + "|".join("---" for _ in headers) + "|",
    ]
    for row in rows:
        lines.append("| " + " | ".join(fmt(v) for v in row) + " |")
    return "\n".join(lines)


def _render_fig(result: dict[str, Any]) -> str:
    return _table(
        ["quantity", "value"],
        [
            ["m₁ = Σ|Λ(e)|", result["m1"]],
            ["|V'|", result["layer_nodes"]],
            ["|E'|", result["layer_edges"]],
            ["optimal cost 1→7", result["route_1_7_cost"]],
            ["all Observation bounds hold", result["bounds_ok"]],
        ],
    )


def _render_thm1(result: dict[str, Any]) -> str:
    rows = [[n, s] for n, s in zip(result["ns"], result["seconds"])]
    table = _table(["n", "seconds"], rows)
    return table + f"\n\nfitted exponent: n^{result['exponent']:.2f}"


def _render_sec3c(result: dict[str, Any]) -> str:
    rows = [
        [r["n"], r["m"], r["k"], r["liang_shen_s"], r["cfz_s"], r["speedup"],
         "yes" if r["agree"] else "NO"]
        for r in result["rows"]
    ]
    return _table(
        ["n", "m", "k", "liang-shen (s)", "cfz (s)", "speedup", "same optimum"],
        rows,
    )


def _render_thm3(result: dict[str, Any]) -> str:
    rows = [
        [r["n"], r["k"], r["m"], r["messages"], r["km"], r["rounds"], r["kn"]]
        for r in result["rows"]
    ]
    return _table(["n", "k", "m", "messages", "km", "rounds", "kn"], rows)


def _render_thm4(result: dict[str, Any]) -> str:
    rows = [[k, s] for k, s in zip(result["ks"], result["seconds"])]
    table = _table(["k (universe)", "seconds"], rows)
    return (
        f"n = {result['n']}, k₀ = {result['k0']}\n\n" + table
        + "\n\n(time must stay flat in k — Theorem 4)"
    )


def _render_rwa(result: dict[str, Any]) -> str:
    rows = [
        [p["load"], p["semilightpath"], p["first_fit"], p["conversions_per_conn"]]
        for p in result["curve"]
    ]
    return _table(
        ["load (E)", "P_block semilightpath", "P_block first-fit", "conv/conn"],
        rows,
    )


def _render_multicast(result: dict[str, Any]) -> str:
    rows = [
        [r["density"], r["mean_cost"], r["mean_channels"], r["blocked"]]
        for r in result["rows"]
    ]
    table = _table(
        ["MC density", "mean hierarchy cost", "mean channels", "blocked"],
        rows,
    )
    return (
        f"{result['requests']} seeded requests on NSFNET; cost/channel "
        f"means over the {result['comparable']} joinable at every "
        f"density\n\n" + table
    )


_RENDERERS = {
    "FIG1-4": ("Figures 1-4 — the worked example", _render_fig),
    "THM1": ("Theorem 1 — single-pair scaling", _render_thm1),
    "SEC3C": ("Section III-C — vs CFZ", _render_sec3c),
    "THM3": ("Theorem 3 — distributed costs", _render_thm3),
    "THM4": ("Theorem 4 — k-independence", _render_thm4),
    "RWA": ("Dynamic provisioning — blocking", _render_rwa),
    "MCAST": ("Multicast — splitter density vs hierarchy cost", _render_multicast),
}


def render_markdown(report: dict[str, Any]) -> str:
    """Render a full experiments report as a markdown document."""
    sections = ["# Experiment results (generated)\n"]
    for key, result in report.items():
        title, renderer = _RENDERERS.get(key, (key, None))
        sections.append(f"## {key} — {title}" if renderer else f"## {key}")
        if renderer is not None:
            sections.append(renderer(result))
        else:  # unknown experiment id: dump keys
            sections.append("```\n" + repr(result) + "\n```")
        elapsed = result.get("elapsed_seconds")
        if elapsed is not None:
            sections.append(f"*measured in {elapsed:.2f}s*")
        sections.append("")
    return "\n".join(sections)
