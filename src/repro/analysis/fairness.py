"""Fairness analysis of blocking outcomes.

Aggregate blocking probability hides *who* gets blocked: under load, long
or poorly-connected pairs can absorb nearly all the rejections.  This
module quantifies that skew from
:class:`~repro.wdm.simulation.BlockingStats`:

* :func:`per_pair_blocking` — blocked counts per (source, target),
* :func:`gini` — Gini coefficient of the blocked-count distribution
  (0 = evenly spread, → 1 = concentrated on few pairs),
* :func:`worst_pairs` — the most-blocked pairs.
"""

from __future__ import annotations

from typing import Hashable, Sequence

from repro.wdm.simulation import BlockingStats

__all__ = ["gini", "per_pair_blocking", "worst_pairs"]

NodeId = Hashable


def per_pair_blocking(stats: BlockingStats) -> dict[tuple[NodeId, NodeId], int]:
    """Blocked request count per ordered pair (pairs with zero omitted)."""
    return dict(stats.per_pair_blocked)


def gini(values: Sequence[float]) -> float:
    """Gini coefficient of a nonnegative distribution.

    Returns 0.0 for empty input, all-zero input, or a single value.
    """
    items = sorted(float(v) for v in values)
    if any(v < 0 for v in items):
        raise ValueError("gini is defined for nonnegative values")
    n = len(items)
    total = sum(items)
    if n < 2 or total == 0:
        return 0.0
    # Standard formula over sorted values.
    weighted = sum((i + 1) * v for i, v in enumerate(items))
    return (2 * weighted) / (n * total) - (n + 1) / n


def worst_pairs(
    stats: BlockingStats, top: int = 5
) -> list[tuple[tuple[NodeId, NodeId], int]]:
    """The *top* most-blocked pairs, descending."""
    if top < 1:
        raise ValueError(f"top must be >= 1, got {top}")
    ranked = sorted(
        stats.per_pair_blocked.items(), key=lambda kv: (-kv[1], repr(kv[0]))
    )
    return ranked[:top]


def blocking_concentration(stats: BlockingStats) -> float:
    """Gini coefficient of blocked counts across the pairs that blocked.

    0.0 when no request blocked.
    """
    if not stats.per_pair_blocked:
        return 0.0
    return gini(list(stats.per_pair_blocked.values()))
