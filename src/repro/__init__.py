"""semilight — optimal lightpath/semilightpath routing in large WDM networks.

A from-scratch reproduction of **Liang & Shen, "Improved Lightpath
(Wavelength) Routing in Large WDM Networks"** (ICDCS 1998 / IEEE Trans.
Commun. 2000): the layered-graph reduction that finds minimum-cost
semilightpaths in ``O(k²n + km + kn·log(kn))`` time, its distributed
implementation, the Section IV restricted (``k₀``-bounded) analysis, and
the Chlamtac–Faragó–Zhang baseline it improves on — plus the surrounding
systems (topology generators, a dynamic provisioning layer, a distributed
message-passing simulator, and benchmark harnesses for every claim in the
paper).

Quickstart
----------
>>> from repro import LiangShenRouter, paper_figure1_network
>>> net = paper_figure1_network()
>>> router = LiangShenRouter(net)
>>> result = router.route(1, 7)
>>> result.path.source, result.path.target
(1, 7)

Package map
-----------
``repro.core``
    The paper's model and algorithms (network, semilightpath, auxiliary
    graphs, the Liang–Shen router, Restrictions 1-2).
``repro.baseline``
    The CFZ wavelength-graph algorithm and a brute-force oracle.
``repro.shortestpath``
    Graphs, addressable heaps (binary / pairing / Fibonacci), Dijkstra,
    Bellman–Ford.
``repro.distributed``
    Message-passing simulator and the distributed router (Theorems 3/5).
``repro.topology``
    Topology, wavelength-availability, and cost generators; reference
    networks including the paper's Figure 1 example.
``repro.wdm``
    Dynamic provisioning (RWA) layer: reservations, Poisson traffic,
    blocking-probability simulation.
``repro.service``
    Request-driven routing service: epoch-versioned ``G_all`` caching,
    concurrent query engine with backpressure and deadlines, metrics.
``repro.analysis`` / ``repro.io``
    Size accounting vs the paper's bounds, complexity fitting, JSON/DOT.
"""

from repro.core.auxiliary import (
    AuxiliarySizes,
    build_all_pairs_graph,
    build_layered_graph,
    build_routing_graph,
)
from repro.core.conversion import (
    CallableConversion,
    ConversionModel,
    FixedCostConversion,
    FullConversion,
    MatrixConversion,
    NoConversion,
    RangeLimitedConversion,
)
from repro.core.network import Link, WDMNetwork
from repro.core.restrictions import (
    check_restriction1,
    check_restriction2,
    enforce_restrictions,
)
from repro.core.bounded import BoundedConversionRouter, conversion_cost_profile
from repro.core.ksp import k_shortest_semilightpaths
from repro.core.routing import AllPairsResult, LiangShenRouter, RouteResult
from repro.core.semilightpath import Conversion, Hop, Semilightpath
from repro.exceptions import (
    CircuitOpenError,
    ConversionError,
    DeadlineExceeded,
    DeadlineExpiredError,
    InjectedFaultError,
    InvalidPathError,
    NetworkStructureError,
    NoPathError,
    RestrictionViolation,
    SemilightError,
    ServiceClosedError,
    ServiceError,
    ServiceOverloadError,
    TransientBackendError,
    WavelengthError,
)
from repro.service import (
    EpochRouterCache,
    MetricsRegistry,
    QueryEngine,
    RoutingService,
)
from repro.topology.reference import (
    arpanet_network,
    nsfnet_network,
    paper_figure1_network,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # model
    "WDMNetwork",
    "Link",
    "Hop",
    "Conversion",
    "Semilightpath",
    # conversion models
    "ConversionModel",
    "FullConversion",
    "NoConversion",
    "FixedCostConversion",
    "RangeLimitedConversion",
    "MatrixConversion",
    "CallableConversion",
    # routing
    "LiangShenRouter",
    "RouteResult",
    "AllPairsResult",
    "BoundedConversionRouter",
    "conversion_cost_profile",
    "k_shortest_semilightpaths",
    "build_layered_graph",
    "build_routing_graph",
    "build_all_pairs_graph",
    "AuxiliarySizes",
    # restrictions
    "check_restriction1",
    "check_restriction2",
    "enforce_restrictions",
    # serving layer
    "RoutingService",
    "EpochRouterCache",
    "QueryEngine",
    "MetricsRegistry",
    # reference networks
    "paper_figure1_network",
    "nsfnet_network",
    "arpanet_network",
    # exceptions
    "SemilightError",
    "NetworkStructureError",
    "WavelengthError",
    "ConversionError",
    "NoPathError",
    "InvalidPathError",
    "RestrictionViolation",
    "ServiceError",
    "ServiceOverloadError",
    "DeadlineExceeded",
    "DeadlineExpiredError",
    "ServiceClosedError",
    "TransientBackendError",
    "InjectedFaultError",
    "CircuitOpenError",
]
