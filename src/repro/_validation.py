"""Small argument-validation helpers shared across the package.

These are deliberately tiny and explicit: each helper raises a precise
exception type from :mod:`repro.exceptions` (or a builtin) with a message
naming the offending argument, so call sites stay one-liners.
"""

from __future__ import annotations

import math
from typing import Iterable

__all__ = [
    "check_nonnegative",
    "check_positive_int",
    "check_nonnegative_int",
    "check_probability",
    "check_finite",
    "require",
]


def check_nonnegative(value: float, name: str) -> float:
    """Return *value* if it is a nonnegative real number, else raise."""
    if not isinstance(value, (int, float)):
        raise TypeError(f"{name} must be a number, got {type(value).__name__}")
    if math.isnan(value):
        raise ValueError(f"{name} must not be NaN")
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return float(value)


def check_finite(value: float, name: str) -> float:
    """Return *value* if it is a finite real number, else raise."""
    value = check_nonnegative(value, name)
    if math.isinf(value):
        raise ValueError(f"{name} must be finite, got {value!r}")
    return value


def check_positive_int(value: int, name: str) -> int:
    """Return *value* if it is a positive integer, else raise."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if value <= 0:
        raise ValueError(f"{name} must be >= 1, got {value!r}")
    return value


def check_nonnegative_int(value: int, name: str) -> int:
    """Return *value* if it is a nonnegative integer, else raise."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def check_probability(value: float, name: str) -> float:
    """Return *value* if it lies in the closed interval [0, 1], else raise."""
    value = check_nonnegative(value, name)
    if value > 1:
        raise ValueError(f"{name} must be <= 1, got {value!r}")
    return value


def require(condition: bool, message: str, exc: type[Exception] = ValueError) -> None:
    """Raise *exc* with *message* unless *condition* holds."""
    if not condition:
        raise exc(message)


def unique(items: Iterable[object], name: str) -> None:
    """Raise ``ValueError`` if *items* contains duplicates."""
    seen = set()
    for item in items:
        if item in seen:
            raise ValueError(f"duplicate {name}: {item!r}")
        seen.add(item)
