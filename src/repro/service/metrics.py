"""Thread-safe metrics primitives for the routing service.

The service layer needs cheap observability: how often the epoch cache
hits, how deep the request queue runs, how long admissions take.  This
module provides the three classic instrument kinds — :class:`Counter`,
:class:`Gauge`, :class:`Histogram` — plus a :class:`MetricsRegistry`
that names them, snapshots them atomically, and aggregates the
per-query :class:`~repro.core.instrumentation.QueryStats` the routers
already emit.

Everything is in-process and lock-protected; there is no export
protocol.  ``snapshot()`` returns plain dicts so callers can ship the
numbers wherever they like (the CLI's ``serve-bench`` just prints
``render()``).
"""

from __future__ import annotations

import bisect
import threading
from collections import deque
from typing import Callable

from repro.core.instrumentation import QueryStats

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """A monotonically increasing count (cache hits, rejections, ...)."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        """Add *amount* (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        with self._lock:
            self._value += amount

    def reset(self) -> None:
        """Zero the counter (soak-run bookkeeping; not a decrement API)."""
        with self._lock:
            self._value = 0

    @property
    def value(self) -> int:
        return self._value


class Gauge:
    """An instantaneous level (queue depth, cache epoch, live workers)."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    def reset(self) -> None:
        with self._lock:
            self._value = 0.0

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Distribution of observed values with percentile queries.

    Two retention modes:

    * ``window=N`` (default 2048) keeps a sorted window of the most
      recent ``N`` observations (insertion via :func:`bisect.insort`,
      eviction in arrival order) next to running ``count`` / ``total`` /
      ``min`` / ``max`` over *all* observations — exact totals and
      recent-window percentiles without unbounded memory.
    * ``window=None`` retains **every** observation (appended O(1),
      sorted lazily at query time), so tail quantiles like p999 over a
      million-query load run are exact, not a window estimate.  Memory
      is one float per observation; reach for this in bounded-lifetime
      harnesses (load generators, soaks), not long-running services.
    """

    __slots__ = ("_lock", "_window", "_sorted", "_arrivals", "_dirty",
                 "count", "total", "minimum", "maximum")

    def __init__(self, window: int | None = 2048) -> None:
        if window is not None and window < 1:
            raise ValueError("window must be positive (or None for exact mode)")
        self._lock = threading.Lock()
        self._window = window
        self._sorted: list[float] = []
        self._arrivals: deque[float] = deque()
        self._dirty = False
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        if value != value:
            raise ValueError("histogram observations must not be NaN")
        with self._lock:
            self.count += 1
            self.total += value
            self.minimum = min(self.minimum, value)
            self.maximum = max(self.maximum, value)
            if self._window is None:
                self._sorted.append(value)
                self._dirty = True
                return
            if len(self._arrivals) == self._window:
                oldest = self._arrivals.popleft()
                self._sorted.pop(bisect.bisect_left(self._sorted, oldest))
            self._arrivals.append(value)
            bisect.insort(self._sorted, value)

    def reset(self) -> None:
        """Drop the window and the running totals (between soak phases)."""
        with self._lock:
            self._sorted.clear()
            self._arrivals.clear()
            self._dirty = False
            self.count = 0
            self.total = 0.0
            self.minimum = float("inf")
            self.maximum = float("-inf")

    @property
    def mean(self) -> float:
        with self._lock:
            return self.total / self.count if self.count else 0.0

    def _percentile_locked(self, q: float) -> float:
        """Percentile of the retained observations; caller holds the lock.

        Safe on an empty or partially-filled window: returns 0.0 for
        empty, interpolates over however many observations exist.
        """
        if not self._sorted:
            return 0.0
        if self._dirty:
            self._sorted.sort()
            self._dirty = False
        rank = q / 100.0 * (len(self._sorted) - 1)
        lower = int(rank)
        upper = min(lower + 1, len(self._sorted) - 1)
        frac = rank - lower
        return self._sorted[lower] * (1 - frac) + self._sorted[upper] * frac

    def percentile(self, q: float) -> float:
        """The *q*-th percentile (0 <= q <= 100, any float — 99.9 works).

        Over the recent window in windowed mode, over every observation
        in exact (``window=None``) mode.  Returns 0.0 when nothing has
        been observed (the natural reading for latency metrics of an
        idle service).
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError("percentile must be in [0, 100]")
        with self._lock:
            return self._percentile_locked(q)

    def percentiles(self, qs: "list[float] | tuple[float, ...]") -> dict[float, float]:
        """Several percentiles under one lock acquisition.

        All returned values describe the same instant — a concurrent
        ``observe`` cannot land between the p50 and the p999 of one
        report (the load harness reports exactly such triples).
        """
        for q in qs:
            if not 0.0 <= q <= 100.0:
                raise ValueError("percentile must be in [0, 100]")
        with self._lock:
            return {q: self._percentile_locked(q) for q in qs}

    def summary(self) -> dict[str, float]:
        """count / mean / min / max plus p50, p90, p99, p999.

        One lock acquisition for the whole summary, so concurrent
        ``observe`` calls cannot tear it (count and percentiles always
        describe the same instant).
        """
        with self._lock:
            count = self.count
            return {
                "count": count,
                "mean": self.total / count if count else 0.0,
                "min": self.minimum if count else 0.0,
                "max": self.maximum if count else 0.0,
                "p50": self._percentile_locked(50),
                "p90": self._percentile_locked(90),
                "p99": self._percentile_locked(99),
                "p999": self._percentile_locked(99.9),
            }


class MetricsRegistry:
    """Named metrics with atomic snapshots and router-stats aggregation.

    Example
    -------
    >>> registry = MetricsRegistry()
    >>> registry.counter("cache.hits").inc()
    >>> registry.gauge("queue.depth").set(3)
    >>> registry.snapshot()["cache.hits"]
    1
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._callbacks: dict[str, Callable[[], float]] = {}

    # -- get-or-create accessors ---------------------------------------------

    def counter(self, name: str) -> Counter:
        with self._lock:
            return self._counters.setdefault(name, Counter())

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            return self._gauges.setdefault(name, Gauge())

    def histogram(self, name: str, window: int | None = 2048) -> Histogram:
        with self._lock:
            if name not in self._histograms:
                self._histograms[name] = Histogram(window=window)
            return self._histograms[name]

    def register_callback(self, name: str, fn: Callable[[], float]) -> None:
        """Register a pull-style gauge evaluated at snapshot time.

        Lets lower layers (e.g. :class:`~repro.core.batch.BatchRouter`,
        which must not depend on this package) expose their counters
        without holding a registry reference.
        """
        with self._lock:
            self._callbacks[name] = fn

    def bind_batch_router(self, router, prefix: str = "batch") -> None:
        """Expose a :class:`~repro.core.batch.BatchRouter`'s cache counters.

        Publishes ``<prefix>.cache_hits`` / ``cache_misses`` /
        ``cache_evictions`` / ``cached_sources`` as callback gauges.
        """
        self.register_callback(f"{prefix}.cache_hits", lambda: router.cache_hits)
        self.register_callback(f"{prefix}.cache_misses", lambda: router.cache_misses)
        self.register_callback(
            f"{prefix}.cache_evictions", lambda: router.cache_evictions
        )
        self.register_callback(
            f"{prefix}.cached_sources", lambda: router.cached_sources
        )

    def reset(self) -> None:
        """Zero every counter, gauge, and histogram (instruments and
        callback registrations survive).

        Soak runs reset between phases so per-phase assertions (retries,
        stale serves, breaker trips) see only their own window.
        """
        with self._lock:
            instruments = (
                list(self._counters.values())
                + list(self._gauges.values())
                + list(self._histograms.values())
            )
        for instrument in instruments:
            instrument.reset()

    # -- router work aggregation ---------------------------------------------

    def observe_query(self, stats: QueryStats, prefix: str = "query") -> None:
        """Fold one query's :class:`QueryStats` into running counters."""
        self.counter(f"{prefix}.count").inc()
        self.counter(f"{prefix}.settled").inc(stats.settled)
        self.counter(f"{prefix}.relaxations").inc(stats.relaxations)
        self.counter(f"{prefix}.heap_ops").inc(stats.total_heap_ops)

    # -- reporting -----------------------------------------------------------

    def snapshot(self) -> dict[str, object]:
        """All metrics as one flat dict (histograms nested as summaries)."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
            callbacks = dict(self._callbacks)
        out: dict[str, object] = {}
        for name, counter in counters.items():
            out[name] = counter.value
        for name, gauge in gauges.items():
            out[name] = gauge.value
        for name, fn in callbacks.items():
            out[name] = fn()
        for name, histogram in histograms.items():
            out[name] = histogram.summary()
        return out

    def render(self) -> str:
        """Human-readable ``name value`` lines, sorted by name."""
        lines: list[str] = []
        for name, value in sorted(self.snapshot().items()):
            if isinstance(value, dict):
                detail = "  ".join(
                    f"{key}={_fmt(val)}" for key, val in value.items()
                )
                lines.append(f"{name}: {detail}")
            else:
                lines.append(f"{name}: {_fmt(value)}")
        return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)
