"""Concurrent query execution: worker pool, bounded queue, coalescing.

:class:`QueryEngine` turns the epoch cache into a request-driven server:

* **Bounded queue with backpressure** — :meth:`~QueryEngine.submit`
  rejects with :class:`~repro.exceptions.ServiceOverloadError` when
  ``queue_limit`` requests are already pending, so overload surfaces at
  the edge instead of as unbounded memory growth.
* **Worker pool** — ``workers`` daemon threads drain the queue.  With
  ``workers=0`` nothing drains automatically; call
  :meth:`~QueryEngine.run_pending` to process inline (deterministic
  single-threaded mode, used by tests and the synchronous CLI path).
* **Deadlines** — a per-request timeout; every way a deadline can be
  missed (expiry while queued, the caller's wait outliving the request)
  surfaces as one typed :class:`~repro.exceptions.DeadlineExceeded`
  carrying the elapsed time, counted under ``engine.deadline_exceeded``.
* **Retry with backoff** — an optional
  :class:`~repro.faults.resilience.RetryPolicy` re-issues backend calls
  that fail with :class:`~repro.exceptions.TransientBackendError`
  (exponential backoff, full jitter, never sleeping past the request's
  deadline).
* **Circuit breaker** — an optional
  :class:`~repro.faults.resilience.CircuitBreaker` around the routing
  backend fails fast with :class:`~repro.exceptions.CircuitOpenError`
  while the backend is known-bad, so a fault storm cannot pile every
  worker onto a failing cache rebuild.
* **Same-source coalescing** — when a worker dequeues a request it also
  claims every other pending request with the same source, answering the
  whole group from one shortest-path tree.  Under bursty fan-out from one
  ingress node this collapses N Dijkstra runs into one.  When no guard is
  configured (no retry, breaker, or fault hook), the claimed batch is
  served through **one** :meth:`EpochRouterCache.route_batch` backend
  call — one cache-lock acquisition and one tree fetch for the whole
  group (counted under ``engine.batched``) — instead of re-entering the
  cache per request; guarded serving keeps the per-request path so every
  request gets its own admission check and backoff schedule.

Results are delivered through :class:`QueryFuture`, a minimal
event-based future (no ``concurrent.futures`` dependency so the engine
controls queue admission itself).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Hashable

from repro.core.semilightpath import Semilightpath
from repro.exceptions import (
    DeadlineExceeded,
    NoPathError,
    ServiceClosedError,
    ServiceOverloadError,
    TransientBackendError,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.resilience import CircuitBreaker, RetryPolicy
    from repro.service.cache import EpochRouterCache
    from repro.service.metrics import MetricsRegistry

__all__ = ["QueryFuture", "QueryEngine"]

NodeId = Hashable


class QueryFuture:
    """Completion handle for one submitted query."""

    __slots__ = ("_event", "_path", "_exception", "_epoch")

    def __init__(self) -> None:
        self._event = threading.Event()
        self._path: Semilightpath | None = None
        self._exception: BaseException | None = None
        self._epoch = -1

    def done(self) -> bool:
        return self._event.is_set()

    @property
    def epoch(self) -> int:
        """Cache epoch the answer was computed on (-1 until resolved)."""
        return self._epoch

    def _resolve(self, path: Semilightpath, epoch: int = -1) -> None:
        self._path = path
        self._epoch = epoch
        self._event.set()

    def _fail(self, exc: BaseException) -> None:
        self._exception = exc
        self._event.set()

    def result(self, timeout: float | None = None) -> Semilightpath:
        """Block for the routed path; re-raises the query's failure.

        Raises :class:`TimeoutError` if the result does not arrive within
        *timeout* seconds (the query itself keeps running).
        """
        if not self._event.wait(timeout):
            raise TimeoutError("query result not ready")
        if self._exception is not None:
            raise self._exception
        if self._path is None:
            # The event is set exactly by _resolve/_fail; reaching here with
            # neither a path nor an exception means the future was resolved
            # incorrectly.  A real exception so the invariant holds under
            # ``python -O``.
            raise ValueError("query future resolved without a path or an error")
        return self._path


@dataclass
class _Request:
    source: NodeId
    target: NodeId
    deadline: float | None  # absolute time.monotonic() instant
    future: QueryFuture = field(default_factory=QueryFuture)
    enqueued_at: float = 0.0


class QueryEngine:
    """Thread-pool execution of routing queries over an epoch cache.

    Parameters
    ----------
    cache:
        The shared :class:`~repro.service.cache.EpochRouterCache`.
    workers:
        Background worker threads (0 = synchronous mode, drain with
        :meth:`run_pending`).
    queue_limit:
        Maximum pending requests before :meth:`submit` rejects.
    coalesce:
        Claim same-source pending requests together (default on).
    metrics:
        Optional registry for queue/latency/coalescing instruments.
    retry:
        Optional :class:`~repro.faults.resilience.RetryPolicy` applied to
        transient backend failures (off by default — plain serving keeps
        its historical fail-fast behavior).
    breaker:
        Optional :class:`~repro.faults.resilience.CircuitBreaker` guarding
        the backend call.

    The public ``fault_hook`` attribute, when set, is invoked inside a
    worker before every backend attempt — the chaos layer's injection
    point (:meth:`repro.faults.injector.FaultInjector.worker_hook`).
    """

    def __init__(
        self,
        cache: "EpochRouterCache",
        workers: int = 4,
        queue_limit: int = 256,
        coalesce: bool = True,
        metrics: "MetricsRegistry | None" = None,
        retry: "RetryPolicy | None" = None,
        breaker: "CircuitBreaker | None" = None,
    ) -> None:
        if workers < 0:
            raise ValueError("workers must be >= 0")
        if queue_limit < 1:
            raise ValueError("queue_limit must be positive")
        self.cache = cache
        self.queue_limit = queue_limit
        self.coalesce = coalesce
        self.retry = retry
        self.breaker = breaker
        self.fault_hook: "Callable[[], None] | None" = None
        self._metrics = metrics
        self._cond = threading.Condition()
        self._queue: deque[_Request] = deque()
        self._closed = False
        self._threads = [
            threading.Thread(
                target=self._worker_loop, name=f"repro-query-{i}", daemon=True
            )
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # -- submission ----------------------------------------------------------

    @property
    def num_workers(self) -> int:
        return len(self._threads)

    @property
    def queue_depth(self) -> int:
        with self._cond:
            return len(self._queue)

    def submit(
        self, source: NodeId, target: NodeId, timeout: float | None = None
    ) -> QueryFuture:
        """Enqueue a query; returns immediately with its future.

        Raises :class:`ServiceOverloadError` when the queue is full and
        :class:`ServiceClosedError` after :meth:`shutdown`.
        """
        now = time.monotonic()
        request = _Request(
            source=source,
            target=target,
            deadline=None if timeout is None else now + timeout,
            enqueued_at=now,
        )
        with self._cond:
            if self._closed:
                raise ServiceClosedError("engine is shut down")
            if len(self._queue) >= self.queue_limit:
                if self._metrics is not None:
                    self._metrics.counter("engine.rejected").inc()
                raise ServiceOverloadError(self.queue_limit)
            self._queue.append(request)
            depth = len(self._queue)
            self._cond.notify()
        if self._metrics is not None:
            self._metrics.gauge("engine.queue_depth").set(depth)
            self._metrics.counter("engine.submitted").inc()
        return request.future

    def route(
        self, source: NodeId, target: NodeId, timeout: float | None = None
    ) -> Semilightpath:
        """Submit and wait; in synchronous mode also drains the queue."""
        return self.route_with_epoch(source, target, timeout=timeout)[0]

    def route_with_epoch(
        self, source: NodeId, target: NodeId, timeout: float | None = None
    ) -> tuple[Semilightpath, int]:
        """Like :meth:`route` but also returns the cache epoch the answer
        was computed on (the serving layer's staleness bookkeeping).

        Every way *timeout* can be missed — expiry while queued, or this
        wait outliving the request — raises the same typed
        :class:`~repro.exceptions.DeadlineExceeded` with the elapsed
        time, counted once under ``engine.deadline_exceeded``.
        """
        start = time.monotonic()
        future = self.submit(source, target, timeout=timeout)
        if not self._threads:
            self.run_pending()
        # Wait a little past the request deadline: an expired request still
        # needs a worker to *observe* the expiry and resolve the future.
        try:
            path = future.result(None if timeout is None else timeout + 1.0)
        except TimeoutError:
            # The request outlived even the grace period (e.g. a worker
            # wedged mid-build).  Same failure mode as queue expiry.
            if self._metrics is not None:
                self._metrics.counter("engine.deadline_exceeded").inc()
            raise DeadlineExceeded(
                source, target, elapsed=time.monotonic() - start
            ) from None
        return path, future.epoch

    # -- execution -----------------------------------------------------------

    def _claim_batch_locked(self, first: _Request) -> list[_Request]:
        """Pop *first*'s same-source companions from the queue (coalescing)."""
        if not self.coalesce:
            return [first]
        batch = [first]
        remaining: deque[_Request] = deque()
        while self._queue:
            request = self._queue.popleft()
            if request.source == first.source:
                batch.append(request)
            else:
                remaining.append(request)
        self._queue.extend(remaining)
        if len(batch) > 1 and self._metrics is not None:
            self._metrics.counter("engine.coalesced").inc(len(batch) - 1)
        return batch

    def _serve(self, request: _Request) -> None:
        now = time.monotonic()
        if request.deadline is not None and now > request.deadline:
            if self._metrics is not None:
                self._metrics.counter("engine.expired").inc()
                self._metrics.counter("engine.deadline_exceeded").inc()
            request.future._fail(
                DeadlineExceeded(
                    request.source,
                    request.target,
                    elapsed=now - request.enqueued_at,
                )
            )
            return
        try:
            path, epoch = self._call_backend(request)
        except BaseException as exc:  # noqa: BLE001 - forwarded to the caller
            if isinstance(exc, NoPathError) and self._metrics is not None:
                self._metrics.counter("engine.no_path").inc()
            request.future._fail(exc)
            return
        if self._metrics is not None:
            self._metrics.counter("engine.served").inc()
            self._metrics.histogram("engine.latency_ms").observe(
                (time.monotonic() - request.enqueued_at) * 1e3
            )
        request.future._resolve(path, epoch)

    def _call_backend(self, request: _Request) -> tuple[Semilightpath, int]:
        """One guarded backend call: breaker admission, fault hook, retry.

        :class:`~repro.exceptions.NoPathError` counts as backend *success*
        for the breaker (the backend answered; unreachable is a valid
        answer).  :class:`~repro.exceptions.CircuitOpenError` from the
        admission check propagates without retry — failing fast is the
        point of the breaker.
        """

        def attempt() -> tuple[Semilightpath, int]:
            if self.breaker is not None:
                self.breaker.before_call()
            try:
                if self.fault_hook is not None:
                    self.fault_hook()
                result = self.cache.route_with_epoch(
                    request.source, request.target
                )
            except TransientBackendError:
                if self.breaker is not None:
                    self.breaker.record_failure()
                if self._metrics is not None:
                    self._metrics.counter("engine.backend_faults").inc()
                raise
            except NoPathError:
                if self.breaker is not None:
                    self.breaker.record_success()
                raise
            if self.breaker is not None:
                self.breaker.record_success()
            return result

        if self.retry is None:
            return attempt()

        def on_retry(attempt_index: int, exc: BaseException) -> None:
            del attempt_index, exc
            if self._metrics is not None:
                self._metrics.counter("engine.retries").inc()

        return self.retry.call(
            attempt, deadline=request.deadline, on_retry=on_retry
        )

    def _serve_batch(self, batch: list[_Request]) -> None:
        if (
            len(batch) > 1
            and self.retry is None
            and self.breaker is None
            and self.fault_hook is None
        ):
            self._serve_coalesced(batch)
        else:
            # Guarded serving (retry/breaker/fault injection) keeps the
            # per-request path: each request gets its own admission check,
            # hook invocation, and backoff schedule.
            for request in batch:
                self._serve(request)
        if self._metrics is not None:
            self._metrics.gauge("engine.queue_depth").set(self.queue_depth)

    def _serve_coalesced(self, batch: list[_Request]) -> None:
        """Serve a claimed same-source batch from one backend call.

        One :meth:`EpochRouterCache.route_batch` call — one lock
        acquisition, one refresh check, one tree fetch — answers every
        live request; per-request outcomes (expiry, ``source == target``
        validation, unreachability) keep exactly the semantics of the
        per-request path.  Counted under ``engine.batched``.
        """
        now = time.monotonic()
        live: list[_Request] = []
        for request in batch:
            if request.deadline is not None and now > request.deadline:
                if self._metrics is not None:
                    self._metrics.counter("engine.expired").inc()
                    self._metrics.counter("engine.deadline_exceeded").inc()
                request.future._fail(
                    DeadlineExceeded(
                        request.source,
                        request.target,
                        elapsed=now - request.enqueued_at,
                    )
                )
            elif request.source == request.target:
                # A request error, not an unreachability answer — let the
                # per-request path raise the cache's ValueError verbatim.
                self._serve(request)
            else:
                live.append(request)
        if not live:
            return
        try:
            answers = self.cache.route_batch(
                live[0].source, [request.target for request in live]
            )
        except BaseException as exc:  # noqa: BLE001 - forwarded to the callers
            for request in live:
                request.future._fail(exc)
            return
        if self._metrics is not None:
            self._metrics.counter("engine.batched").inc(len(live))
        for request, (path, epoch) in zip(live, answers):
            if path is None:
                if self._metrics is not None:
                    self._metrics.counter("engine.no_path").inc()
                request.future._fail(
                    NoPathError(request.source, request.target)
                )
                continue
            if self._metrics is not None:
                self._metrics.counter("engine.served").inc()
                self._metrics.histogram("engine.latency_ms").observe(
                    (time.monotonic() - request.enqueued_at) * 1e3
                )
            request.future._resolve(path, epoch)

    def _worker_loop(self) -> None:
        while True:
            with self._cond:
                while not self._queue and not self._closed:
                    self._cond.wait()
                if self._closed and not self._queue:
                    return
                first = self._queue.popleft()
                batch = self._claim_batch_locked(first)
            self._serve_batch(batch)

    def run_pending(self) -> int:
        """Drain the queue on the calling thread; returns requests served.

        The synchronous twin of the worker loop — used when
        ``workers=0`` and by tests that need deterministic scheduling.
        """
        served = 0
        while True:
            with self._cond:
                if not self._queue:
                    return served
                first = self._queue.popleft()
                batch = self._claim_batch_locked(first)
            self._serve_batch(batch)
            served += len(batch)

    # -- lifecycle -----------------------------------------------------------

    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting requests; workers finish what is queued."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            self._cond.notify_all()
        if wait:
            for thread in self._threads:
                thread.join(timeout=5.0)

    def __enter__(self) -> "QueryEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
