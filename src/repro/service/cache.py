"""Epoch-versioned memoization of ``G_all`` and per-source trees.

:class:`~repro.core.batch.BatchRouter` amortizes ``G_all`` over many
queries but is frozen to one network — its documented contract is "if
the network changes, build a new instance".  The serving layer needs the
opposite: a long-lived cache over a network whose residual state keeps
changing.  :class:`EpochRouterCache` closes that gap with a
monotonically increasing **epoch**:

* Every mutation notification bumps the epoch (cheap — no rebuild).
* Queries lazily reconcile: the first query after a bump rebuilds
  ``G_all`` against the network provider's *current* view and prunes
  cached trees.
* Two invalidation granularities:

  - :meth:`invalidate` — anything may have changed (channels released,
    topology edited, costs re-priced).  All cached trees are dropped.
  - :meth:`mark_channel_degraded` / :meth:`mark_path_reserved` —
    channels were *removed* from the residual network (a reservation).
    Removing resources can only raise optimal costs, so a cached tree
    whose paths avoid every degraded channel is still optimal and is
    **kept** across the epoch bump.  Only trees actually touching a
    degraded channel are dropped.

The degradation rule is the load-bearing optimization for on-line
provisioning: admissions far apart in the network leave most cached
trees valid.

Thread safety: all public methods take an internal lock; the cache may
be shared by the query engine's worker pool.
"""

from __future__ import annotations

import math
import threading
from typing import TYPE_CHECKING, Callable, Hashable

from repro.core.auxiliary import KIND_SINK
from repro.core.routing import (
    LiangShenRouter,
    decode_warm_targets,
    decode_warm_tree,
)
from repro.core.semilightpath import Semilightpath
from repro.exceptions import NoPathError
from repro.shortestpath.delta import DeltaOverlay
from repro.shortestpath.flat import WarmRun

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.network import WDMNetwork
    from repro.service.metrics import MetricsRegistry

__all__ = ["EpochRouterCache"]

NodeId = Hashable
#: A degraded channel: (tail, head, wavelength); wavelength None = whole link.
_DirtyKey = tuple[NodeId, NodeId, "int | None"]


class _WarmTree:
    """A cached tree's warm search state plus its not-yet-redecoded targets."""

    __slots__ = ("run", "dirty")

    def __init__(self, run: WarmRun) -> None:
        self.run = run
        self.dirty: set[NodeId] = set()


class EpochRouterCache:
    """Memoized Liang–Shen routing with explicit, epoch-versioned invalidation.

    Parameters
    ----------
    network:
        Either a :class:`~repro.core.network.WDMNetwork` (static serving)
        or a zero-argument callable returning the current network view
        (e.g. a provisioner's ``residual_network`` — called once per
        rebuild, never per query).
    heap:
        Dijkstra heap choice, forwarded to :class:`LiangShenRouter`.
    metrics:
        Optional :class:`~repro.service.metrics.MetricsRegistry`; when
        given, the cache maintains ``cache.hits`` / ``cache.misses`` /
        ``cache.rebuilds`` / ``cache.trees_kept`` / ``cache.trees_dropped``
        (plus, in incremental mode, ``cache.patches`` /
        ``cache.tree_patches``) counters and a ``cache.epoch`` gauge.
    incremental:
        Opt-in delta-epoch maintenance (default off — the legacy
        invalidation semantics are unchanged).  When on, fault and
        recovery notifications queue patch ops; the next refresh masks or
        unmasks the affected CSR slots of the cached ``G_all`` in place
        (:class:`~repro.shortestpath.delta.DeltaOverlay`) instead of
        rebuilding it, and cached trees are repaired via warm-started
        Dijkstra (:class:`~repro.shortestpath.flat.WarmRun`) rather than
        recomputed.  A full rebuild still happens when an event predates
        the current overlay (returns ``None`` from the delta layer) or on
        :meth:`invalidate`; it remains the correctness oracle.

    Example
    -------
    >>> from repro.topology.reference import paper_figure1_network
    >>> cache = EpochRouterCache(paper_figure1_network())
    >>> cache.route(1, 7).total_cost
    2.0
    >>> cache.invalidate()
    >>> cache.epoch
    1
    """

    def __init__(
        self,
        network: "WDMNetwork | Callable[[], WDMNetwork]",
        heap: str = "flat",
        metrics: "MetricsRegistry | None" = None,
        incremental: bool = False,
    ) -> None:
        self._factory: Callable[[], "WDMNetwork"] = (
            network if callable(network) else (lambda: network)
        )
        self._heap = heap
        self._metrics = metrics
        self._incremental = bool(incremental)
        self._lock = threading.RLock()
        self._epoch = 0
        self._built_epoch = -1  # nothing built yet
        self._network: "WDMNetwork | None" = None
        self._inner: LiangShenRouter | None = None
        self._aux = None
        self._trees: dict[NodeId, dict[NodeId, Semilightpath]] = {}
        self._dirty: set[_DirtyKey] = set()
        self._full_dirty = True
        # Incremental mode: the delta overlay over the cached G_all, the
        # queued fault/recovery patch ops (applied lazily at refresh,
        # like the legacy dirty set), and per-source warm search state.
        # Invariant while incremental: _warm.keys() == _trees.keys().
        self._delta: DeltaOverlay | None = None
        self._patch_ops: list[tuple] = []
        self._warm: dict[NodeId, _WarmTree] = {}
        # Counters mirrored into the registry (when one is attached) so
        # they are inspectable even without metrics.
        self.hits = 0
        self.misses = 0
        self.rebuilds = 0
        self.trees_kept = 0
        self.trees_dropped = 0
        self.patches = 0
        self.tree_patches = 0
        # Degraded-mode fallback: its own router + snapshot, cached per
        # epoch under a separate lock so it never contends with (or
        # deadlocks against) the main cache lock.
        self._fallback_lock = threading.Lock()
        self._fallback_router: LiangShenRouter | None = None
        self._fallback_network: "WDMNetwork | None" = None
        self._fallback_epoch = -1

    # -- epoch bookkeeping ---------------------------------------------------

    @property
    def epoch(self) -> int:
        """The current network epoch (bumped by every invalidation)."""
        return self._epoch

    @property
    def built_epoch(self) -> int:
        """Epoch the cached ``G_all`` was built at (-1 before first build)."""
        return self._built_epoch

    @property
    def cached_sources(self) -> int:
        """Number of sources with a cached shortest-path tree."""
        with self._lock:
            return len(self._trees)

    def _bump(self) -> None:
        self._epoch += 1
        if self._metrics is not None:
            self._metrics.gauge("cache.epoch").set(self._epoch)

    def invalidate(self) -> None:
        """Full invalidation: the network may have changed arbitrarily.

        Cheap — only bumps the epoch and marks everything dirty; the
        rebuild happens lazily on the next query.
        """
        with self._lock:
            self._full_dirty = True
            self._dirty.clear()
            self._patch_ops.clear()
            self._bump()

    def mark_channel_degraded(
        self, tail: NodeId, head: NodeId, wavelength: int | None = None
    ) -> None:
        """A channel was removed (or its cost raised) on one link.

        With ``wavelength=None`` the whole link is marked.  Cached trees
        that avoid every degraded channel survive the epoch bump (see
        module docstring for why that is safe).  In incremental mode the
        event is queued as a patch op instead: the next refresh masks the
        affected CSR slots in place and repairs warm trees rather than
        rebuilding ``G_all``.
        """
        with self._lock:
            if self._incremental:
                if not self._full_dirty:
                    if wavelength is None:
                        self._patch_ops.append(("link_fail", tail, head))
                    else:
                        self._patch_ops.append(
                            ("channel_fail", tail, head, wavelength)
                        )
            elif not self._full_dirty:
                self._dirty.add((tail, head, wavelength))
            self._bump()

    def mark_channel_recovered(
        self, tail: NodeId, head: NodeId, wavelength: int | None = None
    ) -> None:
        """A channel (or, with ``wavelength=None``, a link) came back.

        Recoveries add resources, which can improve arbitrary routes —
        without incremental mode this is a full invalidation (matching
        the fault injector's historical behavior).  In incremental mode
        the patched overlay unmasks the affected slots in place; only the
        decoded trees are dropped (distances may decrease, so warm search
        state cannot be repaired), while the ``O(k²n + km)`` overlay
        rebuild is still skipped.
        """
        with self._lock:
            if self._incremental:
                if not self._full_dirty:
                    if wavelength is None:
                        self._patch_ops.append(("link_recover", tail, head))
                    else:
                        self._patch_ops.append(
                            ("channel_recover", tail, head, wavelength)
                        )
            else:
                self._full_dirty = True
                self._dirty.clear()
            self._bump()

    def mark_converter_failed(self, node: NodeId) -> None:
        """The converter bank at *node* failed (continuity only).

        A converter failure only removes conversion edges, so in
        incremental mode it is an ordinary fail-only patch; otherwise it
        is a full invalidation (converter state is not channel-keyed).
        """
        with self._lock:
            if self._incremental:
                if not self._full_dirty:
                    self._patch_ops.append(("converter_fail", node))
            else:
                self._full_dirty = True
                self._dirty.clear()
            self._bump()

    def mark_converter_recovered(self, node: NodeId) -> None:
        """The converter bank at *node* recovered."""
        with self._lock:
            if self._incremental:
                if not self._full_dirty:
                    self._patch_ops.append(("converter_recover", node))
            else:
                self._full_dirty = True
                self._dirty.clear()
            self._bump()

    def mark_path_reserved(self, path: Semilightpath) -> None:
        """Mark every channel a just-reserved path occupies as degraded."""
        with self._lock:
            if self._incremental:
                if not self._full_dirty:
                    for hop in path.hops:
                        self._patch_ops.append(
                            ("channel_fail", hop.tail, hop.head, hop.wavelength)
                        )
            elif not self._full_dirty:
                for hop in path.hops:
                    self._dirty.add((hop.tail, hop.head, hop.wavelength))
            self._bump()

    # -- rebuild -------------------------------------------------------------

    def _tree_uses_dirty(self, tree: dict[NodeId, Semilightpath]) -> bool:
        for path in tree.values():
            for hop in path.hops:
                if (hop.tail, hop.head, hop.wavelength) in self._dirty:
                    return True
                if (hop.tail, hop.head, None) in self._dirty:
                    return True
        return False

    def _try_patch_locked(self) -> bool:
        """Apply the queued patch ops to the delta overlay.

        Returns True when every op was expressible as a patch; the
        overlay's CSR weights are then up to date with the current epoch.
        Fail-only batches additionally repair every warm tree (marking
        damaged targets for lazy re-decode); batches that restored any
        edge drop the decoded trees — distances can decrease, which warm
        state cannot express — but still keep the patched overlay.

        On False the caller must full-rebuild: some op predates this
        overlay, and earlier ops in the batch may already have mutated
        weights, so the half-patched overlay is only good for discarding.
        """
        delta = self._delta
        ops, self._patch_ops = self._patch_ops, []
        masked: list[int] = []
        restored = False
        for op in ops:
            kind = op[0]
            if kind == "channel_fail":
                changed = delta.fail_channel(op[1], op[2], op[3])
            elif kind == "link_fail":
                changed = delta.fail_link(op[1], op[2])
            elif kind == "converter_fail":
                changed = delta.fail_converter(op[1])
            elif kind == "channel_recover":
                changed = delta.recover_channel(op[1], op[2], op[3])
            elif kind == "link_recover":
                changed = delta.recover_link(op[1], op[2])
            else:
                changed = delta.recover_converter(op[1])
            if changed is None:
                return False
            if kind.endswith("_fail"):
                masked.extend(changed)
            elif changed:
                restored = True
        if restored:
            dropped = len(self._trees)
            self.trees_dropped += dropped
            if self._metrics is not None and dropped:
                self._metrics.counter("cache.trees_dropped").inc(dropped)
            self._trees.clear()
            self._warm.clear()
            return True
        if masked:
            decode = self._aux.decode
            pairs = delta.slot_pairs(masked)
            for warm in self._warm.values():
                for aid in warm.run.repair(pairs, delta.in_edges):
                    aux_node = decode[aid]
                    if aux_node.kind == KIND_SINK:
                        warm.dirty.add(aux_node.node)
        kept = len(self._trees)
        self.trees_kept += kept
        if self._metrics is not None and kept:
            self._metrics.counter("cache.trees_kept").inc(kept)
        return True

    def _refresh_locked(self) -> None:
        """Bring ``G_all`` (and the tree cache) up to the current epoch."""
        if self._built_epoch == self._epoch and self._aux is not None:
            return
        if (
            self._incremental
            and not self._full_dirty
            and self._delta is not None
            and self._aux is not None
        ):
            if self._try_patch_locked():
                # Patched in place: same aux build, new degraded view.
                # The snapshot is stale now but nothing on the query path
                # reads it — :meth:`network_view` refetches lazily, so the
                # fault-to-answer path never pays the O(network) copy.
                self._network = None
                self._dirty.clear()
                self._built_epoch = self._epoch
                self.patches += 1
                if self._metrics is not None:
                    self._metrics.counter("cache.patches").inc()
                return
            self._full_dirty = True  # half-patched overlay: rebuild all
        if self._full_dirty:
            self.trees_dropped += len(self._trees)
            if self._metrics is not None and self._trees:
                self._metrics.counter("cache.trees_dropped").inc(len(self._trees))
            self._trees.clear()
        elif self._dirty:
            survivors: dict[NodeId, dict[NodeId, Semilightpath]] = {}
            dropped = 0
            for source, tree in self._trees.items():
                if self._tree_uses_dirty(tree):
                    dropped += 1
                else:
                    survivors[source] = tree
            self.trees_kept += len(survivors)
            self.trees_dropped += dropped
            if self._metrics is not None:
                if survivors:
                    self._metrics.counter("cache.trees_kept").inc(len(survivors))
                if dropped:
                    self._metrics.counter("cache.trees_dropped").inc(dropped)
            self._trees = survivors
        self._network = self._factory()
        self._inner = LiangShenRouter(self._network, heap=self._heap)
        # The router caches G_all for its lifetime; one rebuild = one
        # construction, shared by every tree run until the next epoch.
        self._aux = self._inner.all_pairs_graph()
        if self._incremental:
            self._delta = DeltaOverlay(self._aux)
            self._warm.clear()
        self._patch_ops.clear()
        self._dirty.clear()
        self._full_dirty = False
        self._built_epoch = self._epoch
        self.rebuilds += 1
        if self._metrics is not None:
            self._metrics.counter("cache.rebuilds").inc()

    def _tree(self, source: NodeId) -> dict[NodeId, Semilightpath]:
        self._refresh_locked()
        if self._incremental:
            return self._warm_tree_locked(source)
        tree = self._trees.get(source)
        if tree is None:
            self.misses += 1
            if self._metrics is not None:
                self._metrics.counter("cache.misses").inc()
            if self._inner is None:
                # _refresh_locked always installs a router; a None here means
                # _tree ran outside the lock/refresh protocol.  A real
                # exception so the invariant holds under ``python -O``.
                raise ValueError("epoch cache queried before refresh built a router")
            tree, run = self._inner._tree_from(self._aux, source)
            self._trees[source] = tree
            if self._metrics is not None:
                self._metrics.observe_query(
                    _tree_stats(self._aux, run), prefix="cache.tree_build"
                )
        else:
            self.hits += 1
            if self._metrics is not None:
                self._metrics.counter("cache.hits").inc()
        return tree

    def _warm_tree_locked(self, source: NodeId) -> dict[NodeId, Semilightpath]:
        """Incremental-mode tree: warm-run backed, repaired across deltas.

        A cached tree whose warm run was repaired re-runs the search —
        which only re-settles the damaged region — and re-decodes only
        the targets whose sink was damaged; everything else is served
        as-is.  A miss starts a fresh warm run to exhaustion and keeps
        it for future queries and repairs.
        """
        warm = self._warm.get(source)
        if warm is not None:
            tree = self._trees[source]
            if warm.dirty:
                warm.run.run()
                decode_warm_targets(self._aux, source, warm.run, warm.dirty, tree)
                warm.dirty.clear()
                self.tree_patches += 1
                if self._metrics is not None:
                    self._metrics.counter("cache.tree_patches").inc()
            self.hits += 1
            if self._metrics is not None:
                self._metrics.counter("cache.hits").inc()
            return tree
        self.misses += 1
        if self._metrics is not None:
            self._metrics.counter("cache.misses").inc()
        run = WarmRun(self._aux.graph, self._aux.source_ids[source])
        run.run()
        tree = decode_warm_tree(self._aux, source, run)
        self._trees[source] = tree
        self._warm[source] = _WarmTree(run)
        if self._metrics is not None:
            self._metrics.observe_query(
                _tree_stats(self._aux, run.result()), prefix="cache.tree_build"
            )
        return tree

    # -- queries -------------------------------------------------------------

    def route(self, source: NodeId, target: NodeId) -> Semilightpath:
        """Optimal semilightpath at the current epoch.

        Raises :class:`~repro.exceptions.NoPathError` when unreachable.
        """
        return self.route_with_epoch(source, target)[0]

    def route_with_epoch(
        self, source: NodeId, target: NodeId
    ) -> tuple[Semilightpath, int]:
        """Like :meth:`route`, also returning the epoch the answer was
        computed on.

        The epoch is read under the same lock that served the tree, so it
        is exactly the ``built_epoch`` of the ``G_all`` behind the answer
        — the serving layer's staleness flag and the chaos soak's
        certificate check both key on it.
        """
        if source == target:
            raise ValueError("source and target must differ")
        with self._lock:
            path = self._tree(source).get(target)
            epoch = self._built_epoch
        if path is None:
            raise NoPathError(source, target)
        return path, epoch

    def route_batch(
        self, source: NodeId, targets: "list[NodeId]"
    ) -> list[tuple["Semilightpath | None", int]]:
        """Answer a same-source batch under **one** lock acquisition.

        The engine's coalesced dispatch uses this to serve a claimed
        batch with one refresh check and one tree fetch instead of
        re-entering the lock (and re-walking the refresh logic) per
        request.  Returns ``(path, built_epoch)`` per target in order,
        with ``None`` for unreachable targets — the caller maps those to
        :class:`~repro.exceptions.NoPathError` per request.  Callers must
        filter out ``target == source`` entries first (they are a request
        error, not an unreachability answer).
        """
        with self._lock:
            tree = self._tree(source)
            epoch = self._built_epoch
            return [(tree.get(target), epoch) for target in targets]

    def route_rebuild(
        self, source: NodeId, target: NodeId
    ) -> tuple[Semilightpath, "WDMNetwork"]:
        """Degraded-mode fallback: fresh-snapshot routing, no shared state.

        Runs on a *fresh* network snapshot under its own lock — never the
        cache lock, never the shared ``G'``/``G_all`` — so it stays
        available while the epoch cache is mid-invalidation or churning
        through a fault storm.  The fallback router (and its cached
        ``G_all``) is reused across calls at the same epoch instead of
        reconstructing ``G_{s,t}`` per query; a stale epoch rebuilds it
        from a new snapshot.  Answers are hop-for-hop what the Theorem-1
        per-pair construction returns (see
        :meth:`~repro.core.routing.LiangShenRouter.route_via_all_pairs`).
        Returns the path together with the snapshot it was computed on
        (the caller's certificate check needs exactly that network).
        """
        epoch = self._epoch
        with self._fallback_lock:
            if self._fallback_router is None or self._fallback_epoch != epoch:
                network = self._factory()
                self._fallback_router = LiangShenRouter(network, heap=self._heap)
                self._fallback_network = network
                self._fallback_epoch = epoch
            router = self._fallback_router
            network = self._fallback_network
            return router.route_via_all_pairs(source, target).path, network

    def cost(self, source: NodeId, target: NodeId) -> float:
        """Optimal cost at the current epoch, ``math.inf`` if unreachable."""
        if source == target:
            return 0.0
        with self._lock:
            path = self._tree(source).get(target)
        return math.inf if path is None else path.total_cost

    def tree(self, source: NodeId) -> dict[NodeId, Semilightpath]:
        """A copy of the full shortest-path tree from *source*."""
        with self._lock:
            return dict(self._tree(source))

    def network_view(self) -> "WDMNetwork":
        """The network snapshot matching the current cache entries.

        Patched refreshes drop the snapshot instead of eagerly re-copying
        the provider's network; it is refetched here on demand.
        """
        with self._lock:
            self._refresh_locked()
            if self._network is None:
                self._network = self._factory()
            return self._network

    def counters(self) -> dict[str, int]:
        """Plain-dict view of the cache counters (for tests and reports)."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "rebuilds": self.rebuilds,
                "patches": self.patches,
                "tree_patches": self.tree_patches,
                "trees_kept": self.trees_kept,
                "trees_dropped": self.trees_dropped,
                "epoch": self._epoch,
            }


def _tree_stats(aux, run):
    from repro.core.instrumentation import QueryStats

    return QueryStats(
        sizes=aux.sizes,
        settled=run.settled,
        relaxations=run.relaxations,
        heap=dict(run.heap_stats),
    )
