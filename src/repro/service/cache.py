"""Epoch-versioned memoization of ``G_all`` and per-source trees.

:class:`~repro.core.batch.BatchRouter` amortizes ``G_all`` over many
queries but is frozen to one network — its documented contract is "if
the network changes, build a new instance".  The serving layer needs the
opposite: a long-lived cache over a network whose residual state keeps
changing.  :class:`EpochRouterCache` closes that gap with a
monotonically increasing **epoch**:

* Every mutation notification bumps the epoch (cheap — no rebuild).
* Queries lazily reconcile: the first query after a bump rebuilds
  ``G_all`` against the network provider's *current* view and prunes
  cached trees.
* Two invalidation granularities:

  - :meth:`invalidate` — anything may have changed (channels released,
    topology edited, costs re-priced).  All cached trees are dropped.
  - :meth:`mark_channel_degraded` / :meth:`mark_path_reserved` —
    channels were *removed* from the residual network (a reservation).
    Removing resources can only raise optimal costs, so a cached tree
    whose paths avoid every degraded channel is still optimal and is
    **kept** across the epoch bump.  Only trees actually touching a
    degraded channel are dropped.

The degradation rule is the load-bearing optimization for on-line
provisioning: admissions far apart in the network leave most cached
trees valid.

Thread safety: all public methods take an internal lock; the cache may
be shared by the query engine's worker pool.
"""

from __future__ import annotations

import math
import threading
from typing import TYPE_CHECKING, Callable, Hashable

from repro.core.routing import LiangShenRouter
from repro.core.semilightpath import Semilightpath
from repro.exceptions import NoPathError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.network import WDMNetwork
    from repro.service.metrics import MetricsRegistry

__all__ = ["EpochRouterCache"]

NodeId = Hashable
#: A degraded channel: (tail, head, wavelength); wavelength None = whole link.
_DirtyKey = tuple[NodeId, NodeId, "int | None"]


class EpochRouterCache:
    """Memoized Liang–Shen routing with explicit, epoch-versioned invalidation.

    Parameters
    ----------
    network:
        Either a :class:`~repro.core.network.WDMNetwork` (static serving)
        or a zero-argument callable returning the current network view
        (e.g. a provisioner's ``residual_network`` — called once per
        rebuild, never per query).
    heap:
        Dijkstra heap choice, forwarded to :class:`LiangShenRouter`.
    metrics:
        Optional :class:`~repro.service.metrics.MetricsRegistry`; when
        given, the cache maintains ``cache.hits`` / ``cache.misses`` /
        ``cache.rebuilds`` / ``cache.trees_kept`` / ``cache.trees_dropped``
        counters and a ``cache.epoch`` gauge.

    Example
    -------
    >>> from repro.topology.reference import paper_figure1_network
    >>> cache = EpochRouterCache(paper_figure1_network())
    >>> cache.route(1, 7).total_cost
    2.0
    >>> cache.invalidate()
    >>> cache.epoch
    1
    """

    def __init__(
        self,
        network: "WDMNetwork | Callable[[], WDMNetwork]",
        heap: str = "flat",
        metrics: "MetricsRegistry | None" = None,
    ) -> None:
        self._factory: Callable[[], "WDMNetwork"] = (
            network if callable(network) else (lambda: network)
        )
        self._heap = heap
        self._metrics = metrics
        self._lock = threading.RLock()
        self._epoch = 0
        self._built_epoch = -1  # nothing built yet
        self._network: "WDMNetwork | None" = None
        self._inner: LiangShenRouter | None = None
        self._aux = None
        self._trees: dict[NodeId, dict[NodeId, Semilightpath]] = {}
        self._dirty: set[_DirtyKey] = set()
        self._full_dirty = True
        # Counters mirrored into the registry (when one is attached) so
        # they are inspectable even without metrics.
        self.hits = 0
        self.misses = 0
        self.rebuilds = 0
        self.trees_kept = 0
        self.trees_dropped = 0

    # -- epoch bookkeeping ---------------------------------------------------

    @property
    def epoch(self) -> int:
        """The current network epoch (bumped by every invalidation)."""
        return self._epoch

    @property
    def built_epoch(self) -> int:
        """Epoch the cached ``G_all`` was built at (-1 before first build)."""
        return self._built_epoch

    @property
    def cached_sources(self) -> int:
        """Number of sources with a cached shortest-path tree."""
        with self._lock:
            return len(self._trees)

    def _bump(self) -> None:
        self._epoch += 1
        if self._metrics is not None:
            self._metrics.gauge("cache.epoch").set(self._epoch)

    def invalidate(self) -> None:
        """Full invalidation: the network may have changed arbitrarily.

        Cheap — only bumps the epoch and marks everything dirty; the
        rebuild happens lazily on the next query.
        """
        with self._lock:
            self._full_dirty = True
            self._dirty.clear()
            self._bump()

    def mark_channel_degraded(
        self, tail: NodeId, head: NodeId, wavelength: int | None = None
    ) -> None:
        """A channel was removed (or its cost raised) on one link.

        With ``wavelength=None`` the whole link is marked.  Cached trees
        that avoid every degraded channel survive the epoch bump (see
        module docstring for why that is safe).
        """
        with self._lock:
            if not self._full_dirty:
                self._dirty.add((tail, head, wavelength))
            self._bump()

    def mark_path_reserved(self, path: Semilightpath) -> None:
        """Mark every channel a just-reserved path occupies as degraded."""
        with self._lock:
            if not self._full_dirty:
                for hop in path.hops:
                    self._dirty.add((hop.tail, hop.head, hop.wavelength))
            self._bump()

    # -- rebuild -------------------------------------------------------------

    def _tree_uses_dirty(self, tree: dict[NodeId, Semilightpath]) -> bool:
        for path in tree.values():
            for hop in path.hops:
                if (hop.tail, hop.head, hop.wavelength) in self._dirty:
                    return True
                if (hop.tail, hop.head, None) in self._dirty:
                    return True
        return False

    def _refresh_locked(self) -> None:
        """Bring ``G_all`` (and the tree cache) up to the current epoch."""
        if self._built_epoch == self._epoch and self._aux is not None:
            return
        if self._full_dirty:
            self.trees_dropped += len(self._trees)
            if self._metrics is not None and self._trees:
                self._metrics.counter("cache.trees_dropped").inc(len(self._trees))
            self._trees.clear()
        elif self._dirty:
            survivors: dict[NodeId, dict[NodeId, Semilightpath]] = {}
            dropped = 0
            for source, tree in self._trees.items():
                if self._tree_uses_dirty(tree):
                    dropped += 1
                else:
                    survivors[source] = tree
            self.trees_kept += len(survivors)
            self.trees_dropped += dropped
            if self._metrics is not None:
                if survivors:
                    self._metrics.counter("cache.trees_kept").inc(len(survivors))
                if dropped:
                    self._metrics.counter("cache.trees_dropped").inc(dropped)
            self._trees = survivors
        self._network = self._factory()
        self._inner = LiangShenRouter(self._network, heap=self._heap)
        # The router caches G_all for its lifetime; one rebuild = one
        # construction, shared by every tree run until the next epoch.
        self._aux = self._inner.all_pairs_graph()
        self._dirty.clear()
        self._full_dirty = False
        self._built_epoch = self._epoch
        self.rebuilds += 1
        if self._metrics is not None:
            self._metrics.counter("cache.rebuilds").inc()

    def _tree(self, source: NodeId) -> dict[NodeId, Semilightpath]:
        self._refresh_locked()
        tree = self._trees.get(source)
        if tree is None:
            self.misses += 1
            if self._metrics is not None:
                self._metrics.counter("cache.misses").inc()
            if self._inner is None:
                # _refresh_locked always installs a router; a None here means
                # _tree ran outside the lock/refresh protocol.  A real
                # exception so the invariant holds under ``python -O``.
                raise ValueError("epoch cache queried before refresh built a router")
            tree, run = self._inner._tree_from(self._aux, source)
            self._trees[source] = tree
            if self._metrics is not None:
                self._metrics.observe_query(
                    _tree_stats(self._aux, run), prefix="cache.tree_build"
                )
        else:
            self.hits += 1
            if self._metrics is not None:
                self._metrics.counter("cache.hits").inc()
        return tree

    # -- queries -------------------------------------------------------------

    def route(self, source: NodeId, target: NodeId) -> Semilightpath:
        """Optimal semilightpath at the current epoch.

        Raises :class:`~repro.exceptions.NoPathError` when unreachable.
        """
        return self.route_with_epoch(source, target)[0]

    def route_with_epoch(
        self, source: NodeId, target: NodeId
    ) -> tuple[Semilightpath, int]:
        """Like :meth:`route`, also returning the epoch the answer was
        computed on.

        The epoch is read under the same lock that served the tree, so it
        is exactly the ``built_epoch`` of the ``G_all`` behind the answer
        — the serving layer's staleness flag and the chaos soak's
        certificate check both key on it.
        """
        if source == target:
            raise ValueError("source and target must differ")
        with self._lock:
            path = self._tree(source).get(target)
            epoch = self._built_epoch
        if path is None:
            raise NoPathError(source, target)
        return path, epoch

    def route_rebuild(
        self, source: NodeId, target: NodeId
    ) -> tuple[Semilightpath, "WDMNetwork"]:
        """Degraded-mode fallback: Theorem-1 rebuild, no shared state.

        Builds ``G_{s,t}`` for this one query on a *fresh* network
        snapshot — no cache lock, no shared overlay, no tree cache — so
        it stays available while the shared ``G'``/``G_all`` is
        mid-invalidation or a fault storm has the epoch cache churning.
        Returns the path together with the snapshot it was computed on
        (the caller's certificate check needs exactly that network).
        """
        network = self._factory()
        router = LiangShenRouter(network, heap=self._heap, overlay=False)
        return router.route(source, target).path, network

    def cost(self, source: NodeId, target: NodeId) -> float:
        """Optimal cost at the current epoch, ``math.inf`` if unreachable."""
        if source == target:
            return 0.0
        with self._lock:
            path = self._tree(source).get(target)
        return math.inf if path is None else path.total_cost

    def tree(self, source: NodeId) -> dict[NodeId, Semilightpath]:
        """A copy of the full shortest-path tree from *source*."""
        with self._lock:
            return dict(self._tree(source))

    def network_view(self) -> "WDMNetwork":
        """The network snapshot the current cache entries were built on."""
        with self._lock:
            self._refresh_locked()
            if self._network is None:
                raise ValueError(
                    "epoch cache refresh did not produce a network snapshot"
                )
            return self._network

    def counters(self) -> dict[str, int]:
        """Plain-dict view of the cache counters (for tests and reports)."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "rebuilds": self.rebuilds,
                "trees_kept": self.trees_kept,
                "trees_dropped": self.trees_dropped,
                "epoch": self._epoch,
            }


def _tree_stats(aux, run):
    from repro.core.instrumentation import QueryStats

    return QueryStats(
        sizes=aux.sizes,
        settled=run.settled,
        relaxations=run.relaxations,
        heap=dict(run.heap_stats),
    )
