"""The routing-service facade: cache + engine + metrics in one object.

:class:`RoutingService` is the serving layer's front door.  It owns an
:class:`~repro.service.cache.EpochRouterCache` (epoch-versioned ``G_all``
and per-source trees), a :class:`~repro.service.engine.QueryEngine`
(worker pool, bounded queue, deadlines, coalescing) and a
:class:`~repro.service.metrics.MetricsRegistry` wired through both.

Static serving::

    service = RoutingService(network)
    path = service.route(s, t)

On-line provisioning (the paper's motivating workload) hangs a service
off a provisioner so admissions reuse cached trees::

    prov = SemilightpathProvisioner(network)
    prov.attach_service(workers=4)
    conn = prov.establish(s, t)       # routed through the cache

After each admission the provisioner notifies the service which channels
were reserved; the cache keeps every tree that avoids them (reserving
can only remove resources, so untouched trees stay optimal) and bumps
the epoch for the rest.  Releases invalidate fully — freed channels can
improve arbitrary routes.
"""

from __future__ import annotations

import math
import time
from typing import TYPE_CHECKING, Callable, Hashable

from repro.core.semilightpath import Semilightpath
from repro.exceptions import NoPathError
from repro.service.cache import EpochRouterCache
from repro.service.engine import QueryEngine, QueryFuture
from repro.service.metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.network import WDMNetwork

__all__ = ["RoutingService"]

NodeId = Hashable


class RoutingService:
    """Request-driven optimal semilightpath routing with caching and metrics.

    Parameters
    ----------
    network:
        A static :class:`~repro.core.network.WDMNetwork`, or a callable
        returning the current network view (called once per cache
        rebuild).
    workers:
        Worker threads for the query engine; ``0`` serves synchronously
        on the calling thread.
    queue_limit:
        Pending-request bound; excess submissions raise
        :class:`~repro.exceptions.ServiceOverloadError`.
    heap:
        Shortest-path kernel for the underlying router (default
        ``"flat"``, the CSR fast path; see
        :class:`~repro.core.routing.LiangShenRouter`).
    coalesce:
        Batch pending same-source queries onto one tree (default on).
    metrics:
        Bring-your-own registry; a private one is created otherwise.

    Example
    -------
    >>> from repro.topology.reference import paper_figure1_network
    >>> with RoutingService(paper_figure1_network(), workers=0) as service:
    ...     service.route(1, 7).total_cost
    2.0
    """

    def __init__(
        self,
        network: "WDMNetwork | Callable[[], WDMNetwork]",
        workers: int = 4,
        queue_limit: int = 256,
        heap: str = "flat",
        coalesce: bool = True,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.cache = EpochRouterCache(network, heap=heap, metrics=self.metrics)
        self.engine = QueryEngine(
            self.cache,
            workers=workers,
            queue_limit=queue_limit,
            coalesce=coalesce,
            metrics=self.metrics,
        )

    # -- queries -------------------------------------------------------------

    def route(
        self, source: NodeId, target: NodeId, timeout: float | None = None
    ) -> Semilightpath:
        """Optimal semilightpath at the current epoch.

        Raises :class:`~repro.exceptions.NoPathError` when unreachable,
        :class:`~repro.exceptions.ServiceOverloadError` on a full queue,
        :class:`~repro.exceptions.DeadlineExpiredError` when *timeout*
        elapses while the request is still queued.
        """
        start = time.monotonic()
        try:
            return self.engine.route(source, target, timeout=timeout)
        finally:
            self.metrics.histogram("service.admission_ms").observe(
                (time.monotonic() - start) * 1e3
            )

    def try_route(
        self, source: NodeId, target: NodeId, timeout: float | None = None
    ) -> Semilightpath | None:
        """Like :meth:`route` but returns ``None`` when unreachable."""
        try:
            return self.route(source, target, timeout=timeout)
        except NoPathError:
            return None

    def submit(
        self, source: NodeId, target: NodeId, timeout: float | None = None
    ) -> QueryFuture:
        """Asynchronous submission; see :meth:`QueryEngine.submit`."""
        return self.engine.submit(source, target, timeout=timeout)

    def cost(self, source: NodeId, target: NodeId) -> float:
        """Optimal cost at the current epoch (``inf`` when unreachable)."""
        if source == target:
            return 0.0
        path = self.try_route(source, target)
        return math.inf if path is None else path.total_cost

    # -- invalidation hooks --------------------------------------------------

    @property
    def epoch(self) -> int:
        """Current cache epoch."""
        return self.cache.epoch

    def invalidate(self) -> None:
        """Full invalidation — the network changed in an unknown way."""
        self.cache.invalidate()

    def notify_reserved(self, path: Semilightpath) -> None:
        """Channels along *path* were reserved (resources removed)."""
        self.cache.mark_path_reserved(path)

    def notify_released(self, path: Semilightpath) -> None:
        """Channels along *path* were released (resources added back)."""
        del path  # which channels improved does not help: invalidate fully
        self.cache.invalidate()

    def notify_link_degraded(
        self, tail: NodeId, head: NodeId, wavelength: int | None = None
    ) -> None:
        """A link (or one of its channels) lost capacity or got pricier."""
        self.cache.mark_channel_degraded(tail, head, wavelength)

    # -- reporting / lifecycle -----------------------------------------------

    def metrics_snapshot(self) -> dict[str, object]:
        """All service metrics as a flat dict."""
        return self.metrics.snapshot()

    def render_metrics(self) -> str:
        """Human-readable metrics report."""
        return self.metrics.render()

    def close(self) -> None:
        """Shut down the worker pool (queued requests are completed)."""
        self.engine.shutdown()

    def __enter__(self) -> "RoutingService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
