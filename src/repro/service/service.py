"""The routing-service facade: cache + engine + metrics in one object.

:class:`RoutingService` is the serving layer's front door.  It owns an
:class:`~repro.service.cache.EpochRouterCache` (epoch-versioned ``G_all``
and per-source trees), a :class:`~repro.service.engine.QueryEngine`
(worker pool, bounded queue, deadlines, coalescing) and a
:class:`~repro.service.metrics.MetricsRegistry` wired through both.

Static serving::

    service = RoutingService(network)
    path = service.route(s, t)

On-line provisioning (the paper's motivating workload) hangs a service
off a provisioner so admissions reuse cached trees::

    prov = SemilightpathProvisioner(network)
    prov.attach_service(workers=4)
    conn = prov.establish(s, t)       # routed through the cache

After each admission the provisioner notifies the service which channels
were reserved; the cache keeps every tree that avoids them (reserving
can only remove resources, so untouched trees stay optimal) and bumps
the epoch for the rest.  Releases invalidate fully — freed channels can
improve arbitrary routes.

Degraded-mode serving
---------------------
:meth:`RoutingService.route_resilient` answers through a three-step
degrade chain and reports *how* it answered in a :class:`RouteOutcome`:

1. **fresh** — the normal engine path (retry/backoff and circuit breaker
   included when configured);
2. **stale** — when the backend fails transiently or the breaker is
   open, the last-good answer for the pair is served with an explicit
   staleness flag (``outcome.stale``) and counted under
   ``service.stale_served``; a background revalidation is submitted so
   the cache re-warms as soon as the backend heals;
3. **rebuild** — with no last-good answer, the query falls back to a
   shared-state-free Theorem-1 rebuild on a fresh snapshot
   (:meth:`~repro.service.cache.EpochRouterCache.route_rebuild`), which
   stays available while the shared ``G'``/``G_all`` is
   mid-invalidation.
"""

from __future__ import annotations

import math
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Hashable

from repro.core.semilightpath import Semilightpath
from repro.exceptions import (
    CircuitOpenError,
    NoPathError,
    ServiceClosedError,
    ServiceOverloadError,
    TransientBackendError,
)
from repro.service.cache import EpochRouterCache
from repro.service.engine import QueryEngine, QueryFuture
from repro.service.metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.network import WDMNetwork
    from repro.faults.resilience import CircuitBreaker, RetryPolicy

__all__ = ["RouteOutcome", "RoutingService"]

NodeId = Hashable


@dataclass(frozen=True)
class RouteOutcome:
    """One :meth:`RoutingService.route_resilient` answer, with provenance.

    ``mode`` is ``"fresh"`` / ``"stale"`` / ``"rebuild"``; ``epoch`` is
    the cache epoch the path was computed on (``-1`` for rebuild answers,
    which carry their own ``snapshot`` network instead).
    """

    path: Semilightpath
    epoch: int
    mode: str = "fresh"
    snapshot: "WDMNetwork | None" = None

    @property
    def stale(self) -> bool:
        """Explicit staleness flag: the answer predates the current epoch."""
        return self.mode == "stale"


class RoutingService:
    """Request-driven optimal semilightpath routing with caching and metrics.

    Parameters
    ----------
    network:
        A static :class:`~repro.core.network.WDMNetwork`, or a callable
        returning the current network view (called once per cache
        rebuild).
    workers:
        Worker threads for the query engine; ``0`` serves synchronously
        on the calling thread.
    queue_limit:
        Pending-request bound; excess submissions raise
        :class:`~repro.exceptions.ServiceOverloadError`.
    heap:
        Shortest-path kernel for the underlying router (default
        ``"flat"``, the CSR fast path; see
        :class:`~repro.core.routing.LiangShenRouter`).
    coalesce:
        Batch pending same-source queries onto one tree (default on).
    metrics:
        Bring-your-own registry; a private one is created otherwise.
    retry:
        Optional :class:`~repro.faults.resilience.RetryPolicy` for
        transient backend failures, forwarded to the engine.
    breaker:
        Optional :class:`~repro.faults.resilience.CircuitBreaker` around
        the routing backend; its state is published as the
        ``engine.breaker_state`` gauge (0 closed, 1 half-open, 2 open).
    allow_stale:
        Whether :meth:`route_resilient` may serve last-good answers when
        the backend is down (default on).
    last_good_limit:
        Bound on the last-good answer store (LRU-evicted).
    incremental:
        Opt-in delta-epoch cache maintenance: fault/recovery
        notifications patch the shared ``G_all`` overlay in place instead
        of rebuilding it (see
        :class:`~repro.service.cache.EpochRouterCache`).  Default off.

    Example
    -------
    >>> from repro.topology.reference import paper_figure1_network
    >>> with RoutingService(paper_figure1_network(), workers=0) as service:
    ...     service.route(1, 7).total_cost
    2.0
    """

    def __init__(
        self,
        network: "WDMNetwork | Callable[[], WDMNetwork]",
        workers: int = 4,
        queue_limit: int = 256,
        heap: str = "flat",
        coalesce: bool = True,
        metrics: MetricsRegistry | None = None,
        retry: "RetryPolicy | None" = None,
        breaker: "CircuitBreaker | None" = None,
        allow_stale: bool = True,
        last_good_limit: int = 65536,
        incremental: bool = False,
    ) -> None:
        if last_good_limit < 1:
            raise ValueError("last_good_limit must be positive")
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.cache = EpochRouterCache(
            network, heap=heap, metrics=self.metrics, incremental=incremental
        )
        self.engine = QueryEngine(
            self.cache,
            workers=workers,
            queue_limit=queue_limit,
            coalesce=coalesce,
            metrics=self.metrics,
            retry=retry,
            breaker=breaker,
        )
        self.allow_stale = allow_stale
        self._last_good_limit = last_good_limit
        self._last_good: OrderedDict[
            tuple[NodeId, NodeId], tuple[Semilightpath, int]
        ] = OrderedDict()
        self._last_good_lock = threading.Lock()
        if breaker is not None:
            states = {"closed": 0.0, "half-open": 1.0, "open": 2.0}
            self.metrics.register_callback(
                "engine.breaker_state", lambda: states.get(breaker.state, -1.0)
            )

    # -- queries -------------------------------------------------------------

    def route(
        self, source: NodeId, target: NodeId, timeout: float | None = None
    ) -> Semilightpath:
        """Optimal semilightpath at the current epoch.

        Raises :class:`~repro.exceptions.NoPathError` when unreachable,
        :class:`~repro.exceptions.ServiceOverloadError` on a full queue,
        :class:`~repro.exceptions.DeadlineExceeded` when *timeout*
        elapses before an answer arrives.
        """
        start = time.monotonic()
        try:
            path, epoch = self.engine.route_with_epoch(
                source, target, timeout=timeout
            )
            self._remember(source, target, path, epoch)
            return path
        finally:
            self.metrics.histogram("service.admission_ms").observe(
                (time.monotonic() - start) * 1e3
            )

    def route_resilient(
        self, source: NodeId, target: NodeId, timeout: float | None = None
    ) -> RouteOutcome:
        """Degraded-mode routing: fresh, else stale, else rebuild.

        Semantic outcomes (:class:`~repro.exceptions.NoPathError`,
        deadline/overload rejections) propagate unchanged — degradation
        only engages when the *backend* fails
        (:class:`~repro.exceptions.TransientBackendError` surviving the
        engine's retries, or :class:`~repro.exceptions.CircuitOpenError`
        from an open breaker).  See the module docstring for the chain.
        """
        start = time.monotonic()
        try:
            path, epoch = self.engine.route_with_epoch(
                source, target, timeout=timeout
            )
            self._remember(source, target, path, epoch)
            return RouteOutcome(path=path, epoch=epoch, mode="fresh")
        except (TransientBackendError, CircuitOpenError):
            outcome = self._degraded(source, target)
            if outcome is None:
                raise
            return outcome
        finally:
            self.metrics.histogram("service.admission_ms").observe(
                (time.monotonic() - start) * 1e3
            )

    def _degraded(self, source: NodeId, target: NodeId) -> RouteOutcome | None:
        """Stale-while-revalidate, then shared-state-free rebuild."""
        if self.allow_stale:
            with self._last_good_lock:
                entry = self._last_good.get((source, target))
            if entry is not None:
                path, epoch = entry
                self.metrics.counter("service.stale_served").inc()
                self._revalidate(source, target)
                return RouteOutcome(path=path, epoch=epoch, mode="stale")
        try:
            path, snapshot = self.cache.route_rebuild(source, target)
        except TransientBackendError:
            return None  # rebuild hit the same fault; caller re-raises fresh error
        self.metrics.counter("service.rebuild_fallback").inc()
        return RouteOutcome(path=path, epoch=-1, mode="rebuild", snapshot=snapshot)

    def _revalidate(self, source: NodeId, target: NodeId) -> None:
        """Fire-and-forget refresh behind a stale answer (workers only)."""
        if self.engine.num_workers == 0:
            return
        try:
            self.engine.submit(source, target)
            self.metrics.counter("service.revalidations").inc()
        except (ServiceOverloadError, ServiceClosedError):
            pass  # shedding revalidation load is fine; staleness was flagged

    def _remember(
        self, source: NodeId, target: NodeId, path: Semilightpath, epoch: int
    ) -> None:
        with self._last_good_lock:
            store = self._last_good
            store[(source, target)] = (path, epoch)
            store.move_to_end((source, target))
            while len(store) > self._last_good_limit:
                store.popitem(last=False)
            size = len(store)
        self.metrics.gauge("service.last_good_size").set(size)

    def try_route(
        self, source: NodeId, target: NodeId, timeout: float | None = None
    ) -> Semilightpath | None:
        """Like :meth:`route` but returns ``None`` when unreachable."""
        try:
            return self.route(source, target, timeout=timeout)
        except NoPathError:
            return None

    def submit(
        self, source: NodeId, target: NodeId, timeout: float | None = None
    ) -> QueryFuture:
        """Asynchronous submission; see :meth:`QueryEngine.submit`."""
        return self.engine.submit(source, target, timeout=timeout)

    def cost(self, source: NodeId, target: NodeId) -> float:
        """Optimal cost at the current epoch (``inf`` when unreachable)."""
        if source == target:
            return 0.0
        path = self.try_route(source, target)
        return math.inf if path is None else path.total_cost

    def route_tree(self, source: NodeId) -> dict[NodeId, Semilightpath]:
        """Optimal semilightpaths from *source* to every reachable node.

        The Corollary 1 one-to-all tree at the current epoch, served from
        the same cached trees :meth:`route` reads — one call warms the
        cache for every pair out of *source*.  Unreachable nodes are
        simply absent (no :class:`~repro.exceptions.NoPathError`; a
        one-to-all answer is partial by design).  Every returned path is
        remembered for stale-serving, so a tree call also refreshes the
        degraded-mode safety net.
        """
        start = time.monotonic()
        try:
            tree = self.cache.tree(source)
            epoch = self.cache.epoch
            for target, path in tree.items():
                self._remember(source, target, path, epoch)
            return tree
        finally:
            self.metrics.histogram("service.admission_ms").observe(
                (time.monotonic() - start) * 1e3
            )

    # -- invalidation hooks --------------------------------------------------

    @property
    def epoch(self) -> int:
        """Current cache epoch."""
        return self.cache.epoch

    def invalidate(self) -> None:
        """Full invalidation — the network changed in an unknown way."""
        self.cache.invalidate()

    def notify_reserved(self, path: Semilightpath) -> None:
        """Channels along *path* were reserved (resources removed)."""
        self.cache.mark_path_reserved(path)

    def notify_released(self, path: Semilightpath) -> None:
        """Channels along *path* were released (resources added back)."""
        del path  # which channels improved does not help: invalidate fully
        self.cache.invalidate()

    def notify_link_degraded(
        self, tail: NodeId, head: NodeId, wavelength: int | None = None
    ) -> None:
        """A link (or one of its channels) lost capacity or got pricier."""
        self.cache.mark_channel_degraded(tail, head, wavelength)

    def notify_link_recovered(
        self, tail: NodeId, head: NodeId, wavelength: int | None = None
    ) -> None:
        """A link (or one of its channels) came back into service."""
        self.cache.mark_channel_recovered(tail, head, wavelength)

    def notify_converter_degraded(self, node: NodeId) -> None:
        """The converter bank at *node* failed (continuity only)."""
        self.cache.mark_converter_failed(node)

    def notify_converter_recovered(self, node: NodeId) -> None:
        """The converter bank at *node* recovered."""
        self.cache.mark_converter_recovered(node)

    # -- reporting / lifecycle -----------------------------------------------

    def metrics_snapshot(self) -> dict[str, object]:
        """All service metrics as a flat dict."""
        return self.metrics.snapshot()

    def render_metrics(self) -> str:
        """Human-readable metrics report."""
        return self.metrics.render()

    def close(self) -> None:
        """Shut down the worker pool (queued requests are completed)."""
        self.engine.shutdown()

    def __enter__(self) -> "RoutingService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
