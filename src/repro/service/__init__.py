"""Request-driven routing service above ``core`` / ``wdm`` / ``topology``.

The serving subsystem for the ROADMAP's production-scale goal: instead of
rebuilding the Liang–Shen auxiliary graph per query, a long-lived
:class:`RoutingService` memoizes ``G_all`` and per-source shortest-path
trees behind a monotonically increasing **network epoch**, executes
queries on a worker pool with backpressure and deadlines, and reports
cache/queue/latency metrics.

Layers (see ``docs/service.md``):

* :mod:`repro.service.metrics` — counters, gauges, histograms, registry.
* :mod:`repro.service.cache` — :class:`EpochRouterCache`, the
  epoch-versioned ``G_all`` / tree cache with full and per-channel
  invalidation.
* :mod:`repro.service.engine` — :class:`QueryEngine`, the bounded-queue
  worker pool with same-source coalescing.
* :mod:`repro.service.service` — :class:`RoutingService`, the facade the
  provisioning layer and the CLI use.
"""

from repro.service.cache import EpochRouterCache
from repro.service.engine import QueryEngine, QueryFuture
from repro.service.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.service.service import RoutingService

__all__ = [
    "RoutingService",
    "EpochRouterCache",
    "QueryEngine",
    "QueryFuture",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
]
