"""Event logging for provisioning sessions.

:class:`EventLog` records what happened during a dynamic-traffic run —
arrivals, admissions (with the routed path), blocks, departures — as
plain dict events that serialize to JSON lines.  Logs replay nowhere (the
simulation is already deterministic from its seed); their purpose is
*auditability*: post-hoc analysis, debugging a blocking spike, or feeding
external tooling.

`DynamicSimulation` accepts an ``observer`` callable; an
:class:`EventLog` instance is one.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from repro.io.serialization import path_to_json

__all__ = ["EventLog"]


@dataclass
class EventLog:
    """In-memory event recorder with JSONL export.

    Each event is a dict with at least ``kind`` and ``time``; admission
    events embed the routed path document.
    """

    events: list[dict[str, Any]] = field(default_factory=list)

    def __call__(self, kind: str, time: float, **payload: Any) -> None:
        """Observer entry point (called by the simulation)."""
        event = {"kind": kind, "time": time}
        event.update(payload)
        self.events.append(event)

    # -- queries ------------------------------------------------------------

    def of_kind(self, kind: str) -> list[dict[str, Any]]:
        """All events of one kind, in order."""
        return [e for e in self.events if e["kind"] == kind]

    @property
    def num_events(self) -> int:
        """Total recorded events."""
        return len(self.events)

    def summary(self) -> dict[str, int]:
        """Event counts by kind."""
        counts: dict[str, int] = {}
        for event in self.events:
            counts[event["kind"]] = counts.get(event["kind"], 0) + 1
        return counts

    # -- serialization --------------------------------------------------------

    def to_jsonl(self) -> str:
        """One JSON document per line, in event order."""
        return "\n".join(json.dumps(e, sort_keys=True) for e in self.events)

    @staticmethod
    def from_jsonl(text: str) -> "EventLog":
        """Inverse of :meth:`to_jsonl`."""
        log = EventLog()
        for line in text.splitlines():
            if line.strip():
                log.events.append(json.loads(line))
        return log

    @staticmethod
    def path_document(path) -> dict[str, Any]:
        """A path as an embeddable JSON document (for admit events)."""
        return json.loads(path_to_json(path))
