"""Dynamic WDM provisioning (routing and wavelength assignment) layer.

The paper motivates semilightpath routing with on-line circuit switching in
wide-area networks: connection requests arrive over time, each needs a
transmission path with concrete wavelengths reserved on every link, and
resources return to the pool when the connection ends.  This subpackage is
that system, built on the optimal-semilightpath router:

* :mod:`~repro.wdm.state` — per-(link, wavelength) occupancy with safe
  reserve/release,
* :mod:`~repro.wdm.provisioning` — admit connections by routing on the
  *residual* network (occupied wavelengths removed),
* :mod:`~repro.wdm.first_fit` — the classic baseline: fixed shortest-path
  routing + first-fit wavelength assignment, no conversion,
* :mod:`~repro.wdm.traffic` — seeded Poisson/exponential traffic,
* :mod:`~repro.wdm.simulation` — the dynamic event loop measuring blocking
  probability under Erlang load sweeps.
"""

from repro.wdm.first_fit import FirstFitProvisioner
from repro.wdm.optimal_protection import route_optimal_channel_disjoint_pair
from repro.wdm.planner import Demand, Plan, StaticPlanner
from repro.wdm.protection import ProtectedPath, route_disjoint_pair
from repro.wdm.provisioning import Connection, SemilightpathProvisioner
from repro.wdm.restoration import (
    RestorationReport,
    cut_fiber,
    restore,
    restore_channels,
)
from repro.wdm.simulation import BlockingStats, DynamicSimulation
from repro.wdm.state import WavelengthState
from repro.wdm.traffic import TrafficGenerator, TrafficRequest

__all__ = [
    "WavelengthState",
    "Connection",
    "SemilightpathProvisioner",
    "FirstFitProvisioner",
    "TrafficGenerator",
    "TrafficRequest",
    "DynamicSimulation",
    "BlockingStats",
    "ProtectedPath",
    "route_disjoint_pair",
    "route_optimal_channel_disjoint_pair",
    "Demand",
    "Plan",
    "StaticPlanner",
    "RestorationReport",
    "cut_fiber",
    "restore",
    "restore_channels",
]
