"""Static (offline) RWA planning over a demand matrix.

The dynamic provisioner serves one request at a time; network operators
also plan *batches*: given a static traffic matrix, route as many demands
as possible (or all, at minimum total cost) subject to channel capacity.
Static RWA is NP-hard in general; this planner implements the standard
sequential heuristic with pluggable demand orderings and seeded random
restarts:

1. order the demands (shortest-first / longest-first / given / shuffled),
2. route each on the residual network with the optimal semilightpath
   router, reserving channels as it goes,
3. over several restarts keep the plan carrying the most demands
   (ties broken by total cost).

Orderings matter: longest-first tends to carry more total traffic (big
demands grab scarce long routes before fragmentation), shortest-first
minimizes cost when everything fits.  Both folklore effects are visible
in ``benchmarks/bench_planner.py``.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Hashable, Sequence

from repro.core.network import WDMNetwork
from repro.core.routing import LiangShenRouter
from repro.core.semilightpath import Semilightpath
from repro.exceptions import NoPathError
from repro.wdm.state import WavelengthState

__all__ = ["Demand", "Plan", "StaticPlanner"]

NodeId = Hashable


@dataclass(frozen=True)
class Demand:
    """One static demand: route *count* circuits from *source* to *target*."""

    source: NodeId
    target: NodeId
    count: int = 1

    def __post_init__(self) -> None:
        if self.source == self.target:
            raise ValueError("demand endpoints must differ")
        if self.count < 1:
            raise ValueError(f"count must be >= 1, got {self.count}")


@dataclass
class Plan:
    """Outcome of one planning run."""

    routed: dict[Demand, list[Semilightpath]] = field(default_factory=dict)
    rejected: list[Demand] = field(default_factory=list)
    total_cost: float = 0.0

    @property
    def circuits_requested(self) -> int:
        """Total circuits across all demands (routed + rejected)."""
        routed = sum(d.count for d in self.routed)
        return routed + sum(d.count for d in self.rejected)

    @property
    def circuits_carried(self) -> int:
        """Circuits actually routed."""
        return sum(len(paths) for paths in self.routed.values())

    @property
    def acceptance_ratio(self) -> float:
        """Carried / requested (1.0 for an empty plan)."""
        total = self.circuits_requested
        return self.circuits_carried / total if total else 1.0


class StaticPlanner:
    """Sequential static RWA with ordering heuristics and restarts.

    Parameters
    ----------
    network:
        The WDM network (capacities via ``Λ(e)``).
    ordering:
        ``"shortest-first"`` (by hop distance), ``"longest-first"``,
        ``"given"`` (caller's order), or ``"random"`` (reshuffled per
        restart).
    restarts:
        Number of randomized attempts for ``"random"`` ordering (ignored
        otherwise); the best plan (most circuits, then least cost) wins.
    seed:
        Seed for shuffles.
    """

    def __init__(
        self,
        network: WDMNetwork,
        ordering: str = "longest-first",
        restarts: int = 1,
        seed: int = 0,
    ) -> None:
        if ordering not in ("shortest-first", "longest-first", "given", "random"):
            raise ValueError(f"unknown ordering {ordering!r}")
        if restarts < 1:
            raise ValueError(f"restarts must be >= 1, got {restarts}")
        self.network = network
        self.ordering = ordering
        self.restarts = restarts if ordering == "random" else 1
        self.seed = seed

    def plan(self, demands: Sequence[Demand]) -> Plan:
        """Produce the best plan over the configured restarts."""
        rng = random.Random(self.seed)
        best: Plan | None = None
        for _ in range(self.restarts):
            ordered = self._order(list(demands), rng)
            candidate = self._run_once(ordered)
            if best is None or self._better(candidate, best):
                best = candidate
        assert best is not None
        return best

    # -- internals -----------------------------------------------------------

    def _hop_distance(self, demand: Demand) -> int:
        """Unweighted physical hop distance (for ordering only)."""
        from collections import deque

        frontier = deque([(demand.source, 0)])
        seen = {demand.source}
        while frontier:
            node, depth = frontier.popleft()
            if node == demand.target:
                return depth
            for neighbor in self.network.successors(node):
                if neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append((neighbor, depth + 1))
        return math.inf  # type: ignore[return-value]

    def _order(self, demands: list[Demand], rng: random.Random) -> list[Demand]:
        if self.ordering == "given":
            return demands
        if self.ordering == "random":
            shuffled = demands[:]
            rng.shuffle(shuffled)
            return shuffled
        keyed = sorted(
            demands, key=lambda d: (self._hop_distance(d), repr((d.source, d.target)))
        )
        if self.ordering == "longest-first":
            keyed.reverse()
        return keyed

    def _run_once(self, ordered: list[Demand]) -> Plan:
        state = WavelengthState(self.network)
        plan = Plan()
        for demand in ordered:
            paths: list[Semilightpath] = []
            for _ in range(demand.count):
                route = self._route_residual(state)
                path = route(demand.source, demand.target)
                if path is None:
                    break
                state.reserve_path(path)
                paths.append(path)
                plan.total_cost += path.total_cost
            if len(paths) == demand.count:
                plan.routed[demand] = paths
            else:
                # All-or-nothing per demand: release partial reservations.
                for path in paths:
                    state.release_path(path)
                    plan.total_cost -= path.total_cost
                plan.rejected.append(demand)
        return plan

    def _route_residual(self, state: WavelengthState):
        """Build a router over the current residual network."""
        residual = WDMNetwork(self.network.num_wavelengths)
        for node in self.network.nodes():
            residual.add_node(node, self.network.conversion(node))
        for link in self.network.links():
            occupied = state.occupied_on(link.tail, link.head)
            costs = {w: c for w, c in link.costs.items() if w not in occupied}
            residual.add_link(link.tail, link.head, costs)
        router = LiangShenRouter(residual)

        def route(source: NodeId, target: NodeId) -> Semilightpath | None:
            try:
                path = router.route(source, target).path
            except NoPathError:
                return None
            return Semilightpath(
                hops=path.hops, total_cost=path.evaluate_cost(self.network)
            )

        return route

    @staticmethod
    def _better(candidate: Plan, incumbent: Plan) -> bool:
        if candidate.circuits_carried != incumbent.circuits_carried:
            return candidate.circuits_carried > incumbent.circuits_carried
        return candidate.total_cost < incumbent.total_cost
