"""Optimal channel-disjoint semilightpath pairs via minimum-cost flow.

The active-path-first heuristic in :mod:`repro.wdm.protection` can fail on
*trap topologies*: the optimal single path uses channels whose removal
disconnects the backup, even though a (jointly more expensive) disjoint
pair exists.  For **channel disjointness** the joint problem is exactly a
2-unit minimum-cost flow on the paper's auxiliary graph ``G_{s,t}``:

* every ``E_org`` edge (a physical channel) gets capacity 1 — the two
  paths may not share a (link, wavelength) channel;
* conversion and virtual terminal edges get capacity 2 — converters and
  endpoints are shared infrastructure (documented assumption; a
  non-shareable-converter variant would simply set those capacities to 1).

The resulting pair is *jointly optimal*: it minimizes the sum of the two
path costs, which can require the working path to be individually
suboptimal.

Fiber (link) disjointness is **not** offered here: bundling all
wavelengths of a fiber under one capacity is a colored-disjoint-paths
constraint that plain arc capacities cannot express (a naive funnel node
would let flow enter on λ_i and leave on λ_j without paying conversion).
Use the APF heuristic in :mod:`repro.wdm.protection` for fiber
disjointness.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Hashable

from repro.core.auxiliary import KIND_IN, KIND_OUT, build_routing_graph
from repro.core.semilightpath import Hop, Semilightpath
from repro.exceptions import NoPathError
from repro.shortestpath.mincostflow import MinCostFlow
from repro.wdm.protection import ProtectedPath

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.network import WDMNetwork

__all__ = ["route_optimal_channel_disjoint_pair"]

NodeId = Hashable


def route_optimal_channel_disjoint_pair(
    network: "WDMNetwork", source: NodeId, target: NodeId
) -> ProtectedPath:
    """Jointly-optimal channel-disjoint semilightpath pair.

    Returns a :class:`~repro.wdm.protection.ProtectedPath` whose
    ``working`` leg is the cheaper of the two.  Raises
    :class:`NoPathError` when no channel-disjoint pair exists.
    """
    aux = build_routing_graph(network, source, target)
    flow = MinCostFlow(aux.graph.num_nodes)
    arc_records: list[tuple[int, int, float]] = []  # (tail, head, weight)
    for tail, head, weight, _tag in aux.graph.edges():
        a, b = aux.decode[tail], aux.decode[head]
        is_channel = a.kind == KIND_OUT and b.kind == KIND_IN
        capacity = 1 if is_channel else 2
        flow.add_arc(tail, head, capacity=capacity, cost=weight)
        arc_records.append((tail, head, weight))

    result = flow.solve(aux.source_id, aux.sink_id, amount=2)
    if result.flow_sent < 2:
        raise NoPathError(source, target)

    # Decompose the 2-unit flow into two auxiliary paths.
    remaining: dict[int, list[tuple[int, int]]] = {}
    for arc_id, units in enumerate(result.arc_flow):
        if units <= 0:
            continue
        tail, head, _weight = arc_records[arc_id]
        remaining.setdefault(tail, []).extend([(head, arc_id)] * units)

    paths: list[list[int]] = []
    for _ in range(2):
        ids = [aux.source_id]
        node = aux.source_id
        fuel = sum(len(v) for v in remaining.values()) + 1
        while node != aux.sink_id:
            fuel -= 1
            if fuel < 0:  # pragma: no cover - flow conservation violated
                raise RuntimeError("flow decomposition failed to terminate")
            head, _arc = remaining[node].pop()
            if not remaining[node]:
                del remaining[node]
            ids.append(head)
            node = head
        paths.append(ids)

    decoded = [_decode(aux, ids, network) for ids in paths]
    decoded.sort(key=lambda p: p.total_cost)
    pair = ProtectedPath(
        working=decoded[0], backup=decoded[1], disjointness="channel"
    )
    assert not pair.shares_channels(), "flow capacities violated"
    return pair


def _decode(aux, ids: list[int], network) -> Semilightpath:
    hops = []
    for i in range(len(ids) - 1):
        a, b = aux.decode[ids[i]], aux.decode[ids[i + 1]]
        if a.kind == KIND_OUT and b.kind == KIND_IN:
            hops.append(Hop(tail=a.node, head=b.node, wavelength=a.wavelength))
    path = Semilightpath(hops=tuple(hops))
    return Semilightpath(hops=path.hops, total_cost=path.evaluate_cost(network))
