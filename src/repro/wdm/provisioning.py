"""Connection admission over the residual network.

:class:`SemilightpathProvisioner` admits each connection request by routing
an optimal semilightpath on the *residual* network — the original network
with currently occupied channels removed — then atomically reserving the
channels the path uses.  This is exactly the paper's motivating on-line
usage: "given the network conditions, a single optical wavelength may not
be available … because some of the resources are already occupied by
existing lightpaths", hence semilightpaths with conversion.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Hashable

from repro.core.network import WDMNetwork
from repro.core.routing import LiangShenRouter
from repro.core.semilightpath import Semilightpath
from repro.exceptions import NoPathError, ReservationError
from repro.wdm.state import WavelengthState

if TYPE_CHECKING:  # pragma: no cover
    from repro.multicast.hierarchy import LightHierarchy
    from repro.multicast.splitters import SplitterMap
    from repro.service.service import RoutingService

__all__ = ["Connection", "MulticastConnection", "SemilightpathProvisioner"]

NodeId = Hashable


@dataclass(frozen=True)
class Connection:
    """A live admitted connection."""

    connection_id: int
    source: NodeId
    target: NodeId
    path: Semilightpath


@dataclass(frozen=True)
class MulticastConnection:
    """A live admitted one-to-many connection (a light-hierarchy)."""

    connection_id: int
    source: NodeId
    members: tuple[NodeId, ...]
    hierarchy: "LightHierarchy"


class SemilightpathProvisioner:
    """Admit/tear down connections using optimal semilightpath routing.

    Parameters
    ----------
    network:
        The full WDM network (capacities and cost structure).
    router_factory:
        Builds the router used per admission; defaults to
        :class:`~repro.core.routing.LiangShenRouter`.  Swappable so the
        blocking benchmarks can compare routers under identical traffic.
    packing:
        Wavelength tie-breaking among equal-cost routes:

        * ``"none"`` (default) — no preference,
        * ``"most-used"`` — prefer wavelengths already busy network-wide
          (packs the spectrum, classically lowers blocking),
        * ``"least-used"`` — prefer idle wavelengths (spreads load).

        Implemented as an infinitesimal cost perturbation on the residual
        network, far below the smallest real cost difference, so the set
        of cost-optimal routes is unchanged — only ties are broken.

    Example
    -------
    >>> from repro.topology.reference import paper_figure1_network
    >>> prov = SemilightpathProvisioner(paper_figure1_network())
    >>> conn = prov.establish(1, 7)
    >>> prov.num_active
    1
    >>> prov.teardown(conn)
    >>> prov.num_active
    0
    """

    def __init__(
        self,
        network: WDMNetwork,
        router_factory: Callable[[WDMNetwork], object] | None = None,
        packing: str = "none",
    ) -> None:
        if packing not in ("none", "most-used", "least-used"):
            raise ValueError(
                f"packing must be 'none', 'most-used' or 'least-used', "
                f"got {packing!r}"
            )
        self.network = network
        self.state = WavelengthState(network)
        self.packing = packing
        self._router_factory = router_factory or LiangShenRouter
        self._ids = itertools.count(1)
        self._active: dict[int, Connection] = {}
        self._active_multicast: dict[int, MulticastConnection] = {}
        self._service: "RoutingService | None" = None

    @property
    def num_active(self) -> int:
        """Number of currently admitted connections."""
        return len(self._active)

    @property
    def service(self) -> "RoutingService | None":
        """The attached routing service, if any."""
        return self._service

    def attach_service(
        self, service: "RoutingService | None" = None, **service_kwargs
    ) -> "RoutingService":
        """Route admissions through an epoch-cached :class:`RoutingService`.

        Without arguments a service is built over this provisioner's
        residual network (``workers=0`` by default — admissions already
        run on the caller's thread); pass ``workers=N``/``queue_limit``/
        ``heap`` through *service_kwargs*, or hand in a pre-built
        *service* whose network view is this provisioner's residual.

        Once attached, :meth:`establish` serves routes from the cache and
        notifies it after every reservation (per-channel degradation —
        cached trees avoiding the reserved channels survive) and release
        (full invalidation — freed channels can improve any route).
        """
        if service is None:
            # Imported lazily: the service layer sits *above* wdm, and the
            # provisioner must stay importable without it.
            from repro.service.service import RoutingService

            service_kwargs.setdefault("workers", 0)
            service = RoutingService(self.residual_network, **service_kwargs)
        self._service = service
        return service

    def detach_service(self) -> None:
        """Go back to per-admission router construction."""
        self._service = None

    def active_connections(self) -> list[Connection]:
        """Snapshot of live connections."""
        return list(self._active.values())

    def residual_network(self) -> WDMNetwork:
        """The network minus occupied channels.

        Channels held by live connections are simply absent from the
        residual ``Λ(e)`` sets — matching how the paper models
        unavailability (infinite weight == not a resource).
        """
        residual = WDMNetwork(
            self.network.num_wavelengths,
            default_conversion=self.network.conversion(self.network.nodes()[0])
            if self.network.num_nodes
            else None,
        )
        for node in self.network.nodes():
            residual.add_node(node, self.network.conversion(node))
        bias = self._packing_bias()
        for link in self.network.links():
            occupied = self.state.occupied_on(link.tail, link.head)
            costs = {
                w: c + bias.get(w, 0.0)
                for w, c in link.costs.items()
                if w not in occupied
            }
            residual.add_link(link.tail, link.head, costs)
        return residual

    def _packing_bias(self) -> dict[int, float]:
        """Infinitesimal per-wavelength cost nudges implementing *packing*.

        The perturbation budget (all nudges summed over the longest
        possible walk) stays below any real cost difference: epsilon is
        scaled by the smallest positive link cost divided by a generous
        walk-length bound.
        """
        if self.packing == "none":
            return {}
        usage = [0] * self.network.num_wavelengths
        for connection in self._active.values():
            for hop in connection.path.hops:
                usage[hop.wavelength] += 1
        for mconn in self._active_multicast.values():
            for _tail, _head, wavelength in mconn.hierarchy.channel_keys():
                usage[wavelength] += 1
        floor = self.network.min_link_cost()
        if not (0 < floor < float("inf")):
            floor = 1.0
        walk_bound = 4 * self.network.num_nodes * self.network.num_wavelengths + 4
        epsilon = floor / (walk_bound * (max(usage) + 1) * 1e3 + 1)
        if self.packing == "most-used":
            # Busier wavelengths get a *smaller* nudge: preferred on ties.
            return {
                w: epsilon * (max(usage) - count)
                for w, count in enumerate(usage)
            }
        return {w: epsilon * count for w, count in enumerate(usage)}

    def establish(self, source: NodeId, target: NodeId) -> Connection:
        """Admit a connection, reserving its channels.

        Raises :class:`~repro.exceptions.NoPathError` when the residual
        network cannot carry the request (the request is *blocked*).
        """
        if self._service is not None:
            path = self._service.route(source, target)
        else:
            residual = self.residual_network()
            router = self._router_factory(residual)
            path = router.route(source, target).path
        # Re-price the path on the full network (costs are identical — the
        # residual only removes channels — but the claimed total must refer
        # to the real network for auditability).
        path = Semilightpath(hops=path.hops, total_cost=path.evaluate_cost(self.network))
        self.state.reserve_path(path)
        if self._service is not None:
            if self.packing == "none":
                self._service.notify_reserved(path)
            else:
                # Packing re-biases *every* residual cost after each
                # admission, so per-channel degradation is not enough.
                self._service.invalidate()
        connection = Connection(
            connection_id=next(self._ids),
            source=source,
            target=target,
            path=path,
        )
        self._active[connection.connection_id] = connection
        return connection

    def admit_path(self, path: Semilightpath) -> Connection:
        """Admit a connection over a caller-supplied path.

        Used by restoration and planning tools that compute paths through
        their own logic; the channels are reserved atomically and the
        connection is tracked like any other.
        """
        self.state.reserve_path(path)
        if self._service is not None:
            if self.packing == "none":
                self._service.notify_reserved(path)
            else:
                self._service.invalidate()
        connection = Connection(
            connection_id=next(self._ids),
            source=path.source,
            target=path.target,
            path=path,
        )
        self._active[connection.connection_id] = connection
        return connection

    def teardown(self, connection: Connection) -> None:
        """Release a live connection's channels."""
        if connection.connection_id not in self._active:
            raise ReservationError(
                f"connection {connection.connection_id} is not active"
            )
        self.state.release_path(connection.path)
        del self._active[connection.connection_id]
        if self._service is not None:
            self._service.notify_released(connection.path)

    def try_establish(self, source: NodeId, target: NodeId) -> Connection | None:
        """Like :meth:`establish` but returns None on blocking."""
        try:
            return self.establish(source, target)
        except NoPathError:
            return None

    # -- multicast admissions -------------------------------------------------

    @property
    def num_active_multicast(self) -> int:
        """Number of currently admitted multicast connections."""
        return len(self._active_multicast)

    def active_multicast_connections(self) -> list[MulticastConnection]:
        """Snapshot of live multicast connections."""
        return list(self._active_multicast.values())

    def establish_multicast(
        self,
        source: NodeId,
        members: "tuple[NodeId, ...] | list[NodeId]",
        splitters: "SplitterMap | None" = None,
    ) -> MulticastConnection:
        """Admit a one-to-many connection as a light-hierarchy.

        The hierarchy is routed on the *residual* network (occupied
        channels absent) under the node splitter constraints, re-priced
        against the full network, and its channels reserved atomically —
        a conflicting reservation rolls the admission back without
        partial effect.  Raises
        :class:`~repro.exceptions.MulticastBlockedError` (a
        :class:`~repro.exceptions.NoPathError`) when the residual network
        cannot join every member.
        """
        # Imported lazily: multicast builds on core/verify and must stay
        # optional for unicast-only deployments of this module.
        from repro.multicast.hierarchy import LightHierarchy, MulticastRequest
        from repro.multicast.router import MulticastRouter

        request = MulticastRequest(source=source, members=tuple(members))
        residual = self.residual_network()
        router = MulticastRouter(residual, splitters=splitters)
        hierarchy = router.route(request).hierarchy
        # Re-price on the full network (packing bias off, real costs on).
        repriced_paths = {
            member: Semilightpath(
                hops=path.hops, total_cost=path.evaluate_cost(self.network)
            )
            for member, path in hierarchy.paths.items()
        }
        repriced = LightHierarchy(
            source=hierarchy.source,
            members=hierarchy.members,
            paths=repriced_paths,
        )
        hierarchy = LightHierarchy(
            source=repriced.source,
            members=repriced.members,
            paths=repriced.paths,
            total_cost=repriced.evaluate_cost(self.network),
        )
        channels = sorted(hierarchy.channel_keys(), key=repr)
        self.state.reserve_channels(channels)
        if self._service is not None:
            if self.packing == "none":
                # Per-channel degradation: cached trees not using the
                # reserved channels survive (same rule as unicast).
                for tail, head, wavelength in channels:
                    self._service.notify_link_degraded(tail, head, wavelength)
            else:
                self._service.invalidate()
        connection = MulticastConnection(
            connection_id=next(self._ids),
            source=source,
            members=request.members,
            hierarchy=hierarchy,
        )
        self._active_multicast[connection.connection_id] = connection
        return connection

    def teardown_multicast(self, connection: MulticastConnection) -> None:
        """Release a live multicast connection's channels."""
        if connection.connection_id not in self._active_multicast:
            raise ReservationError(
                f"multicast connection {connection.connection_id} is not active"
            )
        self.state.release_channels(
            sorted(connection.hierarchy.channel_keys(), key=repr)
        )
        del self._active_multicast[connection.connection_id]
        if self._service is not None:
            # Freed channels can improve any cached route: full refresh.
            self._service.invalidate()

    def try_establish_multicast(
        self,
        source: NodeId,
        members: "tuple[NodeId, ...] | list[NodeId]",
        splitters: "SplitterMap | None" = None,
    ) -> MulticastConnection | None:
        """Like :meth:`establish_multicast` but returns None on blocking."""
        try:
            return self.establish_multicast(source, members, splitters=splitters)
        except NoPathError:  # MulticastBlockedError subclasses NoPathError
            return None
