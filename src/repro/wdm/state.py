"""Per-(link, wavelength) occupancy state.

:class:`WavelengthState` tracks which wavelength channels are currently
held by live connections.  It is deliberately independent of any routing
policy: provisioners reserve and release through it, and it enforces the
two invariants that matter — no double-reservation and no release of a
channel that is not held.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Hashable, Iterable

from repro.core.semilightpath import Semilightpath
from repro.exceptions import ReservationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.network import WDMNetwork

__all__ = ["WavelengthState"]

NodeId = Hashable
Channel = tuple[NodeId, NodeId, int]  # (tail, head, wavelength)


class WavelengthState:
    """Occupancy ledger over a network's wavelength channels.

    Example
    -------
    >>> from repro.topology.reference import paper_figure1_network
    >>> state = WavelengthState(paper_figure1_network())
    >>> state.is_free(1, 2, 0)
    True
    >>> state.reserve_channels([(1, 2, 0)])
    >>> state.is_free(1, 2, 0)
    False
    """

    def __init__(self, network: "WDMNetwork") -> None:
        self.network = network
        self._occupied: set[Channel] = set()

    @property
    def num_occupied(self) -> int:
        """Number of currently reserved channels."""
        return len(self._occupied)

    @property
    def total_channels(self) -> int:
        """Total channels in the network (``Σ_e |Λ(e)|``)."""
        return self.network.total_link_wavelengths

    @property
    def utilization(self) -> float:
        """Fraction of channels currently reserved (0 for empty networks)."""
        total = self.total_channels
        return self.num_occupied / total if total else 0.0

    def is_free(self, tail: NodeId, head: NodeId, wavelength: int) -> bool:
        """True when the channel exists and is not reserved."""
        link = self.network.link(tail, head)
        if wavelength not in link.costs:
            return False
        return (tail, head, wavelength) not in self._occupied

    def occupied_on(self, tail: NodeId, head: NodeId) -> frozenset[int]:
        """Wavelengths currently reserved on one link."""
        return frozenset(
            w for (t, h, w) in self._occupied if t == tail and h == head
        )

    def occupied_channels(self) -> frozenset[Channel]:
        """Snapshot of every reserved ``(tail, head, wavelength)`` channel.

        A frozen copy, safe to hold across later reserves/releases —
        restoration and fault-injection tooling diff these snapshots to
        find which connections a failure touched.
        """
        return frozenset(self._occupied)

    def free_on(self, tail: NodeId, head: NodeId) -> frozenset[int]:
        """Available-and-free wavelengths on one link."""
        link = self.network.link(tail, head)
        return frozenset(
            w for w in link.costs if (tail, head, w) not in self._occupied
        )

    def reserve_channels(self, channels: Iterable[Channel]) -> None:
        """Atomically reserve *channels*; raises (without partial effect)
        if any is occupied or nonexistent."""
        wanted = list(channels)
        for tail, head, wavelength in wanted:
            link = self.network.link(tail, head)
            if wavelength not in link.costs:
                raise ReservationError(
                    f"channel λ{wavelength + 1} does not exist on "
                    f"{tail!r}->{head!r}"
                )
            if (tail, head, wavelength) in self._occupied:
                raise ReservationError(
                    f"channel λ{wavelength + 1} on {tail!r}->{head!r} "
                    f"is already reserved"
                )
        seen: set[Channel] = set()
        for channel in wanted:
            if channel in seen:
                raise ReservationError(f"duplicate channel in request: {channel!r}")
            seen.add(channel)
        self._occupied.update(wanted)

    def release_channels(self, channels: Iterable[Channel]) -> None:
        """Release previously reserved *channels*; raises on any not held."""
        wanted = list(channels)
        for channel in wanted:
            if channel not in self._occupied:
                raise ReservationError(f"channel not reserved: {channel!r}")
        self._occupied.difference_update(wanted)

    def reserve_path(self, path: Semilightpath) -> None:
        """Reserve every channel a semilightpath uses."""
        self.reserve_channels(
            (hop.tail, hop.head, hop.wavelength) for hop in path.hops
        )

    def release_path(self, path: Semilightpath) -> None:
        """Release every channel a semilightpath uses."""
        self.release_channels(
            (hop.tail, hop.head, hop.wavelength) for hop in path.hops
        )
