"""Dynamic-traffic simulation loop and blocking-probability measurement.

:class:`DynamicSimulation` replays a traffic trace against a provisioner:
requests are admitted at their arrival instants (departures processed
first, timestamp order), blocked requests are counted, and admitted
connections release their channels at departure.  The headline metric is
the *blocking probability* — the fraction of offered requests the policy
could not carry — as a function of offered load, the standard figure of
merit for on-line RWA policies and the natural empirical rendering of the
paper's motivation for semilightpaths.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Hashable, Protocol, Sequence

from repro.wdm.provisioning import Connection
from repro.wdm.traffic import TrafficRequest

__all__ = ["BlockingStats", "DynamicSimulation"]

NodeId = Hashable


class _Provisioner(Protocol):
    """Anything with try_establish/teardown (duck-typed)."""

    def try_establish(self, source: NodeId, target: NodeId) -> Connection | None: ...

    def teardown(self, connection: Connection) -> None: ...


@dataclass
class BlockingStats:
    """Aggregate outcome of one dynamic-traffic run."""

    offered: int = 0
    admitted: int = 0
    blocked: int = 0
    total_hops: int = 0
    total_conversions: int = 0
    total_cost: float = 0.0
    peak_active: int = 0
    per_pair_blocked: dict = field(default_factory=dict)

    @property
    def blocking_probability(self) -> float:
        """Blocked / offered (0 when nothing was offered)."""
        return self.blocked / self.offered if self.offered else 0.0

    @property
    def mean_hops(self) -> float:
        """Mean hop count over admitted connections."""
        return self.total_hops / self.admitted if self.admitted else 0.0

    @property
    def mean_conversions(self) -> float:
        """Mean wavelength conversions per admitted connection."""
        return self.total_conversions / self.admitted if self.admitted else 0.0

    @property
    def mean_cost(self) -> float:
        """Mean Eq. (1) cost over admitted connections."""
        return self.total_cost / self.admitted if self.admitted else 0.0


class DynamicSimulation:
    """Replay a traffic trace against a provisioning policy.

    Parameters
    ----------
    provisioner:
        Anything with ``try_establish`` / ``teardown``.
    observer:
        Optional callable ``(kind, time, **payload)`` invoked for every
        simulation event (``admit`` / ``block`` / ``depart``); an
        :class:`~repro.wdm.events.EventLog` instance fits.

    Example
    -------
    >>> from repro.topology.reference import nsfnet_network
    >>> from repro.wdm.provisioning import SemilightpathProvisioner
    >>> from repro.wdm.traffic import TrafficGenerator
    >>> net = nsfnet_network(num_wavelengths=4)
    >>> sim = DynamicSimulation(SemilightpathProvisioner(net))
    >>> trace = TrafficGenerator(net.nodes(), 5.0, 1.0, seed=7).generate(50)
    >>> stats = sim.run(trace)
    >>> stats.offered
    50
    """

    def __init__(self, provisioner: _Provisioner, observer=None, warmup: int = 0) -> None:
        if warmup < 0:
            raise ValueError(f"warmup must be >= 0, got {warmup}")
        self.provisioner = provisioner
        self.observer = observer
        #: Number of leading requests processed (admitted/blocked as usual)
        #: but excluded from the statistics — the standard transient-
        #: discard so blocking probabilities reflect steady state.
        self.warmup = warmup

    def _emit(self, kind: str, time: float, **payload) -> None:
        if self.observer is not None:
            self.observer(kind, time, **payload)

    def run(self, trace: Sequence[TrafficRequest]) -> BlockingStats:
        """Process *trace* in timestamp order; returns the aggregate stats.

        Departures scheduled at or before an arrival's timestamp are
        processed first, so resources free exactly when holding times
        elapse.
        """
        stats = BlockingStats()
        departures: list[tuple[float, int, Connection]] = []
        active = 0
        for index, request in enumerate(
            sorted(trace, key=lambda r: r.arrival_time)
        ):
            measured = index >= self.warmup
            while departures and departures[0][0] <= request.arrival_time:
                _at, _seq, connection = heapq.heappop(departures)
                self.provisioner.teardown(connection)
                self._emit(
                    "depart", _at, connection_id=connection.connection_id
                )
                active -= 1
            if measured:
                stats.offered += 1
            connection = self.provisioner.try_establish(request.source, request.target)
            if connection is None:
                if measured:
                    stats.blocked += 1
                    key = (request.source, request.target)
                    stats.per_pair_blocked[key] = (
                        stats.per_pair_blocked.get(key, 0) + 1
                    )
                self._emit(
                    "block",
                    request.arrival_time,
                    request_id=request.request_id,
                    source=str(request.source),
                    target=str(request.target),
                )
                continue
            if measured:
                stats.admitted += 1
                stats.total_hops += connection.path.num_hops
                stats.total_conversions += connection.path.num_conversions
                stats.total_cost += connection.path.total_cost
            self._emit(
                "admit",
                request.arrival_time,
                request_id=request.request_id,
                connection_id=connection.connection_id,
                cost=connection.path.total_cost,
                hops=connection.path.num_hops,
                conversions=connection.path.num_conversions,
            )
            active += 1
            if measured:
                stats.peak_active = max(stats.peak_active, active)
            heapq.heappush(
                departures,
                (request.departure_time, connection.connection_id, connection),
            )
        while departures:
            _at, _seq, connection = heapq.heappop(departures)
            self.provisioner.teardown(connection)
            self._emit("depart", _at, connection_id=connection.connection_id)
        return stats
