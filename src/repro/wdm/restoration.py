"""Failure injection and restoration.

Fiber cuts are the canonical WDM failure.  This module simulates them
against a live :class:`~repro.wdm.provisioning.SemilightpathProvisioner`:

1. :func:`cut_fiber` — identify the connections whose working path crosses
   the cut fiber (either direction),
2. tear their channels down,
3. attempt to re-route each victim on the post-cut residual network
   (channels of *surviving* connections stay reserved; the cut fiber's
   channels are gone),
4. report a :class:`RestorationReport` — restored/lost counts and the
   extra cost restoration paid.

Restoration here is *reactive path restoration* (no pre-planned backup);
pre-planned 1+1 protection lives in :mod:`repro.wdm.protection`.

Two failure granularities are supported, matching the fault kinds the
chaos layer (:mod:`repro.faults`) injects live: whole-fiber cuts
(:func:`restore`) and individual ``(tail, head, λ)`` channel drops
(:func:`restore_channels` — a transponder or filter dying on one
wavelength while the fiber stays lit).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterable

from repro.core.network import WDMNetwork
from repro.core.routing import LiangShenRouter
from repro.core.semilightpath import Semilightpath
from repro.exceptions import NoPathError, UnknownLinkError
from repro.wdm.provisioning import Connection, SemilightpathProvisioner

__all__ = ["RestorationReport", "cut_fiber", "restore", "restore_channels"]

NodeId = Hashable
Channel = tuple[NodeId, NodeId, int]  # (tail, head, wavelength)


@dataclass
class RestorationReport:
    """Outcome of one restoration episode (fiber cut or channel drops)."""

    fiber: tuple[NodeId, NodeId] | None = None
    channels: tuple[Channel, ...] = ()
    affected: list[Connection] = field(default_factory=list)
    restored: list[Connection] = field(default_factory=list)
    lost: list[Connection] = field(default_factory=list)
    cost_before: float = 0.0
    cost_after: float = 0.0

    @property
    def restoration_ratio(self) -> float:
        """Restored / affected (1.0 when nothing was affected)."""
        if not self.affected:
            return 1.0
        return len(self.restored) / len(self.affected)

    @property
    def extra_cost(self) -> float:
        """Restoration path cost minus the failed paths' cost (restored only)."""
        return self.cost_after - self.cost_before


def _crosses(path: Semilightpath, tail: NodeId, head: NodeId) -> bool:
    fiber = frozenset((tail, head))
    return any(frozenset((h.tail, h.head)) == fiber for h in path.hops)


def cut_fiber(
    provisioner: SemilightpathProvisioner, tail: NodeId, head: NodeId
) -> list[Connection]:
    """Connections whose working path crosses the fiber (either direction)."""
    if not (
        provisioner.network.has_link(tail, head)
        or provisioner.network.has_link(head, tail)
    ):
        raise UnknownLinkError(tail, head)
    return [
        connection
        for connection in provisioner.active_connections()
        if _crosses(connection.path, tail, head)
    ]


def _residual_network(
    provisioner: SemilightpathProvisioner,
    failed_fibers: frozenset = frozenset(),
    failed_channels: frozenset = frozenset(),
) -> WDMNetwork:
    """Full network minus failed resources minus surviving reservations.

    ``failed_fibers`` holds ``frozenset({tail, head})`` pairs (both
    directions die together); ``failed_channels`` holds directed
    ``(tail, head, wavelength)`` triples.  A link losing every channel
    stays as a dark link — topology survives, capacity does not.
    """
    residual = WDMNetwork(provisioner.network.num_wavelengths)
    for node in provisioner.network.nodes():
        residual.add_node(node, provisioner.network.conversion(node))
    for link in provisioner.network.links():
        if frozenset((link.tail, link.head)) in failed_fibers:
            continue
        occupied = provisioner.state.occupied_on(link.tail, link.head)
        costs = {
            w: c
            for w, c in link.costs.items()
            if w not in occupied
            and (link.tail, link.head, w) not in failed_channels
        }
        residual.add_link(link.tail, link.head, costs)
    return residual


def _reroute_victims(
    provisioner: SemilightpathProvisioner,
    report: RestorationReport,
    failed_fibers: frozenset = frozenset(),
    failed_channels: frozenset = frozenset(),
) -> RestorationReport:
    """Tear down the report's victims and re-route each on the residual.

    The residual is rebuilt per victim because each successful
    restoration reserves channels the next victim must avoid.
    """
    for victim in report.affected:
        provisioner.teardown(victim)
    for victim in report.affected:
        residual = _residual_network(provisioner, failed_fibers, failed_channels)
        try:
            path = LiangShenRouter(residual).route(victim.source, victim.target).path
        except NoPathError:
            report.lost.append(victim)
            continue
        path = Semilightpath(
            hops=path.hops, total_cost=path.evaluate_cost(provisioner.network)
        )
        replacement = provisioner.admit_path(path)
        report.restored.append(replacement)
        report.cost_before += victim.path.total_cost
        report.cost_after += path.total_cost
    return report


def restore(
    provisioner: SemilightpathProvisioner, tail: NodeId, head: NodeId
) -> RestorationReport:
    """Cut the fiber ``{tail, head}`` and re-route the victims.

    The provisioner is mutated: victims are torn down, survivors keep
    their channels, restored victims get fresh connections routed on a
    residual network with the cut fiber removed.  Lost victims stay down.
    """
    victims = cut_fiber(provisioner, tail, head)
    report = RestorationReport(fiber=(tail, head), affected=list(victims))
    return _reroute_victims(
        provisioner, report, failed_fibers=frozenset({frozenset((tail, head))})
    )


def restore_channels(
    provisioner: SemilightpathProvisioner, channels: Iterable[Channel]
) -> RestorationReport:
    """Drop individual ``(tail, head, λ)`` channels and re-route the victims.

    The finer-grained sibling of :func:`restore`: the fibers stay lit,
    only the listed wavelength channels die (matching the chaos layer's
    ``channel_fail`` events).  Victims are connections whose working path
    occupies any dropped channel; they are torn down and re-routed on a
    residual network without the dropped channels.
    """
    failed = frozenset(channels)
    for tail, head, _wavelength in failed:
        if not provisioner.network.has_link(tail, head):
            raise UnknownLinkError(tail, head)
    victims = [
        connection
        for connection in provisioner.active_connections()
        if any(
            (hop.tail, hop.head, hop.wavelength) in failed
            for hop in connection.path.hops
        )
    ]
    report = RestorationReport(
        channels=tuple(sorted(failed)), affected=list(victims)
    )
    return _reroute_victims(provisioner, report, failed_channels=failed)
