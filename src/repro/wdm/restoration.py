"""Failure injection and restoration.

Fiber cuts are the canonical WDM failure.  This module simulates them
against a live :class:`~repro.wdm.provisioning.SemilightpathProvisioner`:

1. :func:`cut_fiber` — identify the connections whose working path crosses
   the cut fiber (either direction),
2. tear their channels down,
3. attempt to re-route each victim on the post-cut residual network
   (channels of *surviving* connections stay reserved; the cut fiber's
   channels are gone),
4. report a :class:`RestorationReport` — restored/lost counts and the
   extra cost restoration paid.

Restoration here is *reactive path restoration* (no pre-planned backup);
pre-planned 1+1 protection lives in :mod:`repro.wdm.protection`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

from repro.core.network import WDMNetwork
from repro.core.routing import LiangShenRouter
from repro.core.semilightpath import Semilightpath
from repro.exceptions import NoPathError, UnknownLinkError
from repro.wdm.provisioning import Connection, SemilightpathProvisioner

__all__ = ["RestorationReport", "cut_fiber", "restore"]

NodeId = Hashable


@dataclass
class RestorationReport:
    """Outcome of one fiber-cut restoration episode."""

    fiber: tuple[NodeId, NodeId]
    affected: list[Connection] = field(default_factory=list)
    restored: list[Connection] = field(default_factory=list)
    lost: list[Connection] = field(default_factory=list)
    cost_before: float = 0.0
    cost_after: float = 0.0

    @property
    def restoration_ratio(self) -> float:
        """Restored / affected (1.0 when nothing was affected)."""
        if not self.affected:
            return 1.0
        return len(self.restored) / len(self.affected)

    @property
    def extra_cost(self) -> float:
        """Restoration path cost minus the failed paths' cost (restored only)."""
        return self.cost_after - self.cost_before


def _crosses(path: Semilightpath, tail: NodeId, head: NodeId) -> bool:
    fiber = frozenset((tail, head))
    return any(frozenset((h.tail, h.head)) == fiber for h in path.hops)


def cut_fiber(
    provisioner: SemilightpathProvisioner, tail: NodeId, head: NodeId
) -> list[Connection]:
    """Connections whose working path crosses the fiber (either direction)."""
    if not (
        provisioner.network.has_link(tail, head)
        or provisioner.network.has_link(head, tail)
    ):
        raise UnknownLinkError(tail, head)
    return [
        connection
        for connection in provisioner.active_connections()
        if _crosses(connection.path, tail, head)
    ]


def restore(
    provisioner: SemilightpathProvisioner, tail: NodeId, head: NodeId
) -> RestorationReport:
    """Cut the fiber ``{tail, head}`` and re-route the victims.

    The provisioner is mutated: victims are torn down, survivors keep
    their channels, restored victims get fresh connections routed on a
    residual network with the cut fiber removed.  Lost victims stay down.
    """
    victims = cut_fiber(provisioner, tail, head)
    report = RestorationReport(fiber=(tail, head), affected=list(victims))
    for victim in victims:
        provisioner.teardown(victim)

    # Residual = full network minus cut fiber minus surviving reservations.
    fiber = frozenset((tail, head))
    for victim in victims:
        residual = WDMNetwork(provisioner.network.num_wavelengths)
        for node in provisioner.network.nodes():
            residual.add_node(node, provisioner.network.conversion(node))
        for link in provisioner.network.links():
            if frozenset((link.tail, link.head)) == fiber:
                continue
            occupied = provisioner.state.occupied_on(link.tail, link.head)
            costs = {w: c for w, c in link.costs.items() if w not in occupied}
            residual.add_link(link.tail, link.head, costs)
        try:
            path = LiangShenRouter(residual).route(victim.source, victim.target).path
        except NoPathError:
            report.lost.append(victim)
            continue
        path = Semilightpath(
            hops=path.hops, total_cost=path.evaluate_cost(provisioner.network)
        )
        replacement = provisioner.admit_path(path)
        report.restored.append(replacement)
        report.cost_before += victim.path.total_cost
        report.cost_after += path.total_cost
    return report
