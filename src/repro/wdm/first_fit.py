"""Baseline RWA: fixed shortest-path routing + first-fit wavelength.

The classic pre-semilightpath provisioning discipline: route every request
on the minimum-cost *physical* path (wavelength-oblivious), then assign the
lowest-index wavelength free on **every** link of that path (wavelength
continuity — no conversion).  If no single wavelength is free end-to-end,
the request blocks, even though a semilightpath with conversion might have
carried it.  This is the baseline the blocking-probability benchmark
compares the Liang–Shen provisioner against.
"""

from __future__ import annotations

import itertools
import math
from typing import Hashable

from repro.core.network import WDMNetwork
from repro.core.semilightpath import Semilightpath
from repro.exceptions import NoPathError, ReservationError
from repro.shortestpath.dijkstra import dijkstra
from repro.shortestpath.paths import reconstruct_path
from repro.shortestpath.structures import GraphBuilder
from repro.wdm.provisioning import Connection
from repro.wdm.state import WavelengthState

__all__ = ["FirstFitProvisioner"]

NodeId = Hashable


class FirstFitProvisioner:
    """Fixed-shortest-path + first-fit-wavelength admission (no conversion).

    The physical route for a pair is computed once on the static topology
    (link weight = cheapest wavelength cost on that link) and cached —
    "fixed routing" in the RWA taxonomy.  Admission then scans wavelengths
    ``λ₁, λ₂, …`` for the first free on every link of the route.
    """

    def __init__(self, network: WDMNetwork) -> None:
        self.network = network
        self.state = WavelengthState(network)
        self._ids = itertools.count(1)
        self._active: dict[int, Connection] = {}
        self._route_cache: dict[tuple[NodeId, NodeId], list[NodeId] | None] = {}
        # Static physical graph for route computation.
        builder = GraphBuilder(network.num_nodes)
        for link in network.links():
            if link.costs:
                builder.add_edge(
                    network.node_index(link.tail),
                    network.node_index(link.head),
                    min(link.costs.values()),
                )
        self._graph = builder.build()

    @property
    def num_active(self) -> int:
        """Number of currently admitted connections."""
        return len(self._active)

    def _physical_route(self, source: NodeId, target: NodeId) -> list[NodeId] | None:
        key = (source, target)
        if key not in self._route_cache:
            run = dijkstra(self._graph, self.network.node_index(source))
            t_index = self.network.node_index(target)
            if run.dist[t_index] == math.inf:
                self._route_cache[key] = None
            else:
                indices = reconstruct_path(run.parent, t_index)
                self._route_cache[key] = [self.network.node_label(i) for i in indices]
        return self._route_cache[key]

    def establish(self, source: NodeId, target: NodeId) -> Connection:
        """Admit with first-fit wavelength on the fixed route, or raise.

        Raises :class:`~repro.exceptions.NoPathError` when no route exists
        or no single wavelength is free along the whole route.
        """
        if source == target:
            raise ValueError("source and target must differ")
        route = self._physical_route(source, target)
        if route is None:
            raise NoPathError(source, target)
        links = list(zip(route[:-1], route[1:]))
        for wavelength in range(self.network.num_wavelengths):
            if all(self.state.is_free(u, v, wavelength) for u, v in links):
                path = Semilightpath.from_sequence(
                    route, [wavelength] * len(links), self.network
                )
                self.state.reserve_path(path)
                connection = Connection(
                    connection_id=next(self._ids),
                    source=source,
                    target=target,
                    path=path,
                )
                self._active[connection.connection_id] = connection
                return connection
        raise NoPathError(source, target)

    def teardown(self, connection: Connection) -> None:
        """Release a live connection's channels."""
        if connection.connection_id not in self._active:
            raise ReservationError(
                f"connection {connection.connection_id} is not active"
            )
        self.state.release_path(connection.path)
        del self._active[connection.connection_id]

    def try_establish(self, source: NodeId, target: NodeId) -> Connection | None:
        """Like :meth:`establish` but returns None on blocking."""
        try:
            return self.establish(source, target)
        except NoPathError:
            return None
