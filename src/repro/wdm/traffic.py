"""Seeded dynamic traffic generation.

Connection requests follow the standard teletraffic model: Poisson
arrivals at rate ``arrival_rate``, independent exponential holding times
with mean ``mean_holding``, endpoints drawn uniformly from distinct node
pairs (or a caller-supplied pair distribution).  Offered load in Erlangs
is ``arrival_rate * mean_holding``.

All randomness flows through one seeded :class:`random.Random`, so traffic
traces are exactly reproducible across provisioner comparisons — the
blocking benchmark feeds the *same* trace to every policy.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Hashable, Iterator, Sequence

from repro._validation import check_finite, check_positive_int

__all__ = ["TrafficRequest", "TrafficGenerator"]

NodeId = Hashable


@dataclass(frozen=True)
class TrafficRequest:
    """One connection request."""

    request_id: int
    arrival_time: float
    holding_time: float
    source: NodeId
    target: NodeId

    @property
    def departure_time(self) -> float:
        """Instant the connection releases its resources if admitted."""
        return self.arrival_time + self.holding_time


class TrafficGenerator:
    """Reproducible Poisson/exponential traffic over a node set.

    Parameters
    ----------
    nodes:
        Candidate endpoints (at least two).
    arrival_rate:
        Poisson arrival rate (requests per unit time), > 0.
    mean_holding:
        Mean exponential holding time, > 0.
    seed:
        RNG seed.
    pair_sampler:
        Optional ``rng -> (source, target)`` override for non-uniform
        traffic matrices.

    Example
    -------
    >>> gen = TrafficGenerator(["a", "b", "c"], arrival_rate=2.0, mean_holding=1.0, seed=1)
    >>> requests = gen.generate(5)
    >>> len(requests)
    5
    >>> all(r.source != r.target for r in requests)
    True
    """

    def __init__(
        self,
        nodes: Sequence[NodeId],
        arrival_rate: float,
        mean_holding: float,
        seed: int = 0,
        pair_sampler: Callable[[random.Random], tuple[NodeId, NodeId]] | None = None,
    ) -> None:
        if len(nodes) < 2:
            raise ValueError("traffic needs at least two nodes")
        if check_finite(arrival_rate, "arrival_rate") <= 0:
            raise ValueError("arrival_rate must be > 0")
        if check_finite(mean_holding, "mean_holding") <= 0:
            raise ValueError("mean_holding must be > 0")
        self.nodes = list(nodes)
        self.arrival_rate = float(arrival_rate)
        self.mean_holding = float(mean_holding)
        self.seed = seed
        self._pair_sampler = pair_sampler

    @property
    def offered_load_erlang(self) -> float:
        """Offered load ``arrival_rate * mean_holding`` in Erlangs."""
        return self.arrival_rate * self.mean_holding

    def _sample_pair(self, rng: random.Random) -> tuple[NodeId, NodeId]:
        if self._pair_sampler is not None:
            return self._pair_sampler(rng)
        source, target = rng.sample(self.nodes, 2)
        return source, target

    def stream(self) -> Iterator[TrafficRequest]:
        """Infinite request stream (fresh RNG each call — deterministic)."""
        rng = random.Random(self.seed)
        clock = 0.0
        request_id = 0
        while True:
            clock += rng.expovariate(self.arrival_rate)
            holding = rng.expovariate(1.0 / self.mean_holding)
            source, target = self._sample_pair(rng)
            request_id += 1
            yield TrafficRequest(
                request_id=request_id,
                arrival_time=clock,
                holding_time=holding,
                source=source,
                target=target,
            )

    def generate(self, num_requests: int) -> list[TrafficRequest]:
        """First *num_requests* requests of the stream as a list."""
        check_positive_int(num_requests, "num_requests")
        stream = self.stream()
        return [next(stream) for _ in range(num_requests)]
