"""Protection routing: working + backup semilightpath pairs.

Survivable WDM provisioning pairs every connection with a backup path that
survives the failure of any resource used by the working path.  Two
standard disjointness levels are offered:

* ``"channel"`` — the backup avoids the working path's (link, wavelength)
  channels; a fiber cut can still take both down, but wavelength-level
  contention cannot.
* ``"link"`` — the backup avoids the working path's physical links in
  both directions (fiber-cut survivability, the usual 1+1 model).

The pair is computed *active-path-first*: route the optimal working path,
delete its resources, route again.  APF is the standard heuristic — it is
not guaranteed to find a disjoint pair even when one exists (the classic
trap topology), and :func:`route_disjoint_pair` documents failure by
raising :class:`~repro.exceptions.NoPathError` on the backup leg.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Hashable

from repro.core.network import WDMNetwork
from repro.core.routing import LiangShenRouter
from repro.core.semilightpath import Semilightpath
from repro.exceptions import NoPathError

if TYPE_CHECKING:  # pragma: no cover
    pass

__all__ = ["ProtectedPath", "route_disjoint_pair"]

NodeId = Hashable


@dataclass(frozen=True)
class ProtectedPath:
    """A working/backup semilightpath pair."""

    working: Semilightpath
    backup: Semilightpath
    disjointness: str

    @property
    def total_cost(self) -> float:
        """Combined cost of both legs."""
        return self.working.total_cost + self.backup.total_cost

    def shares_channels(self) -> bool:
        """True when the two legs use any common (link, wavelength)."""
        working = {(h.tail, h.head, h.wavelength) for h in self.working.hops}
        backup = {(h.tail, h.head, h.wavelength) for h in self.backup.hops}
        return bool(working & backup)

    def shares_links(self) -> bool:
        """True when the two legs traverse any common undirected fiber."""
        def fibers(path):
            return {frozenset((h.tail, h.head)) for h in path.hops}

        return bool(fibers(self.working) & fibers(self.backup))


def _without_channels(network: WDMNetwork, path: Semilightpath) -> WDMNetwork:
    used = {(h.tail, h.head, h.wavelength) for h in path.hops}
    pruned = WDMNetwork(network.num_wavelengths)
    for node in network.nodes():
        pruned.add_node(node, network.conversion(node))
    for link in network.links():
        costs = {
            w: c
            for w, c in link.costs.items()
            if (link.tail, link.head, w) not in used
        }
        pruned.add_link(link.tail, link.head, costs)
    return pruned


def _without_links(network: WDMNetwork, path: Semilightpath) -> WDMNetwork:
    cut = {frozenset((h.tail, h.head)) for h in path.hops}
    pruned = WDMNetwork(network.num_wavelengths)
    for node in network.nodes():
        pruned.add_node(node, network.conversion(node))
    for link in network.links():
        if frozenset((link.tail, link.head)) in cut:
            continue
        pruned.add_link(link.tail, link.head, dict(link.costs))
    return pruned


def route_disjoint_pair(
    network: WDMNetwork,
    source: NodeId,
    target: NodeId,
    disjointness: str = "link",
) -> ProtectedPath:
    """Route a working/backup pair, active-path-first.

    Parameters
    ----------
    disjointness:
        ``"link"`` (fiber-disjoint, default) or ``"channel"``
        (channel-disjoint only).

    Raises
    ------
    NoPathError
        When the working path does not exist, or no backup survives the
        pruning (either genuinely none exists, or APF's known limitation
        on trap topologies).
    ValueError
        For an unknown *disjointness* level.
    """
    if disjointness not in ("link", "channel"):
        raise ValueError(
            f"disjointness must be 'link' or 'channel', got {disjointness!r}"
        )
    working = LiangShenRouter(network).route(source, target).path
    prune = _without_links if disjointness == "link" else _without_channels
    residual = prune(network, working)
    try:
        backup = LiangShenRouter(residual).route(source, target).path
    except NoPathError:
        raise NoPathError(source, target) from None
    # Re-price the backup against the full network for auditability.
    backup = Semilightpath(
        hops=backup.hops, total_cost=backup.evaluate_cost(network)
    )
    return ProtectedPath(working=working, backup=backup, disjointness=disjointness)
