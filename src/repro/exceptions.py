"""Exception hierarchy for the semilightpath routing library.

All library-raised exceptions derive from :class:`SemilightError` so callers
can catch everything from this package with a single ``except`` clause while
still being able to discriminate the failure mode.
"""

from __future__ import annotations

__all__ = [
    "SemilightError",
    "NetworkStructureError",
    "UnknownNodeError",
    "UnknownLinkError",
    "WavelengthError",
    "WavelengthUnavailableError",
    "ConversionError",
    "NoPathError",
    "MulticastBlockedError",
    "InvalidPathError",
    "RestrictionViolation",
    "ReservationError",
    "SimulationError",
    "SerializationError",
    "ServiceError",
    "ServiceOverloadError",
    "DeadlineExceeded",
    "DeadlineExpiredError",
    "ServiceClosedError",
    "TransientBackendError",
    "InjectedFaultError",
    "CircuitOpenError",
    "DeltaParityError",
    "SharedSegmentError",
    "ProtocolError",
    "WorkerCrashError",
    "RemoteRouterError",
]


class SemilightError(Exception):
    """Base class for every exception raised by this library."""


class NetworkStructureError(SemilightError):
    """The network definition is malformed (duplicate links, bad ids, ...)."""


class UnknownNodeError(NetworkStructureError, KeyError):
    """A node id was referenced that is not part of the network."""

    def __init__(self, node: object) -> None:
        super().__init__(f"unknown node: {node!r}")
        self.node = node


class UnknownLinkError(NetworkStructureError, KeyError):
    """A link (tail, head) was referenced that is not part of the network."""

    def __init__(self, tail: object, head: object) -> None:
        super().__init__(f"unknown link: {tail!r} -> {head!r}")
        self.tail = tail
        self.head = head


class WavelengthError(SemilightError):
    """A wavelength index is out of range or otherwise invalid."""


class WavelengthUnavailableError(WavelengthError):
    """A wavelength was used on a link whose ``Λ(e)`` does not contain it."""

    def __init__(self, tail: object, head: object, wavelength: object) -> None:
        super().__init__(
            f"wavelength {wavelength!r} is not available on link "
            f"{tail!r} -> {head!r}"
        )
        self.tail = tail
        self.head = head
        self.wavelength = wavelength


class ConversionError(SemilightError):
    """A wavelength conversion was requested that the node cannot perform."""

    def __init__(self, node: object, from_wavelength: object, to_wavelength: object) -> None:
        super().__init__(
            f"node {node!r} cannot convert {from_wavelength!r} -> {to_wavelength!r}"
        )
        self.node = node
        self.from_wavelength = from_wavelength
        self.to_wavelength = to_wavelength


class NoPathError(SemilightError):
    """No semilightpath exists between the requested endpoints."""

    def __init__(self, source: object, target: object) -> None:
        super().__init__(f"no semilightpath from {source!r} to {target!r}")
        self.source = source
        self.target = target


class MulticastBlockedError(NoPathError):
    """A multicast request could not join every member.

    Subclasses :class:`NoPathError` so admission paths that treat
    blocking as a normal outcome (``try_establish`` and friends) handle
    multicast blocking identically.  ``unjoined`` lists the members the
    joiner could not graft under the splitter constraints.
    """

    def __init__(self, source: object, unjoined: tuple) -> None:
        SemilightError.__init__(
            self,
            f"multicast from {source!r} blocked; unjoined members: "
            f"{sorted(unjoined, key=repr)!r}",
        )
        self.source = source
        self.target = None
        self.unjoined = tuple(unjoined)


class InvalidPathError(SemilightError):
    """A semilightpath object violates its structural invariants."""


class RestrictionViolation(SemilightError):
    """The network fails Restriction 1 or Restriction 2 from the paper."""


class ReservationError(SemilightError):
    """A wavelength reservation conflict in the provisioning layer."""


class SimulationError(SemilightError):
    """The distributed or dynamic-traffic simulator reached a bad state."""


class SerializationError(SemilightError):
    """A network or result document could not be (de)serialized."""


class ServiceError(SemilightError):
    """Base class for routing-service failures (:mod:`repro.service`)."""


class ServiceOverloadError(ServiceError):
    """The service's bounded request queue is full (backpressure).

    Callers should retry later or shed load; the rejected query was never
    enqueued and had no effect.
    """

    def __init__(self, queue_limit: int) -> None:
        super().__init__(
            f"request queue full ({queue_limit} pending); request rejected"
        )
        self.queue_limit = queue_limit


class DeadlineExceeded(ServiceError):
    """A query's deadline passed before it could be answered.

    Raised both when the deadline expires while the request is still
    queued and when the caller's wait on the result outlives it — one
    typed error for every way a deadline can be missed.  ``elapsed`` is
    the seconds spent between submission and expiry when known.
    """

    def __init__(
        self, source: object, target: object, elapsed: float | None = None
    ) -> None:
        detail = f" after {elapsed:.3f}s" if elapsed is not None else ""
        super().__init__(
            f"deadline exceeded{detail} routing {source!r} -> {target!r}"
        )
        self.source = source
        self.target = target
        self.elapsed = elapsed


#: Backwards-compatible name for :class:`DeadlineExceeded`.
DeadlineExpiredError = DeadlineExceeded


class ServiceClosedError(ServiceError):
    """A query was submitted to a service that has been shut down."""


class TransientBackendError(ServiceError):
    """A routing backend failed in a way that is safe to retry.

    The query had no side effects; callers (and the query engine's retry
    policy) may re-issue it, ideally after a backoff.
    """


class InjectedFaultError(TransientBackendError):
    """A fault deliberately injected by the chaos layer (:mod:`repro.faults`).

    Subclasses :class:`TransientBackendError` so injected exceptions
    exercise exactly the retry/breaker paths a real transient failure
    would.
    """

    def __init__(self, detail: str = "injected fault") -> None:
        super().__init__(detail)


class DeltaParityError(SemilightError):
    """A patched delta overlay diverged from a fresh rebuild.

    Raised by the incremental-maintenance oracles and tests when a
    fail/recover sequence that nets out to zero leaves masked edges
    behind, or when a patched overlay's materialization is not
    byte-identical to an overlay built fresh from the degraded network.
    Either means the in-place patching machinery corrupted the CSR.
    """


class SharedSegmentError(SemilightError):
    """A shared-memory CSR segment is malformed or was misused.

    Raised by :mod:`repro.shortestpath.shared` on bad magic/version,
    attach to a missing segment, unbalanced seqlock brackets, or a read
    that never stabilized against a writer.
    """


class ProtocolError(SemilightError):
    """A router-server wire frame violated the protocol.

    Base class for the framing errors in :mod:`repro.server.protocol`
    (bad magic, oversized length, truncation mid-frame, undecodable
    payload).  The connection that produced it cannot be trusted and is
    closed.
    """


class WorkerCrashError(TransientBackendError):
    """A router-server worker died while holding the request.

    Subclasses :class:`TransientBackendError`: the pool respawns the
    worker and the request had no side effects, so clients (and the
    existing :class:`~repro.faults.resilience.RetryPolicy`) may simply
    re-issue it.
    """


class RemoteRouterError(ServiceError):
    """The router server reported a non-retryable failure for a request."""


class CircuitOpenError(ServiceError):
    """The circuit breaker around the routing backend is open.

    The query was rejected *before* reaching the backend; callers should
    degrade (serve stale, fall back to a rebuild) or retry after
    ``retry_after`` seconds.
    """

    def __init__(self, retry_after: float) -> None:
        super().__init__(
            f"routing backend circuit open; retry after {retry_after:.3f}s"
        )
        self.retry_after = retry_after
