"""Retry and circuit-breaker policies for the serving stack.

Two small, deterministic-on-demand primitives the query engine wires
around its routing backend:

* :class:`RetryPolicy` — exponential backoff with **full jitter**
  (AWS-style: each delay is drawn uniformly from ``[0, min(cap,
  base·2^attempt)]``), bounded by both an attempt count and the
  request's remaining deadline budget.  Only
  :class:`~repro.exceptions.TransientBackendError` failures are
  retryable; semantic outcomes (``NoPathError``) and programming errors
  propagate immediately.
* :class:`CircuitBreaker` — the classic closed → open → half-open state
  machine.  After ``failure_threshold`` consecutive backend failures the
  breaker *opens* and fails calls fast with
  :class:`~repro.exceptions.CircuitOpenError` (no backend work, no
  queue time).  After ``reset_timeout`` seconds one probe is let
  through (*half-open*); success closes the breaker, failure re-opens
  it.

Both take an injectable clock/sleep/rng so the chaos soak and the tests
can drive them deterministically; production defaults use
``time.monotonic`` / ``time.sleep`` / a seeded :class:`random.Random`.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Callable

from repro.exceptions import CircuitOpenError, TransientBackendError

__all__ = ["RetryPolicy", "CircuitBreaker"]


class RetryPolicy:
    """Exponential backoff with full jitter and a deadline-aware budget.

    Parameters
    ----------
    max_attempts:
        Total tries including the first (``1`` disables retries).
    base_delay:
        Backoff base in seconds; attempt *i* (0-based) draws its delay
        from ``[0, min(max_delay, base_delay * 2**i)]``.
    max_delay:
        Cap on any single delay.
    seed:
        Seed for the jitter RNG (deterministic schedules for soaks).
    sleep:
        Injectable sleep for tests; defaults to :func:`time.sleep`.

    Example
    -------
    >>> policy = RetryPolicy(max_attempts=3, base_delay=0.1, seed=7)
    >>> [round(policy.delay(i), 3) <= 0.1 * 2**i for i in range(3)]
    [True, True, True]
    """

    def __init__(
        self,
        max_attempts: int = 3,
        base_delay: float = 0.01,
        max_delay: float = 0.25,
        seed: int = 0,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if base_delay < 0 or max_delay < 0:
            raise ValueError("delays must be >= 0")
        self.max_attempts = max_attempts
        self.base_delay = base_delay
        self.max_delay = max_delay
        self._sleep = sleep
        self._lock = threading.Lock()
        self._rng = random.Random(seed)

    def delay(self, attempt: int) -> float:
        """The jittered backoff before retry *attempt* (0-based)."""
        cap = min(self.max_delay, self.base_delay * (2**attempt))
        with self._lock:
            return self._rng.uniform(0.0, cap)

    def call(
        self,
        fn: Callable[[], object],
        deadline: float | None = None,
        clock: Callable[[], float] = time.monotonic,
        on_retry: Callable[[int, BaseException], None] | None = None,
    ):
        """Invoke *fn*, retrying transient failures within the budget.

        *deadline* is an absolute ``clock()`` instant; a retry whose
        backoff would land past it is abandoned and the last transient
        error re-raised (the caller's deadline machinery turns that into
        a :class:`~repro.exceptions.DeadlineExceeded` as appropriate).
        *on_retry* is called with ``(attempt, error)`` before each sleep
        — the engine uses it to count retries in metrics.
        """
        attempt = 0
        while True:
            try:
                return fn()
            except TransientBackendError as exc:
                attempt += 1
                if attempt >= self.max_attempts:
                    raise
                pause = self.delay(attempt - 1)
                if deadline is not None and clock() + pause >= deadline:
                    raise
                if on_retry is not None:
                    on_retry(attempt, exc)
                if pause > 0:
                    self._sleep(pause)


class CircuitBreaker:
    """Closed → open → half-open breaker around a routing backend.

    Parameters
    ----------
    failure_threshold:
        Consecutive transient failures that open the breaker.
    reset_timeout:
        Seconds the breaker stays open before letting a probe through.
    clock:
        Injectable monotonic clock (soaks drive this deterministically).
    on_transition:
        Optional ``(old_state, new_state)`` callback — the engine wires
        this into metrics; the chaos soak records the sequence to assert
        the open/half-open/close schedule.

    Thread safety: all state changes happen under an internal lock; the
    engine's worker pool shares one instance.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_timeout: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
        on_transition: Callable[[str, str], None] | None = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if reset_timeout <= 0:
            raise ValueError("reset_timeout must be > 0")
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self._clock = clock
        self._on_transition = on_transition
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probe_in_flight = False

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    @property
    def consecutive_failures(self) -> int:
        with self._lock:
            return self._failures

    def _transition(self, new_state: str) -> None:
        old_state, self._state = self._state, new_state
        if old_state != new_state and self._on_transition is not None:
            self._on_transition(old_state, new_state)

    def before_call(self) -> None:
        """Admission check; raises :class:`CircuitOpenError` when open.

        When the reset timeout has elapsed the breaker moves to
        half-open and admits exactly one probe; concurrent calls keep
        failing fast until the probe reports back.
        """
        with self._lock:
            if self._state == self.CLOSED:
                return
            now = self._clock()
            if self._state == self.OPEN:
                remaining = self._opened_at + self.reset_timeout - now
                if remaining > 0:
                    raise CircuitOpenError(remaining)
                self._transition(self.HALF_OPEN)
                self._probe_in_flight = True
                return
            # Half-open: one probe at a time.
            if self._probe_in_flight:
                raise CircuitOpenError(self.reset_timeout)
            self._probe_in_flight = True

    def record_success(self) -> None:
        """The backend answered (including a definitive ``NoPathError``)."""
        with self._lock:
            self._failures = 0
            self._probe_in_flight = False
            if self._state != self.CLOSED:
                self._transition(self.CLOSED)

    def record_failure(self) -> None:
        """The backend failed transiently."""
        with self._lock:
            self._probe_in_flight = False
            if self._state == self.HALF_OPEN:
                self._opened_at = self._clock()
                self._transition(self.OPEN)
                return
            self._failures += 1
            if self._state == self.CLOSED and self._failures >= self.failure_threshold:
                self._opened_at = self._clock()
                self._transition(self.OPEN)
