"""Deterministic fault injection against a live serving stack.

:class:`FaultInjector` owns the *fault state* for one base network: which
fibers are cut, which ``(link, λ)`` channels are dark, which converter
banks are down, and which engine-level faults (latency, exceptions) are
pending.  It exposes:

* :meth:`~FaultInjector.network_view` — the degraded network as it exists
  right now, built fresh from the pristine base.  Hand this (the bound
  method) to :class:`~repro.service.cache.EpochRouterCache` /
  :class:`~repro.service.service.RoutingService` as the network factory
  and every cache rebuild picks up the current fault set.
* :meth:`~FaultInjector.apply` — apply one
  :class:`~repro.faults.plan.FaultEvent`, mutating the fault state,
  notifying the attached service's epoch/invalidation machinery
  (per-channel degradation for resource *failures* — removals keep
  untouched cached trees, exactly the cache's documented rule; full
  invalidation for *recoveries* and converter changes), and logging to an
  optional observer (:class:`~repro.wdm.events.EventLog` is one).
* :meth:`~FaultInjector.worker_hook` — the engine-side injection point:
  installed as ``QueryEngine.fault_hook``, it consumes pending latency /
  exception faults inside worker threads, right where a flaky backend
  would fail.

:class:`ChunkCrash` is the process-pool analogue: a picklable callable
passed as ``fault_hook`` to
:func:`repro.core.parallel.route_all_pairs_parallel` that kills one
worker chunk mid-run.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Hashable

from repro.core.conversion import NoConversion
from repro.core.network import WDMNetwork
from repro.exceptions import InjectedFaultError
from repro.faults.plan import FaultEvent

if TYPE_CHECKING:  # pragma: no cover
    from repro.service.service import RoutingService

__all__ = ["FaultInjector", "ChunkCrash"]

NodeId = Hashable


@dataclass(frozen=True)
class ChunkCrash:
    """Picklable worker-crash fault for process-pool runs.

    Passed as ``fault_hook`` to
    :func:`repro.core.parallel.route_all_pairs_parallel`; raises inside
    the worker handling chunk *crash_index*, so the pool surfaces a
    remote :class:`~repro.exceptions.InjectedFaultError`.
    """

    crash_index: int = 0

    def __call__(self, index: int) -> None:
        if index == self.crash_index:
            raise InjectedFaultError(
                f"injected worker crash in chunk {index}"
            )


class FaultInjector:
    """Seeded live-fault state over one base network.

    Parameters
    ----------
    network:
        The pristine base network.  Never mutated; degraded views are
        rebuilt from it on demand.
    observer:
        Optional ``(kind, time, **payload)`` callable — an
        :class:`~repro.wdm.events.EventLog` records the fault history for
        post-hoc audit.
    sleep:
        Injectable sleep for latency faults (tests pass a stub).

    Example
    -------
    >>> from repro.topology.reference import paper_figure1_network
    >>> from repro.faults.plan import FaultEvent
    >>> injector = FaultInjector(paper_figure1_network())
    >>> injector.apply(FaultEvent(0.1, "link_fail", tail=1, head=2))
    >>> injector.network_view().has_link(1, 2)
    False
    >>> injector.apply(FaultEvent(0.9, "link_recover", tail=1, head=2))
    >>> injector.network_view().has_link(1, 2)
    True
    """

    def __init__(
        self,
        network: WDMNetwork,
        observer: Callable[..., None] | None = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.base = network
        self.observer = observer
        self._sleep = sleep
        self._lock = threading.Lock()
        self._failed_fibers: set[frozenset] = set()
        self._failed_channels: set[tuple[NodeId, NodeId, int]] = set()
        self._failed_converters: set[NodeId] = set()
        #: Engine-level faults pending consumption by :meth:`worker_hook`.
        self._engine_faults: deque[tuple[str, float]] = deque()
        self._pending_crashes = 0
        self._service: "RoutingService | None" = None
        #: Replayed multicast membership events, in application order.
        self.membership_events: list[FaultEvent] = []
        #: Optional callable invoked (outside the lock) with each
        #: membership event — the multicast churn soak maintains its
        #: group model here.
        self.membership_hook: Callable[[FaultEvent], None] | None = None
        self.applied = 0

    # -- wiring ---------------------------------------------------------------

    def attach(self, service: "RoutingService") -> None:
        """Route invalidation notifications into *service* and install the
        worker-side fault hook on its engine."""
        self._service = service
        service.engine.fault_hook = self.worker_hook

    # -- state queries --------------------------------------------------------

    @property
    def pristine(self) -> bool:
        """True when no network-resource fault is active."""
        with self._lock:
            return not (
                self._failed_fibers
                or self._failed_channels
                or self._failed_converters
            )

    def active_faults(self) -> dict[str, int]:
        with self._lock:
            return {
                "fibers": len(self._failed_fibers),
                "channels": len(self._failed_channels),
                "converters": len(self._failed_converters),
                "engine_pending": len(self._engine_faults),
                "crashes_pending": self._pending_crashes,
            }

    def take_pending_crash(self) -> bool:
        """Consume one pending worker-crash fault (used by the soak)."""
        with self._lock:
            if self._pending_crashes:
                self._pending_crashes -= 1
                return True
            return False

    # -- degraded view --------------------------------------------------------

    def network_view(self) -> WDMNetwork:
        """The base network minus every currently failed resource.

        Failed fibers lose both directed links; failed channels lose one
        wavelength entry (a link losing all of them stays as a dark
        link); failed converter banks fall back to wavelength continuity.
        Safe to call from any thread — the whole view is built under the
        injector lock.
        """
        with self._lock:
            view = WDMNetwork(
                self.base.num_wavelengths, self.base.default_conversion
            )
            for node in self.base.nodes():
                if node in self._failed_converters:
                    view.add_node(node, NoConversion())
                else:
                    view.add_node(node, self.base.explicit_conversion(node))
            for link in self.base.links():
                if frozenset((link.tail, link.head)) in self._failed_fibers:
                    continue
                costs = {
                    w: c
                    for w, c in link.costs.items()
                    if (link.tail, link.head, w) not in self._failed_channels
                }
                view.add_link(link.tail, link.head, costs)
            return view

    # -- event application ----------------------------------------------------

    def apply(self, event: FaultEvent) -> None:
        """Apply one event: mutate fault state, notify the service."""
        kind = event.kind
        with self._lock:
            if kind == "link_fail":
                self._failed_fibers.add(frozenset((event.tail, event.head)))
            elif kind == "link_recover":
                self._failed_fibers.discard(frozenset((event.tail, event.head)))
            elif kind == "channel_fail":
                self._failed_channels.add(
                    (event.tail, event.head, event.wavelength)
                )
            elif kind == "channel_recover":
                self._failed_channels.discard(
                    (event.tail, event.head, event.wavelength)
                )
            elif kind == "converter_fail":
                self._failed_converters.add(event.node)
            elif kind == "converter_recover":
                self._failed_converters.discard(event.node)
            elif kind == "latency":
                self._engine_faults.append(("latency", float(event.amount)))
            elif kind == "exception":
                for _ in range(max(1, int(event.amount or 1))):
                    self._engine_faults.append(("exception", 0.0))
            elif kind == "worker_crash":
                self._pending_crashes += 1
            elif kind in ("member_join", "member_leave"):
                # Membership churn never touches network resources; the
                # injector just records and forwards it.
                self.membership_events.append(event)
            else:
                raise ValueError(f"unknown fault event kind: {kind!r}")
            self.applied += 1
        if kind in ("member_join", "member_leave"):
            if self.membership_hook is not None:
                self.membership_hook(event)
        self._notify(event)
        if self.observer is not None:
            self.observer(kind, event.at, **{
                key: value
                for key in ("tail", "head", "wavelength", "node", "amount")
                if (value := getattr(event, key)) is not None
            })

    def _notify(self, event: FaultEvent) -> None:
        """Drive the attached service's epoch machinery for *event*.

        Every network-resource event maps to its own fine-grained
        notification so caches that can patch in place (incremental
        mode) see exactly which resource changed.  Against a
        non-incremental cache the recovery/converter notifications
        degrade to the historical full invalidation.  Fiber events cover
        both directions — the injector fails fibers, not directed links.
        """
        service = self._service
        if service is None:
            return
        kind = event.kind
        if kind == "link_fail":
            for tail, head in ((event.tail, event.head), (event.head, event.tail)):
                if self.base.has_link(tail, head):
                    service.notify_link_degraded(tail, head, None)
        elif kind == "channel_fail":
            service.notify_link_degraded(event.tail, event.head, event.wavelength)
        elif kind == "link_recover":
            for tail, head in ((event.tail, event.head), (event.head, event.tail)):
                if self.base.has_link(tail, head):
                    service.notify_link_recovered(tail, head, None)
        elif kind == "channel_recover":
            service.notify_link_recovered(event.tail, event.head, event.wavelength)
        elif kind == "converter_fail":
            service.notify_converter_degraded(event.node)
        elif kind == "converter_recover":
            service.notify_converter_recovered(event.node)
        # Engine-level faults (latency/exception/worker_crash) and
        # membership events (member_join/member_leave) do not change the
        # network; no epoch bump.

    # -- engine-side hook ------------------------------------------------------

    def worker_hook(self) -> None:
        """Consume one pending engine fault; called per backend attempt.

        Installed as ``QueryEngine.fault_hook`` by :meth:`attach`.
        Latency faults sleep; exception faults raise
        :class:`~repro.exceptions.InjectedFaultError` (a
        :class:`~repro.exceptions.TransientBackendError`, so the engine's
        retry/breaker hardening engages exactly as for a real flaky
        backend).
        """
        with self._lock:
            if not self._engine_faults:
                return
            kind, amount = self._engine_faults.popleft()
        if kind == "latency":
            self._sleep(amount)
        else:
            raise InjectedFaultError("injected backend exception")
