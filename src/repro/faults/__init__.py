"""Chaos layer: seeded fault injection and resilience for the serving stack.

The serving layer (:mod:`repro.service`) answers routing queries over a
network that the provisioning and restoration layers keep mutating; in a
live WDM network those mutations include *failures* — fiber cuts,
per-``(link, λ)`` channel drops, converter-bank outages — plus the
software kind: slow and crashing backends, dead worker processes.  This
package makes all of that injectable, deterministic, and survivable:

* :mod:`repro.faults.plan` — seeded, replayable fault schedules
  (:class:`FaultPlan` / :func:`generate_plan`);
* :mod:`repro.faults.injector` — :class:`FaultInjector` applies a plan
  against a live service: degraded network views for the epoch cache,
  per-channel invalidation notifications, latency/exception injection
  inside query-engine workers, and :class:`ChunkCrash` for process
  pools;
* :mod:`repro.faults.resilience` — :class:`RetryPolicy` (exponential
  backoff, full jitter, deadline budgets) and :class:`CircuitBreaker`
  (closed/open/half-open) that the engine wires around its backend;
* :mod:`repro.faults.chaos` — :class:`ChaosSoak`, the time-budgeted soak
  harness behind ``repro chaos``: replays queries against a mutating
  network and asserts the invariants every future scaling PR is held to
  (certificate-valid answers per epoch, flagged staleness, breaker
  discipline, epoch monotonicity, byte-identical re-convergence, no
  leaked threads/processes).
"""

from repro.faults.chaos import ChaosSoak, SoakReport
from repro.faults.injector import ChunkCrash, FaultInjector
from repro.faults.plan import FAULT_KINDS, FaultEvent, FaultPlan, generate_plan
from repro.faults.resilience import CircuitBreaker, RetryPolicy

__all__ = [
    "FAULT_KINDS",
    "FaultEvent",
    "FaultPlan",
    "generate_plan",
    "FaultInjector",
    "ChunkCrash",
    "RetryPolicy",
    "CircuitBreaker",
    "ChaosSoak",
    "SoakReport",
]
