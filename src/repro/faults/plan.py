"""Seeded fault schedules.

A :class:`FaultPlan` is a deterministic, replayable schedule of live
faults against one network: which resources fail, when (as a fraction of
the soak's time budget), and when they recover.  Plans are drawn from a
seed by :func:`generate_plan` and round-trip through JSON, so a failing
soak is reproducible from ``(network, seed)`` alone and CI can pin a
standard schedule.

Event kinds
-----------
``link_fail`` / ``link_recover``
    A fiber cut: both directions of the ``{tail, head}`` fiber lose every
    wavelength channel (matching :mod:`repro.wdm.restoration` semantics).
``channel_fail`` / ``channel_recover``
    One directed ``(tail, head, wavelength)`` channel drops.
``converter_fail`` / ``converter_recover``
    The converter bank at ``node`` dies — the node falls back to
    wavelength continuity (:class:`~repro.core.conversion.NoConversion`).
``latency``
    The next routing call inside a query-engine worker sleeps ``amount``
    seconds before answering (slow backend).
``exception``
    The next ``amount`` routing calls raise
    :class:`~repro.exceptions.InjectedFaultError` (crashing backend —
    exercises retry, breaker, and degraded serving).
``worker_crash``
    One worker process in a :func:`repro.core.parallel` run raises
    mid-chunk (exercises pool error propagation and recovery).
``member_join`` / ``member_leave``
    Multicast group-membership churn: ``node`` joins or leaves the group
    indexed by ``amount`` (reusing the existing numeric field keeps the
    event schema — and therefore every seeded v1 plan — byte-stable).
    These events never touch network state; the injector records them
    and forwards them to an optional ``membership_hook``.  They are
    drawn by :func:`generate_member_churn`, not :func:`generate_plan`,
    so existing seeded plans are unchanged.

Every ``*_fail`` drawn by :func:`generate_plan` gets a matching
``*_recover`` before the end of the plan, so a completed soak ends on the
pristine network and can assert byte-identical re-convergence.

Serialized schedules carry ``"format": 2`` (format 1 documents — written
before membership events existed — omit the field).  The decoder accepts
both, and takes an ``on_unknown`` policy so old readers can either reject
or drop event kinds introduced after they shipped.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Hashable, Iterable, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.network import WDMNetwork

__all__ = [
    "FaultEvent",
    "FaultPlan",
    "generate_plan",
    "generate_member_churn",
    "FAULT_KINDS",
    "MEMBER_KINDS",
    "SCHEDULE_FORMAT",
]

NodeId = Hashable

#: Serialization format written by :meth:`FaultPlan.to_json`.  Format 1
#: (implicit — no ``format`` field) predates membership events; format 2
#: added the ``member_join``/``member_leave`` kinds without changing the
#: event schema.
SCHEDULE_FORMAT = 2

#: Failure kinds a generated plan can draw from (recoveries are implied).
#: Deliberately unchanged by format 2: the cycling draw order in
#: :func:`generate_plan` indexes into this tuple, so appending here would
#: silently reshuffle every seeded plan already pinned in CI.
FAULT_KINDS = (
    "link",
    "channel",
    "converter",
    "latency",
    "exception",
    "worker_crash",
)

#: Multicast membership event kinds (format 2), drawn only by
#: :func:`generate_member_churn`.
MEMBER_KINDS = ("member_join", "member_leave")

#: Event kinds that target a network resource and therefore pair with a
#: recovery event.
_RESOURCE_KINDS = ("link", "channel", "converter")

#: Every concrete event kind a format-2 document may contain.
_KNOWN_EVENT_KINDS = frozenset(
    [f"{k}_fail" for k in _RESOURCE_KINDS]
    + [f"{k}_recover" for k in _RESOURCE_KINDS]
    + ["latency", "exception", "worker_crash"]
    + list(MEMBER_KINDS)
)


@dataclass(frozen=True, order=True)
class FaultEvent:
    """One scheduled fault (or recovery).

    ``at`` is a fraction of the soak budget in ``[0, 1]``; ordering is by
    ``(at, kind, ...)`` so a sorted plan replays deterministically.
    """

    at: float
    kind: str
    tail: NodeId | None = None
    head: NodeId | None = None
    wavelength: int | None = None
    node: NodeId | None = None
    amount: float | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.at <= 1.0:
            raise ValueError(f"event time must be in [0, 1], got {self.at!r}")

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {"at": self.at, "kind": self.kind}
        for key in ("tail", "head", "wavelength", "node", "amount"):
            value = getattr(self, key)
            if value is not None:
                out[key] = value
        return out

    @staticmethod
    def from_dict(document: dict[str, Any]) -> "FaultEvent":
        return FaultEvent(
            at=float(document["at"]),
            kind=str(document["kind"]),
            tail=document.get("tail"),
            head=document.get("head"),
            wavelength=document.get("wavelength"),
            node=document.get("node"),
            amount=document.get("amount"),
        )

    def describe(self) -> str:
        if self.kind.startswith("link"):
            return f"{self.kind} {self.tail!r}<->{self.head!r}"
        if self.kind.startswith("channel"):
            return (
                f"{self.kind} {self.tail!r}->{self.head!r} λ{self.wavelength}"
            )
        if self.kind.startswith("converter"):
            return f"{self.kind} at {self.node!r}"
        if self.amount is not None:
            return f"{self.kind} ({self.amount:g})"
        return self.kind


@dataclass(frozen=True)
class FaultPlan:
    """An ordered, replayable schedule of :class:`FaultEvent`\\ s."""

    events: tuple[FaultEvent, ...] = ()
    seed: int | None = None
    description: str = ""

    def __post_init__(self) -> None:
        ordered = tuple(sorted(self.events))
        object.__setattr__(self, "events", ordered)

    @property
    def num_failures(self) -> int:
        """Injected faults, recoveries excluded."""
        return sum(1 for e in self.events if not e.kind.endswith("_recover"))

    def kinds(self) -> dict[str, int]:
        """Event counts by kind."""
        counts: dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    def due(self, start: float, stop: float) -> list[FaultEvent]:
        """Events scheduled in the half-open virtual-time window
        ``(start, stop]``."""
        return [e for e in self.events if start < e.at <= stop]

    def to_json(self, indent: int | None = None) -> str:
        document = {
            "format": SCHEDULE_FORMAT,
            "seed": self.seed,
            "description": self.description,
            "events": [e.to_dict() for e in self.events],
        }
        return json.dumps(document, indent=indent, sort_keys=True)

    @staticmethod
    def from_json(text: str, on_unknown: str = "error") -> "FaultPlan":
        """Decode a serialized schedule.

        Format-1 documents (no ``format`` field, written before
        membership events existed) decode unchanged.  *on_unknown*
        controls what happens to event kinds this reader does not know:
        ``"error"`` (default) raises ``ValueError`` naming them;
        ``"drop"`` silently skips them, so an old consumer can replay
        the fault subset of a newer schedule.
        """
        if on_unknown not in ("error", "drop"):
            raise ValueError(
                f"on_unknown must be 'error' or 'drop', got {on_unknown!r}"
            )
        document = json.loads(text)
        fmt = document.get("format", 1)
        if not isinstance(fmt, int) or fmt < 1:
            raise ValueError(f"bad schedule format marker: {fmt!r}")
        events = []
        unknown: list[str] = []
        for raw in document.get("events", ()):
            event = FaultEvent.from_dict(raw)
            if event.kind not in _KNOWN_EVENT_KINDS:
                unknown.append(event.kind)
                continue
            events.append(event)
        if unknown and on_unknown == "error":
            raise ValueError(
                f"schedule (format {fmt}) contains unknown event kinds "
                f"{sorted(set(unknown))!r}; pass on_unknown='drop' to skip them"
            )
        return FaultPlan(
            events=tuple(events),
            seed=document.get("seed"),
            description=document.get("description", ""),
        )

    def __repr__(self) -> str:
        return (
            f"FaultPlan(events={len(self.events)}, "
            f"failures={self.num_failures}, seed={self.seed!r})"
        )


def _fibers(network: "WDMNetwork") -> list[tuple[NodeId, NodeId]]:
    seen: set[frozenset] = set()
    fibers: list[tuple[NodeId, NodeId]] = []
    for link in network.links():
        key = frozenset((link.tail, link.head))
        if key not in seen:
            seen.add(key)
            fibers.append((link.tail, link.head))
    return fibers


def generate_plan(
    network: "WDMNetwork",
    seed: int = 0,
    num_faults: int = 20,
    kinds: Sequence[str] = FAULT_KINDS,
    fail_window: tuple[float, float] = (0.05, 0.70),
    min_outage: float = 0.05,
) -> FaultPlan:
    """Draw a seeded fault schedule against *network*.

    At least one fault of every requested kind is drawn (resource kinds
    permitting — a one-node network has no links to cut), then the
    remaining budget cycles through the kinds.  Resource faults target
    distinct resources so outages never overlap on the same link/channel/
    node, and each gets a recovery between ``at + min_outage`` and
    ``0.95`` — a finished plan always ends on the pristine network.
    """
    unknown = [k for k in kinds if k not in FAULT_KINDS]
    if unknown:
        raise ValueError(f"unknown fault kinds: {unknown}; known: {FAULT_KINDS}")
    if num_faults < 1:
        raise ValueError("num_faults must be >= 1")
    rng = random.Random(seed)
    lo, hi = fail_window

    fibers = _fibers(network)
    rng.shuffle(fibers)
    channels = [
        (link.tail, link.head, w)
        for link in network.links()
        for w in sorted(link.costs)
    ]
    rng.shuffle(channels)
    nodes = list(network.nodes())
    rng.shuffle(nodes)

    events: list[FaultEvent] = []
    drawn = 0
    cursor = 0
    while drawn < num_faults:
        kind = kinds[cursor % len(kinds)]
        cursor += 1
        if cursor > num_faults * (len(kinds) + 1):
            break  # resource kinds exhausted and only they remain
        at = rng.uniform(lo, hi)
        if kind == "link":
            if not fibers:
                continue
            tail, head = fibers.pop()
            events.append(FaultEvent(at, "link_fail", tail=tail, head=head))
            events.append(
                FaultEvent(
                    rng.uniform(min(at + min_outage, 0.95), 0.95),
                    "link_recover",
                    tail=tail,
                    head=head,
                )
            )
        elif kind == "channel":
            if not channels:
                continue
            tail, head, wavelength = channels.pop()
            events.append(
                FaultEvent(
                    at, "channel_fail", tail=tail, head=head, wavelength=wavelength
                )
            )
            events.append(
                FaultEvent(
                    rng.uniform(min(at + min_outage, 0.95), 0.95),
                    "channel_recover",
                    tail=tail,
                    head=head,
                    wavelength=wavelength,
                )
            )
        elif kind == "converter":
            if not nodes:
                continue
            node = nodes.pop()
            events.append(FaultEvent(at, "converter_fail", node=node))
            events.append(
                FaultEvent(
                    rng.uniform(min(at + min_outage, 0.95), 0.95),
                    "converter_recover",
                    node=node,
                )
            )
        elif kind == "latency":
            events.append(
                FaultEvent(at, "latency", amount=rng.uniform(0.005, 0.03))
            )
        elif kind == "exception":
            events.append(
                FaultEvent(at, "exception", amount=float(rng.randint(1, 3)))
            )
        else:  # worker_crash
            events.append(FaultEvent(at, "worker_crash"))
        drawn += 1

    return FaultPlan(
        events=tuple(events),
        seed=seed,
        description=(
            f"{drawn} fault(s) over {network!r} "
            f"(kinds={','.join(kinds)}, seed={seed})"
        ),
    )


def generate_member_churn(
    network: "WDMNetwork",
    seed: int = 0,
    num_groups: int = 2,
    num_events: int = 10,
    window: tuple[float, float] = (0.05, 0.95),
) -> FaultPlan:
    """Draw a seeded multicast membership schedule against *network*.

    Each event toggles one node in or out of a group; ``amount`` carries
    the group index (see the module docstring for why the field is
    reused).  Joins and leaves are drawn against a tracked membership
    model so a leave always targets a current member and a join a
    non-member — every event is meaningful when replayed in order.
    Merge with a :func:`generate_plan` schedule by concatenating event
    tuples; :class:`FaultPlan` re-sorts by time.
    """
    if num_groups < 1:
        raise ValueError("num_groups must be >= 1")
    if num_events < 0:
        raise ValueError("num_events must be >= 0")
    rng = random.Random(seed)
    lo, hi = window
    nodes = sorted(network.nodes(), key=repr)
    members: list[set[NodeId]] = [set() for _ in range(num_groups)]

    events: list[FaultEvent] = []
    for _ in range(num_events):
        gid = rng.randrange(num_groups)
        current = members[gid]
        outside = [n for n in nodes if n not in current]
        leave = current and (not outside or rng.random() < 0.5)
        if leave:
            node = rng.choice(sorted(current, key=repr))
            current.remove(node)
            kind = "member_leave"
        elif outside:
            node = rng.choice(outside)
            current.add(node)
            kind = "member_join"
        else:
            continue  # empty network
        events.append(
            FaultEvent(
                rng.uniform(lo, hi), kind, node=node, amount=float(gid)
            )
        )

    return FaultPlan(
        events=tuple(events),
        seed=seed,
        description=(
            f"{len(events)} membership event(s) across {num_groups} "
            f"group(s) over {network!r} (seed={seed})"
        ),
    )
