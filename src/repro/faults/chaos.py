"""The chaos soak: queries against a mutating network, invariants enforced.

:class:`ChaosSoak` is the harness behind ``repro chaos``.  One soak:

1. builds a :class:`~repro.faults.injector.FaultInjector` over a pristine
   base network and a :class:`~repro.service.service.RoutingService`
   whose network factory is the injector's degraded view (with retry and
   a circuit breaker wired in);
2. replays a seeded query stream while applying a seeded
   :class:`~repro.faults.plan.FaultPlan` on a virtual-time schedule
   scaled to the wall-clock budget;
3. checks **invariants** on every answer and at the end of the run:

   * every served path passes the router-independent Eq. (1) certificate
     (:func:`repro.verify.certificate.check_certificate`) against the
     network snapshot of the epoch it was computed on — stale answers
     against their (old) epoch, rebuild answers against their own
     snapshot;
   * stale answers are explicitly flagged and their count matches the
     ``service.stale_served`` metric;
   * the cache epoch is monotonically non-decreasing;
   * circuit-breaker transitions follow the legal state machine, and a
     deterministic drill drives a full open → half-open → closed cycle;
   * after the last fault clears, the service re-converges to
     **byte-identical** routes against a fresh router on the pristine
     network, within a bounded recovery window;
   * no worker threads or pool processes are leaked.

4. on any violation, exits non-ok; certificate violations are shrunk via
   :func:`repro.verify.shrink.shrink_scenario` (when reproducible) and
   persisted to a corpus directory for replay.

An intentionally broken backend (``cost_perturbation``) is the
self-test: the soak must catch it, shrink it, and persist it — proving
the certificate oracle actually guards the serving path.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import Hashable

from repro.core.network import WDMNetwork
from repro.core.parallel import _SHARED, route_all_pairs_parallel
from repro.core.routing import LiangShenRouter
from repro.core.semilightpath import Semilightpath
from repro.exceptions import (
    CircuitOpenError,
    DeadlineExceeded,
    InjectedFaultError,
    NoPathError,
    TransientBackendError,
)
from repro.faults.injector import ChunkCrash, FaultInjector
from repro.faults.plan import FaultEvent, FaultPlan, generate_plan
from repro.faults.resilience import CircuitBreaker, RetryPolicy
from repro.service.service import RoutingService
from repro.verify.certificate import check_certificate, costs_close
from repro.wdm.events import EventLog

__all__ = ["ChaosSoak", "SoakReport"]

NodeId = Hashable

#: Fault kinds that change the network (vs engine-level latency/exception
#: faults).  In incremental mode each one triggers a parity probe.
_NETWORK_FAULT_KINDS = frozenset({
    "link_fail",
    "link_recover",
    "channel_fail",
    "channel_recover",
    "converter_fail",
    "converter_recover",
})

#: Legal circuit-breaker transitions (old state -> new state).
_LEGAL_TRANSITIONS = {
    (CircuitBreaker.CLOSED, CircuitBreaker.OPEN),
    (CircuitBreaker.OPEN, CircuitBreaker.HALF_OPEN),
    (CircuitBreaker.HALF_OPEN, CircuitBreaker.CLOSED),
    (CircuitBreaker.HALF_OPEN, CircuitBreaker.OPEN),
}


@dataclass
class SoakReport:
    """Everything one soak observed, plus the violations it found."""

    seed: int
    duration: float
    elapsed: float = 0.0
    queries: int = 0
    served_fresh: int = 0
    served_stale: int = 0
    served_rebuild: int = 0
    no_path: int = 0
    deadline_misses: int = 0
    unserved: int = 0
    faults_applied: dict[str, int] = field(default_factory=dict)
    breaker_transitions: list[tuple[str, str]] = field(default_factory=list)
    violations: list[str] = field(default_factory=list)
    violations_total: int = 0
    persisted: list[str] = field(default_factory=list)
    recovery_pairs_checked: int = 0
    recovery_seconds: float = 0.0
    incremental: bool = False
    parity_checks: int = 0
    parity_mismatches: int = 0
    cache_patches: int = 0
    cache_rebuilds: int = 0
    event_log: EventLog | None = None

    #: Stored-violation cap; ``violations_total`` keeps the true count.
    MAX_STORED_VIOLATIONS = 200

    @property
    def ok(self) -> bool:
        return self.violations_total == 0

    def add_violation(self, message: str) -> None:
        self.violations_total += 1
        if len(self.violations) < self.MAX_STORED_VIOLATIONS:
            self.violations.append(message)

    def format(self) -> str:
        lines = [
            f"chaos soak seed={self.seed}: {self.queries} queries in "
            f"{self.elapsed:.1f}s of {self.duration:.0f}s budget",
            f"  served fresh={self.served_fresh} stale={self.served_stale} "
            f"rebuild={self.served_rebuild} no-path={self.no_path} "
            f"deadline-missed={self.deadline_misses} unserved={self.unserved}",
            "  faults applied: "
            + (
                " ".join(
                    f"{kind}={count}"
                    for kind, count in sorted(self.faults_applied.items())
                )
                or "none"
            ),
            "  breaker transitions: "
            + (
                " ".join(f"{a}->{b}" for a, b in self.breaker_transitions)
                or "none"
            ),
            f"  recovery: {self.recovery_pairs_checked} pair(s) byte-identical "
            f"vs fresh router in {self.recovery_seconds:.2f}s",
        ]
        if self.incremental:
            lines.append(
                f"  incremental: {self.parity_checks} parity probe(s), "
                f"{self.parity_mismatches} mismatch(es); cache patched "
                f"{self.cache_patches}x, rebuilt {self.cache_rebuilds}x"
            )
        if self.violations_total:
            shown = len(self.violations)
            label = (
                f"{self.violations_total}"
                if shown == self.violations_total
                else f"{self.violations_total}, first {shown} shown"
            )
            lines.append(f"  VIOLATIONS ({label}):")
            lines.extend(f"    - {v}" for v in self.violations)
            for path in self.persisted:
                lines.append(f"  persisted repro: {path}")
        else:
            lines.append("  all invariants held")
        return "\n".join(lines)


class _PerturbedCache:
    """Backend-bug fixture: delegates to the real cache, misprices answers.

    The soak's self-test installs this on the *engine* only, so the
    perturbed cost flows through the full serving path and must be caught
    by the certificate check — never by the proxy itself.
    """

    def __init__(self, inner, delta: float) -> None:
        self._inner = inner
        self._delta = delta

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def _perturb(self, path: Semilightpath) -> Semilightpath:
        return Semilightpath(hops=path.hops, total_cost=path.total_cost + self._delta)

    def route_with_epoch(self, source, target):
        path, epoch = self._inner.route_with_epoch(source, target)
        return self._perturb(path), epoch

    def route(self, source, target):
        return self.route_with_epoch(source, target)[0]

    def route_rebuild(self, source, target):
        path, network = self._inner.route_rebuild(source, target)
        return self._perturb(path), network


class ChaosSoak:
    """One time-budgeted chaos run against one base network.

    Parameters
    ----------
    network:
        The pristine base network (copied; never mutated).
    seed:
        Drives the fault plan, the query stream, and the retry jitter.
    duration:
        Wall-clock budget in seconds; the fault plan's virtual timeline
        is scaled onto it.
    workers:
        Query-engine worker threads (0 = synchronous serving).
    plan:
        A prebuilt :class:`FaultPlan`; drawn from the seed when omitted.
    num_faults:
        Faults to draw when generating the plan.
    query_timeout:
        Per-query deadline (misses are counted, not violations — a soak
        on a loaded box must not flake).
    cost_perturbation:
        When nonzero, installs the intentionally broken backend — the
        soak is then *expected* to report certificate violations.
    corpus_dir:
        Where certificate-violation repros are persisted (shrunk when
        reproducible).  ``None`` disables persistence.
    max_recovery_pairs:
        Cap on the pairs compared against a fresh router at the end.
    incremental:
        Run the service's epoch cache in incremental (delta-overlay)
        mode.  Every network-resource fault is then followed by a parity
        probe: the cache's next answer — usually served off a *patched*
        overlay rather than a rebuild — must agree hop-for-hop with a
        fresh router on the current degraded view.  Probes are logged to
        the event log as ``parity_check`` events, tagged ``patched`` or
        ``rebuilt``, and any mismatch is a violation.
    """

    def __init__(
        self,
        network: WDMNetwork,
        seed: int = 0,
        duration: float = 30.0,
        workers: int = 2,
        plan: FaultPlan | None = None,
        num_faults: int = 20,
        query_timeout: float = 10.0,
        cost_perturbation: float = 0.0,
        corpus_dir=None,
        max_recovery_pairs: int = 64,
        retry: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
        incremental: bool = False,
    ) -> None:
        if duration <= 0:
            raise ValueError("duration must be > 0")
        if len(network.nodes()) < 2:
            raise ValueError("chaos soak needs at least two nodes")
        self.base = network.copy()
        self.seed = seed
        self.duration = duration
        self.workers = workers
        self.plan = plan if plan is not None else generate_plan(
            self.base, seed=seed, num_faults=num_faults
        )
        self.query_timeout = query_timeout
        self.cost_perturbation = cost_perturbation
        self.corpus_dir = corpus_dir
        self.max_recovery_pairs = max_recovery_pairs
        self.incremental = incremental
        self.report = SoakReport(
            seed=seed, duration=duration, incremental=incremental
        )

        self.event_log = EventLog()
        self.injector = FaultInjector(self.base, observer=self.event_log)
        self.retry = retry if retry is not None else RetryPolicy(
            max_attempts=3, base_delay=0.002, max_delay=0.02, seed=seed
        )
        self.breaker = breaker if breaker is not None else CircuitBreaker(
            failure_threshold=3, reset_timeout=0.25
        )
        # Chain any caller-provided transition callback behind the recorder.
        inner_cb = self.breaker._on_transition
        self._transition_lock = threading.Lock()

        def record_transition(old: str, new: str) -> None:
            with self._transition_lock:
                self.report.breaker_transitions.append((old, new))
            if inner_cb is not None:
                inner_cb(old, new)

        self.breaker._on_transition = record_transition

        #: Epoch -> the exact network snapshot the cache rebuilt against.
        self.snapshots: dict[int, WDMNetwork] = {}
        self.service = RoutingService(
            self._snapshotting_factory,
            workers=workers,
            retry=self.retry,
            breaker=self.breaker,
            allow_stale=True,
            incremental=incremental,
        )
        if cost_perturbation:
            self.service.engine.cache = _PerturbedCache(
                self.service.cache, cost_perturbation
            )
        self.injector.attach(self.service)
        self._rng = random.Random(seed ^ 0x5EED)
        self._pairs = self._query_pool()
        self._max_epoch_seen = -1
        self._persisted_once = False
        #: Pairs that served a fresh answer at least once (drill targets).
        self._reachable: list[tuple[NodeId, NodeId]] = []
        self._reachable_set: set[tuple[NodeId, NodeId]] = set()

    # -- construction helpers -------------------------------------------------

    def _snapshotting_factory(self) -> WDMNetwork:
        """Cache network factory: degraded view, recorded per epoch.

        Called by the epoch cache under its lock during a rebuild; the
        cache's epoch at that instant is exactly the ``built_epoch`` the
        resulting answers will carry, so the certificate check can
        revalidate every answer against the network as it existed at
        answer time.
        """
        view = self.injector.network_view()
        self.snapshots[self.service.cache.epoch if hasattr(self, "service") else 0] = view
        return view

    def _query_pool(self) -> list[tuple[NodeId, NodeId]]:
        nodes = self.base.nodes()
        pairs = [(s, t) for s in nodes for t in nodes if s != t]
        self._rng.shuffle(pairs)
        return pairs[: max(16, min(len(pairs), 128))]

    # -- run ------------------------------------------------------------------

    def run(self) -> SoakReport:
        started = time.monotonic()
        threads_before = {t.ident for t in threading.enumerate()}
        try:
            self._warm_phase()
            self._storm_phase(started)
            self._drain_engine_faults()
            self._breaker_drill()
            self._recovery_phase()
        finally:
            self.service.close()
        self._check_leaks(threads_before)
        self.report.faults_applied = self.plan.kinds()
        self._check_breaker_log()
        stale_metric = self.service.metrics.counter("service.stale_served").value
        if stale_metric != self.report.served_stale:
            self.report.add_violation(
                f"stale accounting mismatch: soak saw {self.report.served_stale} "
                f"stale answers, service.stale_served metric says {stale_metric}"
            )
        cache_counters = self.service.cache.counters()
        self.report.cache_patches = cache_counters.get("patches", 0)
        self.report.cache_rebuilds = cache_counters.get("rebuilds", 0)
        self.report.elapsed = time.monotonic() - started
        self.report.event_log = self.event_log
        return self.report

    def _warm_phase(self) -> None:
        """Route a first sweep before any fault, seeding last-good answers."""
        for source, target in self._pairs[: min(32, len(self._pairs))]:
            self._query(source, target)

    def _storm_phase(self, started: float) -> None:
        """The main loop: queries while the plan's timeline plays out."""
        applied_through = 0.0
        deadline = started + self.duration
        while True:
            now = time.monotonic()
            frac = min(1.0, (now - started) / self.duration)
            for event in self.plan.due(applied_through, frac):
                self._apply_event(event)
            applied_through = frac
            if frac >= 1.0 or now >= deadline:
                break
            for _ in range(8):
                source, target = self._rng.choice(self._pairs)
                self._query(source, target)
            self._observe_epoch()
        # Force any events the wall clock skipped (always includes the
        # trailing recoveries), so the soak ends on the pristine network.
        for event in self.plan.due(applied_through, 1.0):
            self._apply_event(event)

    def _apply_event(self, event: FaultEvent) -> None:
        epoch_before = self.service.epoch
        self.injector.apply(event)
        if event.kind in _NETWORK_FAULT_KINDS:
            # Patched refreshes never call the cache factory (the serving
            # path skips the snapshot copy), so the epoch-keyed audit map
            # is fed here instead: the injector mutates fault state before
            # notifying, hence the post-event view is exactly the network
            # at every epoch this event's notifications bumped through.
            view = self.injector.network_view()
            for epoch in range(epoch_before + 1, self.service.epoch + 1):
                self.snapshots[epoch] = view
        if event.kind == "worker_crash":
            self.injector.take_pending_crash()
            self._exercise_worker_crash()
        elif self.incremental and event.kind in _NETWORK_FAULT_KINDS:
            self._parity_probe(event)

    def _parity_probe(self, event: FaultEvent) -> None:
        """Incremental-mode oracle: patched answers == fresh-router answers.

        Runs right after a network-resource fault lands.  The next cache
        query applies the queued delta (or falls back to a rebuild); its
        answer for a couple of pairs must match — hop for hop — a fresh
        :class:`LiangShenRouter` built on the injector's current view.
        The probe goes through ``service.cache`` directly, bypassing the
        engine, so injected latency/exception faults and the perturbed
        self-test backend cannot blur what is being measured.
        """
        cache = self.service.cache
        view = self.injector.network_view()
        fresh = LiangShenRouter(view)
        before = cache.counters()
        mode = None
        pairs = (self._reachable or self._pairs)[:2]
        for source, target in pairs:
            try:
                served = cache.route(source, target)
            except NoPathError:
                served = None
            if mode is None:
                after = cache.counters()
                if after["patches"] > before["patches"]:
                    mode = "patched"
                elif after["rebuilds"] > before["rebuilds"]:
                    mode = "rebuilt"
                else:
                    mode = "reused"  # epoch unchanged since last refresh
            try:
                expected = fresh.route(source, target).path
            except NoPathError:
                expected = None
            ok = (served is None) == (expected is None) and (
                served is None
                or (
                    served.hops == expected.hops
                    and costs_close(served.total_cost, expected.total_cost)
                )
            )
            self.report.parity_checks += 1
            self.event_log(
                "parity_check",
                event.at,
                source=source,
                target=target,
                fault=event.kind,
                mode=mode,
                ok=ok,
            )
            if not ok:
                self.report.parity_mismatches += 1
                self.report.add_violation(
                    f"incremental parity mismatch ({mode}, after "
                    f"{event.kind}) for {source!r}->{target!r}: cache "
                    f"{served.hops if served else None}, fresh router "
                    f"{expected.hops if expected else None}"
                )

    def _observe_epoch(self) -> None:
        epoch = self.service.epoch
        if epoch < self._max_epoch_seen:
            self.report.add_violation(
                f"cache epoch went backwards: {self._max_epoch_seen} -> {epoch}"
            )
        self._max_epoch_seen = max(self._max_epoch_seen, epoch)

    # -- per-query invariant --------------------------------------------------

    def _query(self, source: NodeId, target: NodeId) -> None:
        self.report.queries += 1
        try:
            outcome = self.service.route_resilient(
                source, target, timeout=self.query_timeout
            )
        except NoPathError:
            self.report.no_path += 1
            return
        except DeadlineExceeded:
            self.report.deadline_misses += 1
            return
        except (TransientBackendError, CircuitOpenError):
            # No stale answer and the rebuild hit the same fault — the
            # query is shed, which is legal degraded behavior.
            self.report.unserved += 1
            return
        if outcome.mode == "fresh":
            self.report.served_fresh += 1
            if (source, target) not in self._reachable_set:
                self._reachable_set.add((source, target))
                self._reachable.append((source, target))
        elif outcome.mode == "stale":
            self.report.served_stale += 1
        else:
            self.report.served_rebuild += 1
        network = (
            outcome.snapshot
            if outcome.snapshot is not None
            else self.snapshots.get(outcome.epoch)
        )
        if network is None:
            self.report.add_violation(
                f"answer for {source!r}->{target!r} carries unknown epoch "
                f"{outcome.epoch} (mode={outcome.mode})"
            )
            return
        certificate = check_certificate(network, outcome.path, source, target)
        if not certificate.ok:
            detail = "; ".join(certificate.violations)
            self.report.add_violation(
                f"certificate violation ({outcome.mode}, epoch {outcome.epoch}) "
                f"for {source!r}->{target!r}: {detail}"
            )
            self._persist_violation(network, source, target)

    # -- scheduled sub-exercises ----------------------------------------------

    def _exercise_worker_crash(self) -> None:
        """Crash one pool worker mid-run; assert containment and recovery."""
        view = self.injector.network_view()
        try:
            route_all_pairs_parallel(view, workers=2, fault_hook=ChunkCrash(0))
        except InjectedFaultError:
            pass
        except Exception as exc:  # noqa: BLE001 - anything else is a violation
            self.report.add_violation(
                f"worker crash surfaced as {type(exc).__name__}: {exc} "
                "(expected InjectedFaultError)"
            )
            return
        else:
            self.report.add_violation(
                "injected worker crash vanished: pool run completed"
            )
            return
        if _SHARED:
            self.report.add_violation(
                "worker crash leaked core.parallel._SHARED state"
            )
            _SHARED.clear()
        # Bounded recovery: the very next pool run must succeed and agree
        # with a serial run on the same view.
        clean = route_all_pairs_parallel(view, workers=2)
        serial = LiangShenRouter(view).route_all_pairs()
        if not _same_paths(clean.paths, serial.paths):
            self.report.add_violation(
                "post-crash pool run disagrees with serial all-pairs"
            )

    def _drain_engine_faults(self, budget: float = 5.0) -> None:
        """Consume any still-pending injected latency/exception faults.

        An open breaker blocks the fault hook (fail-fast never reaches
        the backend), and it only moves to half-open when a call probes
        it — so the drain keeps querying, pausing briefly while calls
        fail fast, and each half-open probe consumes one pending fault.
        """
        deadline = time.monotonic() + budget
        while time.monotonic() < deadline:
            if self.injector.active_faults()["engine_pending"] == 0:
                return
            source, target = self._rng.choice(self._pairs)
            self._query(source, target)
            if self.breaker.state != CircuitBreaker.CLOSED:
                time.sleep(0.02)
        if self.injector.active_faults()["engine_pending"]:
            self.report.add_violation(
                "injected engine faults were never consumed by the workers"
            )

    def _settle_breaker(self, budget: float = 3.0) -> None:
        """Best-effort: get the breaker CLOSED with zero recorded failures.

        The drill's burst arithmetic assumes a clean starting state;
        storm-era failures may have left the count nonzero or the
        breaker open.
        """
        source, target = (
            self._reachable[0] if self._reachable else self._pairs[0]
        )
        deadline = time.monotonic() + budget
        while time.monotonic() < deadline:
            if (
                self.breaker.state == CircuitBreaker.CLOSED
                and self.breaker.consecutive_failures == 0
                and self.injector.active_faults()["engine_pending"] == 0
            ):
                return
            self._query(source, target)
            if self.breaker.state != CircuitBreaker.CLOSED:
                time.sleep(0.02)

    def _breaker_drill(self) -> None:
        """Deterministically drive one full open → half-open → closed cycle.

        Random storms may or may not trip the breaker (retries absorb
        short bursts); production confidence needs the whole state
        machine exercised every soak.
        """
        # Consecutive-failure accounting: a query whose every attempt
        # fails contributes max_attempts failures, and any successful
        # attempt resets the count.  Sizing the burst as the smallest
        # multiple of max_attempts >= failure_threshold guarantees the
        # breaker opens mid-burst with at most max_attempts - 1 faults
        # left over for the drain below.
        per_query = self.retry.max_attempts
        threshold = self.breaker.failure_threshold
        burst = ((threshold + per_query - 1) // per_query) * per_query
        self._settle_breaker()
        self.injector.apply(FaultEvent(1.0, "exception", amount=float(burst)))
        # Drill a pair known to be reachable (corpus networks can have
        # disconnected pairs); any pair still consumes the fault burst.
        source, target = (
            self._reachable[0] if self._reachable else self._pairs[0]
        )
        for _ in range(burst // per_query + 2):
            if self.breaker.state == CircuitBreaker.OPEN:
                break
            self._query(source, target)
        if self.breaker.state != CircuitBreaker.OPEN:
            self.report.add_violation(
                f"breaker drill failed to open the circuit "
                f"(state={self.breaker.state!r})"
            )
            # Clear any leftover injected faults before recovery checks.
            self._drain_engine_faults()
            return
        # While open: served answers must be degraded, not fresh.
        self.report.queries += 1
        try:
            outcome = self.service.route_resilient(source, target)
        except NoPathError:
            self.report.no_path += 1
            outcome = None
        if outcome is not None:
            if outcome.mode == "fresh":
                self.report.add_violation(
                    "open breaker served a fresh backend answer"
                )
            if outcome.mode == "stale":
                self.report.served_stale += 1
            elif outcome.mode == "rebuild":
                self.report.served_rebuild += 1
        # Let the reset timeout elapse, clear any leftover faults
        # (probe-by-probe), then one clean query closes the breaker.
        time.sleep(self.breaker.reset_timeout + 0.02)
        self._drain_engine_faults()
        if self.breaker.state == CircuitBreaker.OPEN:
            time.sleep(self.breaker.reset_timeout + 0.02)
        self._query(source, target)
        if self.breaker.state != CircuitBreaker.CLOSED:
            self.report.add_violation(
                f"breaker did not close after a successful probe "
                f"(state={self.breaker.state!r})"
            )

    def _recovery_phase(self) -> None:
        """After the storm: pristine network, byte-identical re-convergence."""
        if not self.injector.pristine:
            self.report.add_violation(
                f"plan finished but faults are still active: "
                f"{self.injector.active_faults()}"
            )
            return
        started = time.monotonic()
        self.service.invalidate()
        fresh = LiangShenRouter(self.base.copy())
        checked = 0
        for source, target in self._pairs[: self.max_recovery_pairs]:
            try:
                served = self.service.route(source, target, timeout=self.query_timeout)
            except NoPathError:
                served = None
            except (TransientBackendError, CircuitOpenError) as exc:
                # The plan is done and the drains ran; a transient error
                # here means bounded recovery failed.
                self.report.add_violation(
                    f"post-recovery query {source!r}->{target!r} still "
                    f"failing: {type(exc).__name__}: {exc}"
                )
                continue
            try:
                expected = fresh.route(source, target).path
            except NoPathError:
                expected = None
            checked += 1
            if (served is None) != (expected is None):
                self.report.add_violation(
                    f"post-recovery reachability mismatch for "
                    f"{source!r}->{target!r}: service={served!r} "
                    f"router={expected!r}"
                )
                continue
            if served is None:
                continue
            if self.cost_perturbation:
                continue  # the injected backend bug owns this mismatch
            if served.hops != expected.hops or not costs_close(
                served.total_cost, expected.total_cost
            ):
                self.report.add_violation(
                    f"post-recovery route for {source!r}->{target!r} is not "
                    f"byte-identical to a fresh router: served "
                    f"{served.hops} @ {served.total_cost!r}, expected "
                    f"{expected.hops} @ {expected.total_cost!r}"
                )
        self.report.recovery_pairs_checked = checked
        self.report.recovery_seconds = time.monotonic() - started

    # -- failure forensics ----------------------------------------------------

    def _check_breaker_log(self) -> None:
        for old, new in self.report.breaker_transitions:
            if (old, new) not in _LEGAL_TRANSITIONS:
                self.report.add_violation(
                    f"illegal breaker transition {old} -> {new}"
                )

    def _check_leaks(self, threads_before: set) -> None:
        deadline = time.monotonic() + 5.0
        leaked: list[threading.Thread] = []
        while True:
            leaked = [
                t
                for t in threading.enumerate()
                if t.ident not in threads_before
                and t.is_alive()
                and t.name.startswith("repro-query-")
            ]
            if not leaked:
                return
            if time.monotonic() >= deadline:
                break
            time.sleep(0.05)
        self.report.add_violation(
            f"leaked worker threads after shutdown: "
            f"{[t.name for t in leaked]}"
        )

    def _persist_violation(
        self, network: WDMNetwork, source: NodeId, target: NodeId
    ) -> None:
        """Shrink (when reproducible) and persist one certificate repro."""
        if self.corpus_dir is None or self._persisted_once:
            return
        self._persisted_once = True
        from repro.verify.corpus import save_case
        from repro.verify.scenarios import Scenario
        from repro.verify.shrink import shrink_scenario

        scenario = Scenario(
            network=network,
            queries=((source, target),),
            seed=None,
            description=(
                f"chaos soak seed={self.seed}: certificate violation on the "
                f"serving path"
            ),
        )
        if self._scenario_fails(scenario):
            scenario = shrink_scenario(scenario, self._scenario_fails)
        path = save_case(
            self.corpus_dir,
            scenario,
            disagreements=[self.report.violations[-1]],
        )
        self.report.persisted.append(str(path))

    def _scenario_fails(self, scenario) -> bool:
        """Does the live backend's bug reproduce on *scenario* standalone?

        Rebuilds the same serving backend shape — a router answer passed
        through the same perturbation the engine saw — and certificate-
        checks it, so the shrinker minimizes exactly the observed defect.
        """
        router = LiangShenRouter(scenario.network)
        for source, target in scenario.queries:
            try:
                path = router.route(source, target).path
            except NoPathError:
                continue
            if self.cost_perturbation:
                path = Semilightpath(
                    hops=path.hops,
                    total_cost=path.total_cost + self.cost_perturbation,
                )
            if not check_certificate(scenario.network, path, source, target).ok:
                return True
        return False


def _same_paths(a, b) -> bool:
    if a.keys() != b.keys():
        return False
    return all(
        a[key].hops == b[key].hops and costs_close(a[key].total_cost, b[key].total_cost)
        for key in a
    )
