"""Baselines: the CFZ wavelength-graph algorithm and a brute-force oracle.

* :mod:`~repro.baseline.wavelength_graph` /
  :mod:`~repro.baseline.cfz` — the earlier Chlamtac–Faragó–Zhang
  algorithm the paper improves on: a shortest path in the *wavelength
  graph* ``WG`` with ``kn`` nodes ``(v, λ)``.  Implemented both with the
  dense ``O(N²)`` Dijkstra scan its published bound assumes and with a
  heap, so the Section III-C comparison is fair.
* :mod:`~repro.baseline.brute_force` — an exhaustive label-correcting
  search over ``(node, wavelength)`` states used as a correctness oracle
  on small networks.
"""

from repro.baseline.brute_force import brute_force_route, brute_force_route_bounded
from repro.baseline.cfz import CFZRouter
from repro.baseline.wavelength_graph import WavelengthGraph, build_wavelength_graph

__all__ = [
    "CFZRouter",
    "WavelengthGraph",
    "build_wavelength_graph",
    "brute_force_route",
    "brute_force_route_bounded",
]
