"""A code-independent exact oracle for the optimal semilightpath problem.

:func:`brute_force_route` performs plain label-correcting relaxation over
``(node, incoming-wavelength)`` states with an explicit FIFO worklist — no
heaps, no auxiliary-graph machinery, no code shared with the routers under
test.  Eq. (1) is Markovian in that state (the cost of extending a walk
depends only on the current node and the wavelength the walk arrived on),
so the fixed point of the relaxation is exactly the optimal semilightpath
cost, including walks that revisit nodes.

Intended strictly as a test oracle: complexity is fine for the small
networks property-based tests generate, not for benchmarks.
"""

from __future__ import annotations

import math
from collections import deque
from typing import TYPE_CHECKING, Hashable

from repro.core.semilightpath import Hop, Semilightpath
from repro.exceptions import NoPathError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.network import WDMNetwork

__all__ = ["brute_force_route", "brute_force_route_bounded"]

NodeId = Hashable
INF = math.inf


def brute_force_route(
    network: "WDMNetwork", source: NodeId, target: NodeId
) -> Semilightpath:
    """Exact optimal semilightpath by label-correcting over states.

    Raises :class:`~repro.exceptions.NoPathError` when *target* cannot be
    reached by any semilightpath.
    """
    if source == target:
        raise ValueError("source and target must differ")
    network.node_index(source)  # raises UnknownNodeError if absent
    network.node_index(target)

    # State: (node, wavelength the walk arrived on).
    dist: dict[tuple[NodeId, int], float] = {}
    parent: dict[tuple[NodeId, int], tuple[NodeId, int] | None] = {}
    worklist: deque[tuple[NodeId, int]] = deque()

    # Seed: first hop out of the source (no conversion before the first link).
    for link in network.out_links(source):
        for wavelength, weight in link.costs.items():
            state = (link.head, wavelength)
            if weight < dist.get(state, INF):
                dist[state] = weight
                parent[state] = None
                # Record which link started the walk via a sentinel parent
                # keyed by the state itself; the seed hop is (source, head).
                worklist.append(state)

    # Relax to fixpoint.  States at the target are extended too: a walk may
    # pass through the target and return to it more cheaply on another
    # wavelength.  Termination: improvements are strict and costs >= 0.
    while worklist:
        node, arrived_on = worklist.popleft()
        base = dist[(node, arrived_on)]
        model = network.conversion(node)
        for link in network.out_links(node):
            for wavelength, weight in link.costs.items():
                conv = model.cost(arrived_on, wavelength)
                if conv == INF:
                    continue
                alt = base + conv + weight
                state = (link.head, wavelength)
                if alt < dist.get(state, INF):
                    dist[state] = alt
                    parent[state] = (node, arrived_on)
                    worklist.append(state)

    # Best terminal state.
    best_state: tuple[NodeId, int] | None = None
    best_cost = INF
    for (node, wavelength), cost in dist.items():
        if node == target and cost < best_cost:
            best_cost = cost
            best_state = (node, wavelength)
    if best_state is None:
        raise NoPathError(source, target)

    # Reconstruct the hop sequence by walking parents back to a seed state.
    # A fuel counter guards against a corrupted parent chain (cannot occur
    # with strict improvements, but a hang would be a terrible failure mode
    # for an oracle).
    hops_reversed: list[Hop] = []
    state: tuple[NodeId, int] | None = best_state
    fuel = len(dist) + 1
    while state is not None:
        fuel -= 1
        if fuel < 0:
            raise RuntimeError("parent chain longer than the state space")
        node, wavelength = state
        prev = parent[state]
        tail = source if prev is None else prev[0]
        hops_reversed.append(Hop(tail=tail, head=node, wavelength=wavelength))
        state = prev
    hops = tuple(reversed(hops_reversed))
    return Semilightpath(hops=hops, total_cost=best_cost)


def brute_force_route_bounded(
    network: "WDMNetwork",
    source: NodeId,
    target: NodeId,
    max_conversions: int,
) -> Semilightpath:
    """Exact optimum under a conversion budget (oracle for ``core.bounded``).

    Same label-correcting scheme over the richer state
    ``(node, arrival wavelength, conversions used)``.  Exponential-free but
    ``(q + 1)``× the state space; strictly a test oracle.
    """
    if source == target:
        raise ValueError("source and target must differ")
    if max_conversions < 0:
        raise ValueError(f"max_conversions must be >= 0, got {max_conversions}")
    network.node_index(source)
    network.node_index(target)

    State = tuple  # (node, wavelength, conversions_used)
    dist: dict[State, float] = {}
    parent: dict[State, State | None] = {}
    worklist: deque[State] = deque()

    for link in network.out_links(source):
        for wavelength, weight in link.costs.items():
            state = (link.head, wavelength, 0)
            if weight < dist.get(state, INF):
                dist[state] = weight
                parent[state] = None
                worklist.append(state)

    while worklist:
        node, arrived_on, used = worklist.popleft()
        base = dist[(node, arrived_on, used)]
        model = network.conversion(node)
        for link in network.out_links(node):
            for wavelength, weight in link.costs.items():
                conv = model.cost(arrived_on, wavelength)
                if conv == INF:
                    continue
                next_used = used + (1 if wavelength != arrived_on else 0)
                if next_used > max_conversions:
                    continue
                alt = base + conv + weight
                state = (link.head, wavelength, next_used)
                if alt < dist.get(state, INF):
                    dist[state] = alt
                    parent[state] = (node, arrived_on, used)
                    worklist.append(state)

    best_state: State | None = None
    best_cost = INF
    for (node, _wavelength, _used), cost in dist.items():
        if node == target and cost < best_cost:
            best_cost = cost
            best_state = (node, _wavelength, _used)
    if best_state is None:
        raise NoPathError(source, target)

    hops_reversed: list[Hop] = []
    state = best_state
    fuel = len(dist) + 1
    while state is not None:
        fuel -= 1
        if fuel < 0:
            raise RuntimeError("parent chain longer than the state space")
        node, wavelength, _used = state
        prev = parent[state]
        tail = source if prev is None else prev[0]
        hops_reversed.append(Hop(tail=tail, head=node, wavelength=wavelength))
        state = prev
    return Semilightpath(
        hops=tuple(reversed(hops_reversed)), total_cost=best_cost
    )
