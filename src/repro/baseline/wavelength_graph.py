"""The Chlamtac–Faragó–Zhang wavelength graph ``WG``.

CFZ (IEEE JSAC 1996) reduce semilightpath routing to a shortest path in a
*wavelength graph*: one node ``(v, λ)`` per physical node per wavelength in
the full universe ``Λ`` (``kn`` nodes total), with

* a **link edge** ``(u, λ) → (v, λ)`` of weight ``w(⟨u,v⟩, λ)`` for every
  physical link and every ``λ ∈ Λ(⟨u,v⟩)``, and
* a **conversion edge** ``(v, λ_p) → (v, λ_q)`` of weight ``c_v(λ_p, λ_q)``
  for every node and supported pair.

This is the construction the present paper improves on: ``WG`` ignores the
physical topology when laying out conversion edges (every node gets up to
``k²`` of them, wavelengths incident or not), which is where the
``O(k²n + kn²)`` total comes from.  Note the paper's correction: ``WG``
must be stored as adjacency lists — an adjacency matrix would already cost
``O(k²n²)`` to initialize.

Modeling note: a ``WG`` path may *chain* conversion edges at one node
(``λ_a → λ_b → λ_c``), which Eq. (1) does not price — it charges the single
direct conversion per wavelength switch.  ``WG``'s optimum therefore equals
Eq. (1)'s exactly when the conversion model is **chain-free**: a chain
never costs less than the direct edge (cost triangle inequality) *and*
never reaches a pair the direct edge cannot (transitive support).
:class:`~repro.core.conversion.FullConversion` /
:class:`~repro.core.conversion.FixedCostConversion` and
:class:`~repro.core.conversion.NoConversion` are chain-free;
:class:`~repro.core.conversion.RangeLimitedConversion` is *not* (its costs
are additive but chains out-reach the range limit), and adversarial
:class:`~repro.core.conversion.MatrixConversion` tables may violate the
cost side too.  Callers comparing against the Liang–Shen router must use
chain-free conversion costs (the comparison benchmarks and tests do).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Hashable

from repro.shortestpath.structures import GraphBuilder, StaticGraph

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.network import WDMNetwork

__all__ = ["WavelengthGraph", "build_wavelength_graph"]

NodeId = Hashable


@dataclass(frozen=True)
class WavelengthGraph:
    """``WG`` plus its virtual terminals and decode information.

    Wavelength-graph node ids are ``node_index * k + wavelength``; the two
    extra ids are the virtual source (``kn``) and sink (``kn + 1``),
    re-targeted per query by zero-weight edges (the graph is rebuilt per
    query, as in the original algorithm's accounting).
    """

    network: "WDMNetwork"
    graph: StaticGraph
    source: NodeId
    target: NodeId
    source_id: int
    sink_id: int
    num_link_edges: int
    num_conversion_edges: int

    def state_id(self, node: NodeId, wavelength: int) -> int:
        """Id of the ``(node, wavelength)`` state."""
        return self.network.node_index(node) * self.network.num_wavelengths + wavelength

    def decode_state(self, state: int) -> tuple[NodeId, int]:
        """Inverse of :meth:`state_id` (virtual terminals not allowed)."""
        k = self.network.num_wavelengths
        if state >= self.network.num_nodes * k:
            raise ValueError(f"state {state} is a virtual terminal")
        return self.network.node_label(state // k), state % k


def build_wavelength_graph(
    network: "WDMNetwork", source: NodeId, target: NodeId
) -> WavelengthGraph:
    """Construct ``WG`` for one ``(source, target)`` query.

    The virtual source has zero-weight edges to every ``(source, λ)``; the
    virtual sink has zero-weight edges from every ``(target, λ)``.  Total
    size: ``kn + 2`` nodes and ``O(k²n + Σ_e |Λ(e)| + 2k)`` edges.
    """
    if source == target:
        raise ValueError("source and target must differ")
    k = network.num_wavelengths
    n = network.num_nodes
    builder = GraphBuilder(n * k + 2)
    source_id = n * k
    sink_id = n * k + 1

    # Conversion edges at every node, over the full universe Λ — this is
    # exactly CFZ's topology-oblivious layout.
    universe = range(k)
    num_conversion_edges = 0
    for v in network.nodes():
        base = network.node_index(v) * k
        model = network.conversion(v)
        for p, q, cost in model.finite_pairs(universe, universe):
            if p != q:
                builder.add_edge(base + p, base + q, cost)
                num_conversion_edges += 1

    # Link edges per available wavelength.
    num_link_edges = 0
    for link in network.links():
        u_base = network.node_index(link.tail) * k
        v_base = network.node_index(link.head) * k
        for wavelength, cost in sorted(link.costs.items()):
            builder.add_edge(u_base + wavelength, v_base + wavelength, cost)
            num_link_edges += 1

    # Virtual terminals.
    s_base = network.node_index(source) * k
    t_base = network.node_index(target) * k
    for wavelength in universe:
        builder.add_edge(source_id, s_base + wavelength, 0.0)
        builder.add_edge(t_base + wavelength, sink_id, 0.0)

    return WavelengthGraph(
        network=network,
        graph=builder.build(),
        source=source,
        target=target,
        source_id=source_id,
        sink_id=sink_id,
        num_link_edges=num_link_edges,
        num_conversion_edges=num_conversion_edges,
    )
