"""The Chlamtac–Faragó–Zhang router (the paper's comparison baseline).

:class:`CFZRouter` finds optimal semilightpaths by a shortest path in the
wavelength graph ``WG`` (see :mod:`repro.baseline.wavelength_graph`).  Two
Dijkstra engines are offered:

* ``engine="dense"`` — the ``O(N²)`` linear-scan Dijkstra the published
  ``O(k²n + kn²)`` bound assumes (no heap; scan all unsettled states for
  the minimum).  This is the faithful baseline for the Section III-C
  comparison.
* ``engine="heap"`` — the same ``WG`` searched with a binary heap; a
  stronger baseline that isolates how much of Liang–Shen's win comes from
  the *graph* being smaller rather than from the queue.

Both decode the ``WG`` path to a
:class:`~repro.core.semilightpath.Semilightpath` whose cost is re-evaluated
under Eq. (1) (see the modeling note in
:mod:`repro.baseline.wavelength_graph` about chained conversions).
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Hashable

from repro.baseline.wavelength_graph import WavelengthGraph, build_wavelength_graph
from repro.core.instrumentation import QueryStats
from repro.core.routing import RouteResult
from repro.core.semilightpath import Hop, Semilightpath
from repro.core.auxiliary import AuxiliarySizes
from repro.exceptions import InvalidPathError, NoPathError
from repro.shortestpath.dijkstra import dijkstra
from repro.shortestpath.paths import reconstruct_path
from repro.shortestpath.structures import StaticGraph

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.network import WDMNetwork

__all__ = ["CFZRouter"]

NodeId = Hashable
INF = math.inf


class CFZRouter:
    """Semilightpath routing via the CFZ wavelength graph.

    Parameters
    ----------
    network:
        The WDM network to route on.
    engine:
        ``"dense"`` (the published algorithm's ``O(N²)`` scan) or
        ``"heap"`` (binary-heap Dijkstra on the same graph).
    """

    def __init__(self, network: "WDMNetwork", engine: str = "dense") -> None:
        if engine not in ("dense", "heap"):
            raise ValueError(f"engine must be 'dense' or 'heap', got {engine!r}")
        self.network = network
        self.engine = engine

    def route(self, source: NodeId, target: NodeId) -> RouteResult:
        """Find an optimal semilightpath from *source* to *target*.

        Raises :class:`~repro.exceptions.NoPathError` when unreachable.
        """
        wg = build_wavelength_graph(self.network, source, target)
        if self.engine == "dense":
            dist, parent, settled, relaxations = _dense_dijkstra(
                wg.graph, wg.source_id, wg.sink_id
            )
            heap_stats: dict[str, int] = {}
        else:
            run = dijkstra(wg.graph, wg.source_id, target=wg.sink_id, heap="binary")
            dist, parent = run.dist, run.parent
            settled, relaxations = run.settled, run.relaxations
            heap_stats = dict(run.heap_stats)
        if dist[wg.sink_id] == INF:
            raise NoPathError(source, target)
        state_path = reconstruct_path(parent, wg.sink_id)
        path = _decode_wg_path(wg, state_path)
        stats = QueryStats(
            sizes=_wg_sizes(self.network, wg),
            settled=settled,
            relaxations=relaxations,
            heap=heap_stats,
        )
        return RouteResult(path=path, stats=stats)


def _wg_sizes(network: "WDMNetwork", wg: WavelengthGraph) -> AuxiliarySizes:
    """Describe ``WG``'s size with the same accounting record the router uses.

    The bipartite fields do not apply to ``WG``; they are reported as the
    per-node conversion-edge maximum so dashboards can still compare
    per-node footprints.
    """
    k = network.num_wavelengths
    return AuxiliarySizes(
        n=network.num_nodes,
        m=network.num_links,
        k=k,
        k0=network.max_link_wavelengths,
        d=network.max_degree,
        m1=network.total_link_wavelengths,
        num_layer_nodes=wg.graph.num_nodes,
        num_layer_edges=wg.graph.num_edges,
        num_org_edges=wg.num_link_edges,
        num_conversion_edges=wg.num_conversion_edges,
        max_bipartite_nodes=2 * k,
        max_bipartite_edges=k * k,
    )


def _dense_dijkstra(
    graph: StaticGraph, source: int, target: int
) -> tuple[list[float], list[int], int, int]:
    """Dijkstra with an ``O(N)`` extract-min scan (no heap).

    This is the procedure whose ``O(N²)`` total the CFZ bound
    ``O(k²n + kn²)`` counts (``N = kn``); provided here so the baseline's
    measured scaling matches its published complexity.
    """
    n = graph.num_nodes
    dist = [INF] * n
    parent = [-1] * n
    done = [False] * n
    dist[source] = 0.0
    settled = 0
    relaxations = 0
    for _ in range(n):
        best = -1
        best_dist = INF
        for v in range(n):
            if not done[v] and dist[v] < best_dist:
                best = v
                best_dist = dist[v]
        if best == -1:
            break
        done[best] = True
        settled += 1
        if best == target:
            break
        slots, heads, weights, _tags = graph.neighbor_slices(best)
        for i in slots:
            v = heads[i]
            if done[v]:
                continue
            relaxations += 1
            alt = best_dist + weights[i]
            if alt < dist[v]:
                dist[v] = alt
                parent[v] = best
    return dist, parent, settled, relaxations


def _decode_wg_path(wg: WavelengthGraph, state_path: list[int]) -> Semilightpath:
    """Convert a ``WG`` path into a semilightpath.

    Link edges become hops; conversion edges (same physical node) are
    dropped — the :class:`Semilightpath` re-derives conversions from
    consecutive hop wavelengths.  The returned cost is re-evaluated under
    Eq. (1), which equals the ``WG`` distance whenever conversion costs are
    metric (see module docstring).
    """
    hops: list[Hop] = []
    interior = [s for s in state_path if s not in (wg.source_id, wg.sink_id)]
    for i in range(len(interior) - 1):
        u, lam_u = wg.decode_state(interior[i])
        v, lam_v = wg.decode_state(interior[i + 1])
        if u != v:
            # Link edges preserve the wavelength by construction; a mismatch
            # means WG or the parent array is corrupt.  A real exception so
            # the check survives ``python -O``.
            if lam_u != lam_v:
                raise InvalidPathError(
                    f"corrupt WG link edge: ({u!r}, λ{lam_u + 1}) -> "
                    f"({v!r}, λ{lam_v + 1}) changes wavelength"
                )
            hops.append(Hop(tail=u, head=v, wavelength=lam_u))
    path = Semilightpath(hops=tuple(hops))
    return Semilightpath(hops=path.hops, total_cost=path.evaluate_cost(wg.network))
