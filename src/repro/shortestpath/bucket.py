"""Dial-style bucket-queue Dijkstra for integer-lattice edge weights.

The verify subsystem constrains scenario costs to a quarter-integer
lattice (:mod:`repro.verify.scenarios`), and production WDM cost models
are routinely quantized.  On such instances every tentative distance is a
multiple of ``1 / scale`` for a small power-of-two ``scale``, so a Dial
bucket queue replaces the ``heapq`` sift with an O(1) list append per
push: bucket ``b`` holds the frontier nodes whose tentative distance is
exactly ``b / scale``, and a monotone cursor drains buckets in ascending
index order.

Applicability is decided by :meth:`StaticGraph.lattice_scale` — detected
once per graph (hence once per overlay epoch, since the routers rebuild
their auxiliary graphs per epoch) and memoized.  Off-lattice weights,
delta-masked graphs probed while degraded, and absurd bucket spans all
report "no lattice", and :func:`bucket_dijkstra` transparently falls back
to :func:`~repro.shortestpath.flat.flat_dijkstra` — same signature, same
result, just comparison-based.

Tie-break parity
----------------
Within one bucket the pending nodes are kept as a min-heap of **bare node
ids**, so equal-distance nodes settle in ascending id order — exactly the
``(dist, node)`` order every other kernel uses.  Because power-of-two
scaling is exact float arithmetic (an exponent shift), ``int(alt * scale)``
and ``bucket_index / scale`` round-trip bit-for-bit: the kernel performs
the *identical* float additions in the *identical* order as the flat
kernel, so ``dist`` / ``parent`` / ``parent_tag`` — and therefore decoded
hop sequences — are byte-identical, not merely equivalent.  The property
suite (``tests/property/test_bucket_lattice.py``) pins this.

Stale entries: pushes happen only on strict improvement, so a node holds
at most one entry per distinct distance value; an entry whose bucket index
no longer matches ``dist[u] * scale`` is skipped, mirroring the flat
kernel's lazy deletion.
"""

from __future__ import annotations

import math
from heapq import heapify, heappop, heappush
from typing import Iterable

from repro.shortestpath.dijkstra import DijkstraResult
from repro.shortestpath.flat import ScratchBuffers, ScratchPool, flat_dijkstra
from repro.shortestpath.structures import StaticGraph

__all__ = ["bucket_dijkstra"]

INF = math.inf


def bucket_dijkstra(
    graph: StaticGraph,
    sources: int | Iterable[int],
    target: int | None = None,
    targets: Iterable[int] | None = None,
    scratch: ScratchBuffers | ScratchPool | None = None,
) -> DijkstraResult:
    """Drop-in :func:`flat_dijkstra` replacement using a Dial bucket queue.

    Activates only when ``graph.lattice_scale()`` detects an integer
    lattice; otherwise delegates to the flat kernel unchanged.  The
    returned result is byte-identical to the flat kernel's either way;
    when the bucket path ran, ``heap_stats`` carries a ``bucket_scale``
    entry recording the detected scale (tests and benchmarks use it to
    tell the two paths apart).

    See :func:`flat_dijkstra` for parameter semantics, including the
    scratch-buffer lifetime contract.
    """
    scale = graph.lattice_scale()
    if scale is None:
        return flat_dijkstra(
            graph, sources, target=target, targets=targets, scratch=scratch
        )

    if isinstance(sources, int):
        source_tuple: tuple[int, ...] = (sources,)
    else:
        source_tuple = tuple(sources)
    if not source_tuple:
        raise ValueError("at least one source is required")
    n = graph.num_nodes
    for s in source_tuple:
        if not 0 <= s < n:
            raise IndexError(f"source {s} out of range [0, {n})")
    if target is not None and targets is not None:
        raise ValueError("pass either target or targets, not both")
    if target is not None and not 0 <= target < n:
        raise IndexError(f"target {target} out of range [0, {n})")
    target_set: frozenset[int] | None = None
    if targets is not None:
        target_set = frozenset(targets)
        for t in target_set:
            if not 0 <= t < n:
                raise IndexError(f"target {t} out of range [0, {n})")

    if scratch is None:
        buffers = ScratchBuffers(n)
    elif isinstance(scratch, ScratchPool):
        buffers = scratch.get(n)
    else:
        buffers = scratch
        if buffers.num_nodes != n:
            raise ValueError(
                f"scratch sized for {buffers.num_nodes} nodes, graph has {n}"
            )
    buffers.reset()
    dist = buffers.dist
    parent = buffers.parent
    parent_tag = buffers.parent_tag
    touched = buffers.touched

    offsets, heads, weights, tags = graph.csr()
    fscale = float(scale)
    inv_scale = 1.0 / fscale  # power of two: exact
    pushes = pops = stale = relaxations = 0
    stopped_at = -1

    seeds: list[int] = []
    for s in source_tuple:
        if dist[s] != 0.0:
            dist[s] = 0.0
            touched.append(s)
            seeds.append(s)
            pushes += 1
    # buckets[b] holds frontier nodes at tentative distance b / scale; the
    # cursor only moves forward, so the directory grows to the largest
    # *reached* distance, not the detection-time span bound.
    buckets: list[list[int]] = [seeds]
    cur = 0
    done = False

    while not done:
        while cur < len(buckets) and not buckets[cur]:
            cur += 1
        if cur >= len(buckets):
            break
        frontier = buckets[cur]
        buckets[cur] = []
        heapify(frontier)
        du = cur * inv_scale  # exact: recovers the float distance bit-for-bit
        while frontier:
            u = heappop(frontier)
            if dist[u] != du:
                stale += 1
                continue
            pops += 1
            if target is not None and u == target:
                stopped_at = u
                done = True
                break
            if target_set is not None and u in target_set:
                stopped_at = u
                done = True
                break
            for i in range(offsets[u], offsets[u + 1]):
                v = heads[i]
                relaxations += 1
                alt = du + weights[i]
                if alt < dist[v]:
                    if dist[v] == INF:
                        touched.append(v)
                    dist[v] = alt
                    parent[v] = u
                    parent_tag[v] = tags[i]
                    b = int(alt * fscale)  # exact integer on the lattice
                    if b == cur:
                        heappush(frontier, v)
                    else:
                        if b >= len(buckets):
                            buckets.extend([] for _ in range(b + 1 - len(buckets)))
                        buckets[b].append(v)
                    pushes += 1

    return DijkstraResult(
        source=source_tuple,
        dist=dist,
        parent=parent,
        parent_tag=parent_tag,
        settled=pops,
        relaxations=relaxations,
        heap_stats={
            "pushes": pushes,
            "pops": pops,
            "stale": stale,
            "bucket_scale": scale,
        },
        stopped_at=stopped_at,
    )
