"""Flat-array Dijkstra fast path over :class:`StaticGraph` CSR arrays.

The addressable-heap Dijkstra in :mod:`repro.shortestpath.dijkstra` is the
reference implementation behind Theorem 1's complexity accounting: it
reports exact push/pop/decrease-key counts for any of the three heap
structures.  That generality costs real time in CPython — every heap
operation crosses a method boundary, every node allocates dict entries,
and every query allocates fresh ``dist``/``parent`` lists.

This module is the serving-path alternative.  It trades the addressable
heap for :mod:`heapq` with **lazy deletion** (a popped entry whose key is
staler than ``dist`` is skipped instead of decreased in place) and keeps
all per-node state in preallocated ``array('d')`` / ``array('q')``
buffers that are **reused across queries**:

* :class:`ScratchBuffers` — one set of dist/parent/tag buffers for a
  fixed graph size, reset in time proportional to the *previous* query's
  touched set (an early-stopped query touching 50 nodes pays a 50-node
  reset, not an ``n``-node one).
* :class:`ScratchPool` — a per-thread pool of buffers keyed by graph
  size, so one router instance can serve concurrent threads without
  locking.
* :func:`flat_dijkstra` — the kernel itself, returning the same
  :class:`~repro.shortestpath.dijkstra.DijkstraResult` shape as the
  reference implementation.

Lifetime contract
-----------------
When a query runs on reusable scratch (an explicit :class:`ScratchBuffers`
or a :class:`ScratchPool`), the returned result's ``dist`` / ``parent`` /
``parent_tag`` views are **valid only until the next query on the same
scratch**.  Callers must finish decoding before issuing another query (the
routers do), or pass ``scratch=None`` to get private buffers.

Tie-breaking: the heap orders entries by ``(dist, node)``, so among
equal-distance frontier nodes the smallest auxiliary id settles first.
The addressable-heap kernels key their heaps the same way, so all four
kernels return the same parent forest — identical hop sequences even
when multiple shortest paths exist.
"""

from __future__ import annotations

import math
import threading
from array import array
from heapq import heappop, heappush
from typing import Iterable

from repro.shortestpath.dijkstra import DijkstraResult
from repro.shortestpath.structures import StaticGraph

__all__ = ["ScratchBuffers", "ScratchPool", "flat_dijkstra"]

INF = math.inf


class ScratchBuffers:
    """Preallocated per-query state for :func:`flat_dijkstra`.

    One instance serves one graph size (``num_nodes``).  The arrays hold
    the *most recent* query's results; :meth:`reset` restores only the
    entries that query touched.
    """

    __slots__ = ("num_nodes", "dist", "parent", "parent_tag", "touched")

    def __init__(self, num_nodes: int) -> None:
        if num_nodes < 0:
            raise ValueError("num_nodes must be >= 0")
        self.num_nodes = num_nodes
        self.dist: array = array("d", [INF]) * num_nodes
        self.parent: array = array("q", [-1]) * num_nodes
        self.parent_tag: array = array("q", [-1]) * num_nodes
        self.touched: list[int] = []

    def reset(self) -> None:
        """Restore the entries touched by the previous query to pristine."""
        dist = self.dist
        parent = self.parent
        parent_tag = self.parent_tag
        for v in self.touched:
            dist[v] = INF
            parent[v] = -1
            parent_tag[v] = -1
        self.touched.clear()


class ScratchPool:
    """Per-thread :class:`ScratchBuffers`, keyed by graph size.

    Routers keep one pool per instance; each worker thread lazily gets its
    own buffers, so concurrent queries never share mutable state and no
    lock is taken on the hot path.
    """

    __slots__ = ("_local",)

    def __init__(self) -> None:
        self._local = threading.local()

    def get(self, num_nodes: int) -> ScratchBuffers:
        """The calling thread's buffers for graphs of *num_nodes* nodes."""
        buffers: dict[int, ScratchBuffers] | None = getattr(
            self._local, "buffers", None
        )
        if buffers is None:
            buffers = self._local.buffers = {}
        scratch = buffers.get(num_nodes)
        if scratch is None:
            scratch = buffers[num_nodes] = ScratchBuffers(num_nodes)
        return scratch


def flat_dijkstra(
    graph: StaticGraph,
    sources: int | Iterable[int],
    target: int | None = None,
    targets: Iterable[int] | None = None,
    scratch: ScratchBuffers | ScratchPool | None = None,
) -> DijkstraResult:
    """Single- or multi-source shortest paths via heapq with lazy deletion.

    Parameters
    ----------
    graph:
        A :class:`StaticGraph` with nonnegative edge weights.
    sources:
        One node id, or an iterable of ids all seeded at distance 0.
    target:
        Stop as soon as this node settles (its distance is then final).
    targets:
        Stop as soon as *any* member settles.  Because nodes settle in
        nondecreasing distance order, the first settled member attains the
        minimum distance over the whole set — this is what overlay
        single-pair queries use to terminate on ``min over X_t`` without
        a virtual sink node.  Mutually exclusive with *target*.
    scratch:
        ``None`` (private buffers, safe to keep), a :class:`ScratchBuffers`
        of matching size, or a :class:`ScratchPool` (per-thread reuse).
        See the module docstring for the reuse lifetime contract.

    Returns
    -------
    DijkstraResult
        ``stopped_at`` holds the settled target (-1 if the search ran to
        exhaustion or the target was unreachable).  ``heap_stats`` reports
        ``pushes`` / ``pops`` / ``stale`` (lazily deleted entries).
    """
    if isinstance(sources, int):
        source_tuple: tuple[int, ...] = (sources,)
    else:
        source_tuple = tuple(sources)
    if not source_tuple:
        raise ValueError("at least one source is required")
    n = graph.num_nodes
    for s in source_tuple:
        if not 0 <= s < n:
            raise IndexError(f"source {s} out of range [0, {n})")
    if target is not None and targets is not None:
        raise ValueError("pass either target or targets, not both")
    if target is not None and not 0 <= target < n:
        raise IndexError(f"target {target} out of range [0, {n})")
    target_set: frozenset[int] | None = None
    if targets is not None:
        target_set = frozenset(targets)
        for t in target_set:
            if not 0 <= t < n:
                raise IndexError(f"target {t} out of range [0, {n})")

    if scratch is None:
        buffers = ScratchBuffers(n)
    elif isinstance(scratch, ScratchPool):
        buffers = scratch.get(n)
    else:
        buffers = scratch
        if buffers.num_nodes != n:
            raise ValueError(
                f"scratch sized for {buffers.num_nodes} nodes, graph has {n}"
            )
    buffers.reset()
    dist = buffers.dist
    parent = buffers.parent
    parent_tag = buffers.parent_tag
    touched = buffers.touched

    offsets, heads, weights, tags = graph.csr()
    heap: list[tuple[float, int]] = []
    pushes = pops = stale = relaxations = 0
    stopped_at = -1

    for s in source_tuple:
        if dist[s] != 0.0:
            dist[s] = 0.0
            touched.append(s)
            heappush(heap, (0.0, s))
            pushes += 1

    while heap:
        du, u = heappop(heap)
        if du > dist[u]:
            stale += 1
            continue
        pops += 1
        if target is not None and u == target:
            stopped_at = u
            break
        if target_set is not None and u in target_set:
            stopped_at = u
            break
        for i in range(offsets[u], offsets[u + 1]):
            v = heads[i]
            relaxations += 1
            alt = du + weights[i]
            if alt < dist[v]:
                if dist[v] == INF:
                    touched.append(v)
                dist[v] = alt
                parent[v] = u
                parent_tag[v] = tags[i]
                heappush(heap, (alt, v))
                pushes += 1

    return DijkstraResult(
        source=source_tuple,
        dist=dist,
        parent=parent,
        parent_tag=parent_tag,
        settled=pops,
        relaxations=relaxations,
        heap_stats={"pushes": pushes, "pops": pops, "stale": stale},
        stopped_at=stopped_at,
    )
