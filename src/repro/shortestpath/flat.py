"""Flat-array Dijkstra fast path over :class:`StaticGraph` CSR arrays.

The addressable-heap Dijkstra in :mod:`repro.shortestpath.dijkstra` is the
reference implementation behind Theorem 1's complexity accounting: it
reports exact push/pop/decrease-key counts for any of the three heap
structures.  That generality costs real time in CPython — every heap
operation crosses a method boundary, every node allocates dict entries,
and every query allocates fresh ``dist``/``parent`` lists.

This module is the serving-path alternative.  It trades the addressable
heap for :mod:`heapq` with **lazy deletion** (a popped entry whose key is
staler than ``dist`` is skipped instead of decreased in place) and keeps
all per-node state in preallocated ``array('d')`` / ``array('q')``
buffers that are **reused across queries**:

* :class:`ScratchBuffers` — one set of dist/parent/tag buffers for a
  fixed graph size, reset in time proportional to the *previous* query's
  touched set (an early-stopped query touching 50 nodes pays a 50-node
  reset, not an ``n``-node one).
* :class:`ScratchPool` — a per-thread pool of buffers keyed by graph
  size, so one router instance can serve concurrent threads without
  locking.
* :func:`flat_dijkstra` — the kernel itself, returning the same
  :class:`~repro.shortestpath.dijkstra.DijkstraResult` shape as the
  reference implementation.

Lifetime contract
-----------------
When a query runs on reusable scratch (an explicit :class:`ScratchBuffers`
or a :class:`ScratchPool`), the returned result's ``dist`` / ``parent`` /
``parent_tag`` views are **valid only until the next query on the same
scratch**.  Callers must finish decoding before issuing another query (the
routers do), or pass ``scratch=None`` to get private buffers.

Tie-breaking: the heap orders entries by ``(dist, node)``, so among
equal-distance frontier nodes the smallest auxiliary id settles first.
The addressable-heap kernels key their heaps the same way, so all four
kernels return the same parent forest — identical hop sequences even
when multiple shortest paths exist.
"""

from __future__ import annotations

import math
import threading
from array import array
from heapq import heapify, heappop, heappush
from typing import Callable, Iterable

from repro.shortestpath.dijkstra import DijkstraResult
from repro.shortestpath.structures import StaticGraph

__all__ = ["ScratchBuffers", "ScratchPool", "WarmRun", "flat_dijkstra"]

INF = math.inf


class ScratchBuffers:
    """Preallocated per-query state for :func:`flat_dijkstra`.

    One instance serves one graph size (``num_nodes``).  The arrays hold
    the *most recent* query's results; :meth:`reset` restores only the
    entries that query touched.
    """

    __slots__ = ("num_nodes", "dist", "parent", "parent_tag", "touched")

    def __init__(self, num_nodes: int) -> None:
        if num_nodes < 0:
            raise ValueError("num_nodes must be >= 0")
        self.num_nodes = num_nodes
        self.dist: array = array("d", [INF]) * num_nodes
        self.parent: array = array("q", [-1]) * num_nodes
        self.parent_tag: array = array("q", [-1]) * num_nodes
        self.touched: list[int] = []

    def reset(self) -> None:
        """Restore the entries touched by the previous query to pristine."""
        dist = self.dist
        parent = self.parent
        parent_tag = self.parent_tag
        for v in self.touched:
            dist[v] = INF
            parent[v] = -1
            parent_tag[v] = -1
        self.touched.clear()


class ScratchPool:
    """Per-thread :class:`ScratchBuffers`, keyed by graph size.

    Routers keep one pool per instance; each worker thread lazily gets its
    own buffers, so concurrent queries never share mutable state and no
    lock is taken on the hot path.
    """

    __slots__ = ("_local",)

    def __init__(self) -> None:
        self._local = threading.local()

    def get(self, num_nodes: int) -> ScratchBuffers:
        """The calling thread's buffers for graphs of *num_nodes* nodes."""
        buffers: dict[int, ScratchBuffers] | None = getattr(
            self._local, "buffers", None
        )
        if buffers is None:
            buffers = self._local.buffers = {}
        scratch = buffers.get(num_nodes)
        if scratch is None:
            scratch = buffers[num_nodes] = ScratchBuffers(num_nodes)
        return scratch


class WarmRun:
    """A resumable, repairable single-/multi-source Dijkstra over CSR arrays.

    Where :func:`flat_dijkstra` answers one query and throws its state
    away, a ``WarmRun`` *keeps* the search state — distances, parents,
    the settled set, and the live frontier heap — so that:

    * **grouped same-source queries** are answered from one run: a
      target that already settled costs O(1), an unsettled one resumes
      the search exactly where it stopped;
    * after a **fail-only delta** (edges masked to ``inf`` by the
      delta-overlay layer), :meth:`repair` rewinds only the affected
      region — the subtree hanging off masked tree edges — and reseeds
      the frontier from the settled boundary, so the next query pays
      time proportional to the damage, not to the graph
      (Ramalingam–Reps-style decremental maintenance).

    Tie-break parity
    ----------------
    The heap keys are ``(dist, node)`` like every other kernel, and the
    repair reseeds by re-pushing settled *boundary nodes* (which
    re-relax their out-edges when popped, without resettling) rather
    than pushing precomputed tentative entries.  Relaxation events
    therefore fire in exactly the ascending ``(dist, node)`` order a
    cold run on the patched graph would produce, so parents — and hence
    decoded hop sequences — are identical to a from-scratch
    :func:`flat_dijkstra` on the same masked graph.  This is the
    invariant the delta property tests pin.

    Masking only ever *removes* reachability; recoveries (weights
    restored) can lower distances and are not repairable — callers drop
    the warm run and start fresh.

    Not thread-safe; owned by one cache/router under its lock.
    """

    __slots__ = (
        "graph",
        "sources",
        "dist",
        "parent",
        "parent_tag",
        "settled_flags",
        "heap",
        "touched",
        "exhausted",
        "pushes",
        "pops",
        "stale",
        "relaxations",
        "repairs",
        "_offsets",
        "_heads",
        "_weights",
        "_tags",
    )

    def __init__(self, graph: StaticGraph, sources: int | Iterable[int]) -> None:
        if isinstance(sources, int):
            source_tuple: tuple[int, ...] = (sources,)
        else:
            source_tuple = tuple(sources)
        if not source_tuple:
            raise ValueError("at least one source is required")
        n = graph.num_nodes
        for s in source_tuple:
            if not 0 <= s < n:
                raise IndexError(f"source {s} out of range [0, {n})")
        self.graph = graph
        self.sources = source_tuple
        self._offsets, self._heads, self._weights, self._tags = graph.csr()
        self.dist: array = array("d", [INF]) * n
        self.parent: array = array("q", [-1]) * n
        self.parent_tag: array = array("q", [-1]) * n
        self.settled_flags = bytearray(n)
        self.heap: list[tuple[float, int]] = []
        self.touched: list[int] = []
        self.exhausted = False
        self.pushes = self.pops = self.stale = self.relaxations = 0
        self.repairs = 0
        for s in source_tuple:
            if self.dist[s] != 0.0:
                self.dist[s] = 0.0
                self.touched.append(s)
                heappush(self.heap, (0.0, s))
                self.pushes += 1

    # -- queries --------------------------------------------------------------

    def is_settled(self, node: int) -> bool:
        """True when *node*'s distance is final."""
        return bool(self.settled_flags[node])

    def run(
        self,
        target: int | None = None,
        targets: Iterable[int] | None = None,
    ) -> int:
        """Resume the search; return the settled target id (-1 if none).

        With no target the run continues to exhaustion (a full tree).
        With ``target``, an already-settled target returns immediately.
        With ``targets``, the answer is the member attaining the minimum
        ``(dist, id)`` — the search resumes only while an unsettled node
        could still beat the best already-settled member, which makes
        repeated mixed queries on one run safe even after repairs.
        """
        if target is not None and targets is not None:
            raise ValueError("pass either target or targets, not both")
        if target is not None and self.settled_flags[target]:
            return target
        tset: frozenset[int] | None = None
        bound: tuple[float, int] | None = None
        best = -1
        if targets is not None:
            tset = (
                targets
                if isinstance(targets, frozenset)
                else frozenset(targets)
            )
            for t in tset:
                if self.settled_flags[t]:
                    key = (self.dist[t], t)
                    if bound is None or key < bound:
                        bound = key
                        best = t
        dist = self.dist
        parent = self.parent
        parent_tag = self.parent_tag
        settled = self.settled_flags
        touched = self.touched
        heap = self.heap
        offsets = self._offsets
        heads = self._heads
        weights = self._weights
        tags = self._tags
        while heap:
            if bound is not None and heap[0] >= bound:
                return best
            du, u = heappop(heap)
            if du > dist[u]:
                self.stale += 1
                continue
            if not settled[u]:
                settled[u] = 1
                self.pops += 1
                if (target is not None and u == target) or (
                    tset is not None and u in tset
                ):
                    # Stop *before* relaxing u's out-edges, exactly like
                    # the one-shot kernel; re-push so the next resume
                    # pops u again and relaxes them then.
                    heappush(heap, (du, u))
                    return u
            # else: a re-pushed stop node, a repair boundary seed, or a
            # duplicate entry — re-relax out-edges without resettling.
            for i in range(offsets[u], offsets[u + 1]):
                v = heads[i]
                self.relaxations += 1
                alt = du + weights[i]
                if alt < dist[v]:
                    if dist[v] == INF:
                        touched.append(v)
                    dist[v] = alt
                    parent[v] = u
                    parent_tag[v] = tags[i]
                    heappush(heap, (alt, v))
                    self.pushes += 1
        self.exhausted = True
        return best

    # -- decremental repair ---------------------------------------------------

    def repair(
        self,
        masked_pairs: Iterable[tuple[int, int]],
        in_edges: Callable[[int], Iterable[tuple[int, int]]],
    ) -> list[int]:
        """Rewind the region invalidated by masking *masked_pairs*.

        ``masked_pairs`` are the ``(tail, head)`` node pairs of edges
        whose weights were just set to ``inf`` (the graph must have no
        parallel edges between a pair, which holds for every auxiliary
        graph).  ``in_edges(node)`` yields ``(tail, slot)`` reverse
        adjacency (the delta overlay provides it).

        Nodes whose shortest-path tree ran through a masked edge — the
        masked heads and, transitively, their tree descendants — are
        reset to undiscovered, their frontier entries are purged, and
        every settled non-affected node with a live edge into the region
        is re-pushed as a boundary seed.  Returns the affected node
        list (callers use it to re-decode only damaged paths).
        """
        dist = self.dist
        parent = self.parent
        parent_tag = self.parent_tag
        settled = self.settled_flags
        affected: set[int] = set()
        stack: list[int] = []
        for u, v in masked_pairs:
            if parent[v] == u and v not in affected:
                affected.add(v)
                stack.append(v)
        if not affected:
            return []
        children: dict[int, list[int]] = {}
        for v in self.touched:
            p = parent[v]
            if p >= 0:
                children.setdefault(p, []).append(v)
        order: list[int] = []
        while stack:
            v = stack.pop()
            order.append(v)
            for child in children.get(v, ()):
                if child not in affected:
                    affected.add(child)
                    stack.append(child)
        weights = self._weights
        boundary: set[int] = set()
        for a in order:
            for w, slot in in_edges(a):
                if weights[slot] != INF and settled[w] and w not in affected:
                    boundary.add(w)
        for a in order:
            dist[a] = INF
            parent[a] = -1
            parent_tag[a] = -1
            settled[a] = 0
        self.touched = [v for v in self.touched if v not in affected]
        # Purge stale frontier entries for reset nodes: after the reset
        # their dist is inf again, so an old entry would wrongly pass
        # the lazy-deletion staleness test.
        self.heap = [entry for entry in self.heap if entry[1] not in affected]
        for w in boundary:
            self.heap.append((dist[w], w))
            self.pushes += 1
        heapify(self.heap)
        self.exhausted = False
        self.repairs += 1
        return order

    # -- reporting ------------------------------------------------------------

    def counters(self) -> dict[str, int]:
        """Cumulative work counters (snapshot/diff for per-query stats)."""
        return {
            "pushes": self.pushes,
            "pops": self.pops,
            "stale": self.stale,
            "relaxations": self.relaxations,
            "repairs": self.repairs,
        }

    def result(self, stopped_at: int = -1) -> DijkstraResult:
        """The current state as a :class:`DijkstraResult` (live views).

        The arrays are the run's own buffers, not copies — valid until
        the next :meth:`run`/:meth:`repair` on this instance.
        """
        return DijkstraResult(
            source=self.sources,
            dist=self.dist,
            parent=self.parent,
            parent_tag=self.parent_tag,
            settled=self.pops,
            relaxations=self.relaxations,
            heap_stats={
                "pushes": self.pushes,
                "pops": self.pops,
                "stale": self.stale,
            },
            stopped_at=stopped_at,
        )


def flat_dijkstra(
    graph: StaticGraph,
    sources: int | Iterable[int],
    target: int | None = None,
    targets: Iterable[int] | None = None,
    scratch: ScratchBuffers | ScratchPool | None = None,
) -> DijkstraResult:
    """Single- or multi-source shortest paths via heapq with lazy deletion.

    Parameters
    ----------
    graph:
        A :class:`StaticGraph` with nonnegative edge weights.
    sources:
        One node id, or an iterable of ids all seeded at distance 0.
    target:
        Stop as soon as this node settles (its distance is then final).
    targets:
        Stop as soon as *any* member settles.  Because nodes settle in
        nondecreasing distance order, the first settled member attains the
        minimum distance over the whole set — this is what overlay
        single-pair queries use to terminate on ``min over X_t`` without
        a virtual sink node.  Mutually exclusive with *target*.
    scratch:
        ``None`` (private buffers, safe to keep), a :class:`ScratchBuffers`
        of matching size, or a :class:`ScratchPool` (per-thread reuse).
        See the module docstring for the reuse lifetime contract.

    Returns
    -------
    DijkstraResult
        ``stopped_at`` holds the settled target (-1 if the search ran to
        exhaustion or the target was unreachable).  ``heap_stats`` reports
        ``pushes`` / ``pops`` / ``stale`` (lazily deleted entries).
    """
    if isinstance(sources, int):
        source_tuple: tuple[int, ...] = (sources,)
    else:
        source_tuple = tuple(sources)
    if not source_tuple:
        raise ValueError("at least one source is required")
    n = graph.num_nodes
    for s in source_tuple:
        if not 0 <= s < n:
            raise IndexError(f"source {s} out of range [0, {n})")
    if target is not None and targets is not None:
        raise ValueError("pass either target or targets, not both")
    if target is not None and not 0 <= target < n:
        raise IndexError(f"target {target} out of range [0, {n})")
    target_set: frozenset[int] | None = None
    if targets is not None:
        target_set = frozenset(targets)
        for t in target_set:
            if not 0 <= t < n:
                raise IndexError(f"target {t} out of range [0, {n})")

    if scratch is None:
        buffers = ScratchBuffers(n)
    elif isinstance(scratch, ScratchPool):
        buffers = scratch.get(n)
    else:
        buffers = scratch
        if buffers.num_nodes != n:
            raise ValueError(
                f"scratch sized for {buffers.num_nodes} nodes, graph has {n}"
            )
    buffers.reset()
    dist = buffers.dist
    parent = buffers.parent
    parent_tag = buffers.parent_tag
    touched = buffers.touched

    offsets, heads, weights, tags = graph.csr()
    heap: list[tuple[float, int]] = []
    pushes = pops = stale = relaxations = 0
    stopped_at = -1

    for s in source_tuple:
        if dist[s] != 0.0:
            dist[s] = 0.0
            touched.append(s)
            heappush(heap, (0.0, s))
            pushes += 1

    while heap:
        du, u = heappop(heap)
        if du > dist[u]:
            stale += 1
            continue
        pops += 1
        if target is not None and u == target:
            stopped_at = u
            break
        if target_set is not None and u in target_set:
            stopped_at = u
            break
        for i in range(offsets[u], offsets[u + 1]):
            v = heads[i]
            relaxations += 1
            alt = du + weights[i]
            if alt < dist[v]:
                if dist[v] == INF:
                    touched.append(v)
                dist[v] = alt
                parent[v] = u
                parent_tag[v] = tags[i]
                heappush(heap, (alt, v))
                pushes += 1

    return DijkstraResult(
        source=source_tuple,
        dist=dist,
        parent=parent,
        parent_tag=parent_tag,
        settled=pops,
        relaxations=relaxations,
        heap_stats={"pushes": pushes, "pops": pops, "stale": stale},
        stopped_at=stopped_at,
    )
