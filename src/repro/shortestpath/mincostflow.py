"""Minimum-cost flow by successive shortest paths (Johnson potentials).

The protection planner needs *optimal* disjoint path pairs, which the
active-path-first heuristic cannot guarantee (the classic trap topology).
The textbook reduction is a 2-unit minimum-cost flow; this module provides
the substrate: successive shortest augmenting paths with Dijkstra over
reduced costs (Johnson potentials), correct for nonnegative-cost networks.

The implementation is deliberately self-contained (residual arcs stored as
paired edge records) and small: flows here are tiny (2 units) over graphs
of ``O(k²n + km)`` edges, so the per-augmentation Dijkstra dominates and
no scaling tricks are warranted.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.shortestpath.heaps import BinaryHeap

__all__ = ["MinCostFlow", "FlowResult"]

INF = math.inf


@dataclass(frozen=True)
class FlowResult:
    """Outcome of a min-cost flow computation."""

    flow_sent: int
    total_cost: float
    #: flow on each original arc, indexed by the id add_arc returned
    arc_flow: list[int]


class MinCostFlow:
    """Successive-shortest-paths min-cost flow with integer capacities.

    Example
    -------
    >>> f = MinCostFlow(4)
    >>> _ = f.add_arc(0, 1, capacity=1, cost=1.0)
    >>> _ = f.add_arc(0, 2, capacity=1, cost=2.0)
    >>> _ = f.add_arc(1, 3, capacity=1, cost=1.0)
    >>> _ = f.add_arc(2, 3, capacity=1, cost=2.0)
    >>> result = f.solve(0, 3, 2)
    >>> result.flow_sent, result.total_cost
    (2, 6.0)
    """

    def __init__(self, num_nodes: int) -> None:
        if num_nodes < 0:
            raise ValueError(f"num_nodes must be >= 0, got {num_nodes}")
        self._n = num_nodes
        # Paired residual arcs: arc 2i is forward, 2i+1 its reverse.
        self._head: list[int] = []
        self._cap: list[int] = []
        self._cost: list[float] = []
        self._adj: list[list[int]] = [[] for _ in range(num_nodes)]
        self._num_arcs = 0

    @property
    def num_nodes(self) -> int:
        """Number of nodes in the flow network."""
        return self._n

    def add_node(self) -> int:
        """Append a node and return its id."""
        self._adj.append([])
        self._n += 1
        return self._n - 1

    def add_arc(self, tail: int, head: int, capacity: int, cost: float) -> int:
        """Add a directed arc; returns its arc id (for flow readback).

        *capacity* must be a nonnegative int, *cost* a nonnegative finite
        float (successive shortest paths requires nonnegative costs).
        """
        if not 0 <= tail < self._n or not 0 <= head < self._n:
            raise IndexError(f"arc {tail}->{head} out of range [0, {self._n})")
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        if not (cost >= 0 and cost < INF):
            raise ValueError(f"cost must be finite and >= 0, got {cost!r}")
        arc_id = self._num_arcs
        self._num_arcs += 1
        self._adj[tail].append(len(self._head))
        self._head.append(head)
        self._cap.append(int(capacity))
        self._cost.append(float(cost))
        self._adj[head].append(len(self._head))
        self._head.append(tail)
        self._cap.append(0)
        self._cost.append(-float(cost))
        return arc_id

    def solve(self, source: int, sink: int, amount: int) -> FlowResult:
        """Send up to *amount* units from *source* to *sink* at min cost.

        Stops early when the network saturates; ``flow_sent`` reports what
        actually made it.  Costs are exact for the sent amount (each
        augmentation is a true shortest path under reduced costs).
        """
        if not 0 <= source < self._n or not 0 <= sink < self._n:
            raise IndexError("source/sink out of range")
        if amount < 0:
            raise ValueError(f"amount must be >= 0, got {amount}")
        potential = [0.0] * self._n
        sent = 0
        total_cost = 0.0
        while sent < amount:
            dist, parent_arc = self._dijkstra_reduced(source, potential)
            if dist[sink] == INF:
                break
            for v in range(self._n):
                if dist[v] < INF:
                    potential[v] += dist[v]
            # Find bottleneck along the augmenting path.
            bottleneck = amount - sent
            v = sink
            while v != source:
                arc = parent_arc[v]
                bottleneck = min(bottleneck, self._cap[arc])
                v = self._head[arc ^ 1]
            # Apply.
            v = sink
            while v != source:
                arc = parent_arc[v]
                self._cap[arc] -= bottleneck
                self._cap[arc ^ 1] += bottleneck
                total_cost += bottleneck * self._cost[arc]
                v = self._head[arc ^ 1]
            sent += bottleneck

        arc_flow = [self._cap[2 * i + 1] for i in range(self._num_arcs)]
        return FlowResult(flow_sent=sent, total_cost=total_cost, arc_flow=arc_flow)

    def _dijkstra_reduced(
        self, source: int, potential: list[float]
    ) -> tuple[list[float], list[int]]:
        dist = [INF] * self._n
        parent_arc = [-1] * self._n
        dist[source] = 0.0
        heap = BinaryHeap()
        heap.push(source, 0.0)
        done = [False] * self._n
        while len(heap):
            u, du = heap.pop()
            if done[u]:
                continue
            done[u] = True
            for arc in self._adj[u]:
                if self._cap[arc] <= 0:
                    continue
                v = self._head[arc]
                if done[v]:
                    continue
                reduced = self._cost[arc] + potential[u] - potential[v]
                # Reduced costs are >= -epsilon by induction; clamp noise.
                if reduced < 0:
                    reduced = 0.0
                alt = du + reduced
                if alt < dist[v]:
                    if dist[v] == INF:
                        heap.push(v, alt)
                    else:
                        heap.decrease_key(v, alt)
                    dist[v] = alt
                    parent_arc[v] = arc
        return dist, parent_arc
