"""Fibonacci heap (Fredman & Tarjan 1987).

This is the priority queue the paper's Theorem 1 cites to reach the
``O(m' + n' log n')`` shortest-path bound: ``O(1)`` amortized ``push`` and
``decrease_key``, ``O(log n)`` amortized ``pop``.

The implementation follows CLRS: a circular doubly-linked root list, lazy
melding, consolidation by degree on ``pop``, and cascading cuts on
``decrease_key``.  It exposes the same addressable-heap protocol as
:class:`~repro.shortestpath.heaps.BinaryHeap`.
"""

from __future__ import annotations

from typing import Hashable

__all__ = ["FibonacciHeap"]


class _FibNode:
    __slots__ = ("item", "key", "degree", "mark", "parent", "child", "left", "right")

    def __init__(self, item: Hashable, key: float) -> None:
        self.item = item
        self.key = key
        self.degree = 0
        self.mark = False
        self.parent: _FibNode | None = None
        self.child: _FibNode | None = None
        self.left: _FibNode = self
        self.right: _FibNode = self


class FibonacciHeap:
    """Min Fibonacci heap with decrease-key, addressable by item.

    >>> h = FibonacciHeap()
    >>> for item, key in [("a", 5.0), ("b", 3.0), ("c", 9.0)]:
    ...     h.push(item, key)
    >>> h.decrease_key("c", 1.0)
    >>> h.pop()
    ('c', 1.0)
    >>> len(h)
    2
    """

    def __init__(self) -> None:
        self._min: _FibNode | None = None
        self._nodes: dict[Hashable, _FibNode] = {}
        self.pushes = 0
        self.pops = 0
        self.decreases = 0

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, item: Hashable) -> bool:
        return item in self._nodes

    def key_of(self, item: Hashable) -> float:
        """Current key of *item* (KeyError if absent)."""
        return self._nodes[item].key

    def push(self, item: Hashable, key: float) -> None:
        if item in self._nodes:
            raise KeyError(f"item already in heap: {item!r}")
        self.pushes += 1
        node = _FibNode(item, key)
        self._nodes[item] = node
        self._add_to_root_list(node)
        if self._min is None or key < self._min.key:
            self._min = node

    def pop(self) -> tuple[Hashable, float]:
        z = self._min
        if z is None:
            raise IndexError("pop from empty heap")
        self.pops += 1
        # Promote z's children to the root list.
        child = z.child
        if child is not None:
            children = []
            c = child
            while True:
                children.append(c)
                c = c.right
                if c is child:
                    break
            for c in children:
                c.parent = None
                self._add_to_root_list(c)
            z.child = None
        # Remove z from the root list (capture its successor first, since
        # unlinking resets z's own pointers).
        successor = z.right
        was_only_root = successor is z
        self._remove_from_list(z)
        del self._nodes[z.item]
        if was_only_root:
            self._min = None
        else:
            self._min = successor
            self._consolidate()
        return z.item, z.key

    def decrease_key(self, item: Hashable, key: float) -> None:
        node = self._nodes[item]
        if key > node.key:
            raise ValueError(
                f"decrease_key would increase key of {item!r}: "
                f"{node.key!r} -> {key!r}"
            )
        self.decreases += 1
        node.key = key
        parent = node.parent
        if parent is not None and node.key < parent.key:
            self._cut(node, parent)
            self._cascading_cut(parent)
        assert self._min is not None
        if node.key < self._min.key:
            self._min = node

    # -- internal linked-list plumbing ------------------------------------

    def _add_to_root_list(self, node: _FibNode) -> None:
        if self._min is None:
            node.left = node
            node.right = node
        else:
            node.left = self._min
            node.right = self._min.right
            self._min.right.left = node
            self._min.right = node

    @staticmethod
    def _remove_from_list(node: _FibNode) -> None:
        node.left.right = node.right
        node.right.left = node.left
        node.left = node
        node.right = node

    def _consolidate(self) -> None:
        # Upper bound on degree: floor(log_phi(n)) + 1.
        import math

        n = len(self._nodes)
        max_degree = int(math.log(n, 1.618)) + 2 if n > 1 else 2
        slots: list[_FibNode | None] = [None] * (max_degree + 2)
        # Snapshot the root list (it mutates during linking).
        roots: list[_FibNode] = []
        start = self._min
        assert start is not None
        node = start
        while True:
            roots.append(node)
            node = node.right
            if node is start:
                break
        for w in roots:
            x = w
            d = x.degree
            while d < len(slots) and slots[d] is not None:
                y = slots[d]
                assert y is not None
                if y.key < x.key:
                    x, y = y, x
                self._link(y, x)
                slots[d] = None
                d += 1
            while d >= len(slots):
                slots.append(None)
            slots[d] = x
        # Rebuild root list and find the new minimum.
        self._min = None
        for node in slots:
            if node is None:
                continue
            node.left = node
            node.right = node
            node.parent = None
            if self._min is None:
                self._min = node
            else:
                self._splice_into_root(node)
                if node.key < self._min.key:
                    self._min = node

    def _splice_into_root(self, node: _FibNode) -> None:
        assert self._min is not None
        node.left = self._min
        node.right = self._min.right
        self._min.right.left = node
        self._min.right = node

    def _link(self, child: _FibNode, parent: _FibNode) -> None:
        """Make *child* (larger key) a child of *parent*."""
        self._remove_from_list(child)
        child.parent = parent
        if parent.child is None:
            parent.child = child
            child.left = child
            child.right = child
        else:
            child.left = parent.child
            child.right = parent.child.right
            parent.child.right.left = child
            parent.child.right = child
        parent.degree += 1
        child.mark = False

    def _cut(self, node: _FibNode, parent: _FibNode) -> None:
        if parent.child is node:
            parent.child = node.right if node.right is not node else None
        self._remove_from_list(node)
        parent.degree -= 1
        node.parent = None
        node.mark = False
        self._add_to_root_list(node)

    def _cascading_cut(self, node: _FibNode) -> None:
        while True:
            parent = node.parent
            if parent is None:
                return
            if not node.mark:
                node.mark = True
                return
            self._cut(node, parent)
            node = parent
