"""Path reconstruction helpers over predecessor arrays.

Every SSSP routine in this package reports ``parent`` / ``parent_tag``
arrays; these helpers turn them into explicit node sequences, edge-tag
sequences, and a :class:`ShortestPathTree` convenience wrapper.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

__all__ = ["reconstruct_path", "reconstruct_tags", "ShortestPathTree"]


def reconstruct_path(parent: Sequence[int], target: int) -> list[int]:
    """Return the node sequence from the tree root to *target*.

    *parent* maps each node to its predecessor (``-1`` at roots).  Raises
    ``ValueError`` if the chain does not terminate (which would indicate a
    corrupted predecessor array).
    """
    path = [target]
    seen = {target}
    node = target
    while parent[node] != -1:
        node = parent[node]
        if node in seen:
            raise ValueError(f"cycle in parent array at node {node}")
        seen.add(node)
        path.append(node)
    path.reverse()
    return path


def reconstruct_tags(
    parent: Sequence[int], parent_tag: Sequence[int], target: int
) -> list[int]:
    """Return the edge tags along the tree path ending at *target*.

    The list has one entry per edge, in path order; an entry is ``-1`` when
    the edge carried no tag.
    """
    nodes = reconstruct_path(parent, target)
    return [parent_tag[v] for v in nodes[1:]]


@dataclass(frozen=True)
class ShortestPathTree:
    """A rooted shortest-path tree (distances + predecessors).

    Produced by running any SSSP routine to completion; offers convenient
    per-target queries.
    """

    root: int
    dist: Sequence[float]
    parent: Sequence[int]
    parent_tag: Sequence[int]

    def distance(self, target: int) -> float:
        """Distance from the root to *target* (``inf`` if unreachable)."""
        return self.dist[target]

    def reachable(self, target: int) -> bool:
        """True when *target* is reachable from the root."""
        return self.dist[target] < math.inf

    def path(self, target: int) -> list[int]:
        """Node sequence root -> *target*; raises if unreachable."""
        if not self.reachable(target):
            raise ValueError(f"node {target} is unreachable from root {self.root}")
        return reconstruct_path(self.parent, target)

    def tags(self, target: int) -> list[int]:
        """Edge tags along the root -> *target* path."""
        if not self.reachable(target):
            raise ValueError(f"node {target} is unreachable from root {self.root}")
        return reconstruct_tags(self.parent, self.parent_tag, target)
