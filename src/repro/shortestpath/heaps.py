"""Addressable priority queues with ``decrease_key``.

Dijkstra over the auxiliary graph needs a min-priority queue keyed by
tentative distance that supports decreasing a node's key in place.  Three
implementations share the same protocol (duck-typed; see
:class:`AddressableHeap` for the interface contract):

* :class:`BinaryHeap` — array-based binary heap with a position index;
  ``O(log n)`` for every operation.  In practice the fastest in CPython for
  the graph sizes this library handles.
* :class:`PairingHeap` — pointer-based pairing heap; amortized ``o(log n)``
  decrease-key, simple two-pass merge on pop.
* :class:`~repro.shortestpath.fibonacci.FibonacciHeap` — the structure the
  paper's Theorem 1 cites (Fredman & Tarjan), with ``O(1)`` amortized
  decrease-key.

All three track operation counts (pushes, pops, decrease-keys) so the
benchmark harness can report work done, not just wall time.
"""

from __future__ import annotations

from typing import Hashable, Protocol

__all__ = ["AddressableHeap", "BinaryHeap", "PairingHeap", "HEAP_FACTORIES"]


class AddressableHeap(Protocol):
    """Protocol implemented by every heap in this package."""

    def push(self, item: Hashable, key: float) -> None:
        """Insert *item* with priority *key*. *item* must not be present."""

    def pop(self) -> tuple[Hashable, float]:
        """Remove and return the ``(item, key)`` pair with minimum key."""

    def decrease_key(self, item: Hashable, key: float) -> None:
        """Lower *item*'s key to *key* (must not exceed the current key)."""

    def __contains__(self, item: Hashable) -> bool: ...

    def __len__(self) -> int: ...


class BinaryHeap:
    """Array-based binary min-heap with an item -> slot index.

    >>> h = BinaryHeap()
    >>> h.push("a", 3.0); h.push("b", 1.0); h.push("c", 2.0)
    >>> h.decrease_key("a", 0.5)
    >>> h.pop()
    ('a', 0.5)
    >>> h.pop()
    ('b', 1.0)
    """

    def __init__(self) -> None:
        self._keys: list[float] = []
        self._items: list[Hashable] = []
        self._pos: dict[Hashable, int] = {}
        self.pushes = 0
        self.pops = 0
        self.decreases = 0

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, item: Hashable) -> bool:
        return item in self._pos

    def key_of(self, item: Hashable) -> float:
        """Current key of *item* (KeyError if absent)."""
        return self._keys[self._pos[item]]

    def push(self, item: Hashable, key: float) -> None:
        if item in self._pos:
            raise KeyError(f"item already in heap: {item!r}")
        self.pushes += 1
        slot = len(self._items)
        self._items.append(item)
        self._keys.append(key)
        self._pos[item] = slot
        self._sift_up(slot)

    def pop(self) -> tuple[Hashable, float]:
        if not self._items:
            raise IndexError("pop from empty heap")
        self.pops += 1
        top_item = self._items[0]
        top_key = self._keys[0]
        last_item = self._items.pop()
        last_key = self._keys.pop()
        del self._pos[top_item]
        if self._items:
            self._items[0] = last_item
            self._keys[0] = last_key
            self._pos[last_item] = 0
            self._sift_down(0)
        return top_item, top_key

    def decrease_key(self, item: Hashable, key: float) -> None:
        slot = self._pos[item]
        if key > self._keys[slot]:
            raise ValueError(
                f"decrease_key would increase key of {item!r}: "
                f"{self._keys[slot]!r} -> {key!r}"
            )
        self.decreases += 1
        self._keys[slot] = key
        self._sift_up(slot)

    def _sift_up(self, slot: int) -> None:
        keys = self._keys
        items = self._items
        pos = self._pos
        key = keys[slot]
        item = items[slot]
        while slot > 0:
            parent = (slot - 1) >> 1
            if keys[parent] <= key:
                break
            keys[slot] = keys[parent]
            items[slot] = items[parent]
            pos[items[slot]] = slot
            slot = parent
        keys[slot] = key
        items[slot] = item
        pos[item] = slot

    def _sift_down(self, slot: int) -> None:
        keys = self._keys
        items = self._items
        pos = self._pos
        size = len(keys)
        key = keys[slot]
        item = items[slot]
        while True:
            child = 2 * slot + 1
            if child >= size:
                break
            right = child + 1
            if right < size and keys[right] < keys[child]:
                child = right
            if keys[child] >= key:
                break
            keys[slot] = keys[child]
            items[slot] = items[child]
            pos[items[slot]] = slot
            slot = child
        keys[slot] = key
        items[slot] = item
        pos[item] = slot


class _PairingNode:
    __slots__ = ("item", "key", "child", "sibling", "prev")

    def __init__(self, item: Hashable, key: float) -> None:
        self.item = item
        self.key = key
        self.child: _PairingNode | None = None
        self.sibling: _PairingNode | None = None
        self.prev: _PairingNode | None = None  # parent or left sibling


class PairingHeap:
    """Pointer-based pairing heap with decrease-key.

    Uses the standard cut-and-merge decrease-key and two-pass pairing on
    ``pop``.  Amortized bounds: ``O(1)`` push/meld, ``O(log n)`` pop,
    conjectured ``o(log n)`` decrease-key.
    """

    def __init__(self) -> None:
        self._root: _PairingNode | None = None
        self._nodes: dict[Hashable, _PairingNode] = {}
        self.pushes = 0
        self.pops = 0
        self.decreases = 0

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, item: Hashable) -> bool:
        return item in self._nodes

    def key_of(self, item: Hashable) -> float:
        """Current key of *item* (KeyError if absent)."""
        return self._nodes[item].key

    def push(self, item: Hashable, key: float) -> None:
        if item in self._nodes:
            raise KeyError(f"item already in heap: {item!r}")
        self.pushes += 1
        node = _PairingNode(item, key)
        self._nodes[item] = node
        self._root = node if self._root is None else self._meld(self._root, node)

    def pop(self) -> tuple[Hashable, float]:
        root = self._root
        if root is None:
            raise IndexError("pop from empty heap")
        self.pops += 1
        del self._nodes[root.item]
        self._root = self._merge_pairs(root.child)
        if self._root is not None:
            self._root.prev = None
            self._root.sibling = None
        return root.item, root.key

    def decrease_key(self, item: Hashable, key: float) -> None:
        node = self._nodes[item]
        if key > node.key:
            raise ValueError(
                f"decrease_key would increase key of {item!r}: "
                f"{node.key!r} -> {key!r}"
            )
        self.decreases += 1
        node.key = key
        if node is self._root:
            return
        # Detach node from its sibling list.  Every non-root node has a
        # predecessor by construction; a None here means the heap structure
        # is corrupt.  A real exception so the check survives ``python -O``.
        prev = node.prev
        if prev is None:
            raise ValueError(
                f"corrupt pairing heap: non-root node {node.item!r} "
                f"has no predecessor"
            )
        if prev.child is node:
            prev.child = node.sibling
        else:
            prev.sibling = node.sibling
        if node.sibling is not None:
            node.sibling.prev = prev
        node.sibling = None
        node.prev = None
        self._root = self._meld(self._root, node)  # type: ignore[arg-type]

    @staticmethod
    def _meld(a: _PairingNode, b: _PairingNode) -> _PairingNode:
        if b.key < a.key:
            a, b = b, a
        # b becomes a's first child.
        b.prev = a
        b.sibling = a.child
        if a.child is not None:
            a.child.prev = b
        a.child = b
        a.sibling = None
        a.prev = None
        return a

    def _merge_pairs(self, first: _PairingNode | None) -> _PairingNode | None:
        # Two-pass pairing, iterative to avoid recursion depth limits.
        pairs: list[_PairingNode] = []
        node = first
        while node is not None:
            nxt = node.sibling
            node.sibling = None
            node.prev = None
            if nxt is not None:
                following = nxt.sibling
                nxt.sibling = None
                nxt.prev = None
                pairs.append(self._meld(node, nxt))
                node = following
            else:
                pairs.append(node)
                node = None
        if not pairs:
            return None
        result = pairs.pop()
        while pairs:
            result = self._meld(pairs.pop(), result)
        return result


def _make_binary() -> BinaryHeap:
    return BinaryHeap()


def _make_pairing() -> PairingHeap:
    return PairingHeap()


def _make_fibonacci():
    from repro.shortestpath.fibonacci import FibonacciHeap

    return FibonacciHeap()


#: Named factories for heap selection in the routers and benchmarks.
HEAP_FACTORIES = {
    "binary": _make_binary,
    "pairing": _make_pairing,
    "fibonacci": _make_fibonacci,
}
