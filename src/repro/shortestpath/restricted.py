"""Theorem 4 fast path: the restricted regime ``|Λ(e)| <= k₀``.

When every link carries at most ``k₀`` of the ``k`` wavelengths, the
paper's Observations 4-5 shrink the layered graph from ``O(k²n + km)``
to ``O(d²nk₀² + mk₀)`` — **independent of k**.  The general builder in
:mod:`repro.core.auxiliary` already produces a graph of that size (it
only materializes wavelengths that actually appear), but it pays
avoidable constant factors: ``Λ_in`` / ``Λ_out`` are recomputed per
pass, per-pair conversion costs go through a virtual ``cost()`` call,
and per-(v, λ) ids are fetched through tuple-keyed dict lookups.

:func:`build_restricted_graph` is the fused single-pass construction
Theorem 4's accounting assumes: wavelength sets are computed once per
node, the standard conversion models (:class:`NoConversion`,
:class:`FullConversion` / :class:`FixedCostConversion` with a constant
cost) are emitted by specialized loops that never call back into the
model, and edge targets are computed from the contiguous per-node id
blocks instead of dict probes.

The contract that makes this a drop-in for the general builder —
asserted byte-for-byte by the test suite — is **CSR identity**: nodes
and edges are emitted in exactly the insertion order of
``repro.core.auxiliary._emit_layered`` (node order, then sorted λ;
conversion edges before ``E_org``; ``E_org`` in link-insertion ×
sorted-λ order).  Identical arrays mean identical Dijkstra tie-breaking,
so every kernel returns hop-identical paths whichever builder produced
the overlay.

Routing in time independent of ``k`` additionally needs the *query*
structure to avoid ``G_all``'s ``2n`` virtual terminals:
:func:`run_restricted_tree` answers a one-to-all query terminal-free on
``G'`` itself — multi-source seeded on ``Y_s`` (what the virtual ``s'``
fan-out achieves) and read out per target as the min over ``X_t`` (what
the virtual ``t''`` edges compute).  Because virtual terminals never
influence the relaxation order of real nodes, the resulting trees are
hop-identical to :func:`repro.core.routing.run_tree` over ``G_all``.

:func:`restricted_applicable` gates automatic selection on the measured
``k₀`` against :data:`RESTRICTED_K0_CROSSOVER`, the crossover benched in
``benchmarks/bench_routing_hotpath.py`` (see its ``restricted_crossover``
section and ``docs/performance.md``).
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Callable, Hashable

from repro.core.auxiliary import (
    KIND_IN,
    KIND_OUT,
    AuxNode,
    LayeredGraph,
    _sizes,
)
from repro.core.conversion import (
    INF,
    FixedCostConversion,
    FullConversion,
    NoConversion,
)
from repro.shortestpath.dijkstra import DijkstraResult
from repro.shortestpath.structures import GraphBuilder

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.network import WDMNetwork

__all__ = [
    "RESTRICTED_K0_CROSSOVER",
    "restricted_applicable",
    "build_restricted_graph",
    "run_restricted_tree",
]

NodeId = Hashable

#: Largest measured k₀ for which the restricted structure wins the
#: crossover bench (``bench_routing_hotpath.py --restricted-crossover``).
#: Above it the general path's simpler bookkeeping catches up.
RESTRICTED_K0_CROSSOVER = 4


def restricted_applicable(
    network: "WDMNetwork", crossover: int = RESTRICTED_K0_CROSSOVER
) -> bool:
    """True when the Theorem 4 fast path should serve this network.

    Requires a nonempty link set (``k₀ > 0``), a measured ``k₀`` at or
    below the benched *crossover*, and genuine restriction (``k₀ < k`` —
    with full wavelength availability the restricted and general
    structures coincide and the specialization buys nothing).
    """
    k0 = network.max_link_wavelengths
    return 0 < k0 <= crossover and k0 < network.num_wavelengths


def build_restricted_graph(network: "WDMNetwork") -> LayeredGraph:
    """Fused ``G'`` construction for the restricted regime.

    Returns a :class:`~repro.core.auxiliary.LayeredGraph` whose CSR
    arrays, decode table, id maps, and size accounting are byte-identical
    to ``build_layered_graph(network)`` — only the construction-time
    constant factors differ (one wavelength-set pass per node, no
    per-pair virtual calls for the standard conversion models, no
    tuple-keyed id lookups on the hot emission loops).
    """
    decode: list[AuxNode] = []
    x_ids: dict[tuple[NodeId, int], int] = {}
    y_ids: dict[tuple[NodeId, int], int] = {}

    # Pass 1 (fused): enumerate X_v / Y_v ids *and* retain the sorted
    # wavelength lists plus each node's contiguous id-block bases, so the
    # edge passes below never recompute sets or probe tuple keys.
    per_node: list[tuple[NodeId, list[int], list[int], int, int]] = []
    for v in network.nodes():
        lam_in = sorted(network.lambda_in(v))
        lam_out = sorted(network.lambda_out(v))
        x_base = len(decode)
        for lam in lam_in:
            x_ids[(v, lam)] = len(decode)
            decode.append(AuxNode(KIND_IN, v, lam))
        y_base = len(decode)
        for lam in lam_out:
            y_ids[(v, lam)] = len(decode)
            decode.append(AuxNode(KIND_OUT, v, lam))
        per_node.append((v, lam_in, lam_out, x_base, y_base))

    builder = GraphBuilder(len(decode))
    add_edge = builder.add_edge

    # Pass 2: conversion edges E_v.  Specialized emitters for the
    # standard models reproduce each model's ``finite_pairs`` enumeration
    # order exactly (λ_in-major, λ_out-minor, both sorted).
    num_conversion_edges = 0
    max_bip_nodes = 0
    max_bip_edges = 0
    for v, lam_in, lam_out, x_base, y_base in per_node:
        if len(lam_in) + len(lam_out) > max_bip_nodes:
            max_bip_nodes = len(lam_in) + len(lam_out)
        model = network.conversion(v)
        count = 0
        kind = type(model)
        if kind is NoConversion:
            out_pos = {lam: j for j, lam in enumerate(lam_out)}
            for i, p in enumerate(lam_in):
                j = out_pos.get(p)
                if j is not None:
                    add_edge(x_base + i, y_base + j, 0.0)
                    count += 1
        elif (
            (kind is FullConversion or kind is FixedCostConversion)
            and model._fn is None
            and model._flat < INF
        ):
            flat = model._flat
            for i, p in enumerate(lam_in):
                x = x_base + i
                for j, q in enumerate(lam_out):
                    add_edge(x, y_base + j, 0.0 if p == q else flat)
                    count += 1
        else:
            for p, q, cost in model.finite_pairs(lam_in, lam_out):
                add_edge(x_ids[(v, p)], y_ids[(v, q)], cost)
                count += 1
        num_conversion_edges += count
        if count > max_bip_edges:
            max_bip_edges = count

    # Pass 3: original edges E_org (link-insertion order, sorted λ —
    # exactly ``multigraph_edges``).
    num_org_edges = 0
    for link in network.links():
        tail, head, costs = link.tail, link.head, link.costs
        for lam in sorted(costs):
            add_edge(y_ids[(tail, lam)], x_ids[(head, lam)], costs[lam])
            num_org_edges += 1

    counters = {
        "num_conversion_edges": num_conversion_edges,
        "num_org_edges": num_org_edges,
        "max_bipartite_nodes": max_bip_nodes,
        "max_bipartite_edges": max_bip_edges,
        "num_layer_nodes": len(decode),
    }
    return LayeredGraph(
        network=network,
        graph=builder.build(),
        decode=decode,
        x_ids=x_ids,
        y_ids=y_ids,
        sizes=_sizes(network, counters),
    )


_EMPTY_RUN = DijkstraResult(
    source=(),
    dist=(),
    parent=(),
    parent_tag=(),
    settled=0,
    relaxations=0,
    heap_stats={},
    stopped_at=-1,
)


def run_restricted_tree(
    aux: LayeredGraph,
    source: NodeId,
    kernel: Callable[..., DijkstraResult],
    scratch=None,
) -> tuple[DijkstraResult, dict[NodeId, int]]:
    """Terminal-free one-to-all run over ``G'`` (Theorem 4 query path).

    Seeds *kernel* multi-source on ``Y_s`` (distance 0 — what ``G_all``'s
    virtual ``s'`` achieves via zero-weight fan-out), runs to exhaustion,
    and selects per target the minimum-distance member of ``X_t``
    (ties broken toward the lowest auxiliary id, matching which member
    settles first and therefore which one ``G_all``'s strict-improvement
    relaxation records as ``parent[t'']``).

    Returns the run plus ``{target: best X_t id}`` for every reachable
    target other than *source*; decoding stays with the caller
    (:meth:`repro.core.routing.LiangShenRouter.tree_from`).  A source
    with no outgoing wavelengths yields an empty run and no targets.
    """
    seeds = aux.y_by_node.get(source)
    if not seeds:
        return _EMPTY_RUN, {}
    run = kernel(aux.graph, seeds, scratch=scratch)
    dist = run.dist
    best: dict[NodeId, int] = {}
    for target, xs in aux.x_by_node.items():
        if target == source:
            continue
        best_d = math.inf
        best_x = -1
        for x in xs:
            d = dist[x]
            if d < best_d:
                best_d = d
                best_x = x
        if best_x >= 0 and best_d != math.inf:
            best[target] = best_x
    return run, best
