"""Compact digraph structures used by the shortest-path algorithms.

The routers materialize auxiliary graphs (``G'``, ``G_{s,t}``, ``G_all`` and
the CFZ wavelength graph) as :class:`StaticGraph` instances: a frozen
CSR-style adjacency list over dense integer node ids ``0 .. n-1``.  This
representation is allocation-light, cache-friendly for Python standards, and
makes the size accounting required by the paper's Observations 1-5 exact
(``num_nodes`` / ``num_edges`` are just lengths).

Graphs are built incrementally through :class:`GraphBuilder` and frozen with
:meth:`GraphBuilder.build`; a frozen graph is immutable.
"""

from __future__ import annotations

from array import array
from typing import Iterator, Sequence

from repro._validation import check_nonnegative_int

__all__ = ["GraphBuilder", "StaticGraph"]

#: Largest power-of-two weight multiplier :meth:`StaticGraph.lattice_scale`
#: will try.  The verify subsystem draws costs from the quarter-integer
#: lattice (scale 4); 64 leaves headroom for finer man-made lattices while
#: keeping ``weight * scale`` products tiny integers.
MAX_LATTICE_SCALE = 64

#: Ceiling on ``scale * max_weight * num_nodes`` — a conservative bound on
#: the largest bucket index a Dial queue over this graph could ever touch.
#: Graphs past it report "no lattice" so the bucket kernel falls back to
#: the flat kernel instead of allocating an absurd bucket directory.
MAX_LATTICE_SPAN = 1 << 20

_INF = float("inf")


def _detect_lattice_scale(weights, num_nodes: int) -> int | None:
    """Smallest power-of-two ``scale`` making every weight integral, or None.

    Returns ``None`` when any weight is non-finite (a delta-masked graph —
    the pristine weight behind a mask is unknown, so no scale can be
    trusted), when no scale up to :data:`MAX_LATTICE_SCALE` works, or when
    the bucket-span bound would exceed :data:`MAX_LATTICE_SPAN`.

    Power-of-two scales only: multiplying a float by a power of two is
    exact (a pure exponent shift), so ``int(dist * scale)`` and
    ``bucket_index / scale`` round-trip bit-for-bit and a bucket-queue
    Dijkstra reproduces the flat kernel's float distances exactly.
    """
    scale = 1
    max_w = 0.0
    for w in weights:
        if w != w or w == _INF:
            return None
        if w > max_w:
            max_w = w
        while not (w * scale).is_integer():
            scale *= 2
            if scale > MAX_LATTICE_SCALE:
                return None
    if max_w * scale * max(num_nodes, 1) > MAX_LATTICE_SPAN:
        return None
    return scale


class GraphBuilder:
    """Incremental builder for :class:`StaticGraph`.

    Nodes are the integers ``0 .. num_nodes - 1``.  Edges are added with
    :meth:`add_edge` and may carry an optional integer *tag* (used by the
    routers to map auxiliary-graph edges back to network artifacts).

    Example
    -------
    >>> b = GraphBuilder(3)
    >>> b.add_edge(0, 1, 2.5)
    0
    >>> b.add_edge(1, 2, 1.0, tag=7)
    1
    >>> g = b.build()
    >>> list(g.neighbors(0))
    [(1, 2.5, -1)]
    """

    def __init__(self, num_nodes: int) -> None:
        self._num_nodes = check_nonnegative_int(num_nodes, "num_nodes")
        self._tails: array = array("q")
        self._heads: array = array("q")
        self._weights: array = array("d")
        self._tags: array = array("q")

    @property
    def num_nodes(self) -> int:
        """Number of nodes the built graph will have."""
        return self._num_nodes

    @property
    def num_edges(self) -> int:
        """Number of edges added so far."""
        return len(self._tails)

    def add_node(self) -> int:
        """Append one node and return its id."""
        node = self._num_nodes
        self._num_nodes += 1
        return node

    def add_edge(self, tail: int, head: int, weight: float, tag: int = -1) -> int:
        """Add a directed edge ``tail -> head`` and return its edge id.

        Parallel edges and self-loops are permitted (the multigraph ``G_M``
        needs parallel edges).  *weight* must be a nonnegative finite float;
        infinite weights model absent resources and must be expressed by not
        adding the edge at all.
        """
        if not 0 <= tail < self._num_nodes:
            raise IndexError(f"tail {tail} out of range [0, {self._num_nodes})")
        if not 0 <= head < self._num_nodes:
            raise IndexError(f"head {head} out of range [0, {self._num_nodes})")
        w = float(weight)
        if w != w or w == float("inf") or w < 0:
            raise ValueError(f"edge weight must be finite and >= 0, got {weight!r}")
        edge_id = len(self._tails)
        self._tails.append(tail)
        self._heads.append(head)
        self._weights.append(w)
        self._tags.append(tag)
        return edge_id

    def build(self) -> "StaticGraph":
        """Freeze into a :class:`StaticGraph` (counting-sort by tail)."""
        n = self._num_nodes
        m = len(self._tails)
        counts = [0] * (n + 1)
        for t in self._tails:
            counts[t + 1] += 1
        for i in range(1, n + 1):
            counts[i] += counts[i - 1]
        heads = array("q", [0] * m)
        weights = array("d", [0.0] * m)
        tags = array("q", [0] * m)
        edge_ids = array("q", [0] * m)
        cursor = counts[:]
        for eid in range(m):
            t = self._tails[eid]
            slot = cursor[t]
            cursor[t] += 1
            heads[slot] = self._heads[eid]
            weights[slot] = self._weights[eid]
            tags[slot] = self._tags[eid]
            edge_ids[slot] = eid
        offsets = array("q", counts)
        return StaticGraph(n, offsets, heads, weights, tags, edge_ids)


class StaticGraph:
    """Frozen CSR adjacency-list digraph over integer node ids.

    Instances are produced by :class:`GraphBuilder` and are immutable.  Edge
    traversal order within a node follows insertion order in the builder.
    """

    __slots__ = (
        "_n",
        "_offsets",
        "_heads",
        "_weights",
        "_tags",
        "_edge_ids",
        "_lattice",
    )

    def __init__(
        self,
        num_nodes: int,
        offsets: Sequence[int],
        heads: Sequence[int],
        weights: Sequence[float],
        tags: Sequence[int],
        edge_ids: Sequence[int],
    ) -> None:
        self._n = num_nodes
        self._offsets = offsets
        self._heads = heads
        self._weights = weights
        self._tags = tags
        self._edge_ids = edge_ids
        self._lattice: int | None | bool = False  # False = not yet detected

    @property
    def num_nodes(self) -> int:
        """Number of nodes (ids ``0 .. num_nodes - 1``)."""
        return self._n

    @property
    def num_edges(self) -> int:
        """Number of directed edges."""
        return len(self._heads)

    def out_degree(self, node: int) -> int:
        """Out-degree of *node*."""
        self._check_node(node)
        return self._offsets[node + 1] - self._offsets[node]

    def neighbors(self, node: int) -> Iterator[tuple[int, float, int]]:
        """Yield ``(head, weight, tag)`` for each out-edge of *node*."""
        self._check_node(node)
        heads = self._heads
        weights = self._weights
        tags = self._tags
        for i in range(self._offsets[node], self._offsets[node + 1]):
            yield heads[i], weights[i], tags[i]

    @property
    def edge_ids(self) -> Sequence[int]:
        """``edge_ids[slot]`` is the builder insertion id of that CSR slot.

        The counting sort in :meth:`GraphBuilder.build` is stable, so the
        insertion order is fully recoverable — the delta-overlay layer
        uses it to re-emit a patched graph in the exact order a fresh
        build would have produced.
        """
        return self._edge_ids

    def lattice_scale(self) -> int | None:
        """Power-of-two ``scale`` putting every weight on an integer lattice.

        ``None`` when the weights are off-lattice (or the graph currently
        carries delta-masked ``inf`` weights, or the implied bucket span is
        too large) — callers must fall back to a comparison-based kernel.

        Detected once and memoized.  The memo stays valid under the
        delta-overlay layer's in-place masking: masking only toggles a
        pristine finite weight to ``inf`` and back, a masked slot never
        relaxes (``inf`` never improves a distance), and recovery restores
        the exact build-time weight the detection already inspected.  A
        graph first probed *while* masked conservatively memoizes ``None``
        for its lifetime — the overlay epoch's rebuild gets a fresh graph
        and a fresh detection.
        """
        cached = self._lattice
        if cached is False:
            cached = self._lattice = _detect_lattice_scale(self._weights, self._n)
        return cached

    def csr(self) -> tuple[Sequence[int], Sequence[int], Sequence[float], Sequence[int]]:
        """The raw CSR arrays ``(offsets, heads, weights, tags)``.

        The out-edges of node ``u`` occupy slots ``offsets[u]`` to
        ``offsets[u + 1]``.  Exposed for kernels (e.g. the flat Dijkstra
        fast path) that hoist every attribute lookup out of their inner
        loop; callers must treat the arrays as read-only.
        """
        return self._offsets, self._heads, self._weights, self._tags

    def neighbor_slices(self, node: int) -> tuple[range, Sequence[int], Sequence[float], Sequence[int]]:
        """Low-level access: the CSR slot range plus the backing arrays.

        Exposed for the inner loop of Dijkstra, where generator overhead per
        edge would dominate.
        """
        self._check_node(node)
        return (
            range(self._offsets[node], self._offsets[node + 1]),
            self._heads,
            self._weights,
            self._tags,
        )

    def edges(self) -> Iterator[tuple[int, int, float, int]]:
        """Yield every edge as ``(tail, head, weight, tag)``."""
        for tail in range(self._n):
            for i in range(self._offsets[tail], self._offsets[tail + 1]):
                yield tail, self._heads[i], self._weights[i], self._tags[i]

    def reverse(self) -> "StaticGraph":
        """Return a new graph with every edge direction flipped."""
        builder = GraphBuilder(self._n)
        for tail, head, weight, tag in self.edges():
            builder.add_edge(head, tail, weight, tag)
        return builder.build()

    def total_weight(self) -> float:
        """Sum of all edge weights."""
        return float(sum(self._weights))

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self._n:
            raise IndexError(f"node {node} out of range [0, {self._n})")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"StaticGraph(num_nodes={self._n}, num_edges={self.num_edges})"
