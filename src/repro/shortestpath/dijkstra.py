"""Dijkstra's algorithm with a pluggable addressable heap.

This is the engine behind Theorem 1: a single-source shortest-path run over
the auxiliary graph ``G_{s,t}`` with a Fibonacci heap yields the paper's
``O(k²n + km + kn·log(kn))`` bound.  The implementation:

* works on :class:`~repro.shortestpath.structures.StaticGraph`,
* accepts any heap satisfying the addressable protocol (``binary``,
  ``pairing``, ``fibonacci`` by name, or a factory),
* can stop early when a target settles (single-pair queries), and
* records predecessor node **and edge tag**, so routers can decode which
  parallel auxiliary edge the path used.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.shortestpath.heaps import HEAP_FACTORIES, AddressableHeap
from repro.shortestpath.structures import StaticGraph

__all__ = ["DijkstraResult", "dijkstra"]

INF = math.inf


@dataclass(frozen=True)
class DijkstraResult:
    """Outcome of one Dijkstra run.

    Attributes
    ----------
    source:
        The source node id (or several, for virtual multi-source runs).
    dist:
        ``dist[v]`` is the shortest-path distance from the source set to
        ``v`` (``math.inf`` if unreachable).
    parent:
        ``parent[v]`` is the predecessor of ``v`` on a shortest path, or
        ``-1`` for the source / unreachable nodes.
    parent_tag:
        The tag of the edge ``parent[v] -> v`` used by the shortest path
        (``-1`` where undefined).  Tags let callers map auxiliary-graph
        edges back to wavelengths and conversions.
    settled:
        Number of nodes popped from the heap (== nodes with final distance).
    relaxations:
        Number of edge relaxations attempted.
    """

    source: tuple[int, ...]
    dist: list[float]
    parent: list[int]
    parent_tag: list[int]
    settled: int
    relaxations: int
    heap_stats: dict[str, int] = field(default_factory=dict)

    def reachable(self, node: int) -> bool:
        """True if *node* has a finite distance."""
        return self.dist[node] < INF


def dijkstra(
    graph: StaticGraph,
    sources: int | Iterable[int],
    target: int | None = None,
    heap: str | Callable[[], AddressableHeap] = "binary",
) -> DijkstraResult:
    """Single-source (or multi-source) shortest paths on *graph*.

    Parameters
    ----------
    graph:
        A :class:`StaticGraph` with nonnegative edge weights.
    sources:
        One node id, or an iterable of node ids all given distance 0 (a
        virtual super-source, used by ``G_{s,t}``'s zero-cost fan-out).
    target:
        If given, the search stops as soon as *target* is settled; distances
        of nodes not yet settled are then upper bounds or ``inf``.
    heap:
        Heap name (``"binary"``, ``"pairing"``, ``"fibonacci"``) or a
        zero-argument factory returning an addressable heap.

    Returns
    -------
    DijkstraResult

    Raises
    ------
    KeyError
        If *heap* names an unknown heap implementation.
    IndexError
        If a source or target id is out of range.
    """
    if isinstance(sources, int):
        source_tuple: tuple[int, ...] = (sources,)
    else:
        source_tuple = tuple(sources)
    if not source_tuple:
        raise ValueError("at least one source is required")
    for s in source_tuple:
        if not 0 <= s < graph.num_nodes:
            raise IndexError(f"source {s} out of range [0, {graph.num_nodes})")
    if target is not None and not 0 <= target < graph.num_nodes:
        raise IndexError(f"target {target} out of range [0, {graph.num_nodes})")

    factory = HEAP_FACTORIES[heap] if isinstance(heap, str) else heap
    queue = factory()

    n = graph.num_nodes
    dist = [INF] * n
    parent = [-1] * n
    parent_tag = [-1] * n
    settled = 0
    relaxations = 0

    for s in source_tuple:
        if dist[s] != 0.0:
            dist[s] = 0.0
            queue.push(s, 0.0)

    done = [False] * n
    while len(queue):
        u, du = queue.pop()
        if done[u]:
            continue
        done[u] = True
        settled += 1
        if target is not None and u == target:
            break
        slots, heads, weights, tags = graph.neighbor_slices(u)
        for i in slots:
            v = heads[i]
            if done[v]:
                continue
            relaxations += 1
            alt = du + weights[i]
            if alt < dist[v]:
                if dist[v] == INF:
                    queue.push(v, alt)
                else:
                    queue.decrease_key(v, alt)
                dist[v] = alt
                parent[v] = u
                parent_tag[v] = tags[i]

    stats = {
        "pushes": getattr(queue, "pushes", 0),
        "pops": getattr(queue, "pops", 0),
        "decreases": getattr(queue, "decreases", 0),
    }
    return DijkstraResult(
        source=source_tuple,
        dist=dist,
        parent=parent,
        parent_tag=parent_tag,
        settled=settled,
        relaxations=relaxations,
        heap_stats=stats,
    )
