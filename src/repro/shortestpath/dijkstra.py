"""Dijkstra's algorithm with a pluggable addressable heap.

This is the engine behind Theorem 1: a single-source shortest-path run over
the auxiliary graph ``G_{s,t}`` with a Fibonacci heap yields the paper's
``O(k²n + km + kn·log(kn))`` bound.  The implementation:

* works on :class:`~repro.shortestpath.structures.StaticGraph`,
* accepts any heap satisfying the addressable protocol (``binary``,
  ``pairing``, ``fibonacci`` by name, or a factory),
* can stop early when a target settles (single-pair queries), and
* records predecessor node **and edge tag**, so routers can decode which
  parallel auxiliary edge the path used, and
* breaks distance ties by ascending node id (heap keys are
  ``(distance, node)`` tuples), so every kernel — including the flat
  heapq kernel in :mod:`repro.shortestpath.flat` — returns the *same*
  parent forest when multiple shortest paths exist.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.shortestpath.heaps import HEAP_FACTORIES, AddressableHeap
from repro.shortestpath.structures import StaticGraph

__all__ = ["DijkstraResult", "dijkstra"]

INF = math.inf


@dataclass(frozen=True)
class DijkstraResult:
    """Outcome of one Dijkstra run.

    Attributes
    ----------
    source:
        The source node id (or several, for virtual multi-source runs).
    dist:
        ``dist[v]`` is the shortest-path distance from the source set to
        ``v`` (``math.inf`` if unreachable).
    parent:
        ``parent[v]`` is the predecessor of ``v`` on a shortest path, or
        ``-1`` for the source / unreachable nodes.
    parent_tag:
        The tag of the edge ``parent[v] -> v`` used by the shortest path
        (``-1`` where undefined).  Tags let callers map auxiliary-graph
        edges back to wavelengths and conversions.
    settled:
        Number of nodes popped from the heap (== nodes with final distance).
    relaxations:
        Number of edge relaxations attempted.
    stopped_at:
        The target node whose settling ended the search early, or ``-1``
        when the search ran to exhaustion.  With a *targets* set this
        identifies which member attained the minimum distance.
    """

    source: tuple[int, ...]
    dist: "Sequence[float]"
    parent: "Sequence[int]"
    parent_tag: "Sequence[int]"
    settled: int
    relaxations: int
    heap_stats: dict[str, int] = field(default_factory=dict)
    stopped_at: int = -1

    def reachable(self, node: int) -> bool:
        """True if *node* has a finite distance."""
        return self.dist[node] < INF


def dijkstra(
    graph: StaticGraph,
    sources: int | Iterable[int],
    target: int | None = None,
    heap: str | Callable[[], AddressableHeap] = "binary",
    targets: Iterable[int] | None = None,
) -> DijkstraResult:
    """Single-source (or multi-source) shortest paths on *graph*.

    Parameters
    ----------
    graph:
        A :class:`StaticGraph` with nonnegative edge weights.
    sources:
        One node id, or an iterable of node ids all given distance 0 (a
        virtual super-source, used by ``G_{s,t}``'s zero-cost fan-out).
    target:
        If given, the search stops as soon as *target* is settled; distances
        of nodes not yet settled are then upper bounds or ``inf``.
    heap:
        Heap name (``"binary"``, ``"pairing"``, ``"fibonacci"``), a
        zero-argument factory returning an addressable heap, or ``"flat"``
        to delegate to :func:`repro.shortestpath.flat.flat_dijkstra` (the
        heapq + lazy-deletion kernel; heap stats then report
        pushes/pops/stale instead of decrease-keys).
    targets:
        If given, stop as soon as *any* member settles; nodes settle in
        nondecreasing distance order, so the first settled member (exposed
        as ``stopped_at``) attains the minimum distance over the set.
        Mutually exclusive with *target*.

    Returns
    -------
    DijkstraResult

    Raises
    ------
    KeyError
        If *heap* names an unknown heap implementation.
    IndexError
        If a source or target id is out of range.
    """
    if isinstance(heap, str) and heap == "flat":
        from repro.shortestpath.flat import flat_dijkstra

        return flat_dijkstra(graph, sources, target=target, targets=targets)
    if isinstance(heap, str) and heap == "bucket":
        from repro.shortestpath.bucket import bucket_dijkstra

        return bucket_dijkstra(graph, sources, target=target, targets=targets)
    if isinstance(sources, int):
        source_tuple: tuple[int, ...] = (sources,)
    else:
        source_tuple = tuple(sources)
    if not source_tuple:
        raise ValueError("at least one source is required")
    for s in source_tuple:
        if not 0 <= s < graph.num_nodes:
            raise IndexError(f"source {s} out of range [0, {graph.num_nodes})")
    if target is not None and targets is not None:
        raise ValueError("pass either target or targets, not both")
    if target is not None and not 0 <= target < graph.num_nodes:
        raise IndexError(f"target {target} out of range [0, {graph.num_nodes})")
    target_set: frozenset[int] | None = None
    if targets is not None:
        target_set = frozenset(targets)
        for t in target_set:
            if not 0 <= t < graph.num_nodes:
                raise IndexError(f"target {t} out of range [0, {graph.num_nodes})")

    factory = HEAP_FACTORIES[heap] if isinstance(heap, str) else heap
    queue = factory()

    n = graph.num_nodes
    dist = [INF] * n
    parent = [-1] * n
    parent_tag = [-1] * n
    settled = 0
    relaxations = 0
    stopped_at = -1

    # Heap keys are (distance, node) tuples so that equal-distance nodes
    # settle in ascending node-id order.  Every kernel (binary, pairing,
    # fibonacci, flat) shares this tie-break, which makes the returned
    # parent forest — and hence decoded paths — identical across kernels
    # even when multiple shortest paths exist.
    for s in source_tuple:
        if dist[s] != 0.0:
            dist[s] = 0.0
            queue.push(s, (0.0, s))

    done = [False] * n
    while len(queue):
        u, key = queue.pop()
        du = key[0]
        if done[u]:
            continue
        done[u] = True
        settled += 1
        if target is not None and u == target:
            stopped_at = u
            break
        if target_set is not None and u in target_set:
            stopped_at = u
            break
        slots, heads, weights, tags = graph.neighbor_slices(u)
        for i in slots:
            v = heads[i]
            if done[v]:
                continue
            relaxations += 1
            alt = du + weights[i]
            if alt < dist[v]:
                if dist[v] == INF:
                    queue.push(v, (alt, v))
                else:
                    queue.decrease_key(v, (alt, v))
                dist[v] = alt
                parent[v] = u
                parent_tag[v] = tags[i]

    stats = {
        "pushes": getattr(queue, "pushes", 0),
        "pops": getattr(queue, "pops", 0),
        "decreases": getattr(queue, "decreases", 0),
    }
    return DijkstraResult(
        source=source_tuple,
        dist=dist,
        parent=parent,
        parent_tag=parent_tag,
        settled=settled,
        relaxations=relaxations,
        heap_stats=stats,
        stopped_at=stopped_at,
    )
