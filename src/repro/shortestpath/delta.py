"""Incremental overlay maintenance: delta-epoch CSR patching.

The shared overlays (``G'`` / ``G_all``) drop the dominant
``O(k²n + km)`` construction term from warm queries, but any fault or
recovery still invalidated them wholesale — exactly the steady state the
chaos layer creates, where channel/link/converter events arrive
continuously.  :class:`DeltaOverlay` closes that gap: it maps every
network *resource* to the CSR edge slots it induces and services
fail/recover events by masking/unmasking edge weights **in place**, in
time proportional to the affected edges rather than the whole network.

Masking semantics
-----------------
A masked edge has its CSR weight set to ``math.inf``.  Both Dijkstra
kernels relax with a strict ``alt < dist[v]`` test, and ``du + inf`` is
never ``<`` anything finite, so a masked edge is exactly as unreachable
as an absent edge — no kernel changes are needed, and the parent forests
(hence hop sequences) match a fresh build from the degraded network
because the surviving edges keep their relative CSR order and the
monotone ``(dist, node)`` tie-break makes identical choices over them.
Masked-but-present auxiliary nodes are harmless dead ends: only
``E_org`` edges enter ``X`` nodes or leave ``Y`` nodes, so a complete
auxiliary path can only use surviving structure.

Resources and reasons
---------------------
Three resource kinds map onto edge slots:

* a **channel** ``(u, v, λ)`` — the unique ``E_org`` slot
  ``Y_u(λ) → X_v(λ)``;
* a **directed link** ``(u, v)`` — every channel slot on that link;
* a **converter** at ``v`` — every off-diagonal conversion edge inside
  ``G_v`` (masking them leaves exactly the diagonal, i.e. the edges
  :class:`~repro.core.conversion.NoConversion` would have built — the
  same substitution the fault injector's degraded view performs).

Fail/recover events compose: each masked slot carries a *reason set*
(link outage, channel outage, converter outage), and the weight is
restored only when the last reason is removed — mirroring the fault
injector's set semantics, where a channel stays dark while either its
own fault or its link's fault is active.

Every applied event bumps a monotone **delta epoch**, so cache layers
can version patched overlays the same way they version full rebuilds.

An event the overlay cannot express as a patch — recovering a resource
the overlay never saw (it was already failed when the overlay was
built) — returns ``None``; the caller falls back to a full rebuild,
which remains both the fallback and the correctness oracle
(:meth:`DeltaOverlay.materialize` reproduces, byte-for-byte, the CSR
arrays a fresh build from the degraded network would produce).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Hashable

from repro.shortestpath.structures import GraphBuilder, StaticGraph

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.auxiliary import AuxNode, LayeredGraph

__all__ = ["DeltaOverlay", "MaterializedOverlay"]

NodeId = Hashable
INF = math.inf

#: Mask reasons (the first tuple element of each reason key).
_R_CHANNEL = "channel"
_R_LINK = "link"
_R_CONVERTER = "converter"


@dataclass(frozen=True)
class MaterializedOverlay:
    """A patched overlay re-emitted as the equivalent fresh build.

    ``graph`` / ``decode`` / ``x_ids`` / ``y_ids`` (and, for ``G_all``
    inputs, ``source_ids`` / ``sink_ids``) are byte-for-byte what
    :func:`~repro.core.auxiliary.build_layered_graph` /
    :func:`~repro.core.auxiliary.build_all_pairs_graph` would produce on
    the degraded network — the property the tests and fuzz oracles pin.
    """

    graph: StaticGraph
    decode: list[AuxNode]
    x_ids: dict[tuple[NodeId, int], int]
    y_ids: dict[tuple[NodeId, int], int]
    source_ids: dict[NodeId, int] | None
    sink_ids: dict[NodeId, int] | None


class DeltaOverlay:
    """Resource-indexed in-place patching of one layered-graph overlay.

    Parameters
    ----------
    layered:
        The :class:`~repro.core.auxiliary.LayeredGraph` (or
        ``AllPairsGraph``) whose :class:`StaticGraph` this overlay owns.
        The overlay becomes the sanctioned mutator of that graph's
        weights array; all other callers keep treating it as read-only.

    One overlay instance is bound to one graph build: after a full
    rebuild, construct a new overlay.  Not thread-safe on its own — the
    epoch cache drives it under its lock.
    """

    def __init__(self, layered: LayeredGraph) -> None:
        # Imported here, not at module scope: ``core.auxiliary`` imports
        # the shortest-path structures, and this module is re-exported
        # from the package ``__init__`` — a top-level import would cycle.
        from repro.core.auxiliary import KIND_IN, KIND_OUT

        self.layered = layered
        graph = layered.graph
        self._graph = graph
        offsets, heads, self._weights, _tags = graph.csr()
        decode = layered.decode
        #: (u, v, λ) -> the unique E_org CSR slot Y_u(λ) -> X_v(λ).
        self._channel_slots: dict[tuple[NodeId, NodeId, int], int] = {}
        #: (u, v) -> wavelengths this directed link carries in the overlay.
        self._link_channels: dict[tuple[NodeId, NodeId], list[int]] = {}
        #: node -> off-diagonal conversion-edge slots inside G_v.
        self._conv_cross: dict[NodeId, list[int]] = {}
        #: slot -> tail aux id (CSR stores only heads).
        self._tails: list[int] = [0] * graph.num_edges
        for tail in range(graph.num_nodes):
            a = decode[tail]
            for slot in range(offsets[tail], offsets[tail + 1]):
                self._tails[slot] = tail
                b = decode[heads[slot]]
                if a.kind == KIND_OUT and b.kind == KIND_IN:
                    # E_org: one channel == one slot (the network is a
                    # simple digraph and the aux node encodes λ).
                    key = (a.node, b.node, a.wavelength)
                    self._channel_slots[key] = slot
                    self._link_channels.setdefault(
                        (a.node, b.node), []
                    ).append(a.wavelength)
                elif a.kind == KIND_IN and b.kind == KIND_OUT:
                    if a.wavelength != b.wavelength:
                        self._conv_cross.setdefault(a.node, []).append(slot)
                # Virtual terminal edges (source/sink kinds) are never
                # masked: terminals exist for every network node and
                # their zero-weight edges die with their X/Y endpoint.
        #: slot -> saved pristine weight (presence == masked).
        self._saved: dict[int, float] = {}
        #: slot -> active mask reasons.
        self._reasons: dict[int, set[tuple]] = {}
        #: Converters failed *through this overlay* (recovering any
        #: other converter needs a full rebuild).
        self._down_converters: set[NodeId] = set()
        #: Monotone event counter; bumped by every applied event.
        self.delta_epoch = 0
        self._reverse: list[list[tuple[int, int]]] | None = None

    # -- introspection --------------------------------------------------------

    @property
    def masked_edges(self) -> int:
        """Number of currently masked CSR slots."""
        return len(self._saved)

    def slot_pairs(self, slots: list[int]) -> list[tuple[int, int]]:
        """``(tail, head)`` aux-id pairs for *slots* (for warm repair)."""
        heads = self._graph.csr()[1]
        return [(self._tails[slot], heads[slot]) for slot in slots]

    def in_edges(self, head: int) -> list[tuple[int, int]]:
        """Reverse adjacency: ``(tail, slot)`` for every in-edge of *head*.

        Built lazily on first use (one O(m) pass); warm-run repair uses
        it to find the settled boundary around an affected region.
        """
        if self._reverse is None:
            reverse: list[list[tuple[int, int]]] = [
                [] for _ in range(self._graph.num_nodes)
            ]
            heads = self._graph.csr()[1]
            for slot, tail in enumerate(self._tails):
                reverse[heads[slot]].append((tail, slot))
            self._reverse = reverse
        return self._reverse[head]

    # -- mask plumbing --------------------------------------------------------

    def _mask(self, slot: int, reason: tuple) -> bool:
        """Add *reason* to *slot*; True when the slot just became masked."""
        reasons = self._reasons.get(slot)
        if reasons is None:
            reasons = self._reasons[slot] = set()
        reasons.add(reason)
        if slot not in self._saved:
            self._saved[slot] = self._weights[slot]
            self._weights[slot] = INF
            return True
        return False

    def _unmask(self, slot: int, reason: tuple) -> bool:
        """Drop *reason* from *slot*; True when the weight was restored."""
        reasons = self._reasons.get(slot)
        if reasons is None or reason not in reasons:
            return False
        reasons.discard(reason)
        if reasons:
            return False
        del self._reasons[slot]
        self._weights[slot] = self._saved.pop(slot)
        return True

    # -- events ---------------------------------------------------------------
    #
    # Each method returns the list of slots whose masked state actually
    # changed (possibly empty — duplicate events are no-ops, matching the
    # injector's set semantics), or ``None`` when the event cannot be
    # expressed as a patch and the caller must fall back to a full
    # rebuild.  Failing a resource the overlay does not know is a safe
    # no-op: the resource was already absent when the overlay was built,
    # so the degraded view is unchanged.

    def fail_channel(
        self, tail: NodeId, head: NodeId, wavelength: int
    ) -> list[int] | None:
        self.delta_epoch += 1
        slot = self._channel_slots.get((tail, head, wavelength))
        if slot is None:
            return []
        reason = (_R_CHANNEL, tail, head, wavelength)
        return [slot] if self._mask(slot, reason) else []

    def recover_channel(
        self, tail: NodeId, head: NodeId, wavelength: int
    ) -> list[int] | None:
        self.delta_epoch += 1
        slot = self._channel_slots.get((tail, head, wavelength))
        if slot is None:
            # Either the channel was already dark when this overlay was
            # built (its slot was never emitted — recovery must add
            # structure, which a patch cannot) or it never existed.  The
            # overlay cannot tell the two apart, so it must assume the
            # former: rebuild.
            return None
        reason = (_R_CHANNEL, tail, head, wavelength)
        return [slot] if self._unmask(slot, reason) else []

    def fail_link(self, tail: NodeId, head: NodeId) -> list[int] | None:
        self.delta_epoch += 1
        lams = self._link_channels.get((tail, head))
        if lams is None:
            return []
        reason = (_R_LINK, tail, head)
        changed: list[int] = []
        for lam in lams:
            slot = self._channel_slots[(tail, head, lam)]
            if self._mask(slot, reason):
                changed.append(slot)
        return changed

    def recover_link(self, tail: NodeId, head: NodeId) -> list[int] | None:
        self.delta_epoch += 1
        lams = self._link_channels.get((tail, head))
        if lams is None:
            return None  # dark at build time (or nonexistent): rebuild
        reason = (_R_LINK, tail, head)
        changed: list[int] = []
        for lam in lams:
            slot = self._channel_slots[(tail, head, lam)]
            if self._unmask(slot, reason):
                changed.append(slot)
        return changed

    def fail_converter(self, node: NodeId) -> list[int] | None:
        self.delta_epoch += 1
        slots = self._conv_cross.get(node)
        if slots is None:
            # The node had no cross-wavelength edges when this overlay
            # was built — it cannot convert, or its converter was already
            # down.  Do NOT record it as down: that would make a later
            # recover look patchable when it actually has to re-add
            # edges the overlay never emitted (rebuild territory).
            # Masking-wise the fail is a no-op either way.
            return []
        self._down_converters.add(node)
        reason = (_R_CONVERTER, node)
        changed: list[int] = []
        for slot in slots:
            if self._mask(slot, reason):
                changed.append(slot)
        return changed

    def recover_converter(self, node: NodeId) -> list[int] | None:
        self.delta_epoch += 1
        if node not in self._down_converters:
            # The converter may have been down before this overlay was
            # built (its cross edges were never emitted): rebuild.
            return None
        self._down_converters.discard(node)
        reason = (_R_CONVERTER, node)
        changed: list[int] = []
        for slot in self._conv_cross.get(node, ()):
            if self._unmask(slot, reason):
                changed.append(slot)
        return changed

    # -- the correctness oracle ----------------------------------------------

    def materialize(self) -> MaterializedOverlay:
        """Re-emit the patched overlay as the equivalent fresh build.

        Reconstructs exactly what ``build_layered_graph`` (or
        ``build_all_pairs_graph``) would produce on the degraded
        network: auxiliary nodes that lost every channel disappear, ids
        are renumbered order-preservingly, and surviving edges are
        re-emitted in their original insertion order (recovered through
        the CSR's ``edge_ids``).  Byte-identical CSR arrays are the
        load-bearing guarantee — they imply the patched overlay and a
        fresh degraded build make identical tie-break decisions, hence
        return hop-for-hop identical routes.
        """
        from repro.core.auxiliary import KIND_SINK, KIND_SOURCE

        graph = self._graph
        offsets, heads, weights, tags = graph.csr()
        decode = self.layered.decode
        n = graph.num_nodes

        # An X_v(λ) node exists iff some in-channel on λ survives; a
        # Y_v(λ) node iff some out-channel survives.  Only E_org edges
        # touch that membership; virtual terminals always exist.
        alive = bytearray(n)
        for aid, node in enumerate(decode):
            if node.kind in (KIND_SOURCE, KIND_SINK):
                alive[aid] = 1
        for slot in self._channel_slots.values():
            if slot not in self._saved:
                alive[self._tails[slot]] = 1
                alive[heads[slot]] = 1

        new_id = [-1] * n
        new_decode: list[AuxNode] = []
        for aid in range(n):
            if alive[aid]:
                new_id[aid] = len(new_decode)
                new_decode.append(decode[aid])

        builder = GraphBuilder(len(new_decode))
        order = sorted(range(graph.num_edges), key=graph.edge_ids.__getitem__)
        for slot in order:
            if slot in self._saved:
                continue
            tail = self._tails[slot]
            head = heads[slot]
            if not (alive[tail] and alive[head]):
                continue
            builder.add_edge(new_id[tail], new_id[head], weights[slot], tags[slot])

        x_ids = {
            key: new_id[aid]
            for key, aid in self.layered.x_ids.items()
            if alive[aid]
        }
        y_ids = {
            key: new_id[aid]
            for key, aid in self.layered.y_ids.items()
            if alive[aid]
        }
        source_ids = sink_ids = None
        if hasattr(self.layered, "source_ids"):
            source_ids = {
                node: new_id[aid]
                for node, aid in self.layered.source_ids.items()
            }
            sink_ids = {
                node: new_id[aid]
                for node, aid in self.layered.sink_ids.items()
            }
        return MaterializedOverlay(
            graph=builder.build(),
            decode=new_decode,
            x_ids=x_ids,
            y_ids=y_ids,
            source_ids=source_ids,
            sink_ids=sink_ids,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"DeltaOverlay(delta_epoch={self.delta_epoch}, "
            f"masked={self.masked_edges}/{self._graph.num_edges})"
        )
