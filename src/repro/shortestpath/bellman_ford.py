"""Bellman–Ford single-source shortest paths.

Two variants are provided:

* :func:`bellman_ford` — the classic synchronous-rounds formulation.  Its
  round structure mirrors the *distributed* Bellman–Ford of
  :mod:`repro.distributed.bellman_ford_dist`, which makes it the natural
  centralized oracle for the distributed tests.
* :func:`spfa` — the queue-based "shortest path faster algorithm"
  (label-correcting); usually far fewer relaxations in practice.

Both detect negative cycles (the WDM cost model is nonnegative, but the
substrate is general and the detection is exercised by tests).
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass

from repro.shortestpath.structures import StaticGraph

__all__ = ["BellmanFordResult", "bellman_ford", "spfa"]

INF = math.inf


@dataclass(frozen=True)
class BellmanFordResult:
    """Outcome of a Bellman–Ford run.

    ``rounds`` is the number of full synchronous passes performed (for
    :func:`spfa` it counts queue pops instead).  ``has_negative_cycle`` is
    True when a cycle with negative total weight is reachable from the
    source, in which case distances of affected nodes are meaningless.
    """

    source: int
    dist: list[float]
    parent: list[int]
    parent_tag: list[int]
    rounds: int
    relaxations: int
    has_negative_cycle: bool


def bellman_ford(graph: StaticGraph, source: int) -> BellmanFordResult:
    """Classic Bellman–Ford with early exit when a round changes nothing.

    Runs at most ``n`` rounds; a change in round ``n`` proves a reachable
    negative cycle.
    """
    n = graph.num_nodes
    if not 0 <= source < n:
        raise IndexError(f"source {source} out of range [0, {n})")
    dist = [INF] * n
    parent = [-1] * n
    parent_tag = [-1] * n
    dist[source] = 0.0

    edges = list(graph.edges())
    relaxations = 0
    rounds = 0
    negative = False
    for round_index in range(n):
        rounds += 1
        changed = False
        for tail, head, weight, tag in edges:
            if dist[tail] == INF:
                continue
            relaxations += 1
            alt = dist[tail] + weight
            if alt < dist[head]:
                dist[head] = alt
                parent[head] = tail
                parent_tag[head] = tag
                changed = True
        if not changed:
            break
    else:
        # All n rounds ran and the last one may have changed something;
        # probe once more to detect a negative cycle.
        for tail, head, weight, _tag in edges:
            if dist[tail] != INF and dist[tail] + weight < dist[head]:
                negative = True
                break

    return BellmanFordResult(
        source=source,
        dist=dist,
        parent=parent,
        parent_tag=parent_tag,
        rounds=rounds,
        relaxations=relaxations,
        has_negative_cycle=negative,
    )


def spfa(graph: StaticGraph, source: int) -> BellmanFordResult:
    """Queue-based Bellman–Ford (SPFA).

    Nodes are re-enqueued when their distance improves.  A node dequeued
    more than ``n`` times proves a reachable negative cycle.
    """
    n = graph.num_nodes
    if not 0 <= source < n:
        raise IndexError(f"source {source} out of range [0, {n})")
    dist = [INF] * n
    parent = [-1] * n
    parent_tag = [-1] * n
    dist[source] = 0.0

    in_queue = [False] * n
    dequeue_count = [0] * n
    queue: deque[int] = deque([source])
    in_queue[source] = True
    relaxations = 0
    pops = 0
    negative = False

    while queue:
        u = queue.popleft()
        pops += 1
        in_queue[u] = False
        dequeue_count[u] += 1
        if dequeue_count[u] > n:
            negative = True
            break
        du = dist[u]
        slots, heads, weights, tags = graph.neighbor_slices(u)
        for i in slots:
            relaxations += 1
            v = heads[i]
            alt = du + weights[i]
            if alt < dist[v]:
                dist[v] = alt
                parent[v] = u
                parent_tag[v] = tags[i]
                if not in_queue[v]:
                    queue.append(v)
                    in_queue[v] = True

    return BellmanFordResult(
        source=source,
        dist=dist,
        parent=parent,
        parent_tag=parent_tag,
        rounds=pops,
        relaxations=relaxations,
        has_negative_cycle=negative,
    )
