"""Shortest-path substrate: graphs, addressable heaps, and SSSP algorithms.

This subpackage is the algorithmic foundation beneath the semilightpath
routers.  It provides:

* :class:`~repro.shortestpath.structures.StaticGraph` — a compact
  adjacency-list (CSR) digraph over dense integer node ids,
* three addressable priority queues with ``decrease_key`` —
  :class:`~repro.shortestpath.heaps.BinaryHeap`,
  :class:`~repro.shortestpath.heaps.PairingHeap`, and
  :class:`~repro.shortestpath.fibonacci.FibonacciHeap` (the structure
  Theorem 1 of the paper cites for its ``O(m' + n' log n')`` bound),
* Dijkstra with a pluggable heap and early target stop,
* a flat-array Dijkstra fast path (:mod:`repro.shortestpath.flat`) —
  heapq with lazy deletion over the CSR arrays, with scratch buffers
  reusable across queries (the routers' default kernel),
* a Dial bucket-queue kernel (:mod:`repro.shortestpath.bucket`) that
  activates on integer-lattice weights and falls back to the flat
  kernel otherwise, and
* Bellman–Ford (both classic synchronous rounds and SPFA queue forms).

Kernel registry
---------------
Every single-source kernel the routers can dispatch to is registered
here under a short name (``"flat"``, ``"bucket"``, ``"binary"``,
``"pairing"``, ``"fibonacci"``).  All registered kernels share one
uniform signature::

    kernel(graph, sources, target=None, targets=None, scratch=None)
        -> DijkstraResult

and the ``(dist, node)`` tie-break contract — identical parent forests,
hence identical decoded hop sequences.  Routers resolve a ``heap=`` value
once via :func:`resolve_kernel` instead of string-matching at every call
site; new kernels register once with :func:`register_kernel` and become
available everywhere (routers, trees, the parallel all-pairs workers).
A callable ``heap`` (an addressable-heap factory) keeps working: it is
wrapped into the same uniform signature.

The Theorem-4 restricted-case machinery
(:mod:`repro.shortestpath.restricted`) is *not* a kernel — it is an
auxiliary-structure specialization layered on top of whichever kernel is
selected — and therefore lives outside the registry.
"""

from typing import Callable

from repro.shortestpath.bellman_ford import bellman_ford, spfa
from repro.shortestpath.bucket import bucket_dijkstra
from repro.shortestpath.delta import DeltaOverlay, MaterializedOverlay
from repro.shortestpath.dijkstra import DijkstraResult, dijkstra
from repro.shortestpath.fibonacci import FibonacciHeap
from repro.shortestpath.flat import (
    ScratchBuffers,
    ScratchPool,
    WarmRun,
    flat_dijkstra,
)
from repro.shortestpath.heaps import BinaryHeap, PairingHeap
from repro.shortestpath.paths import ShortestPathTree, reconstruct_path
from repro.shortestpath.shared import (
    SharedCSR,
    attach_all_pairs_graph,
    leaked_segments,
    share_all_pairs_graph,
)
from repro.shortestpath.structures import GraphBuilder, StaticGraph

_KernelFn = Callable[..., DijkstraResult]

_KERNELS: dict[str, _KernelFn] = {}


def register_kernel(name: str, kernel: _KernelFn) -> None:
    """Register *kernel* under *name* for ``heap=`` dispatch.

    The kernel must honor the uniform signature and the ``(dist, node)``
    tie-break contract (see the module docstring).  Re-registering a name
    is an error — kernels are process-global and resolved by routers that
    may already hold the old one.
    """
    if name in _KERNELS:
        raise ValueError(f"kernel {name!r} is already registered")
    _KERNELS[name] = kernel


def kernel_names() -> tuple[str, ...]:
    """Registered kernel names, in registration order."""
    return tuple(_KERNELS)


def _addressable_kernel(heap) -> _KernelFn:
    """Wrap an addressable-heap name/factory into the uniform signature.

    Addressable heaps allocate their own per-query state, so the
    *scratch* argument is accepted and ignored.
    """

    def kernel(graph, sources, target=None, targets=None, scratch=None):
        return dijkstra(graph, sources, target=target, targets=targets, heap=heap)

    return kernel


def resolve_kernel(heap: "str | Callable") -> _KernelFn:
    """Resolve a router ``heap=`` value to a registered kernel callable.

    Strings look up the registry; a callable is treated as an
    addressable-heap factory (the pre-registry extension point) and
    wrapped.  Unknown names raise ``ValueError`` eagerly so a typo fails
    at router construction, not mid-query.
    """
    if callable(heap):
        return _addressable_kernel(heap)
    try:
        return _KERNELS[heap]
    except KeyError:
        known = ", ".join(sorted(_KERNELS))
        raise ValueError(f"unknown kernel {heap!r}; registered: {known}") from None


register_kernel("flat", flat_dijkstra)
register_kernel("bucket", bucket_dijkstra)
for _name in ("binary", "pairing", "fibonacci"):
    register_kernel(_name, _addressable_kernel(_name))
del _name

__all__ = [
    "BinaryHeap",
    "PairingHeap",
    "FibonacciHeap",
    "StaticGraph",
    "GraphBuilder",
    "dijkstra",
    "DijkstraResult",
    "flat_dijkstra",
    "bucket_dijkstra",
    "register_kernel",
    "resolve_kernel",
    "kernel_names",
    "ScratchBuffers",
    "ScratchPool",
    "WarmRun",
    "DeltaOverlay",
    "MaterializedOverlay",
    "SharedCSR",
    "share_all_pairs_graph",
    "attach_all_pairs_graph",
    "leaked_segments",
    "bellman_ford",
    "spfa",
    "reconstruct_path",
    "ShortestPathTree",
]
