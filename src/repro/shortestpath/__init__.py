"""Shortest-path substrate: graphs, addressable heaps, and SSSP algorithms.

This subpackage is the algorithmic foundation beneath the semilightpath
routers.  It provides:

* :class:`~repro.shortestpath.structures.StaticGraph` — a compact
  adjacency-list (CSR) digraph over dense integer node ids,
* three addressable priority queues with ``decrease_key`` —
  :class:`~repro.shortestpath.heaps.BinaryHeap`,
  :class:`~repro.shortestpath.heaps.PairingHeap`, and
  :class:`~repro.shortestpath.fibonacci.FibonacciHeap` (the structure
  Theorem 1 of the paper cites for its ``O(m' + n' log n')`` bound),
* Dijkstra with a pluggable heap and early target stop,
* a flat-array Dijkstra fast path (:mod:`repro.shortestpath.flat`) —
  heapq with lazy deletion over the CSR arrays, with scratch buffers
  reusable across queries (the routers' default kernel), and
* Bellman–Ford (both classic synchronous rounds and SPFA queue forms).
"""

from repro.shortestpath.bellman_ford import bellman_ford, spfa
from repro.shortestpath.delta import DeltaOverlay, MaterializedOverlay
from repro.shortestpath.dijkstra import DijkstraResult, dijkstra
from repro.shortestpath.fibonacci import FibonacciHeap
from repro.shortestpath.flat import (
    ScratchBuffers,
    ScratchPool,
    WarmRun,
    flat_dijkstra,
)
from repro.shortestpath.heaps import BinaryHeap, PairingHeap
from repro.shortestpath.paths import ShortestPathTree, reconstruct_path
from repro.shortestpath.structures import GraphBuilder, StaticGraph

__all__ = [
    "BinaryHeap",
    "PairingHeap",
    "FibonacciHeap",
    "StaticGraph",
    "GraphBuilder",
    "dijkstra",
    "DijkstraResult",
    "flat_dijkstra",
    "ScratchBuffers",
    "ScratchPool",
    "WarmRun",
    "DeltaOverlay",
    "MaterializedOverlay",
    "bellman_ford",
    "spfa",
    "reconstruct_path",
    "ShortestPathTree",
]
