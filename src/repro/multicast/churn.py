"""Chaos soak for multicast groups: fault churn plus member churn.

:class:`MulticastChurnSoak` replays a merged schedule of network faults
(fiber cuts, channel drops — :func:`~repro.faults.plan.generate_plan`)
and group-membership events
(:func:`~repro.faults.plan.generate_member_churn`) against live multicast
groups.  After every event each group's hierarchy is revalidated on the
injector's *degraded* network view:

* a hierarchy whose channels were severed by a fault (or whose member
  set changed) is rerouted on the degraded view — severed branches must
  come back through surviving capacity;
* every surviving or rerouted hierarchy must pass the router-independent
  certificate (:func:`~repro.verify.certificate.check_hierarchy_certificate`)
  against the current degraded view, *every epoch* — a stale branch
  silently riding a failed channel is a violation, not a reroute;
* a group whose members are genuinely unreachable in the degraded view
  may block; blocking is counted and retried at the next epoch, and the
  soak asserts it clears by the end of the plan (all faults recover).

``cost_perturbation`` is the end-to-end self-test hook: shifting every
rerouted hierarchy's claimed cost must produce certificate violations.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Hashable

from repro.core.routing import LiangShenRouter
from repro.exceptions import MulticastBlockedError
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, generate_member_churn, generate_plan
from repro.multicast.hierarchy import LightHierarchy, MulticastRequest
from repro.multicast.router import MulticastRouter
from repro.multicast.splitters import SplitterMap
from repro.verify.certificate import check_hierarchy_certificate

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.network import WDMNetwork

__all__ = ["ChurnViolation", "MulticastChurnReport", "MulticastChurnSoak"]

NodeId = Hashable


@dataclass(frozen=True)
class ChurnViolation:
    """One per-epoch certificate failure during the soak."""

    at: float
    group: int
    detail: str

    def summary(self) -> str:
        return f"[t={self.at:.3f} group={self.group}] {self.detail}"


@dataclass
class MulticastChurnReport:
    """Aggregate outcome of one churn soak."""

    epochs: int = 0
    events_applied: int = 0
    membership_events: int = 0
    reroutes: int = 0
    severed: int = 0
    blocked_epochs: int = 0
    final_blocked: int = 0
    violations: list[ChurnViolation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations and self.final_blocked == 0

    def format(self) -> str:
        lines = [
            f"epochs: {self.epochs} (events applied: {self.events_applied}, "
            f"membership: {self.membership_events})",
            f"reroutes: {self.reroutes} (severed: {self.severed}, "
            f"blocked epochs: {self.blocked_epochs})",
            f"groups still blocked at end: {self.final_blocked}",
        ]
        if self.violations:
            lines.append(f"{len(self.violations)} certificate violation(s):")
            lines.extend(f"  {v.summary()}" for v in self.violations)
        else:
            lines.append("per-epoch certificates all valid")
        return "\n".join(lines)


class _Group:
    __slots__ = ("source", "members", "hierarchy", "dirty")

    def __init__(self, source: NodeId) -> None:
        self.source = source
        self.members: set[NodeId] = set()
        self.hierarchy: LightHierarchy | None = None
        self.dirty = True


class MulticastChurnSoak:
    """Drive multicast groups through a seeded fault + membership churn.

    Parameters
    ----------
    network:
        The pristine network; faults degrade views of it, never mutate it.
    seed:
        Drives the fault plan, the membership plan, the initial group
        membership, and the splitter assignment — one seed reproduces the
        whole soak.
    num_groups / num_faults / num_membership_events:
        Schedule sizing.  Faults are limited to ``link``/``channel``
        kinds so link weights and conversion models stay comparable
        across epochs (converter faults change the cost structure itself,
        which belongs to the unicast chaos soak).
    splitters:
        Capability map; defaults to a seeded 0.5-density assignment.
    cost_perturbation:
        Added to every rerouted hierarchy's claimed cost (self-test).
    """

    def __init__(
        self,
        network: "WDMNetwork",
        seed: int = 0,
        num_groups: int = 2,
        num_faults: int = 8,
        num_membership_events: int = 8,
        splitters: SplitterMap | None = None,
        cost_perturbation: float = 0.0,
    ) -> None:
        if num_groups < 1:
            raise ValueError("num_groups must be >= 1")
        self.network = network
        self.seed = seed
        self.cost_perturbation = cost_perturbation
        if splitters is None:
            from repro.topology.generators import assign_splitters

            splitters = assign_splitters(network, density=0.5, seed=seed)
        self.splitters = splitters

        rng = random.Random(seed)
        nodes = list(network.nodes())
        # Group membership must stay *pristinely routable*: the topology
        # may be directed, and sparse splitters can make a member set
        # un-joinable for the greedy even with every fault recovered.
        # Admitting such a member would leave the group blocked forever
        # and void the end-of-plan convergence assertion.  Degraded-view
        # blocking stays possible and is exactly what the soak exercises.
        unicast = LiangShenRouter(network)
        self._reachable: dict[NodeId, set[NodeId]] = {}
        self.groups: dict[int, _Group] = {}
        for gid in range(num_groups):
            source = rng.choice(nodes)
            if source not in self._reachable:
                self._reachable[source] = set(unicast.route_tree(source))
            reachable = sorted(self._reachable[source], key=repr)
            group = _Group(source)
            if reachable:
                for member in rng.sample(
                    reachable, min(len(reachable), rng.randint(1, 3))
                ):
                    if self._routable(source, group.members | {member}):
                        group.members.add(member)
            self.groups[gid] = group

        faults = generate_plan(
            network,
            seed=rng.randrange(2**31),
            num_faults=num_faults,
            kinds=("link", "channel"),
        )
        membership = generate_member_churn(
            network,
            seed=rng.randrange(2**31),
            num_groups=num_groups,
            num_events=num_membership_events,
        )
        self.plan = FaultPlan(
            events=tuple(faults.events) + tuple(membership.events),
            seed=seed,
            description=f"multicast churn over {network!r} (seed={seed})",
        )

    # -- the soak -----------------------------------------------------------

    def run(self) -> MulticastChurnReport:
        report = MulticastChurnReport()
        injector = FaultInjector(self.network)
        injector.membership_hook = lambda event: self._membership(event, report)
        for event in self.plan.events:
            injector.apply(event)
            report.events_applied += 1
            view = injector.network_view()
            self._settle(view, event.at, report)
            report.epochs += 1
        # One post-plan settle on the (now pristine) network: a group that
        # blocked during the last outage epochs gets its recovery retry.
        self._settle(injector.network_view(), 1.0, report)
        report.epochs += 1
        report.final_blocked = sum(
            1
            for group in self.groups.values()
            if group.members and group.hierarchy is None
        )
        return report

    def _membership(self, event, report: MulticastChurnReport) -> None:
        report.membership_events += 1
        gid = int(event.amount or 0) % len(self.groups)
        group = self.groups[gid]
        if event.node == group.source or not self.network.has_node(event.node):
            return
        if event.node not in self._reachable.get(group.source, ()):
            return  # pristinely unreachable: joining would block forever
        if event.kind == "member_join":
            if event.node not in group.members and self._routable(
                group.source, group.members | {event.node}
            ):
                group.members.add(event.node)
                group.dirty = True
        else:
            if event.node in group.members:
                group.members.remove(event.node)
                group.dirty = True

    def _routable(self, source: NodeId, members: set[NodeId]) -> bool:
        """Can the greedy join *members* on the pristine network?"""
        if not members:
            return True
        request = MulticastRequest(
            source=source, members=tuple(sorted(members, key=repr))
        )
        try:
            MulticastRouter(self.network, splitters=self.splitters).route(request)
        except MulticastBlockedError:
            return False
        return True

    def _severed(self, hierarchy: LightHierarchy, view) -> bool:
        for tail, head, wavelength in hierarchy.channel_keys():
            if not view.has_link(tail, head):
                return True
            if wavelength not in view.link(tail, head).costs:
                return True
        return False

    def _settle(self, view, at: float, report: MulticastChurnReport) -> None:
        for gid, group in self.groups.items():
            if not group.members:
                group.hierarchy = None
                group.dirty = False
                continue
            needs_reroute = group.dirty or group.hierarchy is None
            if not needs_reroute and self._severed(group.hierarchy, view):
                report.severed += 1
                needs_reroute = True
            if needs_reroute:
                group.hierarchy = self._reroute(view, group)
                group.dirty = False
                if group.hierarchy is None:
                    report.blocked_epochs += 1
                    continue
                report.reroutes += 1
            cert = check_hierarchy_certificate(
                view,
                group.hierarchy,
                splitters=self.splitters,
                source=group.source,
                members=tuple(group.members),
            )
            if not cert.ok:
                report.violations.append(
                    ChurnViolation(
                        at=at, group=gid, detail="; ".join(cert.violations)
                    )
                )
                # Drop the bad hierarchy so the next epoch retries clean.
                group.hierarchy = None

    def _reroute(self, view, group: _Group) -> LightHierarchy | None:
        request = MulticastRequest(
            source=group.source, members=tuple(sorted(group.members, key=repr))
        )
        router = MulticastRouter(view, splitters=self.splitters)
        try:
            hierarchy = router.route(request).hierarchy
        except MulticastBlockedError:
            return None
        if self.cost_perturbation:
            hierarchy = LightHierarchy(
                source=hierarchy.source,
                members=hierarchy.members,
                paths=hierarchy.paths,
                total_cost=hierarchy.total_cost + self.cost_perturbation,
            )
        return hierarchy
