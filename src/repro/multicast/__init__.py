"""Light-hierarchy multicast routing under sparse-splitter constraints.

One-to-many demands are routed as *light-hierarchies* over the same
Liang–Shen auxiliary graph the unicast router uses: channels (directed
link × wavelength) are used at most once, nodes may repeat, and each
node's optical splitting capability (:data:`MC` / :data:`TAC` /
:data:`MI`) bounds how a signal may branch, tap, or terminate there.

Package layout:

* :mod:`~repro.multicast.splitters` — per-node capability model;
* :mod:`~repro.multicast.hierarchy` — request/hierarchy types and the
  channel-parent derivation;
* :mod:`~repro.multicast.router` — nearest-member-first joining
  heuristic over auxiliary-graph distances;
* :mod:`~repro.multicast.oracle` — exact Dreyfus–Wagner reference for
  small instances;
* :mod:`~repro.multicast.verify` — differential harness, scenario
  generation, corpus, and member-set-minimizing shrinker;
* :mod:`~repro.multicast.churn` — chaos soak under fault + member churn.
"""

from repro.multicast.churn import (
    ChurnViolation,
    MulticastChurnReport,
    MulticastChurnSoak,
)
from repro.multicast.hierarchy import (
    LightHierarchy,
    MulticastRequest,
    derive_parents,
)
from repro.multicast.oracle import MAX_ORACLE_MEMBERS, optimal_hierarchy_cost
from repro.multicast.router import MulticastRouteResult, MulticastRouter
from repro.multicast.splitters import CAPABILITIES, MC, MI, TAC, SplitterMap
from repro.multicast.verify import (
    MulticastDisagreement,
    MulticastFuzzResult,
    MulticastHarness,
    MulticastScenario,
    MulticastScenarioReport,
    iter_multicast_corpus,
    load_multicast_case,
    random_multicast_scenario,
    save_multicast_case,
    shrink_multicast_scenario,
)

__all__ = [
    "CAPABILITIES",
    "MC",
    "MI",
    "TAC",
    "SplitterMap",
    "MulticastRequest",
    "LightHierarchy",
    "derive_parents",
    "MulticastRouter",
    "MulticastRouteResult",
    "MAX_ORACLE_MEMBERS",
    "optimal_hierarchy_cost",
    "MulticastScenario",
    "MulticastScenarioReport",
    "MulticastDisagreement",
    "MulticastFuzzResult",
    "MulticastHarness",
    "random_multicast_scenario",
    "shrink_multicast_scenario",
    "save_multicast_case",
    "load_multicast_case",
    "iter_multicast_corpus",
    "ChurnViolation",
    "MulticastChurnReport",
    "MulticastChurnSoak",
]
