"""Multicast requests and light-hierarchy results.

A *light-hierarchy* generalizes the light-tree exactly the way the paper's
semilightpaths generalize simple paths: nodes may be visited repeatedly,
but every **channel** — a directed link on one wavelength — carries the
signal at most once.  Under sparse splitters this relaxation is necessary
for optimality (Zhou–Molnár, PAPERS.md): a multicast-incapable node is
"branched around" by re-entering it on a different channel instead of
splitting inside it.

The representation here is member-centric: a :class:`LightHierarchy`
stores, for every destination, the full semilightpath the signal takes
from the source to that member.  Member paths overlap on shared channels;
the hierarchy's channel set is the union, and its Eq. (1) cost charges
every channel's weight once plus, per channel, the conversion from its
*parent* channel's wavelength at the channel's tail node.  The parent
relation is derived from the member paths — each channel must be preceded
by the same channel in every path that uses it (otherwise two signals
would drive one channel), which is exactly the tree-in-channel-space
invariant the certificate checker revalidates independently.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Hashable, Mapping

from repro.core.semilightpath import Hop, Semilightpath
from repro.exceptions import InvalidPathError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.network import WDMNetwork

__all__ = ["Channel", "MulticastRequest", "LightHierarchy", "derive_parents"]

NodeId = Hashable

#: A channel key: one directed link on one wavelength.
Channel = tuple[NodeId, NodeId, int]


def _channel(hop: Hop) -> Channel:
    return (hop.tail, hop.head, hop.wavelength)


@dataclass(frozen=True)
class MulticastRequest:
    """One one-to-many demand: deliver from *source* to every *member*."""

    source: NodeId
    members: tuple[NodeId, ...]

    def __post_init__(self) -> None:
        if not self.members:
            raise ValueError("a multicast request needs at least one member")
        if len(set(self.members)) != len(self.members):
            raise ValueError(f"duplicate members in {self.members!r}")
        if self.source in self.members:
            raise ValueError(
                f"source {self.source!r} cannot be one of its own members"
            )

    def __repr__(self) -> str:
        members = ", ".join(repr(m) for m in self.members)
        return f"MulticastRequest({self.source!r} -> {{{members}}})"


def derive_parents(
    paths: Mapping[NodeId, Semilightpath],
) -> tuple[dict[Channel, Channel | None], list[str]]:
    """Derive the channel parent relation from overlapping member paths.

    Returns ``(parents, violations)``: ``parents[c]`` is the channel that
    feeds ``c`` (``None`` for channels driven directly by the source
    transmitter), and *violations* lists every structural inconsistency —
    a channel fed by two different predecessors, or a channel reachable
    only through a parent cycle.  An empty violation list certifies the
    unique-parent (tree-in-channel-space) invariant.
    """
    parents: dict[Channel, Channel | None] = {}
    violations: list[str] = []
    for member in sorted(paths, key=repr):
        previous: Channel | None = None
        for hop in paths[member].hops:
            channel = _channel(hop)
            if channel in parents:
                if parents[channel] != previous:
                    violations.append(
                        f"channel {channel!r} is driven by both "
                        f"{parents[channel]!r} and {previous!r}"
                    )
            else:
                parents[channel] = previous
            previous = channel
    # The parent pointers must form a forest rooted at the source
    # transmitter; a cycle would mean a channel (transitively) feeds
    # itself — e.g. one member path traversing the same channel twice.
    grounded: set[Channel] = set()
    frontier = [c for c, p in parents.items() if p is None]
    while frontier:
        grounded.update(frontier)
        frontier = [
            c
            for c, p in parents.items()
            if c not in grounded and p in grounded
        ]
    for channel in sorted(set(parents) - grounded, key=repr):
        violations.append(
            f"channel {channel!r} is not reachable from the source "
            f"through the parent relation (cycle or dangling parent)"
        )
    return parents, violations


@dataclass(frozen=True, eq=False)
class LightHierarchy:
    """A routed light-hierarchy plus its (claimed) Eq. (1) total cost.

    ``paths[member]`` is the full semilightpath from ``source`` to that
    member; ``total_cost`` is the router's claim over the whole hierarchy
    (channel weights once each, plus per-channel conversions), which
    :meth:`evaluate_cost` recomputes from first principles and the
    router-independent :func:`~repro.verify.certificate.check_hierarchy_certificate`
    revalidates without trusting this class.
    """

    source: NodeId
    members: tuple[NodeId, ...]
    paths: Mapping[NodeId, Semilightpath]
    total_cost: float = field(default=math.nan)

    def __post_init__(self) -> None:
        if set(self.paths) != set(self.members):
            raise InvalidPathError(
                f"paths cover {sorted(self.paths, key=repr)!r} but members "
                f"are {sorted(self.members, key=repr)!r}"
            )
        for member, path in self.paths.items():
            if path.source != self.source:
                raise InvalidPathError(
                    f"path to {member!r} starts at {path.source!r}, "
                    f"not the source {self.source!r}"
                )
            if path.target != member:
                raise InvalidPathError(
                    f"path to {member!r} ends at {path.target!r}"
                )

    # -- structure ----------------------------------------------------------

    def channels(self) -> list[Hop]:
        """Distinct channels in first-use order (member order, then hop
        order within each path)."""
        seen: set[Channel] = set()
        out: list[Hop] = []
        for member in self.members:
            for hop in self.paths[member].hops:
                key = _channel(hop)
                if key not in seen:
                    seen.add(key)
                    out.append(hop)
        return out

    @property
    def num_channels(self) -> int:
        return len(self.channels())

    def channel_keys(self) -> set[Channel]:
        return {_channel(h) for member in self.members for h in self.paths[member].hops}

    def parents(self) -> dict[Channel, Channel | None]:
        """The channel parent relation (raises on structural violations)."""
        parents, violations = derive_parents(self.paths)
        if violations:
            raise InvalidPathError("; ".join(violations))
        return parents

    def nodes(self) -> set[NodeId]:
        """Every node the hierarchy touches (source included)."""
        out = {self.source}
        for member in self.members:
            out.update(self.paths[member].nodes())
        return out

    def branch_degrees(self) -> dict[Channel, int]:
        """Per channel, how many child channels its signal drives."""
        degrees: dict[Channel, int] = {}
        for channel, parent in self.parents().items():
            degrees.setdefault(channel, 0)
            if parent is not None:
                degrees[parent] = degrees.get(parent, 0) + 1
        return degrees

    # -- cost ---------------------------------------------------------------

    def evaluate_cost(self, network: "WDMNetwork") -> float:
        """Recompute Eq. (1) summed over the hierarchy's channel uses.

        Each channel's link weight is charged once; each channel driven by
        a parent on a different wavelength is charged the conversion at
        its tail node.  Raises when the hierarchy uses an unavailable
        wavelength or an unsupported conversion — mirror of
        :meth:`~repro.core.semilightpath.Semilightpath.evaluate_cost`.
        """
        parents = self.parents()
        total = 0.0
        for (tail, head, wavelength), parent in sorted(
            parents.items(), key=repr
        ):
            total += network.link_cost(tail, head, wavelength)
            if parent is not None:
                conv = network.conversion_cost(tail, parent[2], wavelength)
                if math.isinf(conv):
                    from repro.exceptions import ConversionError

                    raise ConversionError(tail, parent[2], wavelength)
                total += conv
        return total

    def __repr__(self) -> str:
        cost = "nan" if math.isnan(self.total_cost) else f"{self.total_cost:g}"
        return (
            f"LightHierarchy({self.source!r} -> {len(self.members)} member(s), "
            f"{self.num_channels} channel(s), cost={cost})"
        )
