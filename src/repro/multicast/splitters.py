"""Per-node light-splitter capabilities for multicast routing.

Optical multicast replicates a signal in the optical domain, and real WDM
nodes differ in how much replication their switch fabric supports (Zhou–
Molnár–Cousin, PAPERS.md).  Three capability classes cover the literature:

``MC`` (multicast-capable)
    A full light splitter: one incoming channel's signal may drive any
    number of outgoing channels and be tapped (dropped locally) at the
    same time.
``TAC`` (tap-and-continue)
    A 1×2 drop element: the signal can be tapped locally *and* continue on
    at most one outgoing channel — but never split toward two outgoing
    channels.
``MI`` (multicast-incapable)
    No replication at all: the signal either terminates here (delivery to
    a local member) or continues on exactly one outgoing channel, never
    both.

The *source* of a multicast request is exempt: replication there happens
electronically at the transmitter (the standard assumption in the light-
hierarchy papers), so a request may fan out of its source freely
regardless of the source node's optical capability.

These constraints are per *signal*, i.e. per incoming channel use.  A node
may be traversed by several distinct channels of the same hierarchy (that
is exactly what makes the structure a light-*hierarchy* rather than a
light-tree); each traversal is constrained independently.

:class:`SplitterMap` mirrors the immutable, shareable design of
:class:`~repro.core.conversion.ConversionModel`: build once, hand to
routers/checkers, never mutate.
"""

from __future__ import annotations

from typing import Any, Hashable, Iterable, Mapping

__all__ = ["MC", "MI", "TAC", "CAPABILITIES", "SplitterMap"]

NodeId = Hashable

MC = "mc"  #: multicast-capable (full light splitter)
MI = "mi"  #: multicast-incapable (1 in, 1 out, no local tap while continuing)
TAC = "tac"  #: tap-and-continue (local drop + at most one continuation)

CAPABILITIES = (MC, TAC, MI)


class SplitterMap:
    """Immutable node → splitter-capability assignment.

    Nodes absent from the explicit table fall back to *default* (``MC``
    unless overridden), so the empty map models the classical fully
    splitter-equipped network and sparse-splitter studies only list the
    exceptions.
    """

    __slots__ = ("_table", "_default")

    def __init__(
        self,
        capabilities: Mapping[NodeId, str] | None = None,
        default: str = MC,
    ) -> None:
        if default not in CAPABILITIES:
            raise ValueError(
                f"unknown default capability {default!r}; known: {CAPABILITIES}"
            )
        table = dict(capabilities or {})
        for node, capability in table.items():
            if capability not in CAPABILITIES:
                raise ValueError(
                    f"unknown capability {capability!r} for node {node!r}; "
                    f"known: {CAPABILITIES}"
                )
        self._table = table
        self._default = default

    @classmethod
    def all_mc(cls) -> "SplitterMap":
        """The fully splitter-equipped network (every node ``MC``)."""
        return cls()

    @property
    def default(self) -> str:
        return self._default

    def capability(self, node: NodeId) -> str:
        """The capability class of *node*."""
        return self._table.get(node, self._default)

    def can_branch(self, node: NodeId) -> bool:
        """May one signal at *node* drive two or more outgoing channels?"""
        return self.capability(node) == MC

    def can_tap_and_continue(self, node: NodeId) -> bool:
        """May one signal be dropped locally *and* continue onward?"""
        return self.capability(node) in (MC, TAC)

    def counts(self, nodes: Iterable[NodeId]) -> dict[str, int]:
        """Capability histogram over *nodes*."""
        out = {capability: 0 for capability in CAPABILITIES}
        for node in nodes:
            out[self.capability(node)] += 1
        return out

    # -- serialization (pair list: JSON objects would stringify int keys) ----

    def to_dict(self) -> dict[str, Any]:
        return {
            "default": self._default,
            "capabilities": sorted(
                ([node, capability] for node, capability in self._table.items()),
                key=repr,
            ),
        }

    @staticmethod
    def from_dict(document: Mapping[str, Any]) -> "SplitterMap":
        return SplitterMap(
            capabilities={
                node: capability
                for node, capability in document.get("capabilities", ())
            },
            default=document.get("default", MC),
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SplitterMap):
            return NotImplemented
        return self._default == other._default and self._table == other._table

    def __repr__(self) -> str:
        explicit = len(self._table)
        return f"SplitterMap(default={self._default!r}, explicit={explicit})"
