"""Nearest-member-first light-hierarchy routing over the auxiliary graph.

:class:`MulticastRouter` grows a light-hierarchy one destination at a
time, the multicast analog of the paper's Corollary 1 machinery:

1. **Tap pass** — any unjoined member that the hierarchy already passes
   through on some channel joins for free, provided its node may tap the
   signal (``MC``/``TAC``).  Taps cost 0 under Eq. (1), so taking every
   available tap before searching preserves nearest-member-first order.
2. **Graft pass** — one *multi-source* Dijkstra over the cached ``G_all``
   (:func:`~repro.core.auxiliary.build_all_pairs_graph`), seeded at
   distance 0 from every legal attachment state: the source terminal
   ``s'`` (the transmitter replicates electronically, so the source
   always accepts another branch) and every hierarchy arrival ``X_v(λ)``
   whose splitter still permits driving one more outgoing channel.  The
   search stops at the first settled member sink ``u''`` — nodes settle
   in nondecreasing distance order, so that member is the *globally*
   nearest unjoined destination over all attachment points, and the
   decoded auxiliary path is its cheapest graft.  Conversion at the
   attachment point is priced naturally by the ``X_v(λ) → Y_v(λ')``
   conversion edges, and channels already in the hierarchy are masked
   through a :class:`~repro.shortestpath.DeltaOverlay` so a graft can
   re-traverse *links* (hierarchy semantics) but never reuse a channel.

Sparse-splitter constraints are enforced on the seed set, not inside the
search: a ``TAC`` arrival may extend only while its signal drives no
other outgoing channel, an ``MI`` arrival never accepts a tap while
continuing, and only ``MC`` arrivals accept unlimited branches.  Each
graft updates the per-arrival drive counts, so constraint state is exact
at every step.

The router shares :class:`~repro.core.routing.LiangShenRouter`'s frozen-
network contract and is not safe for concurrent use of one instance: a
query temporarily masks hierarchy channels in the shared overlay and
restores them before returning.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Hashable

from repro.core.auxiliary import KIND_SOURCE
from repro.core.instrumentation import QueryStats
from repro.core.routing import LiangShenRouter, _decode
from repro.core.semilightpath import Hop, Semilightpath
from repro.exceptions import InvalidPathError, MulticastBlockedError, UnknownNodeError
from repro.multicast.hierarchy import LightHierarchy, MulticastRequest
from repro.multicast.splitters import SplitterMap
from repro.shortestpath.delta import DeltaOverlay
from repro.shortestpath.flat import flat_dijkstra
from repro.shortestpath.paths import reconstruct_path

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.network import WDMNetwork

__all__ = ["MulticastRouteResult", "MulticastRouter"]

NodeId = Hashable


class _Arrival:
    """One hierarchy channel's delivery state at its head node."""

    __slots__ = ("hop", "prefix", "drives", "delivers")

    def __init__(self, hop: Hop, prefix: tuple[Hop, ...], drives: int, delivers: bool) -> None:
        self.hop = hop
        self.prefix = prefix  # hops from the source up to and including ``hop``
        self.drives = drives  # outgoing channels this signal currently feeds
        self.delivers = delivers  # True when this arrival drops to a member


@dataclass(frozen=True)
class MulticastRouteResult:
    """A routed light-hierarchy plus the work it took to find it."""

    hierarchy: LightHierarchy
    stats: QueryStats
    taps: int
    grafts: int

    @property
    def cost(self) -> float:
        return self.hierarchy.total_cost


class MulticastRouter:
    """Route one-to-many demands as light-hierarchies.

    Parameters
    ----------
    network:
        The network to route on; treated as frozen (see
        :class:`~repro.core.routing.LiangShenRouter`).
    splitters:
        Per-node capability map; defaults to every node ``MC`` (the
        classical fully splitter-equipped assumption).
    heap:
        Shortest-path kernel for the graft searches; only ``"flat"``
        supports the masked-overlay fast path and is the default.
    """

    def __init__(
        self,
        network: "WDMNetwork",
        splitters: SplitterMap | None = None,
        heap: str = "flat",
    ) -> None:
        self.network = network
        self.splitters = splitters if splitters is not None else SplitterMap.all_mc()
        self._router = LiangShenRouter(network, heap=heap)
        self._delta: DeltaOverlay | None = None

    def invalidate(self) -> None:
        """Drop cached auxiliary state after a network mutation."""
        self._router.invalidate()
        self._delta = None

    def _overlay(self) -> DeltaOverlay:
        if self._delta is None:
            self._delta = DeltaOverlay(self._router.all_pairs_graph())
        return self._delta

    # -- the joiner ---------------------------------------------------------

    def route(self, request: MulticastRequest) -> MulticastRouteResult:
        """Join every member of *request* onto a growing light-hierarchy.

        Raises :class:`~repro.exceptions.MulticastBlockedError` when some
        member cannot be grafted — either genuinely unreachable or
        unreachable under the splitter constraints given the greedy
        join order (the joiner is a heuristic; see
        :func:`~repro.multicast.oracle.optimal_hierarchy_cost` for the
        exact small-instance reference).
        """
        network = self.network
        if not network.has_node(request.source):
            raise UnknownNodeError(request.source)
        for member in request.members:
            if not network.has_node(member):
                raise UnknownNodeError(member)
        aux = self._router.all_pairs_graph()
        delta = self._overlay()
        masked: list[tuple[NodeId, NodeId, int]] = []
        try:
            return self._join_all(request, aux, delta, masked)
        finally:
            for tail, head, wavelength in masked:
                delta.recover_channel(tail, head, wavelength)

    def _join_all(self, request, aux, delta, masked) -> MulticastRouteResult:
        source = request.source
        splitters = self.splitters
        unjoined: list[NodeId] = list(request.members)
        joined: dict[NodeId, tuple[Hop, ...]] = {}
        arrivals: list[_Arrival] = []
        total_cost = 0.0
        taps = 0
        grafts = 0
        settled = 0
        relaxations = 0
        heap_totals: dict[str, int] = {}

        def take_taps() -> None:
            nonlocal taps
            for member in list(unjoined):
                if not splitters.can_tap_and_continue(member):
                    # TAC/MC may drop the passing signal; MI arrivals
                    # already drive their one continuation, so a tap
                    # would be a second use of the signal.
                    continue
                candidates = [
                    a
                    for a in arrivals
                    if a.hop.head == member and not a.delivers
                ]
                if not candidates:
                    continue
                best = min(candidates, key=lambda a: len(a.prefix))
                best.delivers = True
                joined[member] = best.prefix
                unjoined.remove(member)
                taps += 1

        while True:
            take_taps()
            if not unjoined:
                break

            # Seed every attachment state the splitter constraints allow.
            seeds: list[int] = []
            seed_owner: dict[int, _Arrival | None] = {}
            source_id = aux.source_ids[source]
            seeds.append(source_id)
            seed_owner[source_id] = None
            for arrival in arrivals:
                node = arrival.hop.head
                if splitters.can_branch(node):
                    legal = True
                elif splitters.can_tap_and_continue(node):
                    # TAC: one continuation total; a delivered leaf
                    # (drives == 0) may extend into tap-and-continue.
                    legal = arrival.drives == 0
                else:
                    # MI: the signal either terminates or already
                    # continues on its single branch — never extendable.
                    legal = False
                if not legal:
                    continue
                x_id = aux.x_ids[(node, arrival.hop.wavelength)]
                other = seed_owner.get(x_id)
                if other is None and x_id not in seed_owner:
                    seeds.append(x_id)
                    seed_owner[x_id] = arrival
                elif other is not None and len(arrival.prefix) < len(other.prefix):
                    # Two hierarchy channels arrive at the same (v, λ)
                    # state; either is a legal attach point at the same
                    # graft cost — keep the shorter member-path prefix.
                    seed_owner[x_id] = arrival

            sink_to_member = {aux.sink_ids[u]: u for u in unjoined}
            run = flat_dijkstra(
                aux.graph, seeds, targets=list(sink_to_member), scratch=None
            )
            settled += run.settled
            relaxations += run.relaxations
            for key, value in run.heap_stats.items():
                heap_totals[key] = heap_totals.get(key, 0) + value
            if run.stopped_at < 0:
                raise MulticastBlockedError(source, tuple(unjoined))

            member = sink_to_member[run.stopped_at]
            graft_cost = run.dist[run.stopped_at]
            aux_path = reconstruct_path(run.parent, run.stopped_at)
            attach = (
                None
                if aux.decode[aux_path[0]].kind == KIND_SOURCE
                else seed_owner[aux_path[0]]
            )
            graft = _decode(aux.decode, aux_path, graft_cost)
            if not graft.hops:
                raise InvalidPathError(
                    f"empty graft decoded joining {member!r} from {source!r}"
                )
            if attach is not None:
                attach.drives += 1
            prefix = list(attach.prefix) if attach is not None else []
            last = len(graft.hops) - 1
            for i, hop in enumerate(graft.hops):
                prefix.append(hop)
                delta.fail_channel(hop.tail, hop.head, hop.wavelength)
                masked.append((hop.tail, hop.head, hop.wavelength))
                arrivals.append(
                    _Arrival(
                        hop=hop,
                        prefix=tuple(prefix),
                        drives=0 if i == last else 1,
                        delivers=i == last,
                    )
                )
            joined[member] = tuple(prefix)
            unjoined.remove(member)
            total_cost += graft_cost
            grafts += 1

        paths: dict[NodeId, Semilightpath] = {}
        for member, hops in joined.items():
            path = Semilightpath(hops=hops)
            paths[member] = Semilightpath(
                hops=hops, total_cost=path.evaluate_cost(self.network)
            )
        hierarchy = LightHierarchy(
            source=source,
            members=request.members,
            paths=paths,
            total_cost=total_cost,
        )
        stats = QueryStats(
            sizes=aux.sizes,
            settled=settled,
            relaxations=relaxations,
            heap=heap_totals,
        )
        return MulticastRouteResult(
            hierarchy=hierarchy, stats=stats, taps=taps, grafts=grafts
        )
