"""Exact small-instance reference for light-hierarchy costs.

:func:`optimal_hierarchy_cost` runs a Dreyfus–Wagner–style Steiner dynamic
program over the **channel graph**: one DP node per channel (a directed
link on one wavelength) plus a virtual root at the source transmitter,
with an edge ``c₁ → c₂`` whenever ``head(c₁) == tail(c₂)``, priced
``c_{head(c₁)}(λ₁, λ₂) + w(c₂)`` — exactly Eq. (1)'s per-channel charge in
a light-hierarchy.  Working in channel space (not auxiliary ``(v, λ)``
states) matters: an optimal hierarchy may legitimately arrive at the same
``(v, λ)`` state twice over two different channels, which no tree over
aux states can express, while every valid light-hierarchy is exactly a
tree over its channels (the unique-parent invariant the certificate
checks).

The classical DW recurrences are gated by the splitter model:

* **merge** (a signal drives ≥ 2 child subtrees) requires ``MC`` at the
  channel's head — merges at the virtual root are always free (electronic
  replication at the transmitter);
* **tap** (deliver to the head and keep going) requires ``TAC``/``MC``;
  a terminal tap (deliver and stop) is free for every capability;
* **extend** (exactly one continuation) is free for every capability and
  is closed per subset by one Dijkstra over the reversed channel graph.

Soundness caveat, stated precisely: like every DW relaxation over a
graph, the DP may assemble two merged branches that *share* a channel,
paying its weight twice — a structure no valid hierarchy can realize
(one channel carries one signal).  Every valid hierarchy is expressible
at its exact cost, so the returned value is a **lower bound on the true
constrained optimum, tight whenever the optimum's branches are
channel-disjoint** (always, in practice, at fuzz sizes).  The harness
therefore treats ``heuristic cost < oracle cost`` and ``heuristic found
a hierarchy where the oracle proves infeasibility`` as disagreements —
both impossible when the implementations are correct — while a blocked
heuristic against a finite oracle value is recorded as greedy
incompleteness, not a bug (see :mod:`repro.multicast.verify`).
"""

from __future__ import annotations

import heapq
import math
from typing import TYPE_CHECKING, Hashable

from repro.multicast.hierarchy import MulticastRequest
from repro.multicast.splitters import SplitterMap

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.network import WDMNetwork

__all__ = ["optimal_hierarchy_cost", "MAX_ORACLE_MEMBERS"]

NodeId = Hashable

#: Member-set ceiling for the DP (3^q subset merges; beyond this the
#: verify harness simply skips the exact comparison).
MAX_ORACLE_MEMBERS = 4


def optimal_hierarchy_cost(
    network: "WDMNetwork",
    request: MulticastRequest,
    splitters: SplitterMap | None = None,
) -> float:
    """The optimal light-hierarchy cost for *request*, ``inf`` if infeasible.

    Exponential in ``len(request.members)`` (capped by callers at
    :data:`MAX_ORACLE_MEMBERS`) and pseudo-polynomial in the channel
    count; intended for the verify harness's small instances only.
    """
    splitters = splitters if splitters is not None else SplitterMap.all_mc()
    members = request.members
    q = len(members)
    if q > MAX_ORACLE_MEMBERS:
        raise ValueError(
            f"{q} members exceed the oracle ceiling of {MAX_ORACLE_MEMBERS}"
        )

    # -- the channel graph --------------------------------------------------
    channels: list[tuple[NodeId, NodeId, int, float]] = []
    for link in network.links():
        for wavelength in sorted(link.costs):
            channels.append(
                (link.tail, link.head, wavelength, link.costs[wavelength])
            )
    m1 = len(channels)
    root = m1  # virtual transmitter node, "located" at the source
    size = m1 + 1

    by_tail: dict[NodeId, list[int]] = {}
    by_head: dict[NodeId, list[int]] = {}
    for index, (tail, head, _w, _c) in enumerate(channels):
        by_tail.setdefault(tail, []).append(index)
        by_head.setdefault(head, []).append(index)

    # Reverse adjacency for the extension Dijkstra: predecessors[j] holds
    # (i, cost(i -> j)) for every channel i whose head feeds channel j.
    predecessors: list[list[tuple[int, float]]] = [[] for _ in range(size)]
    for j, (tail_j, _head_j, lam_j, weight_j) in enumerate(channels):
        for i in by_head.get(tail_j, ()):
            lam_i = channels[i][2]
            conv = network.conversion_cost(tail_j, lam_i, lam_j)
            if math.isfinite(conv):
                predecessors[j].append((i, conv + weight_j))
        if tail_j == request.source:
            predecessors[j].append((root, weight_j))

    can_branch = [splitters.can_branch(head) for _t, head, _l, _c in channels]
    can_branch.append(True)  # the root merges freely
    can_tap = [
        splitters.can_tap_and_continue(head) for _t, head, _l, _c in channels
    ]

    member_index = {member: i for i, member in enumerate(members)}
    full = (1 << q) - 1
    inf = math.inf
    # best[mask][c]: cheapest delivery of *mask* using only structure
    # strictly downstream of channel c (c's own weight/conversion are
    # charged by the edge that reaches c).
    best = [[inf] * size for _ in range(full + 1)]

    for mask in range(1, full + 1):
        row = best[mask]
        # Taps: deliver head(c)'s membership out of this signal.
        for member, idx in member_index.items():
            if not mask >> idx & 1:
                continue
            rest = mask & ~(1 << idx)
            for c in by_head.get(member, ()):
                if rest == 0:
                    row[c] = 0.0  # terminal drop: legal at any capability
                elif can_tap[c] and best[rest][c] < row[c]:
                    row[c] = best[rest][c]
        # Merges: the signal at c splits into two cheaper-mask subtrees.
        sub = (mask - 1) & mask
        while sub:
            rest = mask ^ sub
            if sub <= rest:  # each unordered split once
                left, right = best[sub], best[rest]
                for c in range(size):
                    if can_branch[c]:
                        combined = left[c] + right[c]
                        if combined < row[c]:
                            row[c] = combined
            sub = (sub - 1) & mask
        # Extensions: close the subset under single-continuation moves
        # with one multi-source Dijkstra on the reversed channel graph.
        heap = [(value, c) for c, value in enumerate(row) if value < inf]
        heapq.heapify(heap)
        while heap:
            dist, c = heapq.heappop(heap)
            if dist > row[c]:
                continue
            for i, cost in predecessors[c]:
                candidate = dist + cost
                if candidate < row[i]:
                    row[i] = candidate
                    heapq.heappush(heap, (candidate, i))

    return best[full][root]
