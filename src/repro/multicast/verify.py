"""Differential verification for light-hierarchy multicast routing.

The multicast analog of :mod:`repro.verify.harness`: seeded random
scenarios (network + splitter map + member sets), a harness that checks
the heuristic joiner against the exact channel-graph oracle and the
router-independent certificate, and a delta-debugging shrinker whose
extra passes minimize *member sets* — the knob unicast shrinking does not
have.

Disagreement semantics (see :mod:`repro.multicast.oracle` for why these
are exactly the provable-bug set):

* **error** — the router raised anything other than
  :class:`~repro.exceptions.MulticastBlockedError`;
* **certificate** — a returned hierarchy fails the independent Eq. (1)
  + splitter-constraint revalidation;
* **reachability** — the router returned a hierarchy although the oracle
  proves the request infeasible;
* **cost** — the router's claimed cost beats the oracle's optimum (a
  valid hierarchy can never cost less than the relaxation's minimum).

A router that *blocks* where the oracle finds a finite optimum is greedy
incompleteness, not a bug: nearest-member-first commits to attachment
points without lookahead.  Those events are counted in
``MulticastScenarioReport.blocked`` so fuzz output keeps the heuristic
honest without failing CI on known heuristic limits.
"""

from __future__ import annotations

import hashlib
import json
import math
import random
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Callable, Hashable

from repro.io.serialization import network_from_json, network_to_json
from repro.exceptions import MulticastBlockedError
from repro.multicast.hierarchy import LightHierarchy, MulticastRequest
from repro.multicast.oracle import MAX_ORACLE_MEMBERS, optimal_hierarchy_cost
from repro.multicast.router import MulticastRouter
from repro.multicast.splitters import MC, SplitterMap
from repro.verify.certificate import check_hierarchy_certificate, costs_close
from repro.verify.oracles import SMALL_STATE_LIMIT
from repro.verify.scenarios import ScenarioLimits, random_scenario
from repro.verify.shrink import rebuild_network

__all__ = [
    "MulticastScenario",
    "MulticastDisagreement",
    "MulticastScenarioReport",
    "MulticastFuzzResult",
    "MulticastHarness",
    "random_multicast_scenario",
    "multicast_scenario_to_dict",
    "multicast_scenario_from_dict",
    "shrink_multicast_scenario",
    "save_multicast_case",
    "load_multicast_case",
    "iter_multicast_corpus",
]

NodeId = Hashable

#: JSON schema version for serialized multicast scenarios.
MULTICAST_SCENARIO_FORMAT = 1

#: Splitter densities the generator sweeps (fraction of MC nodes).
DENSITIES = (0.0, 0.25, 0.5, 0.75, 1.0)


@dataclass(frozen=True, eq=False)
class MulticastScenario:
    """One multicast verification work item."""

    network: Any  # WDMNetwork
    splitters: SplitterMap
    requests: tuple[MulticastRequest, ...]
    seed: int | None = None
    description: str = ""

    def __post_init__(self) -> None:
        for request in self.requests:
            if not self.network.has_node(request.source):
                raise ValueError(f"source off the network: {request.source!r}")
            for member in request.members:
                if not self.network.has_node(member):
                    raise ValueError(f"member off the network: {member!r}")

    def with_requests(
        self, requests: tuple[MulticastRequest, ...]
    ) -> "MulticastScenario":
        return replace(self, requests=requests)

    def with_network(self, network) -> "MulticastScenario":
        return replace(self, network=network)

    def __repr__(self) -> str:
        return (
            f"MulticastScenario(n={self.network.num_nodes}, "
            f"m={self.network.num_links}, k={self.network.num_wavelengths}, "
            f"requests={len(self.requests)}, seed={self.seed!r})"
        )


@dataclass(frozen=True)
class MulticastDisagreement:
    """One verified multicast routing bug witness."""

    kind: str  # "error" | "certificate" | "reachability" | "cost"
    source: NodeId
    members: tuple[NodeId, ...]
    detail: str

    def summary(self) -> str:
        members = ", ".join(repr(m) for m in self.members)
        return f"[{self.kind}] {self.source!r} -> {{{members}}}: {self.detail}"


@dataclass
class MulticastScenarioReport:
    """Everything one multicast scenario run produced."""

    scenario: MulticastScenario
    requests_checked: int = 0
    routed: int = 0  # requests for which a hierarchy was produced
    blocked: int = 0  # heuristic blocked, oracle feasible (not a bug)
    oracle_checked: int = 0
    disagreements: list[MulticastDisagreement] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.disagreements

    def format(self) -> str:
        lines = [
            f"multicast scenario seed={self.scenario.seed!r} "
            f"{self.scenario.description} ({self.scenario!r})",
            f"requests checked: {self.requests_checked} "
            f"(routed: {self.routed}, "
            f"oracle-compared: {self.oracle_checked}, "
            f"heuristic-blocked: {self.blocked})",
        ]
        if self.ok:
            lines.append("no disagreements")
        else:
            lines.append(f"{len(self.disagreements)} disagreement(s):")
            lines.extend(f"  {d.summary()}" for d in self.disagreements)
        return "\n".join(lines)


@dataclass
class MulticastFuzzResult:
    """Aggregate outcome of one :meth:`MulticastHarness.fuzz` run."""

    scenarios_run: int
    requests_checked: int
    oracle_checked: int
    blocked: int
    failures: list[MulticastScenarioReport]
    elapsed: float
    seed: int

    @property
    def ok(self) -> bool:
        return not self.failures


class MulticastHarness:
    """Check the joiner against the exact oracle and the certificate.

    ``cost_perturbation`` is a self-test hook: every returned hierarchy's
    claimed cost is shifted by that amount before checking, so a nonzero
    value *must* produce certificate disagreements — this is how the CLI
    proves the multicast pipeline can catch a mispricing bug end to end.
    """

    def __init__(self, cost_perturbation: float = 0.0) -> None:
        self.cost_perturbation = cost_perturbation

    def run(self, scenario: MulticastScenario) -> MulticastScenarioReport:
        report = MulticastScenarioReport(scenario=scenario)
        network = scenario.network
        oracle_applies = (
            network.num_nodes * network.num_wavelengths <= SMALL_STATE_LIMIT
        )
        for request in scenario.requests:
            report.requests_checked += 1
            router = MulticastRouter(network, splitters=scenario.splitters)
            hierarchy: LightHierarchy | None = None
            try:
                hierarchy = router.route(request).hierarchy
            except MulticastBlockedError:
                pass
            except Exception as exc:
                report.disagreements.append(
                    MulticastDisagreement(
                        kind="error",
                        source=request.source,
                        members=request.members,
                        detail=f"router raised {type(exc).__name__}: {exc}",
                    )
                )
                continue
            if hierarchy is not None:
                report.routed += 1
            if hierarchy is not None and self.cost_perturbation:
                hierarchy = LightHierarchy(
                    source=hierarchy.source,
                    members=hierarchy.members,
                    paths=hierarchy.paths,
                    total_cost=hierarchy.total_cost + self.cost_perturbation,
                )
            if hierarchy is not None:
                cert = check_hierarchy_certificate(
                    network,
                    hierarchy,
                    splitters=scenario.splitters,
                    source=request.source,
                    members=request.members,
                )
                if not cert.ok:
                    report.disagreements.append(
                        MulticastDisagreement(
                            kind="certificate",
                            source=request.source,
                            members=request.members,
                            detail="; ".join(cert.violations),
                        )
                    )
            if not oracle_applies or len(request.members) > MAX_ORACLE_MEMBERS:
                continue
            report.oracle_checked += 1
            optimum = optimal_hierarchy_cost(
                network, request, splitters=scenario.splitters
            )
            if hierarchy is None:
                if math.isfinite(optimum):
                    report.blocked += 1
            elif math.isinf(optimum):
                report.disagreements.append(
                    MulticastDisagreement(
                        kind="reachability",
                        source=request.source,
                        members=request.members,
                        detail=(
                            f"router built a hierarchy costing "
                            f"{hierarchy.total_cost!r} but the oracle "
                            f"proves the request infeasible"
                        ),
                    )
                )
            elif hierarchy.total_cost < optimum and not costs_close(
                hierarchy.total_cost, optimum
            ):
                report.disagreements.append(
                    MulticastDisagreement(
                        kind="cost",
                        source=request.source,
                        members=request.members,
                        detail=(
                            f"claimed cost {hierarchy.total_cost!r} beats "
                            f"the exact optimum {optimum!r}"
                        ),
                    )
                )
        return report

    def fuzz(
        self,
        seconds: float,
        seed: int = 0,
        limits: ScenarioLimits = ScenarioLimits(),
        max_failures: int = 10,
        on_scenario: Callable[[MulticastScenarioReport], None] | None = None,
    ) -> MulticastFuzzResult:
        """Generate-and-check scenarios until the time budget runs out.

        Mirrors :meth:`~repro.verify.harness.DifferentialHarness.fuzz`:
        at least one scenario always runs, per-scenario seeds derive
        deterministically from the base seed, and the loop stops early
        after *max_failures* failing scenarios.
        """
        if seconds <= 0:
            raise ValueError(f"seconds must be > 0, got {seconds}")
        rng = random.Random(seed)
        deadline = time.monotonic() + seconds
        scenarios_run = 0
        requests_checked = 0
        oracle_checked = 0
        blocked = 0
        failures: list[MulticastScenarioReport] = []
        while scenarios_run == 0 or (
            time.monotonic() < deadline and len(failures) < max_failures
        ):
            scenario_seed = rng.randrange(2**63)
            report = self.run(
                random_multicast_scenario(scenario_seed, limits=limits)
            )
            scenarios_run += 1
            requests_checked += report.requests_checked
            oracle_checked += report.oracle_checked
            blocked += report.blocked
            if not report.ok:
                failures.append(report)
            if on_scenario is not None:
                on_scenario(report)
        return MulticastFuzzResult(
            scenarios_run=scenarios_run,
            requests_checked=requests_checked,
            oracle_checked=oracle_checked,
            blocked=blocked,
            failures=failures,
            elapsed=seconds - max(0.0, deadline - time.monotonic()),
            seed=seed,
        )


# -- scenario generation ------------------------------------------------------


def random_multicast_scenario(
    seed: int, limits: ScenarioLimits = ScenarioLimits()
) -> MulticastScenario:
    """Draw one reproducible multicast scenario from *seed*.

    Reuses the unicast generator's topology/conversion/availability axes
    (:func:`~repro.verify.scenarios.random_scenario`) and adds the two
    multicast axes: splitter density (fraction of ``MC`` nodes, with the
    non-MC remainder split between ``TAC`` and ``MI``) and member sets of
    1–4 destinations per request.
    """
    from repro.topology.generators import assign_splitters

    rng = random.Random(seed)
    base = random_scenario(rng.randrange(2**63), limits=limits)
    network = base.network
    density = rng.choice(DENSITIES)
    tap_share = rng.choice((0.0, 0.5, 1.0))
    splitters = assign_splitters(
        network,
        density=density,
        tap_share=tap_share,
        seed=rng.randrange(2**31),
    )
    nodes = network.nodes()
    requests: list[MulticastRequest] = []
    for _ in range(rng.randint(1, 3)):
        source = rng.choice(nodes)
        others = [node for node in nodes if node != source]
        if not others:
            continue
        count = rng.randint(1, min(MAX_ORACLE_MEMBERS, len(others)))
        members = tuple(rng.sample(others, count))
        requests.append(MulticastRequest(source=source, members=members))
    description = (
        f"{base.description} splitter-density={density:g} "
        f"tap-share={tap_share:g}"
    )
    return MulticastScenario(
        network=network,
        splitters=splitters,
        requests=tuple(requests),
        seed=seed,
        description=description,
    )


# -- serialization ------------------------------------------------------------


def multicast_scenario_to_dict(scenario: MulticastScenario) -> dict[str, Any]:
    return {
        "format": MULTICAST_SCENARIO_FORMAT,
        "multicast": True,
        "seed": scenario.seed,
        "description": scenario.description,
        "network": json.loads(network_to_json(scenario.network)),
        "splitters": scenario.splitters.to_dict(),
        "requests": [
            [request.source, list(request.members)]
            for request in scenario.requests
        ],
    }


def multicast_scenario_from_dict(document: dict[str, Any]) -> MulticastScenario:
    if document.get("format") != MULTICAST_SCENARIO_FORMAT or not document.get(
        "multicast"
    ):
        raise ValueError(
            f"unsupported multicast scenario format: {document.get('format')!r}"
        )
    return MulticastScenario(
        network=network_from_json(json.dumps(document["network"])),
        splitters=SplitterMap.from_dict(document.get("splitters", {})),
        requests=tuple(
            MulticastRequest(source=source, members=tuple(members))
            for source, members in document["requests"]
        ),
        seed=document.get("seed"),
        description=document.get("description", ""),
    )


def save_multicast_case(
    directory: Path | str,
    scenario: MulticastScenario,
    disagreements: tuple[str, ...] = (),
) -> Path:
    """Persist a shrunk counterexample, content-addressed like the unicast
    corpus (``mcase-<sha1 prefix>.json``)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    document = multicast_scenario_to_dict(scenario)
    document["disagreements"] = list(disagreements)
    canonical = json.dumps(multicast_scenario_to_dict(scenario), sort_keys=True)
    digest = hashlib.sha1(canonical.encode()).hexdigest()[:12]
    path = directory / f"mcase-{digest}.json"
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return path


def load_multicast_case(path: Path | str) -> MulticastScenario:
    return multicast_scenario_from_dict(json.loads(Path(path).read_text()))


def iter_multicast_corpus(directory: Path | str) -> list[MulticastScenario]:
    """Load every multicast case in *directory* (missing dir == empty)."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    return [
        load_multicast_case(path)
        for path in sorted(directory.glob("mcase-*.json"))
    ]


# -- shrinking ----------------------------------------------------------------

FailsFn = Callable[[MulticastScenario], bool]


def _surviving_requests(
    scenario: MulticastScenario, network
) -> tuple[MulticastRequest, ...]:
    out = []
    for request in scenario.requests:
        if not network.has_node(request.source):
            continue
        members = tuple(m for m in request.members if network.has_node(m))
        if members:
            out.append(MulticastRequest(source=request.source, members=members))
    return tuple(out)


def _network_candidate(scenario: MulticastScenario, network) -> MulticastScenario:
    return replace(
        scenario,
        network=network,
        requests=_surviving_requests(scenario, network),
    )


def _shrink_requests(scenario: MulticastScenario, fails: FailsFn) -> MulticastScenario:
    if len(scenario.requests) > 1:
        for request in scenario.requests:
            candidate = scenario.with_requests((request,))
            if fails(candidate):
                scenario = candidate
                break
    requests = list(scenario.requests)
    index = 0
    while index < len(requests) and len(requests) > 1:
        candidate = scenario.with_requests(
            tuple(requests[:index] + requests[index + 1 :])
        )
        if fails(candidate):
            del requests[index]
            scenario = candidate
        else:
            index += 1
    return scenario


def _shrink_members(scenario: MulticastScenario, fails: FailsFn) -> MulticastScenario:
    """The multicast-specific pass: drop members one at a time.

    The fixed point is member-minimal — removing any single member from
    any request makes the failure disappear.
    """
    for i, request in enumerate(scenario.requests):
        members = list(request.members)
        j = 0
        while j < len(members) and len(members) > 1:
            reduced = MulticastRequest(
                source=request.source,
                members=tuple(members[:j] + members[j + 1 :]),
            )
            requests = list(scenario.requests)
            requests[i] = reduced
            candidate = scenario.with_requests(tuple(requests))
            if fails(candidate):
                del members[j]
                scenario = candidate
                request = reduced
            else:
                j += 1
    return scenario


def _shrink_nodes(scenario: MulticastScenario, fails: FailsFn) -> MulticastScenario:
    pinned = {
        node
        for request in scenario.requests
        for node in (request.source, *request.members)
    }
    for node in scenario.network.nodes():
        if node in pinned:
            continue
        keep = set(scenario.network.nodes()) - {node}
        candidate = _network_candidate(
            scenario, rebuild_network(scenario.network, keep_nodes=keep)
        )
        if candidate.requests and fails(candidate):
            scenario = candidate
    return scenario


def _shrink_links(scenario: MulticastScenario, fails: FailsFn) -> MulticastScenario:
    for link in list(scenario.network.links()):
        def drop(tail, head, costs, _link=link):
            if (tail, head) == (_link.tail, _link.head):
                return None
            return costs

        candidate = _network_candidate(
            scenario, rebuild_network(scenario.network, link_costs=drop)
        )
        if candidate.requests and fails(candidate):
            scenario = candidate
    return scenario


def _shrink_wavelength_entries(
    scenario: MulticastScenario, fails: FailsFn
) -> MulticastScenario:
    for link in list(scenario.network.links()):
        for wavelength in sorted(link.costs):
            def drop_entry(tail, head, costs, _link=link, _w=wavelength):
                if (tail, head) == (_link.tail, _link.head):
                    return {w: c for w, c in costs.items() if w != _w}
                return costs

            candidate = _network_candidate(
                scenario, rebuild_network(scenario.network, link_costs=drop_entry)
            )
            if candidate.requests and fails(candidate):
                scenario = candidate
    return scenario


def _simplify_splitters(
    scenario: MulticastScenario, fails: FailsFn
) -> MulticastScenario:
    """Promote non-MC nodes back to MC where the failure survives — the
    remaining constrained nodes are exactly the ones the bug needs."""
    for node in scenario.network.nodes():
        if scenario.splitters.capability(node) == MC:
            continue
        table = {
            n: scenario.splitters.capability(n)
            for n in scenario.network.nodes()
            if scenario.splitters.capability(n) != MC and n != node
        }
        candidate = replace(scenario, splitters=SplitterMap(table))
        if fails(candidate):
            scenario = candidate
    return scenario


_MULTICAST_PASSES = (
    _shrink_requests,
    _shrink_members,
    _shrink_nodes,
    _shrink_links,
    _shrink_wavelength_entries,
    _simplify_splitters,
)


def _size(scenario: MulticastScenario) -> tuple[int, ...]:
    network = scenario.network
    return (
        network.num_nodes,
        network.num_links,
        network.total_link_wavelengths,
        len(scenario.requests),
        sum(len(r.members) for r in scenario.requests),
        sum(
            1
            for node in network.nodes()
            if scenario.splitters.capability(node) != MC
        ),
    )


def shrink_multicast_scenario(
    scenario: MulticastScenario, fails: FailsFn, max_rounds: int = 8
) -> MulticastScenario:
    """Reduce *scenario* to a locally minimal failing one.

    Same contract as :func:`~repro.verify.shrink.shrink_scenario`; the
    member pass guarantees the result's member sets are 1-minimal.
    """
    if not fails(scenario):
        raise ValueError("refusing to shrink: the scenario does not fail")
    for _ in range(max_rounds):
        before = _size(scenario)
        for reduction_pass in _MULTICAST_PASSES:
            scenario = reduction_pass(scenario, fails)
        if _size(scenario) == before:
            break
    if not scenario.description.endswith(" (shrunk)"):
        scenario = replace(
            scenario, description=scenario.description + " (shrunk)"
        )
    return scenario
