"""NetworkX interoperability.

Exports the library's graphs into :mod:`networkx` structures (and imports
physical topologies back), so users can lean on the networkx ecosystem for
analysis, drawing, and cross-checking:

* :func:`network_to_networkx` — the physical network as a ``DiGraph``
  whose edges carry ``wavelengths`` (the ``Λ(e)`` cost dict),
* :func:`multigraph_to_networkx` — ``G_M`` as a ``MultiDiGraph`` with one
  keyed edge per (link, wavelength),
* :func:`routing_graph_to_networkx` — ``G_{s,t}`` as a weighted
  ``DiGraph`` over :class:`~repro.core.auxiliary.AuxNode` labels; running
  ``networkx.dijkstra_path_length`` on it reproduces the router's optimum
  (property-tested),
* :func:`network_from_networkx` — build a :class:`WDMNetwork` from any
  digraph whose edges carry a ``wavelengths`` cost dict.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Hashable

import networkx as nx

from repro.core.auxiliary import build_routing_graph, multigraph_edges
from repro.core.conversion import ConversionModel
from repro.core.network import WDMNetwork
from repro.exceptions import SerializationError

if TYPE_CHECKING:  # pragma: no cover
    pass

__all__ = [
    "network_to_networkx",
    "multigraph_to_networkx",
    "routing_graph_to_networkx",
    "network_from_networkx",
]

NodeId = Hashable


def network_to_networkx(network: WDMNetwork) -> "nx.DiGraph":
    """The physical digraph; edge attribute ``wavelengths`` maps λ -> cost."""
    graph = nx.DiGraph()
    graph.add_nodes_from(network.nodes())
    for link in network.links():
        graph.add_edge(link.tail, link.head, wavelengths=dict(link.costs))
    return graph


def multigraph_to_networkx(network: WDMNetwork) -> "nx.MultiDiGraph":
    """``G_M``: one keyed edge per available (link, wavelength)."""
    graph = nx.MultiDiGraph()
    graph.add_nodes_from(network.nodes())
    for tail, head, wavelength, weight in multigraph_edges(network):
        graph.add_edge(tail, head, key=wavelength, wavelength=wavelength, weight=weight)
    return graph


def routing_graph_to_networkx(
    network: WDMNetwork, source: NodeId, target: NodeId
) -> tuple["nx.DiGraph", "object", "object"]:
    """``G_{s,t}`` as a weighted DiGraph over AuxNode labels.

    Returns ``(graph, source_label, sink_label)`` so callers can run any
    networkx shortest-path routine directly:

    >>> import networkx as nx
    >>> from repro.topology.reference import paper_figure1_network
    >>> g, s, t = routing_graph_to_networkx(paper_figure1_network(), 1, 7)
    >>> nx.dijkstra_path_length(g, s, t)
    2.0
    """
    aux = build_routing_graph(network, source, target)
    graph = nx.DiGraph()
    for aux_id, descriptor in enumerate(aux.decode):
        graph.add_node(descriptor, aux_id=aux_id)
    for tail, head, weight, _tag in aux.graph.edges():
        a, b = aux.decode[tail], aux.decode[head]
        # G_{s,t} has no parallel edges; a plain DiGraph is lossless.
        graph.add_edge(a, b, weight=weight)
    return graph, aux.decode[aux.source_id], aux.decode[aux.sink_id]


def network_from_networkx(
    graph: "nx.DiGraph",
    num_wavelengths: int,
    default_conversion: ConversionModel | None = None,
) -> WDMNetwork:
    """Build a :class:`WDMNetwork` from a digraph with ``wavelengths`` attrs.

    Each edge must carry a ``wavelengths`` attribute mapping wavelength
    index -> cost (the inverse of :func:`network_to_networkx`).  Node-level
    ``conversion`` attributes, when present, must be
    :class:`~repro.core.conversion.ConversionModel` instances.
    """
    if graph.is_multigraph():
        raise SerializationError(
            "use a plain DiGraph with per-edge 'wavelengths' dicts "
            "(MultiDiGraph G_M form is an export-only view)"
        )
    network = WDMNetwork(num_wavelengths, default_conversion)
    for node, data in graph.nodes(data=True):
        network.add_node(node, conversion=data.get("conversion"))
    for tail, head, data in graph.edges(data=True):
        try:
            costs = data["wavelengths"]
        except KeyError:
            raise SerializationError(
                f"edge {tail!r}->{head!r} lacks a 'wavelengths' attribute"
            ) from None
        network.add_link(tail, head, costs)
    return network
