"""Serialization (JSON) and visualization (Graphviz DOT) for networks.

* :mod:`~repro.io.serialization` — lossless JSON round-trip for networks
  (including conversion models) and semilightpaths,
* :mod:`~repro.io.dot` — DOT export of the physical network, the
  multigraph ``G_M``, a node's bipartite ``G_v``, and the routing graph
  ``G_{s,t}`` — the machine-readable regeneration of the paper's
  Figures 1-4.
"""

from repro.io.dot import (
    bipartite_to_dot,
    multigraph_to_dot,
    network_to_dot,
    routing_graph_to_dot,
)
from repro.io.serialization import (
    network_from_json,
    network_to_json,
    path_from_json,
    path_to_json,
)

__all__ = [
    "network_to_json",
    "network_from_json",
    "path_to_json",
    "path_from_json",
    "network_to_dot",
    "multigraph_to_dot",
    "bipartite_to_dot",
    "routing_graph_to_dot",
]
