"""Graphviz DOT export — machine-readable regeneration of Figures 1-4.

Each function returns DOT source text; render with ``dot -Tpdf`` or any
Graphviz toolchain.  The four exports correspond to the paper's figures:

* :func:`network_to_dot` — Figure 1 (the physical network ``G`` with each
  link annotated by its ``Λ(e)``),
* :func:`multigraph_to_dot` — Figure 2 (``G_M`` with one parallel edge per
  available wavelength),
* :func:`bipartite_to_dot` — Figure 3 (one node's ``G_v``; conversion
  edges only),
* :func:`routing_graph_to_dot` — Figure 4 generalized (the full ``G_{s,t}``
  with its virtual terminals; restrict to two physical nodes to get the
  exact Figure 4 subgraph).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Hashable

from repro.core.auxiliary import (
    KIND_IN,
    KIND_OUT,
    RoutingGraph,
    build_routing_graph,
    multigraph_edges,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.network import WDMNetwork

__all__ = [
    "network_to_dot",
    "multigraph_to_dot",
    "bipartite_to_dot",
    "routing_graph_to_dot",
]

NodeId = Hashable


def _quote(value: object) -> str:
    return '"' + str(value).replace('"', r"\"") + '"'


def _lambda_label(wavelengths: frozenset[int]) -> str:
    return "{" + ",".join(f"λ{w + 1}" for w in sorted(wavelengths)) + "}"


def network_to_dot(network: "WDMNetwork", name: str = "G") -> str:
    """Figure 1: the physical network with per-link ``Λ(e)`` labels."""
    lines = [f"digraph {name} {{", "  rankdir=LR;", "  node [shape=circle];"]
    for node in network.nodes():
        lines.append(f"  {_quote(node)};")
    for link in network.links():
        label = _lambda_label(link.wavelengths)
        lines.append(
            f"  {_quote(link.tail)} -> {_quote(link.head)} "
            f"[label={_quote(label)}];"
        )
    lines.append("}")
    return "\n".join(lines)


def multigraph_to_dot(network: "WDMNetwork", name: str = "G_M") -> str:
    """Figure 2: the multigraph ``G_M`` — one edge per (link, wavelength)."""
    lines = [f"digraph {name} {{", "  rankdir=LR;", "  node [shape=circle];"]
    for node in network.nodes():
        lines.append(f"  {_quote(node)};")
    for tail, head, wavelength, weight in multigraph_edges(network):
        lines.append(
            f"  {_quote(tail)} -> {_quote(head)} "
            f'[label="λ{wavelength + 1}:{weight:g}"];'
        )
    lines.append("}")
    return "\n".join(lines)


def bipartite_to_dot(network: "WDMNetwork", node: NodeId, name: str = "G_v") -> str:
    """Figure 3: one node's bipartite graph ``G_v`` with conversion edges."""
    lam_in = sorted(network.lambda_in(node))
    lam_out = sorted(network.lambda_out(node))
    model = network.conversion(node)
    lines = [f"digraph {name} {{", "  rankdir=LR;", "  node [shape=box];"]
    lines.append("  subgraph cluster_x { label=" + _quote(f"X_{node}") + ";")
    for lam in lam_in:
        lines.append(f"    {_quote(f'({node},λ{lam + 1}):X')};")
    lines.append("  }")
    lines.append("  subgraph cluster_y { label=" + _quote(f"Y_{node}") + ";")
    for lam in lam_out:
        lines.append(f"    {_quote(f'({node},λ{lam + 1}):Y')};")
    lines.append("  }")
    for p, q, cost in model.finite_pairs(lam_in, lam_out):
        lines.append(
            f"  {_quote(f'({node},λ{p + 1}):X')} -> "
            f"{_quote(f'({node},λ{q + 1}):Y')} [label=\"{cost:g}\"];"
        )
    lines.append("}")
    return "\n".join(lines)


def routing_graph_to_dot(
    network: "WDMNetwork",
    source: NodeId,
    target: NodeId,
    restrict_to: set[NodeId] | None = None,
    name: str = "G_st",
) -> str:
    """``G_{s,t}`` (generalizes Figure 4) as DOT.

    With *restrict_to* = a set of physical nodes, only the auxiliary nodes
    of those physical nodes (plus incident edges) are emitted — e.g.
    ``restrict_to={1, 3}`` on the paper example reproduces Figure 4's
    subgraph of ``G'`` induced by ``G_1`` and ``G_3``.
    """
    aux: RoutingGraph = build_routing_graph(network, source, target)
    keep = (
        set(range(len(aux.decode)))
        if restrict_to is None
        else {
            aux_id
            for aux_id, descriptor in enumerate(aux.decode)
            if descriptor.node in restrict_to
        }
    )
    lines = [f"digraph {name} {{", "  rankdir=LR;", "  node [shape=box];"]
    for aux_id in sorted(keep):
        descriptor = aux.decode[aux_id]
        shape = "circle" if descriptor.kind not in (KIND_IN, KIND_OUT) else "box"
        lines.append(f"  {_quote(descriptor.label())} [shape={shape}];")
    for tail, head, weight, _tag in aux.graph.edges():
        if tail in keep and head in keep:
            lines.append(
                f"  {_quote(aux.decode[tail].label())} -> "
                f"{_quote(aux.decode[head].label())} [label=\"{weight:g}\"];"
            )
    lines.append("}")
    return "\n".join(lines)
