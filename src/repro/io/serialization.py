"""JSON round-trip for networks and semilightpaths.

The document schema is plain JSON (no pickle — documents are safe to share
and diff):

```json
{
  "num_wavelengths": 4,
  "default_conversion": {"type": "full", "cost": 0.5},
  "nodes": [{"id": 1, "conversion": {"type": "matrix", "pairs": [[0, 1, 0.5]]}}],
  "links": [{"tail": 1, "head": 2, "costs": {"0": 1.0, "2": 1.0}}]
}
```

Node ids must be JSON-representable (str/int/float/bool); richer hashables
(tuples) are rejected with :class:`~repro.exceptions.SerializationError`
rather than silently stringified.  Conversion models serialize by type;
:class:`~repro.core.conversion.CallableConversion` and callable-cost
:class:`~repro.core.conversion.FullConversion` cannot round-trip and raise.
"""

from __future__ import annotations

import json
import math
from typing import Any

from repro.core.conversion import (
    ConversionModel,
    FixedCostConversion,
    FullConversion,
    MatrixConversion,
    NoConversion,
    RangeLimitedConversion,
)
from repro.core.network import WDMNetwork
from repro.core.semilightpath import Hop, Semilightpath
from repro.exceptions import SerializationError

__all__ = [
    "network_to_json",
    "network_from_json",
    "path_to_json",
    "path_from_json",
    "conversion_to_dict",
    "conversion_from_dict",
]

_JSON_SCALARS = (str, int, float, bool)


def _check_node_id(node: object) -> object:
    if not isinstance(node, _JSON_SCALARS):
        raise SerializationError(
            f"node id {node!r} is not JSON-representable "
            f"(use str/int/float/bool ids for serializable networks)"
        )
    return node


def conversion_to_dict(model: ConversionModel) -> dict[str, Any]:
    """Serialize a conversion model to a JSON-compatible dict."""
    if isinstance(model, NoConversion):
        return {"type": "none"}
    if isinstance(model, RangeLimitedConversion):
        return {
            "type": "range",
            "range_limit": model.range_limit,
            "cost_per_step": model.cost_per_step,
        }
    if isinstance(model, MatrixConversion):
        return {"type": "matrix", "pairs": [[p, q, c] for p, q, c in model.pairs()]}
    if isinstance(model, FullConversion):  # covers FixedCostConversion too
        if model._fn is not None:
            raise SerializationError(
                "FullConversion with a callable cost cannot be serialized"
            )
        return {"type": "full", "cost": model._flat}
    raise SerializationError(f"cannot serialize conversion model {model!r}")


def conversion_from_dict(data: dict[str, Any]) -> ConversionModel:
    """Inverse of :func:`conversion_to_dict`."""
    kind = data.get("type")
    if kind == "none":
        return NoConversion()
    if kind == "range":
        return RangeLimitedConversion(
            range_limit=int(data["range_limit"]),
            cost_per_step=float(data["cost_per_step"]),
        )
    if kind == "matrix":
        return MatrixConversion({(int(p), int(q)): float(c) for p, q, c in data["pairs"]})
    if kind == "full":
        return FixedCostConversion(float(data["cost"]))
    raise SerializationError(f"unknown conversion model type {kind!r}")


def network_to_json(network: WDMNetwork, indent: int | None = None) -> str:
    """Serialize *network* to a JSON string."""
    nodes = []
    default = network._default_conversion
    for node in network.nodes():
        entry: dict[str, Any] = {"id": _check_node_id(node)}
        model = network.conversion(node)
        if model is not default:
            entry["conversion"] = conversion_to_dict(model)
        nodes.append(entry)
    links = []
    for link in network.links():
        links.append(
            {
                "tail": link.tail,
                "head": link.head,
                "costs": {str(w): c for w, c in sorted(link.costs.items())},
            }
        )
    document = {
        "num_wavelengths": network.num_wavelengths,
        "default_conversion": conversion_to_dict(default),
        "nodes": nodes,
        "links": links,
    }
    return json.dumps(document, indent=indent)


def network_from_json(text: str) -> WDMNetwork:
    """Parse a network from :func:`network_to_json` output."""
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SerializationError(f"invalid JSON: {exc}") from exc
    try:
        network = WDMNetwork(
            num_wavelengths=int(document["num_wavelengths"]),
            default_conversion=conversion_from_dict(document["default_conversion"]),
        )
        for entry in document["nodes"]:
            model = (
                conversion_from_dict(entry["conversion"])
                if "conversion" in entry
                else None
            )
            network.add_node(entry["id"], conversion=model)
        for entry in document["links"]:
            costs = {int(w): float(c) for w, c in entry["costs"].items()}
            network.add_link(entry["tail"], entry["head"], costs)
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(f"malformed network document: {exc}") from exc
    return network


def path_to_json(path: Semilightpath, indent: int | None = None) -> str:
    """Serialize a semilightpath to a JSON string."""
    document = {
        "total_cost": None if math.isnan(path.total_cost) else path.total_cost,
        "hops": [
            {
                "tail": _check_node_id(h.tail),
                "head": _check_node_id(h.head),
                "wavelength": h.wavelength,
            }
            for h in path.hops
        ],
    }
    return json.dumps(document, indent=indent)


def path_from_json(text: str) -> Semilightpath:
    """Parse a semilightpath from :func:`path_to_json` output."""
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SerializationError(f"invalid JSON: {exc}") from exc
    try:
        hops = tuple(
            Hop(tail=h["tail"], head=h["head"], wavelength=int(h["wavelength"]))
            for h in document["hops"]
        )
        total = document.get("total_cost")
        return Semilightpath(
            hops=hops, total_cost=math.nan if total is None else float(total)
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(f"malformed path document: {exc}") from exc
