"""The differential harness: run scenarios through the oracle matrix.

For every query of a :class:`~repro.verify.scenarios.Scenario`,
:class:`DifferentialHarness` asks each applicable oracle for the optimum and
diffs the answers:

* **reachability** — all oracles agree whether a semilightpath exists;
* **cost** — every returned cost matches within float tolerance
  (:func:`~repro.verify.certificate.costs_close`);
* **hops** — the tie-break-pinned (``exact_hops``) family agrees on the
  exact hop sequence, hence on wavelength and converter assignments too
  (both are determined by the hop sequence);
* **certificate** — every returned path independently revalidates under
  Eq. (1) (:func:`~repro.verify.certificate.check_certificate`);
* **error** — an oracle crashing (any exception other than the expected
  ``NoPathError``, which its adapter maps to ``None``) is itself a finding,
  never a harness abort.

:meth:`DifferentialHarness.fuzz` drives a time-budgeted loop of seeded
random scenarios; per-scenario seeds derive deterministically from the base
seed, so any failure reproduces from ``(base seed, scenario index)`` alone.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable, Hashable, Sequence

from repro.core.semilightpath import Semilightpath
from repro.verify.certificate import check_certificate, costs_close
from repro.verify.oracles import Oracle, default_oracles
from repro.verify.scenarios import Scenario, ScenarioLimits, random_scenario

__all__ = [
    "Disagreement",
    "ScenarioReport",
    "FuzzResult",
    "DifferentialHarness",
]

NodeId = Hashable


@dataclass(frozen=True)
class Disagreement:
    """One verified difference between oracles (or against Eq. (1))."""

    kind: str  # "reachability" | "cost" | "hops" | "certificate" | "error"
    source: NodeId
    target: NodeId
    oracles: tuple[str, ...]
    detail: str

    def summary(self) -> str:
        names = ", ".join(self.oracles)
        return f"[{self.kind}] {self.source!r} -> {self.target!r} ({names}): {self.detail}"


@dataclass
class ScenarioReport:
    """Everything one scenario run produced."""

    scenario: Scenario
    oracle_names: tuple[str, ...]
    queries_checked: int = 0
    disagreements: list[Disagreement] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.disagreements

    def format(self) -> str:
        lines = [
            f"scenario seed={self.scenario.seed!r} {self.scenario.description} "
            f"({self.scenario!r})",
            f"oracles: {', '.join(self.oracle_names)}",
            f"queries checked: {self.queries_checked}",
        ]
        if self.ok:
            lines.append("no disagreements")
        else:
            lines.append(f"{len(self.disagreements)} disagreement(s):")
            lines.extend(f"  {d.summary()}" for d in self.disagreements)
        return "\n".join(lines)


@dataclass
class FuzzResult:
    """Aggregate outcome of one :meth:`DifferentialHarness.fuzz` run."""

    scenarios_run: int
    queries_checked: int
    failures: list[ScenarioReport]
    elapsed: float
    seed: int

    @property
    def ok(self) -> bool:
        return not self.failures


class DifferentialHarness:
    """Diff every applicable oracle's answer on every query.

    Parameters
    ----------
    oracles:
        The matrix to run; defaults to :func:`~repro.verify.oracles.default_oracles`.
        Tests inject perturbed oracles here to validate the harness itself.
    """

    def __init__(self, oracles: Sequence[Oracle] | None = None) -> None:
        self.oracles = tuple(oracles if oracles is not None else default_oracles())
        if not self.oracles:
            raise ValueError("the harness needs at least one oracle")

    # -- one scenario ---------------------------------------------------------

    def run(self, scenario: Scenario) -> ScenarioReport:
        """Run *scenario* through every applicable oracle and diff answers."""
        applicable = [o for o in self.oracles if o.applies(scenario)]
        report = ScenarioReport(
            scenario=scenario, oracle_names=tuple(o.name for o in applicable)
        )
        routes: dict[str, Callable] = {}
        exact = {o.name for o in applicable if o.exact_hops}
        for oracle in applicable:
            try:
                routes[oracle.name] = oracle.prepare(scenario.network)
            except Exception as exc:  # a crashing backend is a finding
                report.disagreements.append(
                    Disagreement(
                        kind="error",
                        source=None,
                        target=None,
                        oracles=(oracle.name,),
                        detail=f"prepare raised {type(exc).__name__}: {exc}",
                    )
                )
        for source, target in scenario.queries:
            report.queries_checked += 1
            answers: dict[str, Semilightpath | None] = {}
            for name, route in routes.items():
                try:
                    answers[name] = route(source, target)
                except Exception as exc:
                    report.disagreements.append(
                        Disagreement(
                            kind="error",
                            source=source,
                            target=target,
                            oracles=(name,),
                            detail=f"route raised {type(exc).__name__}: {exc}",
                        )
                    )
            report.disagreements.extend(
                self._diff_query(scenario, source, target, answers, exact)
            )
        return report

    def _diff_query(
        self,
        scenario: Scenario,
        source: NodeId,
        target: NodeId,
        answers: dict[str, Semilightpath | None],
        exact: set[str],
    ) -> list[Disagreement]:
        found: list[Disagreement] = []

        # Eq. (1) certificates, independent of any cross-oracle agreement.
        for name, path in answers.items():
            if path is None:
                continue
            cert = check_certificate(scenario.network, path, source, target)
            if not cert.ok:
                found.append(
                    Disagreement(
                        kind="certificate",
                        source=source,
                        target=target,
                        oracles=(name,),
                        detail="; ".join(cert.violations),
                    )
                )

        reached = {n for n, p in answers.items() if p is not None}
        unreached = {n for n, p in answers.items() if p is None}
        if reached and unreached:
            found.append(
                Disagreement(
                    kind="reachability",
                    source=source,
                    target=target,
                    oracles=tuple(sorted(reached)) + tuple(sorted(unreached)),
                    detail=(
                        f"found a path: {sorted(reached)}; "
                        f"found none: {sorted(unreached)}"
                    ),
                )
            )
            return found  # cost/hop diffs would only repeat the same split

        if not reached:
            return found  # unanimous NoPath — nothing further to compare

        costs = {name: answers[name].total_cost for name in reached}
        cheapest = min(costs, key=costs.get)
        dearest = max(costs, key=costs.get)
        if not costs_close(costs[cheapest], costs[dearest]):
            found.append(
                Disagreement(
                    kind="cost",
                    source=source,
                    target=target,
                    oracles=tuple(sorted(reached)),
                    detail=", ".join(
                        f"{name}={costs[name]!r}" for name in sorted(costs)
                    ),
                )
            )

        exact_answers = {n: answers[n] for n in reached & exact}
        if len(exact_answers) > 1:
            names = sorted(exact_answers)
            reference_name = names[0]
            reference = exact_answers[reference_name].hops
            for name in names[1:]:
                if exact_answers[name].hops != reference:
                    found.append(
                        Disagreement(
                            kind="hops",
                            source=source,
                            target=target,
                            oracles=(reference_name, name),
                            detail=(
                                f"{reference_name}: {reference}; "
                                f"{name}: {exact_answers[name].hops}"
                            ),
                        )
                    )
        return found

    # -- time-budgeted fuzzing ------------------------------------------------

    def fuzz(
        self,
        seconds: float,
        seed: int = 0,
        limits: ScenarioLimits = ScenarioLimits(),
        max_failures: int = 10,
        on_scenario: Callable[[ScenarioReport], None] | None = None,
    ) -> FuzzResult:
        """Generate-and-diff scenarios until the time budget runs out.

        At least one scenario always runs.  Stops early after
        *max_failures* failing scenarios (each is expensive to shrink; a
        systematic bug does not need hundreds of witnesses).
        """
        if seconds <= 0:
            raise ValueError(f"seconds must be > 0, got {seconds}")
        rng = random.Random(seed)
        deadline = time.monotonic() + seconds
        scenarios_run = 0
        queries_checked = 0
        failures: list[ScenarioReport] = []
        while scenarios_run == 0 or (
            time.monotonic() < deadline and len(failures) < max_failures
        ):
            scenario_seed = rng.randrange(2**63)
            report = self.run(random_scenario(scenario_seed, limits=limits))
            scenarios_run += 1
            queries_checked += report.queries_checked
            if not report.ok:
                failures.append(report)
            if on_scenario is not None:
                on_scenario(report)
        return FuzzResult(
            scenarios_run=scenarios_run,
            queries_checked=queries_checked,
            failures=failures,
            elapsed=seconds - max(0.0, deadline - time.monotonic()),
            seed=seed,
        )
