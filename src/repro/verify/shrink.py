"""Delta-debugging reduction of failing scenarios.

Given a scenario on which some predicate fails (normally "the differential
harness found a disagreement"), :func:`shrink_scenario` greedily removes
structure while the failure persists, cycling through reduction passes
until a fixed point:

1. **queries** — keep a single still-failing query when one suffices;
2. **nodes** — drop each node (with its incident links) in turn;
3. **links** — drop each directed link in turn;
4. **wavelengths** — drop each per-link wavelength entry in turn;
5. **universe** — cut ``k`` down to the largest wavelength still used;
6. **simplify** — try unit link costs, then a flat 0.5-cost converter
   everywhere (cosmetic passes that make the counterexample readable).

Every candidate is validated by re-running the *caller's* predicate — the
shrinker never assumes which oracles disagreed, so it works unchanged for
injected-fault fixtures and for real bugs.  The predicate is called
``O(passes × (n + m + m₁ + q))`` times; scenarios are generator-sized, so
this stays comfortably sub-second per reduction step.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Hashable, Mapping

from repro.core.conversion import ConversionModel, FixedCostConversion
from repro.core.network import WDMNetwork
from repro.verify.scenarios import Scenario

__all__ = ["shrink_scenario", "rebuild_network"]

NodeId = Hashable
FailsFn = Callable[[Scenario], bool]


# -- surgical network edits ---------------------------------------------------


def _rebuild(
    network: WDMNetwork,
    keep_nodes: set[NodeId] | None = None,
    link_costs: Callable[[NodeId, NodeId, Mapping[int, float]], Mapping[int, float] | None]
    | None = None,
    num_wavelengths: int | None = None,
    conversion: ConversionModel | None = None,
) -> WDMNetwork:
    """Copy *network* with nodes/links/costs filtered or transformed.

    ``link_costs`` maps ``(tail, head, costs)`` to the new cost table, or
    ``None`` to drop the link.  ``conversion`` replaces every model
    (explicit ones included) when given.
    """
    clone = WDMNetwork(
        num_wavelengths=(
            num_wavelengths if num_wavelengths is not None else network.num_wavelengths
        ),
        default_conversion=(
            conversion if conversion is not None else network.default_conversion
        ),
    )
    for node in network.nodes():
        if keep_nodes is not None and node not in keep_nodes:
            continue
        explicit = None if conversion is not None else network.explicit_conversion(node)
        clone.add_node(node, explicit)
    for link in network.links():
        if not (clone.has_node(link.tail) and clone.has_node(link.head)):
            continue
        costs: Mapping[int, float] | None = link.costs
        if link_costs is not None:
            costs = link_costs(link.tail, link.head, link.costs)
            if costs is None:
                continue
        clone.add_link(link.tail, link.head, dict(costs))
    return clone


#: Public name for the surgical network-rebuild helper — the multicast
#: shrinker (:mod:`repro.multicast.verify`) shares the same passes.
rebuild_network = _rebuild


def _surviving_queries(
    scenario: Scenario, network: WDMNetwork
) -> tuple[tuple[NodeId, NodeId], ...]:
    return tuple(
        (s, t)
        for s, t in scenario.queries
        if network.has_node(s) and network.has_node(t)
    )


def _candidate(scenario: Scenario, network: WDMNetwork) -> Scenario:
    return replace(
        scenario, network=network, queries=_surviving_queries(scenario, network)
    )


# -- reduction passes ---------------------------------------------------------


def _shrink_queries(scenario: Scenario, fails: FailsFn) -> Scenario:
    if len(scenario.queries) <= 1:
        return scenario
    for query in scenario.queries:
        candidate = scenario.with_queries((query,))
        if fails(candidate):
            return candidate
    # No single query reproduces (e.g. a stateful interaction); drop
    # queries one at a time instead.
    queries = list(scenario.queries)
    index = 0
    while index < len(queries) and len(queries) > 1:
        candidate = scenario.with_queries(
            tuple(queries[:index] + queries[index + 1 :])
        )
        if fails(candidate):
            del queries[index]
            scenario = candidate
        else:
            index += 1
    return scenario


def _shrink_nodes(scenario: Scenario, fails: FailsFn) -> Scenario:
    pinned = {node for query in scenario.queries for node in query}
    for node in scenario.network.nodes():
        if node in pinned:
            continue
        keep = set(scenario.network.nodes()) - {node}
        candidate = _candidate(scenario, _rebuild(scenario.network, keep_nodes=keep))
        if candidate.queries and fails(candidate):
            scenario = candidate
    return scenario


def _shrink_links(scenario: Scenario, fails: FailsFn) -> Scenario:
    for link in list(scenario.network.links()):
        def drop(tail, head, costs, _link=link):
            if (tail, head) == (_link.tail, _link.head):
                return None
            return costs

        candidate = _candidate(scenario, _rebuild(scenario.network, link_costs=drop))
        if candidate.queries and fails(candidate):
            scenario = candidate
    return scenario


def _shrink_wavelength_entries(scenario: Scenario, fails: FailsFn) -> Scenario:
    for link in list(scenario.network.links()):
        for wavelength in sorted(link.costs):
            def drop_entry(tail, head, costs, _link=link, _w=wavelength):
                if (tail, head) == (_link.tail, _link.head):
                    return {w: c for w, c in costs.items() if w != _w}
                return costs

            candidate = _candidate(
                scenario, _rebuild(scenario.network, link_costs=drop_entry)
            )
            if fails(candidate):
                scenario = candidate
    return scenario


def _shrink_universe(scenario: Scenario, fails: FailsFn) -> Scenario:
    used = [w for link in scenario.network.links() for w in link.costs]
    k = max(used) + 1 if used else 1
    if k >= scenario.network.num_wavelengths:
        return scenario
    candidate = _candidate(
        scenario, _rebuild(scenario.network, num_wavelengths=k)
    )
    return candidate if fails(candidate) else scenario


def _simplify(scenario: Scenario, fails: FailsFn) -> Scenario:
    unit = _candidate(
        scenario,
        _rebuild(scenario.network, link_costs=lambda t, h, costs: {w: 1.0 for w in costs}),
    )
    if fails(unit):
        scenario = unit
    flat = _candidate(
        scenario, _rebuild(scenario.network, conversion=FixedCostConversion(0.5))
    )
    if fails(flat):
        scenario = flat
    return scenario


_PASSES = (
    _shrink_queries,
    _shrink_nodes,
    _shrink_links,
    _shrink_wavelength_entries,
    _shrink_universe,
    _simplify,
)


def _size(scenario: Scenario) -> tuple[int, int, int, int, int]:
    network = scenario.network
    return (
        network.num_nodes,
        network.num_links,
        network.total_link_wavelengths,
        network.num_wavelengths,
        len(scenario.queries),
    )


def shrink_scenario(
    scenario: Scenario, fails: FailsFn, max_rounds: int = 8
) -> Scenario:
    """Reduce *scenario* to a (locally) minimal one on which *fails* holds.

    *fails* must return True for *scenario* itself (raises ``ValueError``
    otherwise — shrinking a passing scenario would silently return junk).
    The result is 1-minimal with respect to the passes above: removing any
    single remaining node, link, wavelength entry, or query makes the
    failure disappear.
    """
    if not fails(scenario):
        raise ValueError("refusing to shrink: the scenario does not fail")
    for _ in range(max_rounds):
        before = _size(scenario)
        for reduction_pass in _PASSES:
            scenario = reduction_pass(scenario, fails)
        if _size(scenario) == before:
            break
    if not scenario.description.endswith(" (shrunk)"):
        scenario = replace(scenario, description=scenario.description + " (shrunk)")
    return scenario
