"""Seeded random verification scenarios.

A :class:`Scenario` is everything one differential-harness run needs: a
concrete :class:`~repro.core.network.WDMNetwork` plus an ordered query set.
:func:`random_scenario` draws one from a seed, sweeping the axes the paper
analyzes — topology family (sparse WAN regimes plus the dense one where
CFZ's bound is tight), wavelength availability (full ``Λ``, i.i.d. coins,
``k₀``-bounded subsets including dark links), converter cost model
(full/flat, none, limited-range, adversarial matrix), and link costs.

Determinism is absolute: the same seed yields the same scenario on every
platform, so a failure report is reproducible from its seed alone and the
golden corpus stores scenarios only as a convenience for post-fix replay.

Link costs are drawn from a quarter-integer lattice rather than arbitrary
floats.  All backends accumulate Eq. (1) in (potentially) different
association orders; lattice costs keep genuinely-equal optima bit-equal in
practice and make shrunk counterexamples readable, while still exercising
non-uniform weights.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Any, Hashable

from repro.core.conversion import (
    ConversionModel,
    FixedCostConversion,
    FullConversion,
    MatrixConversion,
    NoConversion,
    RangeLimitedConversion,
)
from repro.core.network import WDMNetwork
from repro.io.serialization import network_from_json, network_to_json
from repro.topology.generators import (
    complete_network,
    degree_bounded_network,
    line_network,
    random_sparse_network,
    ring_network,
)
from repro.topology.wavelength_assign import (
    all_wavelengths,
    bounded_random_wavelengths,
    random_wavelengths,
)

__all__ = [
    "Scenario",
    "ScenarioLimits",
    "network_is_chain_free",
    "random_scenario",
    "scenario_to_dict",
    "scenario_from_dict",
]

NodeId = Hashable

#: JSON schema version for serialized scenarios (see :mod:`repro.verify.corpus`).
SCENARIO_FORMAT = 1

TOPOLOGY_FAMILIES = ("line", "ring", "degree-bounded", "sparse", "complete")
CONVERSION_KINDS = ("full", "none", "zero", "range", "matrix")
AVAILABILITY_KINDS = ("all", "random", "bounded")


@dataclass(frozen=True)
class Scenario:
    """One differential-verification work item.

    ``queries`` are ordered ``(source, target)`` pairs with distinct
    endpoints.  ``seed`` is the generator seed (``None`` for hand-built or
    shrunk scenarios); ``description`` summarizes the drawn axes.
    """

    network: WDMNetwork
    queries: tuple[tuple[NodeId, NodeId], ...]
    seed: int | None = None
    description: str = ""

    def __post_init__(self) -> None:
        for source, target in self.queries:
            if source == target:
                raise ValueError(f"query endpoints must differ: {source!r}")
            if not self.network.has_node(source) or not self.network.has_node(target):
                raise ValueError(f"query off the network: {source!r} -> {target!r}")

    @property
    def chain_free(self) -> bool:
        """True when every conversion model is safe for CFZ comparison."""
        return network_is_chain_free(self.network)

    def with_queries(self, queries: tuple[tuple[NodeId, NodeId], ...]) -> "Scenario":
        return replace(self, queries=queries)

    def with_network(self, network: WDMNetwork) -> "Scenario":
        return replace(self, network=network)

    def __repr__(self) -> str:
        return (
            f"Scenario(n={self.network.num_nodes}, m={self.network.num_links}, "
            f"k={self.network.num_wavelengths}, queries={len(self.queries)}, "
            f"seed={self.seed!r})"
        )


@dataclass(frozen=True)
class ScenarioLimits:
    """Size envelope for :func:`random_scenario` (small by design: the
    harness runs every oracle, including brute force, per query)."""

    min_nodes: int = 3
    max_nodes: int = 9
    max_wavelengths: int = 4
    max_queries: int = 6

    def __post_init__(self) -> None:
        if self.min_nodes < 2:
            raise ValueError("min_nodes must be >= 2")
        if self.max_nodes < self.min_nodes:
            raise ValueError("max_nodes must be >= min_nodes")
        if self.max_wavelengths < 1 or self.max_queries < 1:
            raise ValueError("max_wavelengths and max_queries must be >= 1")


def network_is_chain_free(network: WDMNetwork) -> bool:
    """True when no conversion model can make CFZ's chained conversions
    cheaper (or further-reaching) than Eq. (1)'s single direct conversion.

    Flat-cost full conversion and no-conversion qualify; limited-range and
    arbitrary matrix models do not (see
    :mod:`repro.baseline.wavelength_graph`).  Callable-cost models are
    conservatively treated as unsafe.
    """
    models: list[ConversionModel] = [network.default_conversion]
    for node in network.nodes():
        explicit = network.explicit_conversion(node)
        if explicit is not None:
            models.append(explicit)
    for model in models:
        if isinstance(model, NoConversion):
            continue
        if isinstance(model, FullConversion) and model._fn is None:
            continue  # flat cost: a 2-chain costs 2c >= c, support is total
        return False
    return True


def _lattice_cost(rng: random.Random) -> float:
    """A cost from the quarter-integer lattice ``{0.25, 0.5, ..., 4.0}``."""
    return rng.randint(1, 16) * 0.25


def _draw_conversion(
    rng: random.Random, k: int
) -> tuple[str, ConversionModel]:
    kind = rng.choice(CONVERSION_KINDS)
    if kind == "none":
        return kind, NoConversion()
    if kind == "zero":
        return kind, FixedCostConversion(0.0)
    if kind == "range":
        limit = rng.randint(0, max(0, k - 1))
        return kind, RangeLimitedConversion(limit, cost_per_step=rng.randint(0, 4) * 0.25)
    if kind == "matrix":
        table: dict[tuple[int, int], float] = {}
        for p in range(k):
            for q in range(k):
                if p != q and rng.random() < 0.6:
                    table[(p, q)] = _lattice_cost(rng)
        return kind, MatrixConversion(table)
    return kind, FixedCostConversion(_lattice_cost(rng))


def _draw_availability(rng: random.Random, k: int):
    kind = rng.choice(AVAILABILITY_KINDS)
    if kind == "all":
        return kind, all_wavelengths(k)
    if kind == "bounded":
        k0 = rng.randint(1, k)
        return kind, bounded_random_wavelengths(k, k0=k0)
    availability = rng.choice([0.3, 0.5, 0.8])
    # min_size=0 permits dark links, exercising the NoPathError agreement
    # between all backends; min_size=1 keeps most scenarios routable.
    min_size = rng.choice([0, 1])
    return kind, random_wavelengths(k, availability=availability, min_size=min_size)


def _draw_topology(rng: random.Random, family: str, n: int, k: int, **kw) -> WDMNetwork:
    if family == "line":
        return line_network(n, k, **kw)
    if family == "ring":
        return ring_network(n, k, **kw)
    if family == "degree-bounded":
        return degree_bounded_network(n, k, max_degree=rng.choice([2, 3, 4]), **kw)
    if family == "sparse":
        return random_sparse_network(n, k, average_degree=rng.choice([2.0, 3.0]), **kw)
    if family == "complete":
        return complete_network(min(n, 5), k, **kw)
    raise ValueError(f"unknown topology family {family!r}")


def random_scenario(
    seed: int, limits: ScenarioLimits = ScenarioLimits()
) -> Scenario:
    """Draw one reproducible scenario from *seed*.

    All randomness flows through one :class:`random.Random`; node ids are
    ints, so every generated scenario serializes to the corpus format.
    """
    rng = random.Random(seed)
    n = rng.randint(limits.min_nodes, limits.max_nodes)
    k = rng.randint(1, limits.max_wavelengths)
    family = rng.choice(TOPOLOGY_FAMILIES)
    conv_kind, conversion = _draw_conversion(rng, k)
    avail_kind, policy = _draw_availability(rng, k)

    def cost_policy(cost_rng: random.Random, tail, head, wavelength) -> float:
        return _lattice_cost(cost_rng)

    network = _draw_topology(
        rng,
        family,
        n,
        k,
        wavelength_policy=policy,
        cost_policy=cost_policy,
        conversion=conversion,
        seed=rng.randrange(2**31),
    )
    nodes = network.nodes()
    pairs = [(s, t) for s in nodes for t in nodes if s != t]
    rng.shuffle(pairs)
    queries = tuple(pairs[: min(limits.max_queries, len(pairs))])
    description = (
        f"{family} n={network.num_nodes} k={k} "
        f"availability={avail_kind} conversion={conv_kind}"
    )
    return Scenario(
        network=network, queries=queries, seed=seed, description=description
    )


# -- serialization (the corpus format) ---------------------------------------


def scenario_to_dict(scenario: Scenario) -> dict[str, Any]:
    """Serialize to a JSON-compatible dict (see :mod:`repro.verify.corpus`)."""
    import json

    return {
        "format": SCENARIO_FORMAT,
        "seed": scenario.seed,
        "description": scenario.description,
        "network": json.loads(network_to_json(scenario.network)),
        "queries": [[s, t] for s, t in scenario.queries],
    }


def scenario_from_dict(document: dict[str, Any]) -> Scenario:
    """Inverse of :func:`scenario_to_dict`."""
    import json

    if document.get("format") != SCENARIO_FORMAT:
        raise ValueError(
            f"unsupported scenario format: {document.get('format')!r}"
        )
    network = network_from_json(json.dumps(document["network"]))
    queries = tuple((s, t) for s, t in document["queries"])
    return Scenario(
        network=network,
        queries=queries,
        seed=document.get("seed"),
        description=document.get("description", ""),
    )
