"""Independent Eq. (1) certificate checking.

A routed :class:`~repro.core.semilightpath.Semilightpath` is a *certificate*:
its hop/wavelength sequence plus implied converter settings determine the
cost

```
C(P) = Σᵢ w(eᵢ, λᵢ)  +  Σᵢ c_{head(eᵢ)}(λᵢ, λᵢ₊₁)
```

from the network definition alone.  :func:`check_certificate` revalidates a
returned path against that definition without trusting any router internals
— it reads raw link cost tables and conversion models directly, never
:meth:`Semilightpath.evaluate_cost` or router code, so a bug shared by a
router and the path class cannot hide.

Checks performed:

* **endpoints** — the walk starts at the queried source, ends at the target;
* **continuity** — consecutive hops chain head-to-tail;
* **feasibility** — every hop's link exists and offers the hop's wavelength
  (``λᵢ ∈ Λ(eᵢ)``), and every wavelength switch has finite conversion cost
  at the intermediate node;
* **cost** — the independently recomputed ``C(P)`` matches the router's
  claimed ``total_cost`` within float tolerance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Hashable

from repro.core.semilightpath import Semilightpath

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.network import WDMNetwork

__all__ = ["CertificateReport", "check_certificate"]

NodeId = Hashable

#: Relative/absolute tolerance for cost comparisons across backends.  Each
#: backend may associate the Eq. (1) sum differently; anything beyond a few
#: ulps indicates a real disagreement, not float noise.
COST_RTOL = 1e-9
COST_ATOL = 1e-9


@dataclass(frozen=True)
class CertificateReport:
    """Outcome of one certificate check."""

    ok: bool
    recomputed_cost: float
    violations: tuple[str, ...] = field(default_factory=tuple)

    def __bool__(self) -> bool:
        return self.ok


def costs_close(a: float, b: float) -> bool:
    """Cross-backend cost equality under the shared tolerance."""
    return math.isclose(a, b, rel_tol=COST_RTOL, abs_tol=COST_ATOL)


def check_certificate(
    network: "WDMNetwork",
    path: Semilightpath,
    source: NodeId | None = None,
    target: NodeId | None = None,
) -> CertificateReport:
    """Revalidate *path* against *network* from first principles.

    When *source*/*target* are given, the walk's endpoints are checked
    against them.  Never raises on a bad certificate — every problem is
    collected into :attr:`CertificateReport.violations` so the harness can
    report all of them at once.
    """
    violations: list[str] = []
    hops = path.hops
    if source is not None and hops and hops[0].tail != source:
        violations.append(f"walk starts at {hops[0].tail!r}, queried {source!r}")
    if target is not None and hops and hops[-1].head != target:
        violations.append(f"walk ends at {hops[-1].head!r}, queried {target!r}")

    total = 0.0
    for i, hop in enumerate(hops):
        if i and hops[i - 1].head != hop.tail:
            violations.append(
                f"hop {i - 1} ends at {hops[i - 1].head!r} but hop {i} "
                f"starts at {hop.tail!r}"
            )
        if not network.has_link(hop.tail, hop.head):
            violations.append(f"hop {i}: no link {hop.tail!r} -> {hop.head!r}")
            continue
        link_costs = network.link(hop.tail, hop.head).costs
        weight = link_costs.get(hop.wavelength)
        if weight is None:
            violations.append(
                f"hop {i}: wavelength {hop.wavelength} not in Λ(e) of "
                f"{hop.tail!r} -> {hop.head!r}"
            )
            continue
        total += weight

    for i in range(len(hops) - 1):
        a, b = hops[i], hops[i + 1]
        if not network.has_node(a.head):
            continue  # already reported above via the missing link
        conv = network.conversion(a.head).cost(a.wavelength, b.wavelength)
        if math.isinf(conv):
            violations.append(
                f"node {a.head!r} cannot convert "
                f"λ{a.wavelength + 1} -> λ{b.wavelength + 1}"
            )
            continue
        total += conv

    if not violations:
        claimed = path.total_cost
        if math.isnan(claimed):
            violations.append("claimed total_cost is NaN")
        elif not costs_close(total, claimed):
            violations.append(
                f"claimed cost {claimed!r} != recomputed Eq. (1) cost {total!r}"
            )
    return CertificateReport(
        ok=not violations, recomputed_cost=total, violations=tuple(violations)
    )
