"""Independent Eq. (1) certificate checking.

A routed :class:`~repro.core.semilightpath.Semilightpath` is a *certificate*:
its hop/wavelength sequence plus implied converter settings determine the
cost

```
C(P) = Σᵢ w(eᵢ, λᵢ)  +  Σᵢ c_{head(eᵢ)}(λᵢ, λᵢ₊₁)
```

from the network definition alone.  :func:`check_certificate` revalidates a
returned path against that definition without trusting any router internals
— it reads raw link cost tables and conversion models directly, never
:meth:`Semilightpath.evaluate_cost` or router code, so a bug shared by a
router and the path class cannot hide.

Checks performed:

* **endpoints** — the walk starts at the queried source, ends at the target;
* **continuity** — consecutive hops chain head-to-tail;
* **feasibility** — every hop's link exists and offers the hop's wavelength
  (``λᵢ ∈ Λ(eᵢ)``), and every wavelength switch has finite conversion cost
  at the intermediate node;
* **cost** — the independently recomputed ``C(P)`` matches the router's
  claimed ``total_cost`` within float tolerance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Hashable

from repro.core.semilightpath import Semilightpath

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.network import WDMNetwork
    from repro.multicast.hierarchy import LightHierarchy
    from repro.multicast.splitters import SplitterMap

__all__ = [
    "CertificateReport",
    "check_certificate",
    "check_hierarchy_certificate",
]

NodeId = Hashable

#: Relative/absolute tolerance for cost comparisons across backends.  Each
#: backend may associate the Eq. (1) sum differently; anything beyond a few
#: ulps indicates a real disagreement, not float noise.
COST_RTOL = 1e-9
COST_ATOL = 1e-9


@dataclass(frozen=True)
class CertificateReport:
    """Outcome of one certificate check."""

    ok: bool
    recomputed_cost: float
    violations: tuple[str, ...] = field(default_factory=tuple)

    def __bool__(self) -> bool:
        return self.ok


def costs_close(a: float, b: float) -> bool:
    """Cross-backend cost equality under the shared tolerance."""
    return math.isclose(a, b, rel_tol=COST_RTOL, abs_tol=COST_ATOL)


def check_certificate(
    network: "WDMNetwork",
    path: Semilightpath,
    source: NodeId | None = None,
    target: NodeId | None = None,
) -> CertificateReport:
    """Revalidate *path* against *network* from first principles.

    When *source*/*target* are given, the walk's endpoints are checked
    against them.  Never raises on a bad certificate — every problem is
    collected into :attr:`CertificateReport.violations` so the harness can
    report all of them at once.
    """
    violations: list[str] = []
    hops = path.hops
    if source is not None and hops and hops[0].tail != source:
        violations.append(f"walk starts at {hops[0].tail!r}, queried {source!r}")
    if target is not None and hops and hops[-1].head != target:
        violations.append(f"walk ends at {hops[-1].head!r}, queried {target!r}")

    total = 0.0
    for i, hop in enumerate(hops):
        if i and hops[i - 1].head != hop.tail:
            violations.append(
                f"hop {i - 1} ends at {hops[i - 1].head!r} but hop {i} "
                f"starts at {hop.tail!r}"
            )
        if not network.has_link(hop.tail, hop.head):
            violations.append(f"hop {i}: no link {hop.tail!r} -> {hop.head!r}")
            continue
        link_costs = network.link(hop.tail, hop.head).costs
        weight = link_costs.get(hop.wavelength)
        if weight is None:
            violations.append(
                f"hop {i}: wavelength {hop.wavelength} not in Λ(e) of "
                f"{hop.tail!r} -> {hop.head!r}"
            )
            continue
        total += weight

    for i in range(len(hops) - 1):
        a, b = hops[i], hops[i + 1]
        if not network.has_node(a.head):
            continue  # already reported above via the missing link
        conv = network.conversion(a.head).cost(a.wavelength, b.wavelength)
        if math.isinf(conv):
            violations.append(
                f"node {a.head!r} cannot convert "
                f"λ{a.wavelength + 1} -> λ{b.wavelength + 1}"
            )
            continue
        total += conv

    if not violations:
        claimed = path.total_cost
        if math.isnan(claimed):
            violations.append("claimed total_cost is NaN")
        elif not costs_close(total, claimed):
            violations.append(
                f"claimed cost {claimed!r} != recomputed Eq. (1) cost {total!r}"
            )
    return CertificateReport(
        ok=not violations, recomputed_cost=total, violations=tuple(violations)
    )


def check_hierarchy_certificate(
    network: "WDMNetwork",
    hierarchy: "LightHierarchy",
    splitters: "SplitterMap | None" = None,
    source: NodeId | None = None,
    members=None,
) -> CertificateReport:
    """Revalidate a light-hierarchy against *network* from first principles.

    The multicast analog of :func:`check_certificate`: *hierarchy* is read
    purely as data (per-member hop sequences plus a claimed total cost) —
    none of its derived methods are trusted.  The checker independently

    * re-derives the **channel parent relation** from the member paths and
      rejects any channel fed by two different predecessors or reachable
      only through a parent cycle (a channel carries one signal: the
      hierarchy must be a tree in channel space);
    * checks **feasibility** of every channel (link exists, ``λ ∈ Λ(e)``)
      and of every parent→child conversion at the child's tail node;
    * enforces the **splitter constraints**: a signal driving two or more
      child channels needs a multicast-capable (``can_branch``) head, and
      a signal that both delivers to a member and continues needs at
      least tap-and-continue capability.  *splitters* is duck-typed
      (``can_branch(node)`` / ``can_tap_and_continue(node)``); ``None``
      means every node is fully capable.  The source transmitter's
      fan-out is never constrained (electronic replication);
    * recomputes the **Eq. (1) hierarchy cost** — every channel's weight
      once, plus per-channel conversion from its parent's wavelength —
      and compares it with the claimed ``total_cost``.

    When *source*/*members* are given, path endpoints and member coverage
    are checked against them.  Never raises on a bad certificate.
    """
    violations: list[str] = []
    paths = dict(hierarchy.paths)
    if source is None:
        source = hierarchy.source
    if members is not None and set(paths) != set(members):
        violations.append(
            f"hierarchy covers {sorted(paths, key=repr)!r}, "
            f"queried members {sorted(members, key=repr)!r}"
        )

    # Per-member walk checks (endpoints + continuity), trusting nothing.
    for member in sorted(paths, key=repr):
        hops = paths[member].hops
        if not hops:
            violations.append(f"empty path to member {member!r}")
            continue
        if hops[0].tail != source:
            violations.append(
                f"path to {member!r} starts at {hops[0].tail!r}, "
                f"queried source {source!r}"
            )
        if hops[-1].head != member:
            violations.append(
                f"path to {member!r} ends at {hops[-1].head!r}"
            )
        for i in range(len(hops) - 1):
            if hops[i].head != hops[i + 1].tail:
                violations.append(
                    f"path to {member!r}: hop {i} ends at {hops[i].head!r} "
                    f"but hop {i + 1} starts at {hops[i + 1].tail!r}"
                )

    # Independent parent derivation over channel keys (tail, head, λ).
    parents: dict[tuple, tuple | None] = {}
    delivers: set[tuple] = set()
    for member in sorted(paths, key=repr):
        previous = None
        for hop in paths[member].hops:
            channel = (hop.tail, hop.head, hop.wavelength)
            if channel in parents:
                if parents[channel] != previous:
                    violations.append(
                        f"channel {channel!r} is driven by both "
                        f"{parents[channel]!r} and {previous!r} "
                        f"(one channel, one signal)"
                    )
            else:
                parents[channel] = previous
            previous = channel
        if previous is not None:
            delivers.add(previous)

    grounded: set[tuple] = set()
    frontier = [c for c, p in parents.items() if p is None]
    while frontier:
        grounded.update(frontier)
        frontier = [
            c for c, p in parents.items() if c not in grounded and p in grounded
        ]
    for channel in sorted(set(parents) - grounded, key=repr):
        violations.append(
            f"channel {channel!r} is not grounded at the source "
            f"(parent cycle or dangling parent)"
        )

    # Feasibility + Eq. (1) cost from the raw tables.
    total = 0.0
    for channel in sorted(parents, key=repr):
        tail, head, wavelength = channel
        if not network.has_link(tail, head):
            violations.append(f"no link {tail!r} -> {head!r}")
            continue
        weight = network.link(tail, head).costs.get(wavelength)
        if weight is None:
            violations.append(
                f"wavelength {wavelength} not in Λ(e) of {tail!r} -> {head!r}"
            )
            continue
        total += weight
        parent = parents[channel]
        if parent is not None and network.has_node(tail):
            conv = network.conversion(tail).cost(parent[2], wavelength)
            if math.isinf(conv):
                violations.append(
                    f"node {tail!r} cannot convert "
                    f"λ{parent[2] + 1} -> λ{wavelength + 1}"
                )
                continue
            total += conv

    # Splitter constraints per channel signal.
    children: dict[tuple, int] = {}
    for channel, parent in parents.items():
        if parent is not None:
            children[parent] = children.get(parent, 0) + 1
    for channel in sorted(parents, key=repr):
        head = channel[1]
        branches = children.get(channel, 0)
        if branches >= 2 and not (
            splitters is None or splitters.can_branch(head)
        ):
            violations.append(
                f"channel {channel!r} drives {branches} branches but "
                f"{head!r} is not multicast-capable"
            )
        elif (
            branches >= 1
            and channel in delivers
            and not (splitters is None or splitters.can_tap_and_continue(head))
        ):
            violations.append(
                f"channel {channel!r} delivers to {head!r} and continues, "
                f"but {head!r} cannot tap-and-continue"
            )

    if not violations:
        claimed = hierarchy.total_cost
        if math.isnan(claimed):
            violations.append("claimed total_cost is NaN")
        elif not costs_close(total, claimed):
            violations.append(
                f"claimed cost {claimed!r} != recomputed Eq. (1) "
                f"hierarchy cost {total!r}"
            )
    return CertificateReport(
        ok=not violations, recomputed_cost=total, violations=tuple(violations)
    )
