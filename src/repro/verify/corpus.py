"""The golden corpus: shrunk counterexamples, persisted and replayed.

Every failure the fuzzer finds is shrunk and written here as one JSON
document — the scenario itself plus the disagreement summaries observed at
capture time.  CI replays the corpus through the current oracle matrix on
every run (``repro verify`` and ``tests/verify/test_corpus.py``), so a
fixed bug stays fixed: the minimal scenario that once exposed it is checked
forever after.

File naming is content-addressed (``case-<sha1 prefix>.json`` over the
canonical scenario document), so re-finding the same minimal counterexample
is idempotent and corpus diffs are meaningful in review.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Iterable

from repro.verify.scenarios import Scenario, scenario_from_dict, scenario_to_dict

if TYPE_CHECKING:  # pragma: no cover
    from repro.verify.harness import DifferentialHarness, ScenarioReport

__all__ = [
    "CorpusCase",
    "case_filename",
    "save_case",
    "load_case",
    "iter_corpus",
    "replay_corpus",
]

#: Default corpus location, relative to the repository root (the corpus is
#: test data, versioned next to the suite that replays it).
DEFAULT_CORPUS_DIR = Path("tests") / "verify" / "corpus"


@dataclass(frozen=True)
class CorpusCase:
    """One persisted counterexample."""

    scenario: Scenario
    disagreements: tuple[str, ...]
    path: Path | None = None

    @property
    def name(self) -> str:
        return self.path.name if self.path is not None else "<unsaved>"


def _canonical(scenario: Scenario) -> str:
    return json.dumps(scenario_to_dict(scenario), sort_keys=True)


def case_filename(scenario: Scenario) -> str:
    """Content-addressed filename for *scenario*."""
    digest = hashlib.sha1(_canonical(scenario).encode()).hexdigest()[:12]
    return f"case-{digest}.json"


def save_case(
    directory: Path | str,
    scenario: Scenario,
    disagreements: Iterable[str] = (),
) -> Path:
    """Write *scenario* (plus capture-time disagreement summaries) to
    *directory*, creating it if needed.  Returns the file path; saving the
    same scenario twice overwrites the same file."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    document = scenario_to_dict(scenario)
    document["disagreements"] = list(disagreements)
    path = directory / case_filename(scenario)
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return path


def load_case(path: Path | str) -> CorpusCase:
    """Parse one corpus file."""
    path = Path(path)
    document = json.loads(path.read_text())
    return CorpusCase(
        scenario=scenario_from_dict(document),
        disagreements=tuple(document.get("disagreements", ())),
        path=path,
    )


def iter_corpus(directory: Path | str) -> list[CorpusCase]:
    """Load every case in *directory*, sorted by filename.

    A missing directory is an empty corpus, not an error.
    """
    directory = Path(directory)
    if not directory.is_dir():
        return []
    return [load_case(path) for path in sorted(directory.glob("case-*.json"))]


def replay_corpus(
    directory: Path | str, harness: "DifferentialHarness"
) -> list[tuple[CorpusCase, "ScenarioReport"]]:
    """Run every corpus case through *harness*; returns (case, report) pairs."""
    return [(case, harness.run(case.scenario)) for case in iter_corpus(directory)]
