"""Differential verification: multi-oracle fuzzing for the routing stack.

The paper's structure is itself a correctness oracle: Theorem 1's layered
graph, Corollary 1's tree sweep, the CFZ wavelength-graph baseline, the
distributed embedding, and plain state-space relaxation all compute the
*same* optimum, and Eq. (1) makes every answer a checkable certificate.
This package turns that redundancy into an always-on differential harness:

* :mod:`repro.verify.scenarios` — seeded random scenarios
  (topology × wavelength availability × converter cost model × query set);
* :mod:`repro.verify.certificate` — an independent Eq. (1) cost/feasibility
  checker that trusts no router internals;
* :mod:`repro.verify.oracles` — the oracle matrix (every router backend
  wrapped behind one uniform interface);
* :mod:`repro.verify.harness` — run a scenario through every applicable
  oracle pair and diff costs, hop sequences, and assignments;
* :mod:`repro.verify.shrink` — delta-debugging reduction of a failing
  scenario to a minimal counterexample;
* :mod:`repro.verify.corpus` — the golden corpus of shrunk failures that
  CI replays.

CLI entry points: ``repro verify`` (corpus replay + seeded sweep) and
``repro fuzz --seconds N --seed S`` (time-budgeted fuzzing).
"""

from repro.verify.certificate import CertificateReport, check_certificate
from repro.verify.corpus import (
    CorpusCase,
    iter_corpus,
    load_case,
    replay_corpus,
    save_case,
)
from repro.verify.harness import (
    Disagreement,
    DifferentialHarness,
    FuzzResult,
    ScenarioReport,
)
from repro.verify.oracles import Oracle, default_oracles
from repro.verify.scenarios import (
    Scenario,
    network_is_chain_free,
    random_scenario,
    scenario_from_dict,
    scenario_to_dict,
)
from repro.verify.shrink import shrink_scenario

__all__ = [
    "CertificateReport",
    "check_certificate",
    "CorpusCase",
    "iter_corpus",
    "load_case",
    "replay_corpus",
    "save_case",
    "Disagreement",
    "DifferentialHarness",
    "FuzzResult",
    "ScenarioReport",
    "Oracle",
    "default_oracles",
    "Scenario",
    "network_is_chain_free",
    "random_scenario",
    "scenario_from_dict",
    "scenario_to_dict",
    "shrink_scenario",
]
