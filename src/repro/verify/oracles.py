"""The oracle matrix: every routing backend behind one uniform interface.

An :class:`Oracle` wraps one backend as ``prepare(network) -> route`` where
``route(source, target)`` returns the optimal
:class:`~repro.core.semilightpath.Semilightpath` or ``None`` when no
semilightpath exists.  :func:`default_oracles` assembles the full matrix:

====================================  =========  ==========================
oracle                                hop-exact  applicability
====================================  =========  ==========================
``liang:{overlay,rebuild}:<kernel>``  yes        always (8 combinations)
``liang:bucket``                      yes        lattice link costs
``liang:restricted``                  yes        restricted regime (small k₀)
``liang:all-pairs:serial``            yes        always
``liang:all-pairs:parallel``          yes        always (2-process pool)
``liang:delta:churn``                 yes        always
``cache:incremental``                 yes        always
``batch:lazy-forest``                 yes        always
``liang:server``                      yes        opt-in (``--server``)
``cfz:{dense,heap}``                  no         chain-free conversion only
``brute-force``                       no         small state spaces
``distributed:bellman-ford``          no         small state spaces
====================================  =========  ==========================

``liang:bucket`` serves single-pair overlay queries through the Dial
bucket-queue kernel; its gate (quarter-lattice link costs) is an
optimization, not a correctness requirement — the kernel transparently
falls back to ``flat`` when the overlay weights leave the lattice, and
stays hop-exact either way.  ``liang:restricted`` forces the Theorem 4
fast path (fused ``G'`` builder + terminal-free trees) and serves pairs
out of per-source trees; it joins only where
:func:`~repro.shortestpath.restricted.restricted_applicable` would
auto-select it.  ``batch:lazy-forest`` serves from
:class:`~repro.core.batch.BatchRouter`'s lazily-decoded parent forests —
the coalesced-batch serving path.

``liang:delta:churn`` and ``cache:incremental`` answer from state that
survived a *net-zero* fail/recover churn through the incremental
maintenance layer (:class:`~repro.shortestpath.DeltaOverlay`, warm-run
repair) — a patched overlay must be indistinguishable from a pristine
one, so any masking residue surfaces as a hop disagreement.

**Hop-exact** oracles share the deterministic tie-break (equal-distance
auxiliary nodes settle in ascending id order) and must agree on the exact
hop sequence; the rest compute the same optimum by structurally different
means and are compared on cost and certificate validity only.  CFZ joins
the matrix only for chain-free conversion models — for others its
wavelength graph legitimately prices chained conversions Eq. (1) does not
(see :mod:`repro.baseline.wavelength_graph`), which would be a modeling
difference, not a bug.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Hashable

from repro.baseline.brute_force import brute_force_route
from repro.baseline.cfz import CFZRouter
from repro.core.routing import LiangShenRouter
from repro.core.semilightpath import Semilightpath
from repro.distributed.semilightpath_dist import DistributedSemilightpathRouter
from repro.exceptions import DeltaParityError, NoPathError
from repro.verify.scenarios import Scenario

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.network import WDMNetwork

__all__ = [
    "Oracle",
    "RouteFn",
    "ServerOracleManager",
    "default_oracles",
    "server_oracle",
    "KERNELS",
]

NodeId = Hashable
RouteFn = Callable[[NodeId, NodeId], "Semilightpath | None"]

KERNELS = ("flat", "binary", "pairing", "fibonacci")

#: ``n * k`` ceiling for the slow exact oracles (brute force enumerates
#: ``(node, wavelength)`` states; the synchronous simulator rounds scale
#: with ``kn``).  Generated scenarios always fit; corpus imports might not.
SMALL_STATE_LIMIT = 128


@dataclass(frozen=True)
class Oracle:
    """One backend of the differential matrix.

    ``prepare`` may do arbitrary per-network work (build overlays, run the
    whole all-pairs sweep) — the harness calls it once per scenario and the
    returned closure once per query.  ``exact_hops`` marks membership in
    the tie-break-pinned family that must agree hop-for-hop.
    """

    name: str
    prepare: Callable[["WDMNetwork"], RouteFn]
    exact_hops: bool = False

    def applies(self, scenario: Scenario) -> bool:
        """Whether this oracle participates for *scenario* (see module doc)."""
        network = scenario.network
        if self.name.startswith("cfz:"):
            return scenario.chain_free
        if self.name in ("brute-force", "distributed:bellman-ford"):
            return network.num_nodes * network.num_wavelengths <= SMALL_STATE_LIMIT
        if self.name == "liang:bucket":
            return _lattice_link_costs(network)
        if self.name == "liang:restricted":
            from repro.shortestpath.restricted import restricted_applicable

            return restricted_applicable(network)
        return True

    def __repr__(self) -> str:
        return f"Oracle({self.name!r})"


def _lattice_link_costs(network: "WDMNetwork") -> bool:
    """True when every link cost sits on the scaled-integer lattice.

    Mirrors the overlay-level detection in
    :func:`repro.shortestpath.structures._detect_lattice_scale` but probes
    only the physical link costs — cheap, and sufficient for the generated
    scenario corpus whose costs (links *and* conversions) are all
    quarter-integers.  A false positive is harmless: the bucket kernel
    re-detects on the actual overlay weights and falls back to ``flat``.
    """
    from repro.shortestpath.structures import MAX_LATTICE_SCALE

    return all(
        (cost * MAX_LATTICE_SCALE).is_integer()
        for link in network.links()
        for cost in link.costs.values()
    )


def _none_on_nopath(route: Callable[[NodeId, NodeId], Semilightpath]) -> RouteFn:
    def wrapped(source: NodeId, target: NodeId) -> Semilightpath | None:
        try:
            return route(source, target)
        except NoPathError:
            return None

    return wrapped


def _liang_single(heap: str, overlay: bool) -> Callable[["WDMNetwork"], RouteFn]:
    def prepare(network: "WDMNetwork") -> RouteFn:
        router = LiangShenRouter(network, heap=heap, overlay=overlay)
        return _none_on_nopath(lambda s, t: router.route(s, t).path)

    return prepare


def _liang_all_pairs(workers: int | None) -> Callable[["WDMNetwork"], RouteFn]:
    def prepare(network: "WDMNetwork") -> RouteFn:
        result = LiangShenRouter(network).route_all_pairs(workers=workers)

        def route(source: NodeId, target: NodeId) -> Semilightpath | None:
            return result.paths.get((source, target))

        return route

    return prepare


def _cfz(engine: str) -> Callable[["WDMNetwork"], RouteFn]:
    def prepare(network: "WDMNetwork") -> RouteFn:
        router = CFZRouter(network, engine=engine)
        return _none_on_nopath(lambda s, t: router.route(s, t).path)

    return prepare


def _churn_resources(network: "WDMNetwork"):
    """A deterministic net-zero churn sample: channels, links, a converter.

    Every third ``(link, λ)`` channel (capped), every fifth link, and the
    lowest-id node — each failed and later recovered, so the overlay must
    end exactly where it started.
    """
    channels = [
        (link.tail, link.head, w)
        for link in network.links()
        for w in sorted(link.costs)
    ]
    links = sorted({(t, h) for t, h, _ in channels})
    nodes = sorted(network.nodes(), key=repr)
    return channels[::3][:12], links[::5][:4], nodes[:1]


def _liang_delta_churn(network: "WDMNetwork") -> RouteFn:
    """Route on an overlay that survived a net-zero fail/recover churn.

    Builds the all-pairs overlay once, masks a deterministic sample of
    channels/links/converters through :class:`DeltaOverlay`, recovers
    every one of them, and only then hands out the route closure.  If the
    in-place patching is sound this is indistinguishable from a pristine
    overlay — any residue shows up as a hop-for-hop disagreement, and a
    leftover mask is reported eagerly as :class:`DeltaParityError`.
    """
    from repro.shortestpath import DeltaOverlay

    router = LiangShenRouter(network, heap="flat")
    delta = DeltaOverlay(router.all_pairs_graph())
    channels, links, converters = _churn_resources(network)
    for tail, head, w in channels:
        delta.fail_channel(tail, head, w)
    for tail, head in links:
        delta.fail_link(tail, head)
    for node in converters:
        delta.fail_converter(node)
    for node in converters:
        delta.recover_converter(node)
    for tail, head in links:
        delta.recover_link(tail, head)
    for tail, head, w in channels:
        delta.recover_channel(tail, head, w)
    if delta.masked_edges:
        raise DeltaParityError(
            f"net-zero churn left {delta.masked_edges} edge(s) masked"
        )
    return _none_on_nopath(lambda s, t: router.route_via_all_pairs(s, t).path)


def _cache_incremental(network: "WDMNetwork") -> RouteFn:
    """Route through an incremental epoch cache after a net-zero churn.

    Exercises the whole patched-serving stack — queued delta ops, warm
    Dijkstra runs repaired in place, recovery batches — and ends on a
    state equivalent to the pristine network, so the cache must agree
    hop-for-hop with every other oracle.
    """
    from repro.service.cache import EpochRouterCache

    cache = EpochRouterCache(lambda: network, heap="flat", incremental=True)
    nodes = sorted(network.nodes(), key=repr)
    probe = _none_on_nopath(cache.route)

    def touch() -> None:
        # Force a refresh so the queued ops are patch-applied now, not
        # lazily bundled with the recoveries into one no-op batch.
        if len(nodes) >= 2:
            probe(nodes[0], nodes[1])

    channels, links, converters = _churn_resources(network)
    touch()
    for tail, head, w in channels:
        cache.mark_channel_degraded(tail, head, w)
    for tail, head in links:
        cache.mark_channel_degraded(tail, head, None)
    for node in converters:
        cache.mark_converter_failed(node)
    touch()
    for node in converters:
        cache.mark_converter_recovered(node)
    for tail, head in links:
        cache.mark_channel_recovered(tail, head, None)
    for tail, head, w in channels:
        cache.mark_channel_recovered(tail, head, w)
    touch()
    return probe


def _liang_bucket(network: "WDMNetwork") -> RouteFn:
    """Single-pair overlay queries through the Dial bucket-queue kernel."""
    router = LiangShenRouter(network, heap="bucket")
    return _none_on_nopath(lambda s, t: router.route(s, t).path)


def _liang_restricted(network: "WDMNetwork") -> RouteFn:
    """Theorem 4 forced on: fused ``G'`` builder + terminal-free trees.

    Serves pairs out of per-source :meth:`route_tree` results (cached per
    prepared network) so the tree path — not just the builder — is what
    gets differentially checked.
    """
    router = LiangShenRouter(network, restricted=True)
    trees: dict[NodeId, dict[NodeId, Semilightpath]] = {}

    def route(source: NodeId, target: NodeId) -> Semilightpath | None:
        tree = trees.get(source)
        if tree is None:
            tree = trees[source] = router.route_tree(source)
        return tree.get(target)

    return route


def _batch_lazy_forest(network: "WDMNetwork") -> RouteFn:
    """Serve from :class:`BatchRouter`'s lazily-decoded parent forests."""
    from repro.core.batch import BatchRouter

    router = BatchRouter(network)
    return _none_on_nopath(lambda s, t: router.route(s, t))


class ServerOracleManager:
    """Serve scenarios through a live router server (``liang:server``).

    ``prepare`` starts a fresh UDS :class:`~repro.server.RouterServer`
    for each scenario network (stopping the previous one), optionally
    drives the same deterministic *net-zero* fail/recover churn as
    ``liang:delta:churn`` — but through wire-level ``PATCH`` frames, so
    the shared-memory write-through path is what gets checked — and
    hands out the client's route closure.  The returned paths must be
    byte-identical to every in-process hop-exact oracle.

    The manager outlives the harness run; the caller owns ``close()``
    (the CLI wraps fuzz/verify in ``try/finally``) and should assert
    :func:`repro.shortestpath.shared.leaked_segments` is empty after.
    """

    def __init__(self, workers: int = 1, churn: bool = True) -> None:
        self._workers = workers
        self._churn = churn
        self._server = None
        self._client = None
        #: Scenario servers started so far (smoke-test observability).
        self.scenarios = 0

    def prepare(self, network: "WDMNetwork") -> RouteFn:
        from repro.server import RouterClient, RouterServer

        self.close()
        self._server = RouterServer(
            network, workers=self._workers, uds=""
        ).start()
        self._client = RouterClient(self._server.address)
        self.scenarios += 1
        if self._churn:
            channels, links, converters = _churn_resources(network)
            fail = (
                [("fail_channel", c) for c in channels]
                + [("fail_link", link) for link in links]
                + [("fail_converter", (n,)) for n in converters]
            )
            recover = (
                [("recover_converter", (n,)) for n in converters]
                + [("recover_link", link) for link in links]
                + [("recover_channel", c) for c in channels]
            )
            if fail:
                self._client.patch(fail)
                self._client.patch(recover)
            residue = self._client.snapshot()["masked_edges"]
            if residue:
                raise DeltaParityError(
                    f"server-side net-zero churn left {residue} edge(s) masked"
                )
        return _none_on_nopath(self._client.route)

    def close(self) -> None:
        """Shut the current scenario's server down (idempotent)."""
        client, self._client = self._client, None
        server, self._server = self._server, None
        if client is not None:
            try:
                client.shutdown()
            except Exception:
                pass
        if server is not None:
            server.close()


def server_oracle(manager: ServerOracleManager) -> Oracle:
    """The ``liang:server`` oracle over *manager*'s live servers.

    Not part of :func:`default_oracles` — starting a server per scenario
    is too heavy for the tier-1 suite; the CLI adds it behind
    ``repro fuzz/verify --server`` and CI's server-smoke job runs it for
    60 seconds at seed 1998.
    """
    return Oracle(
        name="liang:server", prepare=manager.prepare, exact_hops=True
    )


def _brute_force(network: "WDMNetwork") -> RouteFn:
    return _none_on_nopath(lambda s, t: brute_force_route(network, s, t))


def _distributed(network: "WDMNetwork") -> RouteFn:
    router = DistributedSemilightpathRouter(network)
    return _none_on_nopath(lambda s, t: router.route(s, t).path)


def default_oracles(parallel_workers: int = 2) -> tuple[Oracle, ...]:
    """The full matrix, reference oracle (``liang:overlay:flat``) first.

    ``parallel_workers=0`` drops the process-pool oracle (useful inside
    environments where spawning pools per scenario is too slow).
    """
    oracles: list[Oracle] = []
    for overlay in (True, False):
        mode = "overlay" if overlay else "rebuild"
        for kernel in KERNELS:
            oracles.append(
                Oracle(
                    name=f"liang:{mode}:{kernel}",
                    prepare=_liang_single(kernel, overlay),
                    exact_hops=True,
                )
            )
    oracles.append(
        Oracle(name="liang:bucket", prepare=_liang_bucket, exact_hops=True)
    )
    oracles.append(
        Oracle(
            name="liang:restricted", prepare=_liang_restricted, exact_hops=True
        )
    )
    oracles.append(
        Oracle(
            name="liang:all-pairs:serial",
            prepare=_liang_all_pairs(None),
            exact_hops=True,
        )
    )
    oracles.append(
        Oracle(
            name="liang:delta:churn",
            prepare=_liang_delta_churn,
            exact_hops=True,
        )
    )
    oracles.append(
        Oracle(
            name="cache:incremental",
            prepare=_cache_incremental,
            exact_hops=True,
        )
    )
    oracles.append(
        Oracle(
            name="batch:lazy-forest",
            prepare=_batch_lazy_forest,
            exact_hops=True,
        )
    )
    if parallel_workers > 1:
        oracles.append(
            Oracle(
                name="liang:all-pairs:parallel",
                prepare=_liang_all_pairs(parallel_workers),
                exact_hops=True,
            )
        )
    oracles.append(Oracle(name="cfz:dense", prepare=_cfz("dense")))
    oracles.append(Oracle(name="cfz:heap", prepare=_cfz("heap")))
    oracles.append(Oracle(name="brute-force", prepare=_brute_force))
    oracles.append(
        Oracle(name="distributed:bellman-ford", prepare=_distributed)
    )
    return tuple(oracles)


def multicast_oracle_cost(network, request, splitters=None):
    """Exact small-instance cost of an optimal light-hierarchy.

    The multicast analog of the ``brute-force`` unicast oracle: a
    Dreyfus–Wagner dynamic program over the channel graph, exponential in
    the member count and therefore gated behind
    :data:`repro.multicast.oracle.MAX_ORACLE_MEMBERS` by callers.
    Re-exported here (lazily — the multicast package imports this module's
    siblings) so differential-verification consumers find every reference
    implementation in one place.  Returns ``math.inf`` when infeasible.
    """
    from repro.multicast.oracle import optimal_hierarchy_cost

    return optimal_hierarchy_cost(network, request, splitters=splitters)


__all__.append("multicast_oracle_cost")
