"""The oracle matrix: every routing backend behind one uniform interface.

An :class:`Oracle` wraps one backend as ``prepare(network) -> route`` where
``route(source, target)`` returns the optimal
:class:`~repro.core.semilightpath.Semilightpath` or ``None`` when no
semilightpath exists.  :func:`default_oracles` assembles the full matrix:

====================================  =========  ==========================
oracle                                hop-exact  applicability
====================================  =========  ==========================
``liang:{overlay,rebuild}:<kernel>``  yes        always (8 combinations)
``liang:all-pairs:serial``            yes        always
``liang:all-pairs:parallel``          yes        always (2-process pool)
``cfz:{dense,heap}``                  no         chain-free conversion only
``brute-force``                       no         small state spaces
``distributed:bellman-ford``          no         small state spaces
====================================  =========  ==========================

**Hop-exact** oracles share the deterministic tie-break (equal-distance
auxiliary nodes settle in ascending id order) and must agree on the exact
hop sequence; the rest compute the same optimum by structurally different
means and are compared on cost and certificate validity only.  CFZ joins
the matrix only for chain-free conversion models — for others its
wavelength graph legitimately prices chained conversions Eq. (1) does not
(see :mod:`repro.baseline.wavelength_graph`), which would be a modeling
difference, not a bug.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Hashable

from repro.baseline.brute_force import brute_force_route
from repro.baseline.cfz import CFZRouter
from repro.core.routing import LiangShenRouter
from repro.core.semilightpath import Semilightpath
from repro.distributed.semilightpath_dist import DistributedSemilightpathRouter
from repro.exceptions import NoPathError
from repro.verify.scenarios import Scenario

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.network import WDMNetwork

__all__ = ["Oracle", "RouteFn", "default_oracles", "KERNELS"]

NodeId = Hashable
RouteFn = Callable[[NodeId, NodeId], "Semilightpath | None"]

KERNELS = ("flat", "binary", "pairing", "fibonacci")

#: ``n * k`` ceiling for the slow exact oracles (brute force enumerates
#: ``(node, wavelength)`` states; the synchronous simulator rounds scale
#: with ``kn``).  Generated scenarios always fit; corpus imports might not.
SMALL_STATE_LIMIT = 128


@dataclass(frozen=True)
class Oracle:
    """One backend of the differential matrix.

    ``prepare`` may do arbitrary per-network work (build overlays, run the
    whole all-pairs sweep) — the harness calls it once per scenario and the
    returned closure once per query.  ``exact_hops`` marks membership in
    the tie-break-pinned family that must agree hop-for-hop.
    """

    name: str
    prepare: Callable[["WDMNetwork"], RouteFn]
    exact_hops: bool = False

    def applies(self, scenario: Scenario) -> bool:
        """Whether this oracle participates for *scenario* (see module doc)."""
        network = scenario.network
        if self.name.startswith("cfz:"):
            return scenario.chain_free
        if self.name in ("brute-force", "distributed:bellman-ford"):
            return network.num_nodes * network.num_wavelengths <= SMALL_STATE_LIMIT
        return True

    def __repr__(self) -> str:
        return f"Oracle({self.name!r})"


def _none_on_nopath(route: Callable[[NodeId, NodeId], Semilightpath]) -> RouteFn:
    def wrapped(source: NodeId, target: NodeId) -> Semilightpath | None:
        try:
            return route(source, target)
        except NoPathError:
            return None

    return wrapped


def _liang_single(heap: str, overlay: bool) -> Callable[["WDMNetwork"], RouteFn]:
    def prepare(network: "WDMNetwork") -> RouteFn:
        router = LiangShenRouter(network, heap=heap, overlay=overlay)
        return _none_on_nopath(lambda s, t: router.route(s, t).path)

    return prepare


def _liang_all_pairs(workers: int | None) -> Callable[["WDMNetwork"], RouteFn]:
    def prepare(network: "WDMNetwork") -> RouteFn:
        result = LiangShenRouter(network).route_all_pairs(workers=workers)

        def route(source: NodeId, target: NodeId) -> Semilightpath | None:
            return result.paths.get((source, target))

        return route

    return prepare


def _cfz(engine: str) -> Callable[["WDMNetwork"], RouteFn]:
    def prepare(network: "WDMNetwork") -> RouteFn:
        router = CFZRouter(network, engine=engine)
        return _none_on_nopath(lambda s, t: router.route(s, t).path)

    return prepare


def _brute_force(network: "WDMNetwork") -> RouteFn:
    return _none_on_nopath(lambda s, t: brute_force_route(network, s, t))


def _distributed(network: "WDMNetwork") -> RouteFn:
    router = DistributedSemilightpathRouter(network)
    return _none_on_nopath(lambda s, t: router.route(s, t).path)


def default_oracles(parallel_workers: int = 2) -> tuple[Oracle, ...]:
    """The full matrix, reference oracle (``liang:overlay:flat``) first.

    ``parallel_workers=0`` drops the process-pool oracle (useful inside
    environments where spawning pools per scenario is too slow).
    """
    oracles: list[Oracle] = []
    for overlay in (True, False):
        mode = "overlay" if overlay else "rebuild"
        for kernel in KERNELS:
            oracles.append(
                Oracle(
                    name=f"liang:{mode}:{kernel}",
                    prepare=_liang_single(kernel, overlay),
                    exact_hops=True,
                )
            )
    oracles.append(
        Oracle(
            name="liang:all-pairs:serial",
            prepare=_liang_all_pairs(None),
            exact_hops=True,
        )
    )
    if parallel_workers > 1:
        oracles.append(
            Oracle(
                name="liang:all-pairs:parallel",
                prepare=_liang_all_pairs(parallel_workers),
                exact_hops=True,
            )
        )
    oracles.append(Oracle(name="cfz:dense", prepare=_cfz("dense")))
    oracles.append(Oracle(name="cfz:heap", prepare=_cfz("heap")))
    oracles.append(Oracle(name="brute-force", prepare=_brute_force))
    oracles.append(
        Oracle(name="distributed:bellman-ford", prepare=_distributed)
    )
    return tuple(oracles)
