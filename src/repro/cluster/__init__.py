"""The sharded, replicated serving tier.

Composition, bottom-up (see ``docs/serving.md`` → "Sharded tier"):

* :class:`~repro.cluster.ring.HashRing` — consistent-hash placement of
  query load (by source node) across shards;
* :class:`~repro.cluster.shards.ShardManager` — boots N shards × R
  replicas of :class:`~repro.server.server.RouterServer` and wires each
  shard's gossip full mesh;
* :class:`~repro.cluster.frontend.FrontendRouter` — the client:
  placement, replica failover, per-replica circuit breakers, admission
  control, load shedding;
* :class:`~repro.cluster.loadgen.ClosedLoopLoadGenerator` — the
  million-query closed-loop harness behind ``repro cluster bench``;
* :class:`~repro.cluster.chaos.ClusterSoak` — the fault-storm soak with
  epoch-indexed exact oracles behind ``repro cluster smoke`` and
  ``repro chaos --cluster``.
"""

from repro.cluster.chaos import ClusterSoak, ClusterSoakReport, event_to_patch_ops
from repro.cluster.frontend import FrontendRouter
from repro.cluster.loadgen import (
    ClosedLoopLoadGenerator,
    LoadReport,
    all_pairs_workload,
)
from repro.cluster.ring import HashRing, stable_hash64
from repro.cluster.shards import ShardManager

__all__ = [
    "ClosedLoopLoadGenerator",
    "ClusterSoak",
    "ClusterSoakReport",
    "FrontendRouter",
    "HashRing",
    "LoadReport",
    "ShardManager",
    "all_pairs_workload",
    "event_to_patch_ops",
    "stable_hash64",
]
