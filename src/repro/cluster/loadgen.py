"""Closed-loop load generation against the sharded tier.

A closed-loop harness models a fixed population of callers: each of
``concurrency`` worker threads issues one batched request, waits for the
answer, and immediately issues the next.  Offered load is therefore
controlled by the concurrency level (and batch size), and the measured
throughput at high concurrency **is** the saturation throughput — the
tier cannot be pushed past it by this workload, queues simply grow.
This matches how blocking-probability-vs-load curves are produced in
the WDM performance literature: sweep offered load, record the service
measure at each point.

Latency bookkeeping is honest about batching: every query in a batch
experiences the batch's round-trip time, so the harness records the
batch RTT once **per query** into an exact
(:class:`~repro.service.metrics.Histogram` with ``window=None``)
histogram — p999 over a million-query run is a true population
quantile, not a window estimate.
"""

from __future__ import annotations

import itertools
import random
import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Hashable

from repro.exceptions import (
    RemoteRouterError,
    ServiceOverloadError,
)
from repro.service.metrics import Histogram

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.frontend import FrontendRouter
    from repro.core.network import WDMNetwork

__all__ = ["ClosedLoopLoadGenerator", "LoadReport", "all_pairs_workload"]

NodeId = Hashable


def all_pairs_workload(
    network: "WDMNetwork", seed: int = 0
) -> list[tuple[NodeId, NodeId]]:
    """Every ordered pair of distinct nodes, deterministically shuffled.

    The shuffle interleaves sources so consecutive batches spread across
    shards instead of hammering one source's shard at a time.
    """
    nodes = list(network.nodes())
    pairs = [(s, t) for s in nodes for t in nodes if s != t]
    random.Random(seed).shuffle(pairs)
    return pairs


@dataclass
class LoadReport:
    """One closed-loop run's results (one offered-load point)."""

    concurrency: int
    batch_size: int
    queries: int = 0
    shed: int = 0
    no_path: int = 0
    errors: int = 0
    elapsed: float = 0.0
    latency: dict[str, float] = field(default_factory=dict)
    per_shard: dict[str, int] = field(default_factory=dict)

    @property
    def throughput(self) -> float:
        """Completed queries per second over the run."""
        return self.queries / self.elapsed if self.elapsed > 0 else 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "concurrency": self.concurrency,
            "batch_size": self.batch_size,
            "queries": self.queries,
            "shed": self.shed,
            "no_path": self.no_path,
            "errors": self.errors,
            "elapsed_s": round(self.elapsed, 4),
            "throughput_qps": round(self.throughput, 1),
            "latency_ms": self.latency,
            "per_shard": self.per_shard,
        }


class ClosedLoopLoadGenerator:
    """Drive a :class:`~repro.cluster.frontend.FrontendRouter` to a
    query target (or a time budget) and measure the tail.

    Parameters
    ----------
    frontend:
        The tier client; shared by all worker threads.
    pairs:
        The query mix, cycled round-robin (each thread strides through
        it by a global batch counter, so the mix is covered evenly).
    concurrency:
        Closed-loop population: threads with one request in flight each.
    batch_size:
        Queries per ``ROUTE_BATCH`` frame.  1 measures per-query RTT;
        larger batches amortize framing and raise saturation throughput.
    total_queries / seconds:
        Stop conditions; the run ends when either is reached (at least
        one must be given).  The query target is a minimum — in-flight
        batches complete, they are never abandoned.
    """

    def __init__(
        self,
        frontend: "FrontendRouter",
        pairs: "list[tuple[NodeId, NodeId]]",
        *,
        concurrency: int = 4,
        batch_size: int = 64,
        total_queries: int | None = None,
        seconds: float | None = None,
    ) -> None:
        if not pairs:
            raise ValueError("need at least one query pair")
        if concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if total_queries is None and seconds is None:
            raise ValueError("need a stop condition: total_queries or seconds")
        self._frontend = frontend
        self._pairs = list(pairs)
        self._concurrency = concurrency
        self._batch_size = batch_size
        self._total_queries = total_queries
        self._seconds = seconds
        self._batch_counter = itertools.count()
        self._stop = threading.Event()

    def stop(self) -> None:
        """Ask the run to wind down (threads finish their current batch)."""
        self._stop.set()

    def _next_batch(self) -> "list[tuple[NodeId, NodeId]]":
        index = next(self._batch_counter) * self._batch_size
        pairs = self._pairs
        return [pairs[(index + k) % len(pairs)] for k in range(self._batch_size)]

    def run(self) -> LoadReport:
        """Execute the closed loop; returns the aggregated report."""
        report = LoadReport(
            concurrency=self._concurrency, batch_size=self._batch_size
        )
        # Exact-mode histogram: one float per query, ~8 MB at 10⁶ —
        # bounded by the run, and the whole point is an exact p999.
        latency = Histogram(window=None)
        lock = threading.Lock()
        deadline = (
            time.monotonic() + self._seconds
            if self._seconds is not None
            else None
        )

        def done() -> bool:
            if self._stop.is_set():
                return True
            if deadline is not None and time.monotonic() >= deadline:
                return True
            if self._total_queries is not None:
                with lock:
                    if report.queries >= self._total_queries:
                        return True
            return False

        def worker() -> None:
            while not done():
                batch = self._next_batch()
                begin = time.perf_counter()
                try:
                    answers = self._frontend.route_batch(batch)
                except ServiceOverloadError:
                    with lock:
                        report.shed += len(batch)
                    continue
                except RemoteRouterError:
                    with lock:
                        report.errors += len(batch)
                    continue
                elapsed_ms = (time.perf_counter() - begin) * 1e3
                unreachable = sum(1 for answer in answers if answer is None)
                for _ in range(len(batch)):
                    latency.observe(elapsed_ms)
                with lock:
                    report.queries += len(batch)
                    report.no_path += unreachable

        threads = [
            threading.Thread(target=worker, name=f"loadgen-{i}", daemon=True)
            for i in range(self._concurrency)
        ]
        begin = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        report.elapsed = time.perf_counter() - begin
        quantiles = latency.percentiles([50, 99, 99.9])
        report.latency = {
            "p50": round(quantiles[50], 3),
            "p99": round(quantiles[99], 3),
            "p999": round(quantiles[99.9], 3),
            "mean": round(latency.mean, 3),
            "max": round(latency.maximum, 3) if latency.count else 0.0,
        }
        snapshot = self._frontend.metrics.snapshot()
        report.per_shard = {
            name.split(".")[2]: value
            for name, value in snapshot.items()
            if name.startswith("frontend.shard.")
        }
        return report
