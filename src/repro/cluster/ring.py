"""Consistent-hash ring for partitioning query load across shards.

The front tier routes every query by its **source node**: all queries
for one source land on one shard, so that shard's workers keep the
per-source :class:`~repro.core.forest.LazyForest` warm and nobody else
pays to build it.  The ring gives that mapping the two properties a
serving tier needs:

* **spread** — each shard owns many small arcs of the hash space
  (``vnodes`` virtual nodes per shard), so source load balances even
  for a handful of shards;
* **minimal movement** — adding or removing a shard only remaps the
  keys on the arcs that shard gains or loses (≈ ``1/N`` of the space),
  so a resize does not cold-start every forest cache in the tier.

Placement must agree *across processes* (the load generator, the CLI,
and any frontend replica must all send source ``s`` to the same shard),
so hashing uses :func:`hashlib.blake2b` over ``repr(key)`` — stable
across runs and interpreters, unlike the salted builtin ``hash``.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Hashable, Iterable, Sequence

__all__ = ["HashRing", "stable_hash64"]


def stable_hash64(value: object) -> int:
    """A 64-bit process-independent hash of ``repr(value)``.

    ``repr`` (not ``str``) so ``1`` and ``"1"`` land on different
    points; blake2b (not ``hash``) because Python salts string hashing
    per process and cross-process placement must agree byte-for-byte.
    """
    digest = hashlib.blake2b(
        repr(value).encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


class HashRing:
    """Consistent hashing with virtual nodes.

    Parameters
    ----------
    shards:
        Initial shard identifiers (any hashable with a stable ``repr`` —
        the tier uses shard indices).
    vnodes:
        Virtual nodes per shard; more vnodes → tighter spread at the
        cost of a larger (still tiny) sorted point table.
    """

    def __init__(
        self, shards: Iterable[Hashable] = (), *, vnodes: int = 64
    ) -> None:
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self._vnodes = vnodes
        self._shards: list[Hashable] = []
        self._points: list[tuple[int, str, Hashable]] = []
        self._hashes: list[int] = []
        for shard in shards:
            self.add_shard(shard)

    # -- membership -----------------------------------------------------------

    @property
    def shards(self) -> tuple[Hashable, ...]:
        return tuple(self._shards)

    def __len__(self) -> int:
        return len(self._shards)

    def __contains__(self, shard: Hashable) -> bool:
        return shard in self._shards

    def add_shard(self, shard: Hashable) -> None:
        if shard in self._shards:
            raise ValueError(f"shard already on the ring: {shard!r}")
        self._shards.append(shard)
        self._rebuild()

    def remove_shard(self, shard: Hashable) -> None:
        try:
            self._shards.remove(shard)
        except ValueError:
            raise ValueError(f"shard not on the ring: {shard!r}") from None
        self._rebuild()

    def _rebuild(self) -> None:
        # Point positions depend only on (shard, vnode index), so the
        # surviving shards' arcs are identical before and after a
        # membership change — that is the minimal-movement guarantee.
        # Ties (astronomically unlikely) break on the repr so placement
        # stays deterministic regardless of insertion order.
        points = [
            (stable_hash64((repr(shard), i)), repr(shard), shard)
            for shard in self._shards
            for i in range(self._vnodes)
        ]
        points.sort(key=lambda p: (p[0], p[1]))
        self._points = points
        self._hashes = [p[0] for p in points]

    # -- placement ------------------------------------------------------------

    def shard_for(self, key: Hashable) -> Hashable:
        """The shard owning *key*: first point clockwise of its hash."""
        if not self._points:
            raise ValueError("ring has no shards")
        index = bisect.bisect_right(self._hashes, stable_hash64(key))
        return self._points[index % len(self._points)][2]

    def spread(self, keys: Sequence[Hashable]) -> dict[Hashable, int]:
        """Placement counts per shard for *keys* (every shard reported,
        including ones that received nothing)."""
        counts: dict[Hashable, int] = {shard: 0 for shard in self._shards}
        for key in keys:
            counts[self.shard_for(key)] += 1
        return counts

    def __repr__(self) -> str:
        return (
            f"HashRing(shards={len(self._shards)}, vnodes={self._vnodes}, "
            f"points={len(self._points)})"
        )
