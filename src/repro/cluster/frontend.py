"""The tier's client: placement, failover, admission, shedding.

:class:`FrontendRouter` is what application code talks to.  It owns no
servers — it routes each query to the shard the placement ring assigns
(by source node), walks that shard's replicas with per-replica circuit
breakers, and bounds the number of in-flight requests, shedding the
excess with :class:`~repro.exceptions.ServiceOverloadError` exactly as
the in-process :class:`~repro.service.engine.QueryEngine` does when its
bounded queue fills.

Failure handling composes the existing pieces rather than inventing new
ones:

* a worker crash inside a replica surfaces as
  :class:`~repro.exceptions.WorkerCrashError` after the
  :class:`~repro.server.client.RouterClient`'s own
  :class:`~repro.faults.resilience.RetryPolicy` is exhausted — the
  frontend then **fails over** to the next replica of the same shard;
* repeated failures trip that replica's
  :class:`~repro.faults.resilience.CircuitBreaker`; while open the
  replica is **ejected** from rotation (skipped without a connection
  attempt) until the reset timeout admits a probe;
* :class:`~repro.exceptions.NoPathError` is a *successful* answer
  (the backend worked; the pair is unreachable) — it feeds
  ``record_success`` and propagates.

Fault patches go to **one** replica of *every* shard (each shard holds
a full copy of the network); replica-internal gossip floods the patch
to the rest, so the frontend retries a patch only on definitely-unsent
connection failures — a PATCH is not idempotent in plain form.
"""

from __future__ import annotations

import itertools
import threading
from typing import TYPE_CHECKING, Any, Hashable

from repro.exceptions import (
    CircuitOpenError,
    NoPathError,
    ProtocolError,
    RemoteRouterError,
    ServiceOverloadError,
    WorkerCrashError,
)
from repro.faults.resilience import CircuitBreaker, RetryPolicy
from repro.server.client import RouterClient
from repro.service.metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.shards import ShardManager
    from repro.core.semilightpath import Semilightpath

__all__ = ["FrontendRouter"]

NodeId = Hashable


class FrontendRouter:
    """Query frontend over a :class:`~repro.cluster.shards.ShardManager`.

    Parameters
    ----------
    manager:
        A started tier; the frontend reads its ring and addresses.
    max_inflight:
        Admission bound: concurrent calls beyond this are shed with
        :class:`ServiceOverloadError` (``None`` = unbounded).
    retry:
        Per-replica transient-retry policy for the underlying clients
        (``None`` installs the stock 3-attempt policy).
    breaker_threshold / breaker_reset:
        Per-replica circuit breaker tuning (consecutive failures to
        open; seconds until a half-open probe).
    timeout:
        Socket timeout per frame exchange, seconds.

    Thread safety: fully thread-safe; each thread gets its own socket
    per replica (the wire protocol is strictly request/reply per
    connection), while breakers and counters are shared.
    """

    def __init__(
        self,
        manager: "ShardManager",
        *,
        max_inflight: int | None = None,
        retry: RetryPolicy | None = None,
        breaker_threshold: int = 5,
        breaker_reset: float = 0.5,
        timeout: float = 120.0,
    ) -> None:
        if max_inflight is not None and max_inflight < 1:
            raise ValueError("max_inflight must be >= 1 (or None)")
        self._manager = manager
        self._retry = retry
        self._timeout = timeout
        self._addresses = [
            manager.replica_addresses(shard)
            for shard in range(manager.num_shards)
        ]
        self._breakers = {
            (shard, replica): CircuitBreaker(
                failure_threshold=breaker_threshold,
                reset_timeout=breaker_reset,
            )
            for shard in range(manager.num_shards)
            for replica in range(manager.num_replicas)
        }
        #: Per-shard rotation so replicas share read load evenly.
        self._rotation = [
            itertools.count(shard) for shard in range(manager.num_shards)
        ]
        self._max_inflight = max_inflight
        self._inflight_sem = (
            threading.BoundedSemaphore(max_inflight)
            if max_inflight is not None
            else None
        )
        self._local = threading.local()
        self._all_clients: list[RouterClient] = []
        self._clients_lock = threading.Lock()
        self.metrics = MetricsRegistry()
        self._shed = self.metrics.counter("frontend.shed")
        self._failovers = self.metrics.counter("frontend.failovers")
        self._ejected = self.metrics.counter("frontend.breaker_skips")
        self._shard_queries = [
            self.metrics.counter(f"frontend.shard.{shard}.queries")
            for shard in range(manager.num_shards)
        ]

    # -- client plumbing ------------------------------------------------------

    def _client(self, shard: int, replica: int) -> RouterClient:
        clients = getattr(self._local, "clients", None)
        if clients is None:
            clients = self._local.clients = {}
        client = clients.get((shard, replica))
        if client is None:
            client = RouterClient(
                self._addresses[shard][replica],
                retry=self._retry,
                timeout=self._timeout,
            )
            clients[(shard, replica)] = client
            with self._clients_lock:
                self._all_clients.append(client)
        return client

    def close(self) -> None:
        """Close every connection this frontend ever opened (idempotent)."""
        with self._clients_lock:
            clients, self._all_clients = self._all_clients, []
        for client in clients:
            client.close()

    def __enter__(self) -> "FrontendRouter":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- admission ------------------------------------------------------------

    def _admit(self):
        if self._inflight_sem is None:
            return None
        if not self._inflight_sem.acquire(blocking=False):
            self._shed.inc()
            raise ServiceOverloadError(self._max_inflight)
        return self._inflight_sem

    # -- failover core --------------------------------------------------------

    def _with_failover(self, shard: int, call):
        """Run *call(client)* against shard replicas until one answers.

        Replica order rotates per call; a replica whose breaker is open
        is skipped (ejected) without a connection attempt.  Transient
        and transport errors advance to the next replica; definitive
        answers — including :class:`NoPathError` — return/raise
        immediately and feed the breaker a success.
        """
        replicas = self._manager.num_replicas
        offset = next(self._rotation[shard])
        last_error: Exception | None = None
        for step in range(replicas):
            replica = (offset + step) % replicas
            breaker = self._breakers[(shard, replica)]
            try:
                breaker.before_call()
            except CircuitOpenError as exc:
                self._ejected.inc()
                last_error = exc
                continue
            client = self._client(shard, replica)
            try:
                result = call(client)
            except NoPathError:
                breaker.record_success()
                raise
            except (WorkerCrashError, RemoteRouterError, ProtocolError) as exc:
                breaker.record_failure()
                client.close()
                self._failovers.inc()
                last_error = exc
                continue
            breaker.record_success()
            return result
        raise RemoteRouterError(
            f"all {replicas} replica(s) of shard {shard} unavailable: "
            f"{last_error}"
        ) from last_error

    # -- routing API ----------------------------------------------------------

    def shard_for(self, source: NodeId) -> int:
        return self._manager.shard_for(source)

    def route(self, source: NodeId, target: NodeId) -> "Semilightpath":
        """Router contract: a path, or :class:`NoPathError`."""
        sem = self._admit()
        try:
            shard = self._manager.shard_for(source)
            self._shard_queries[shard].inc()
            return self._with_failover(
                shard, lambda client: client.route(source, target)
            )
        finally:
            if sem is not None:
                sem.release()

    def route_with_epoch(
        self, source: NodeId, target: NodeId
    ) -> "tuple[Semilightpath | None, int]":
        """``(path | None, epoch)`` — the soak's verification probe."""
        sem = self._admit()
        try:
            shard = self._manager.shard_for(source)
            self._shard_queries[shard].inc()
            return self._with_failover(
                shard, lambda client: client.route_with_epoch(source, target)
            )
        finally:
            if sem is not None:
                sem.release()

    def route_batch(
        self, pairs: "list[tuple[NodeId, NodeId]]"
    ) -> "list[Semilightpath | None]":
        """Paths for *pairs* in order (``None`` = unreachable).

        Pairs are grouped by owning shard, each group travels as one
        ``ROUTE_BATCH`` frame, and answers are stitched back into input
        order.  One admission slot covers the whole batch — admission
        bounds concurrent *calls* (sockets in flight), matching the
        closed-loop harness where one thread is one caller.
        """
        sem = self._admit()
        try:
            by_shard: dict[int, list[tuple[int, tuple[NodeId, NodeId]]]] = {}
            for index, pair in enumerate(pairs):
                shard = self._manager.shard_for(pair[0])
                by_shard.setdefault(shard, []).append((index, pair))
            answers: list[Any] = [None] * len(pairs)
            for shard, group in by_shard.items():
                self._shard_queries[shard].inc(len(group))
                shard_pairs = [pair for _index, pair in group]
                results = self._with_failover(
                    shard, lambda client, p=shard_pairs: client.route_batch(p)
                )
                for (index, _pair), result in zip(group, results):
                    answers[index] = result
            return answers
        finally:
            if sem is not None:
                sem.release()

    # -- control plane --------------------------------------------------------

    def patch(self, ops: "list[tuple[str, tuple]]") -> list[dict[str, Any]]:
        """Apply a fault batch tier-wide: one replica per shard, gossip
        does the rest.  Returns the accepting replica's reply per shard.

        Failover is deliberately narrower than for reads: only a
        *connection* failure (raised before the frame was sent) moves to
        the next replica.  A failure after send is ambiguous — the patch
        may have been applied — and plain-form PATCH is not idempotent,
        so it surfaces to the caller instead of risking a double apply.
        """
        replies = []
        for shard in range(self._manager.num_shards):
            last_error: Exception | None = None
            for replica in range(self._manager.num_replicas):
                client = self._client(shard, replica)
                try:
                    replies.append(client.patch(list(ops)))
                    break
                except RemoteRouterError as exc:
                    if "cannot connect" not in str(exc):
                        raise
                    client.close()
                    self._failovers.inc()
                    last_error = exc
            else:
                raise RemoteRouterError(
                    f"no replica of shard {shard} accepted the patch"
                ) from last_error
        return replies

    def stats(self) -> list[list[dict[str, Any]]]:
        """``[shard][replica]`` → server ``STATS`` reply."""
        return [
            [
                self._client(shard, replica).stats()
                for replica in range(self._manager.num_replicas)
            ]
            for shard in range(self._manager.num_shards)
        ]
