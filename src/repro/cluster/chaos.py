"""Chaos soak against the sharded tier: faults, gossip, verification.

:class:`ClusterSoak` boots an N×R tier, drives background closed-loop
load through the :class:`~repro.cluster.frontend.FrontendRouter`, and
replays a seeded :class:`~repro.faults.plan.FaultPlan` as wire PATCHes —
one replica per shard receives each patch, gossip must carry it to the
rest.  Verification is exact, not statistical:

* every fault event advances an **epoch-indexed oracle**: the soak keeps
  one :class:`~repro.faults.injector.FaultInjector` and snapshots
  ``network_view()`` after each event, so fault state ``k`` has a
  concrete degraded network.  A replica that has applied ``k`` events
  sits at segment epoch ``2k`` (one seqlock bracket per accepted
  patch), so a served answer stamped with epoch ``e`` must be
  byte-identical to a fresh
  :class:`~repro.core.routing.LiangShenRouter` run on snapshot
  ``e // 2`` — and must re-validate under the router-independent
  Eq. 1 certificate;
* after each event the soak polls **gossip convergence**: every replica
  of every shard must reach ``delta_epoch == events applied so far``
  (exactly once each — a lost patch stalls below, a double-applied one
  overshoots);
* a **gossip parity probe** then routes a pair at every replica of one
  shard directly and demands byte-identical answers across replicas.

The plan's kinds are restricted to network-resource events — engine
faults (latency/exception) target the in-process service stack, and
worker crashes have their own kill-based suite in ``tests/server``.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Hashable

from repro.cluster.frontend import FrontendRouter
from repro.cluster.loadgen import all_pairs_workload
from repro.cluster.shards import ShardManager
from repro.core.routing import LiangShenRouter
from repro.exceptions import RemoteRouterError, SemilightError
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultEvent, FaultPlan, generate_plan
from repro.server.client import RouterClient
from repro.shortestpath.shared import leaked_segments
from repro.verify.certificate import check_certificate

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.network import WDMNetwork

__all__ = ["ClusterSoak", "ClusterSoakReport", "event_to_patch_ops"]

NodeId = Hashable


def event_to_patch_ops(
    network: "WDMNetwork", event: FaultEvent
) -> list[tuple[str, tuple]]:
    """Translate one network-resource fault event into wire PATCH ops.

    The injector fails *fibers* (both directions) while the overlay's
    ``fail_link`` masks one directed link, so fiber events expand to the
    directions that exist in *network*.  Channel and converter events
    map one-to-one.
    """
    kind = event.kind
    if kind in ("link_fail", "link_recover"):
        op = "fail_link" if kind == "link_fail" else "recover_link"
        return [
            (op, (tail, head))
            for tail, head in (
                (event.tail, event.head),
                (event.head, event.tail),
            )
            if network.has_link(tail, head)
        ]
    if kind in ("channel_fail", "channel_recover"):
        op = "fail_channel" if kind == "channel_fail" else "recover_channel"
        return [(op, (event.tail, event.head, event.wavelength))]
    if kind in ("converter_fail", "converter_recover"):
        op = (
            "fail_converter"
            if kind == "converter_fail"
            else "recover_converter"
        )
        return [(op, (event.node,))]
    raise ValueError(f"not a network-resource event: {kind!r}")


@dataclass
class ClusterSoakReport:
    """Outcome of one tier soak; ``ok`` gates the CI job."""

    shards: int
    replicas: int
    seed: int
    events_applied: int = 0
    ops_applied: int = 0
    queries: int = 0
    verified: int = 0
    certificate_failures: int = 0
    mismatches: int = 0
    convergence_failures: int = 0
    parity_failures: int = 0
    shed: int = 0
    errors: int = 0
    gossip: dict[str, int] = field(default_factory=dict)
    leaked: list[str] = field(default_factory=list)
    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations and not self.leaked

    def to_dict(self) -> dict[str, Any]:
        out = dict(self.__dict__)
        out["ok"] = self.ok
        return out


class ClusterSoak:
    """Seeded fault storm against a live N×R tier with exact oracles.

    Parameters
    ----------
    network:
        The network the tier serves; also seeds the oracle snapshots.
    shards / replicas / workers:
        Tier shape (see :class:`~repro.cluster.shards.ShardManager`).
    seconds:
        Wall-clock budget for the storm phase; events from the seeded
        plan fire at their scheduled fraction of this budget.
    num_faults:
        Faults drawn into the plan (recoveries implied; plan ends
        pristine).
    seed:
        Drives the plan, the workload shuffle, and probe sampling.
    load_concurrency / verify_sample:
        Background closed-loop threads, and how many verification
        probes to run per convergence window.
    """

    def __init__(
        self,
        network: "WDMNetwork",
        *,
        shards: int = 2,
        replicas: int = 2,
        workers: int = 1,
        seconds: float = 30.0,
        num_faults: int = 8,
        seed: int = 1998,
        load_concurrency: int = 2,
        verify_sample: int = 8,
        heap: str = "flat",
    ) -> None:
        self._network = network
        self._shards = shards
        self._replicas = replicas
        self._workers = workers
        self._seconds = seconds
        self._num_faults = num_faults
        self._seed = seed
        self._load_concurrency = load_concurrency
        self._verify_sample = verify_sample
        self._heap = heap

    def run(self) -> ClusterSoakReport:
        report = ClusterSoakReport(
            shards=self._shards, replicas=self._replicas, seed=self._seed
        )
        # Audit residue the soak itself creates — other live servers in
        # this process (tests run tiers side by side) own their segments.
        segments_before = set(leaked_segments())
        plan = generate_plan(
            self._network,
            seed=self._seed,
            num_faults=self._num_faults,
            kinds=("link", "channel", "converter"),
        )
        injector = FaultInjector(self._network)
        # snapshots[k] = the network after k applied events; oracles are
        # built lazily (one LiangShenRouter per fault state actually hit).
        snapshots: list["WDMNetwork"] = [injector.network_view()]
        oracles: dict[int, LiangShenRouter] = {}
        ops_per_state: list[int] = [0]
        pairs = all_pairs_workload(self._network, seed=self._seed)
        rng = random.Random(self._seed)

        def oracle(state: int) -> LiangShenRouter:
            router = oracles.get(state)
            if router is None:
                router = oracles[state] = LiangShenRouter(snapshots[state])
            return router

        with ShardManager(
            self._network,
            shards=self._shards,
            replicas=self._replicas,
            workers=self._workers,
            heap=self._heap,
        ) as manager:
            frontend = FrontendRouter(manager)
            stop_load = threading.Event()
            load_lock = threading.Lock()

            def load_worker() -> None:
                cursor = rng.randrange(len(pairs))
                while not stop_load.is_set():
                    batch = [
                        pairs[(cursor + k) % len(pairs)] for k in range(32)
                    ]
                    cursor = (cursor + 32) % len(pairs)
                    try:
                        frontend.route_batch(batch)
                    except SemilightError:
                        with load_lock:
                            report.errors += 1
                        continue
                    with load_lock:
                        report.queries += len(batch)

            load_threads = [
                threading.Thread(
                    target=load_worker, name=f"soak-load-{i}", daemon=True
                )
                for i in range(self._load_concurrency)
            ]
            for thread in load_threads:
                thread.start()

            def verify_probes(count: int) -> None:
                """Sampled end-to-end checks through the frontend."""
                for _ in range(count):
                    source, target = pairs[rng.randrange(len(pairs))]
                    try:
                        path, epoch = frontend.route_with_epoch(source, target)
                    except RemoteRouterError:
                        report.errors += 1
                        continue
                    report.verified += 1
                    state = epoch // 2
                    if state >= len(snapshots):
                        report.violations.append(
                            f"epoch {epoch} beyond applied fault state"
                        )
                        continue
                    try:
                        expected = oracle(state).route(source, target)
                        expected_path = expected.path
                    except SemilightError:
                        expected_path = None
                    if path is None or expected_path is None:
                        if (path is None) != (expected_path is None):
                            report.mismatches += 1
                            report.violations.append(
                                f"reachability mismatch {source!r}->{target!r} "
                                f"at state {state}"
                            )
                        continue
                    if (
                        path.hops != expected_path.hops
                        or path.total_cost != expected_path.total_cost
                    ):
                        report.mismatches += 1
                        report.violations.append(
                            f"path mismatch {source!r}->{target!r} "
                            f"at state {state}"
                        )
                        continue
                    cert = check_certificate(
                        snapshots[state], path, source, target
                    )
                    if not cert.ok:
                        report.certificate_failures += 1
                        report.violations.append(
                            f"certificate violation {source!r}->{target!r} "
                            f"at state {state}"
                        )

            def parity_probe() -> None:
                """Direct per-replica routes must agree byte-for-byte."""
                source, target = pairs[rng.randrange(len(pairs))]
                shard = manager.shard_for(source)
                answers = []
                for address in manager.replica_addresses(shard):
                    client = RouterClient(address)
                    try:
                        answers.append(client.route_with_epoch(source, target))
                    finally:
                        client.close()
                baseline = answers[0]
                for answer in answers[1:]:
                    same = (
                        (answer[0] is None) == (baseline[0] is None)
                        and answer[1] == baseline[1]
                        and (
                            answer[0] is None
                            or (
                                answer[0].hops == baseline[0].hops
                                and answer[0].total_cost
                                == baseline[0].total_cost
                            )
                        )
                    )
                    if not same:
                        report.parity_failures += 1
                        report.violations.append(
                            f"replica divergence on shard {shard} for "
                            f"{source!r}->{target!r}"
                        )

            # Warm phase: verified load against the pristine tier.
            verify_probes(self._verify_sample)
            parity_probe()

            # Storm: replay the plan against wall-clock fractions of the
            # budget, verifying after each convergence window.
            begin = time.monotonic()
            total_ops = 0
            try:
                for event in plan.events:
                    wait = begin + event.at * self._seconds - time.monotonic()
                    if wait > 0:
                        time.sleep(wait)
                    ops = event_to_patch_ops(self._network, event)
                    # Dark-link and down-converter residue can make an op
                    # inexpressible in the overlay; the oracle is built
                    # from the injector, so expressibility only affects
                    # the epoch arithmetic, never correctness — and the
                    # restricted kinds here are always expressible.
                    frontend.patch(ops)
                    total_ops += len(ops)
                    injector.apply(event)
                    snapshots.append(injector.network_view())
                    ops_per_state.append(total_ops)
                    report.events_applied += 1
                    report.ops_applied = total_ops
                    if not manager.wait_converged(total_ops, timeout=10.0):
                        report.convergence_failures += 1
                        report.violations.append(
                            f"gossip did not converge after event "
                            f"{report.events_applied} "
                            f"({event.describe()}): {manager.delta_epochs()} "
                            f"!= {total_ops}"
                        )
                    verify_probes(self._verify_sample)
                    parity_probe()
            finally:
                stop_load.set()
                for thread in load_threads:
                    thread.join(timeout=10.0)

            # Drain: the plan ends pristine; the tier must agree.
            if not injector.pristine:
                report.violations.append("plan did not end pristine")
            verify_probes(self._verify_sample)
            parity_probe()
            gossip_totals = {"forwarded": 0, "failed": 0, "duplicates": 0}
            for server in manager.all_servers():
                stats = server._stats()["gossip"]
                for key in gossip_totals:
                    gossip_totals[key] += stats[key]
            report.gossip = gossip_totals
            if gossip_totals["failed"]:
                report.violations.append(
                    f"{gossip_totals['failed']} gossip forward(s) failed"
                )
            frontend.close()

        report.leaked = sorted(set(leaked_segments()) - segments_before)
        if report.leaked:
            report.violations.append(
                f"leaked shared segments: {report.leaked}"
            )
        return report
