"""Shard/replica topology management for the serving tier.

A :class:`ShardManager` boots ``shards × replicas``
:class:`~repro.server.server.RouterServer` processes-worth of serving
capacity for **one** network: every shard serves the *full* network
(sharding partitions query load by source node, not the graph), and
each shard's replicas form a gossip full mesh so a fault ``PATCH``
accepted by any one of them floods to the rest (see
``docs/serving.md``).

Replica isolation is multi-host-style: every replica owns its **own**
shared segment.  The seqlock protocol makes the segment owner the only
writer, so replicas sharing one segment would need a single patch
authority anyway — separate segments keep the replica failure domains
honest (a replica dying cannot corrupt its peers' graph) and make
gossip the real consistency mechanism, exactly as it would be across
machines.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Any, Hashable

from repro.cluster.ring import HashRing
from repro.server.server import RouterServer

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.network import WDMNetwork

__all__ = ["ShardManager"]

NodeId = Hashable


class ShardManager:
    """Boot, wire, and tear down an N-shard × R-replica serving tier.

    Parameters
    ----------
    network:
        The network every replica serves.
    shards / replicas:
        Tier shape; both >= 1.  ``replicas=1`` degenerates to a plain
        sharded tier with no gossip.
    workers:
        Worker processes per replica server.
    heap / debug / request_timeout / drain_timeout:
        Forwarded to every :class:`RouterServer`.
    vnodes:
        Virtual nodes per shard on the placement ring.

    The tier binds on unix-domain sockets (one temp dir per replica);
    ``shards × replicas × workers`` processes run after ``start()``.
    """

    def __init__(
        self,
        network: "WDMNetwork",
        *,
        shards: int = 2,
        replicas: int = 2,
        workers: int = 1,
        heap: str = "flat",
        debug: bool = False,
        request_timeout: float = 120.0,
        drain_timeout: float = 2.0,
        vnodes: int = 64,
    ) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self._network = network
        self.num_shards = shards
        self.num_replicas = replicas
        self._server_kwargs = {
            "workers": workers,
            "heap": heap,
            "debug": debug,
            "request_timeout": request_timeout,
            "drain_timeout": drain_timeout,
        }
        self.ring = HashRing(range(shards), vnodes=vnodes)
        #: ``servers[shard][replica]`` once started.
        self._servers: list[list[RouterServer]] = []
        self._started = False
        self._closed = False

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> "ShardManager":
        """Boot every replica, then wire each shard's gossip full mesh."""
        if self._started:
            raise RuntimeError("tier already started")
        self._started = True
        try:
            for _shard in range(self.num_shards):
                row = []
                for _replica in range(self.num_replicas):
                    server = RouterServer(
                        self._network, uds="", **self._server_kwargs
                    )
                    server.start()
                    row.append(server)
                self._servers.append(row)
        except BaseException:
            self.close()
            raise
        # Peers can only be wired after start(): UDS paths are generated
        # per replica.  Full mesh within a shard; shards never gossip to
        # each other (each receives the PATCH from the frontend).
        for row in self._servers:
            for server in row:
                for peer in row:
                    if peer is not server:
                        server.add_peer(peer.address)
        return self

    def close(self) -> None:
        """Close every replica (idempotent); segments are unlinked."""
        if self._closed:
            return
        self._closed = True
        for row in self._servers:
            for server in row:
                server.close()

    def __enter__(self) -> "ShardManager":
        return self.start() if not self._started else self

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- topology -------------------------------------------------------------

    def shard_for(self, source: NodeId) -> int:
        """The shard index serving queries whose source is *source*."""
        return self.ring.shard_for(source)

    def servers_of(self, shard: int) -> list[RouterServer]:
        return list(self._servers[shard])

    def replica_addresses(self, shard: int) -> list[Any]:
        """Wire addresses of shard *shard*'s replicas, replica order."""
        return [server.address for server in self._servers[shard]]

    def all_servers(self) -> list[RouterServer]:
        return [server for row in self._servers for server in row]

    def segment_names(self) -> list[str]:
        """Every replica's shared-segment name (leak audits)."""
        return [server.segment_name for row in self._servers for server in row]

    # -- convergence ----------------------------------------------------------

    def delta_epochs(self) -> list[list[int]]:
        """``[shard][replica]`` → applied fault-op count, read in-process."""
        return [
            [server._delta.delta_epoch for server in row]
            for row in self._servers
        ]

    def converged(self, expected_ops: int) -> bool:
        """True when every replica has applied exactly *expected_ops*
        fault operations — i.e. gossip has delivered every patch
        everywhere and no patch was double-applied."""
        return all(
            epoch == expected_ops for row in self.delta_epochs() for epoch in row
        )

    def wait_converged(
        self, expected_ops: int, timeout: float = 10.0
    ) -> bool:
        """Poll :meth:`converged` until true or *timeout* elapses.

        Gossip forwarding is synchronous with the PATCH acknowledgement,
        so under normal operation this returns on the first poll; the
        timeout guards against a replica wedged mid-crash.
        """
        deadline = time.monotonic() + timeout
        while True:
            if self.converged(expected_ops):
                return True
            if time.monotonic() >= deadline:
                return False
            time.sleep(0.01)

    def __repr__(self) -> str:
        return (
            f"ShardManager(shards={self.num_shards}, "
            f"replicas={self.num_replicas}, started={self._started})"
        )
