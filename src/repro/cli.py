"""Command-line interface.

```
python -m repro generate ring --nodes 12 --wavelengths 4 -o net.json
python -m repro route net.json 0 6
python -m repro route net.json 0 6 --max-conversions 1 --alternatives 3
python -m repro all-pairs net.json --workers 4
python -m repro sizes net.json
python -m repro provision net.json --load 30 --requests 500 --policy first-fit
python -m repro serve-bench net.json --requests 1000 --workers 4
python -m repro serve net.json --workers 4 --host 127.0.0.1 --port 4500
python -m repro serve net.json --uds "" --bench --requests 200
python -m repro multicast net.json --source 1 --member 4 --member 6
python -m repro multicast --seconds 60 --seed 1998
python -m repro dot net.json --figure fig3 --node 3
python -m repro --version
```

Every subcommand reads/writes the JSON documents of
:mod:`repro.io.serialization`, so pipelines compose: generate a topology,
inspect its auxiliary-graph sizes, route on it, replay traffic over it.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis.counting import measure_sizes
from repro.core.bounded import BoundedConversionRouter
from repro.core.ksp import k_shortest_semilightpaths
from repro.core.network import WDMNetwork
from repro.core.routing import LiangShenRouter
from repro.core.wavelengths import wavelength_name
from repro.exceptions import NoPathError, SemilightError
from repro.io.dot import (
    bipartite_to_dot,
    multigraph_to_dot,
    network_to_dot,
    routing_graph_to_dot,
)
from repro.io.serialization import network_from_json, network_to_json, path_to_json
from repro.server.protocol import valid_ip, valid_port

from repro import __version__

__all__ = [
    "main",
    "build_parser",
    "EXIT_OK",
    "EXIT_ERROR",
    "EXIT_BOUNDS",
    "EXIT_REJECTED",
    "EXIT_DISAGREEMENT",
    "EXIT_VIOLATION",
]

# Unified exit codes across subcommands (documented in docs/verification.md).
EXIT_OK = 0  #: success
EXIT_ERROR = 1  #: usage error, missing file, or no route found
EXIT_BOUNDS = 2  #: `sizes`: an auxiliary-graph size exceeds its paper bound
EXIT_REJECTED = 3  #: `plan`: some demands could not be carried
EXIT_DISAGREEMENT = 4  #: `verify`/`fuzz`: differential oracles disagreed
EXIT_VIOLATION = 5  #: `chaos`: a soak invariant was violated


def _parse_node(raw: str):
    """CLI node ids: integers when they look like integers, else strings."""
    try:
        return int(raw)
    except ValueError:
        return raw


def _load_network(path: str) -> WDMNetwork:
    return network_from_json(Path(path).read_text())


def _format_path(path) -> str:
    hops = " -> ".join(
        f"{hop.tail}[{wavelength_name(hop.wavelength)}]{hop.head}"
        for hop in path.hops
    )
    conversions = "; ".join(
        f"{c.node}: {wavelength_name(c.from_wavelength)}->"
        f"{wavelength_name(c.to_wavelength)}"
        for c in path.conversions()
    )
    lines = [f"cost {path.total_cost:g}  hops {path.num_hops}  {hops}"]
    if conversions:
        lines.append(f"converter settings: {conversions}")
    else:
        lines.append("lightpath: no conversion needed")
    return "\n".join(lines)


def _cmd_route(args: argparse.Namespace) -> int:
    network = _load_network(args.network)
    source = _parse_node(args.source)
    target = _parse_node(args.target)
    try:
        if args.alternatives > 1:
            paths = k_shortest_semilightpaths(
                network, source, target, k=args.alternatives
            )
        elif args.max_conversions is not None:
            router = BoundedConversionRouter(network)
            paths = [router.route(source, target, args.max_conversions).path]
        else:
            paths = [LiangShenRouter(network).route(source, target).path]
    except NoPathError:
        print(f"no semilightpath from {source!r} to {target!r}", file=sys.stderr)
        return EXIT_ERROR
    if args.json:
        print(json.dumps([json.loads(path_to_json(p)) for p in paths], indent=2))
    else:
        for rank, path in enumerate(paths, 1):
            prefix = f"#{rank}: " if len(paths) > 1 else ""
            print(prefix + _format_path(path))
    return EXIT_OK


def _cmd_all_pairs(args: argparse.Namespace) -> int:
    import time

    network = _load_network(args.network)
    router = LiangShenRouter(network, heap=args.heap)
    start = time.perf_counter()
    result = router.route_all_pairs(workers=args.workers)
    elapsed = time.perf_counter() - start
    n = len(network.nodes())
    print(
        f"routed {len(result.paths)} of {n * (n - 1)} ordered pairs "
        f"in {elapsed:.3f}s (workers={args.workers or 1}, heap={args.heap}; "
        f"settled {result.stats.settled}, relaxed {result.stats.relaxations})"
    )
    if args.output:
        document = {
            f"{s} -> {t}": path.total_cost for (s, t), path in result.paths.items()
        }
        Path(args.output).write_text(json.dumps(document, indent=2))
        print(f"wrote {len(document)} pair costs to {args.output}")
    return EXIT_OK


def _cmd_generate(args: argparse.Namespace) -> int:
    from repro.topology.generators import (
        degree_bounded_network,
        grid_network,
        ring_network,
        waxman_network,
    )
    from repro.topology.reference import (
        arpanet_network,
        nsfnet_network,
        paper_figure1_network,
    )

    k = args.wavelengths
    kind = args.kind
    if kind == "ring":
        net = ring_network(args.nodes, k, seed=args.seed)
    elif kind == "grid":
        side = max(2, int(args.nodes**0.5))
        mesh = grid_network(side, side, k, seed=args.seed)
        # Grid labels are (row, col) tuples, which JSON cannot carry;
        # relabel to "row.col" strings for the serialized document.
        net = WDMNetwork(k, mesh.conversion(mesh.nodes()[0]))
        rename = {node: f"{node[0]}.{node[1]}" for node in mesh.nodes()}
        for node in mesh.nodes():
            net.add_node(rename[node], mesh.conversion(node))
        for link in mesh.links():
            net.add_link(rename[link.tail], rename[link.head], dict(link.costs))
    elif kind == "waxman":
        net = waxman_network(args.nodes, k, seed=args.seed)
    elif kind == "degree-bounded":
        net = degree_bounded_network(args.nodes, k, seed=args.seed)
    elif kind == "nsfnet":
        net = nsfnet_network(num_wavelengths=k, seed=args.seed)
    elif kind == "arpanet":
        net = arpanet_network(num_wavelengths=k, seed=args.seed)
    elif kind == "paper-fig1":
        net = paper_figure1_network()
    else:  # pragma: no cover - argparse choices prevent this
        raise ValueError(kind)
    text = network_to_json(net, indent=2)
    if args.output:
        Path(args.output).write_text(text)
        print(f"wrote {net!r} to {args.output}")
    else:
        print(text)
    return EXIT_OK


def _cmd_sizes(args: argparse.Namespace) -> int:
    network = _load_network(args.network)
    report = measure_sizes(network)
    print(report.format())
    return EXIT_OK if report.all_within else EXIT_BOUNDS


def _cmd_provision(args: argparse.Namespace) -> int:
    from repro.wdm.first_fit import FirstFitProvisioner
    from repro.wdm.provisioning import SemilightpathProvisioner
    from repro.wdm.simulation import DynamicSimulation
    from repro.wdm.traffic import TrafficGenerator

    network = _load_network(args.network)
    factory = (
        FirstFitProvisioner if args.policy == "first-fit" else SemilightpathProvisioner
    )
    trace = TrafficGenerator(
        network.nodes(), args.load, args.holding, seed=args.seed
    ).generate(args.requests)
    stats = DynamicSimulation(factory(network)).run(trace)
    print(
        f"policy={args.policy} load={args.load}E requests={stats.offered} "
        f"blocked={stats.blocked} P_block={stats.blocking_probability:.4f} "
        f"hops/conn={stats.mean_hops:.2f} conv/conn={stats.mean_conversions:.2f}"
    )
    return EXIT_OK


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    import random
    import time

    from repro.exceptions import NoPathError, ServiceOverloadError
    from repro.service import RoutingService

    if args.workers < 0:
        print("--workers must be >= 0", file=sys.stderr)
        return EXIT_ERROR
    if args.queue_limit < 1:
        print("--queue-limit must be positive", file=sys.stderr)
        return EXIT_ERROR
    network = _load_network(args.network)
    nodes = network.nodes()
    if len(nodes) < 2:
        print("network needs at least two nodes", file=sys.stderr)
        return EXIT_ERROR
    rng = random.Random(args.seed)
    pairs = []
    while len(pairs) < args.requests:
        source, target = rng.sample(nodes, 2)
        pairs.append((source, target))

    served = blocked = 0
    start = time.perf_counter()
    with RoutingService(
        network, workers=args.workers, queue_limit=args.queue_limit
    ) as service:
        futures = []

        def drain() -> None:
            nonlocal served, blocked
            for future in futures:
                try:
                    future.result(timeout=60.0)
                    served += 1
                except NoPathError:
                    blocked += 1
            futures.clear()

        for index, (source, target) in enumerate(pairs):
            if args.invalidate_every and index and index % args.invalidate_every == 0:
                drain()  # settle in-flight queries against the old epoch
                service.invalidate()
            if args.workers == 0:
                try:
                    service.route(source, target)
                    served += 1
                except NoPathError:
                    blocked += 1
                continue
            try:
                futures.append(service.submit(source, target))
            except ServiceOverloadError:
                drain()
                futures.append(service.submit(source, target))
        drain()
        elapsed = time.perf_counter() - start
        print(
            f"served {served} / blocked {blocked} of {args.requests} queries "
            f"in {elapsed:.3f}s ({args.requests / elapsed:,.0f} qps) "
            f"[workers={args.workers} queue_limit={args.queue_limit} "
            f"epoch={service.epoch}]"
        )
        print()
        print(service.render_metrics())
    return EXIT_OK


def _oracle_matrix(args: argparse.Namespace):
    """The oracle tuple for verify/fuzz, plus the live-server manager.

    With ``--server`` the matrix gains ``liang:server``: every scenario
    is also answered by a live UDS router server (net-zero PATCH churn
    included) and must match byte-for-byte.  The caller owns closing the
    returned manager and auditing shared segments afterwards.
    """
    if not getattr(args, "server", False):
        return None, None
    from repro.verify.oracles import (
        ServerOracleManager,
        default_oracles,
        server_oracle,
    )

    manager = ServerOracleManager(workers=1)
    return default_oracles() + (server_oracle(manager),), manager


def _audit_segments(before: set[str]) -> int:
    """Nonzero (EXIT_VIOLATION) when a run left shared segments behind."""
    from repro.shortestpath.shared import leaked_segments

    leaked = sorted(set(leaked_segments()) - before)
    if leaked:
        print(
            f"error: leaked shared-memory segment(s): {', '.join(leaked)}",
            file=sys.stderr,
        )
        return EXIT_VIOLATION
    return EXIT_OK


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.shortestpath.shared import leaked_segments
    from repro.verify import DifferentialHarness, random_scenario, replay_corpus
    from repro.verify.scenarios import ScenarioLimits

    segments_before = set(leaked_segments())
    oracles, manager = _oracle_matrix(args)
    harness = DifferentialHarness(oracles)
    failures = 0
    replayed = 0
    checked = 0
    try:
        for case, report in replay_corpus(args.corpus, harness):
            replayed += 1
            if not report.ok:
                failures += 1
                print(f"corpus case {case.name} FAILED:")
                print(report.format())
        limits = ScenarioLimits(max_nodes=args.max_nodes)
        for index in range(args.scenarios):
            report = harness.run(
                random_scenario(args.seed + index, limits=limits)
            )
            checked += report.queries_checked
            if not report.ok:
                failures += 1
                print(report.format())
    finally:
        if manager is not None:
            manager.close()
    print(
        f"verify: {replayed} corpus case(s) replayed, {args.scenarios} seeded "
        f"scenario(s) ({checked} queries) through {len(harness.oracles)} oracles; "
        f"{failures} failure(s)"
    )
    leak_status = _audit_segments(segments_before)
    if failures:
        return EXIT_DISAGREEMENT
    return leak_status


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.shortestpath.shared import leaked_segments
    from repro.verify import DifferentialHarness, save_case, shrink_scenario
    from repro.verify.scenarios import ScenarioLimits

    if args.seconds <= 0:
        print("--seconds must be > 0", file=sys.stderr)
        return EXIT_ERROR
    segments_before = set(leaked_segments())
    oracles, manager = _oracle_matrix(args)
    harness = DifferentialHarness(oracles)
    limits = ScenarioLimits(max_nodes=args.max_nodes)
    try:
        result = harness.fuzz(
            seconds=args.seconds, seed=args.seed, limits=limits
        )
        matrix = (
            f"{len(harness.oracles)} oracles (incl. liang:server)"
            if manager is not None
            else f"{len(harness.oracles)} oracles"
        )
        print(
            f"fuzz: {result.scenarios_run} scenario(s), {result.queries_checked} "
            f"queries through {matrix} in "
            f"{result.elapsed:.1f}s (seed {result.seed}); "
            f"{len(result.failures)} failure(s)"
        )
        for report in result.failures:
            print()
            print(report.format())
            scenario = report.scenario
            if not args.no_shrink:
                scenario = shrink_scenario(
                    scenario, lambda s: not harness.run(s).ok
                )
                print(f"shrunk to {scenario!r}")
            disagreements = [
                d.summary() for d in harness.run(scenario).disagreements
            ]
            path = save_case(args.corpus, scenario, disagreements)
            print(f"persisted to {path}")
    finally:
        if manager is not None:
            manager.close()
    leak_status = _audit_segments(segments_before)
    if not result.ok:
        return EXIT_DISAGREEMENT
    return leak_status


def _serve_bench(server, network: WDMNetwork, args: argparse.Namespace) -> int:
    """``repro serve --bench``: latency probe + identity check, then exit.

    Drives *requests* single-pair queries and one full
    ``route_all_pairs`` through a live client, requires byte-identical
    answers to the in-process router, and audits shared segments after
    shutdown.  Exit codes: 4 on any mismatch, 5 on a leaked segment.
    """
    import random
    import time

    from repro.server import RouterClient
    from repro.shortestpath.shared import leaked_segments

    segments_before = set(leaked_segments())
    server.start()
    router = LiangShenRouter(network)
    mismatches = 0
    with RouterClient(server.address) as client:
        nodes = client.snapshot()["sources"]
        rng = random.Random(args.seed)
        pairs = [
            tuple(rng.sample(nodes, 2)) for _ in range(max(0, args.requests))
        ]
        latencies: list[float] = []
        for source, target in pairs:
            begin = time.perf_counter()
            try:
                remote = client.route(source, target)
            except NoPathError:
                remote = None
            latencies.append(time.perf_counter() - begin)
            try:
                local = router.route(source, target).path
            except NoPathError:
                local = None
            if remote != local:
                mismatches += 1
        begin = time.perf_counter()
        remote_all = client.route_all_pairs()
        all_pairs_seconds = time.perf_counter() - begin
        serial_all = router.route_all_pairs()
        if (
            remote_all.paths != serial_all.paths
            or list(remote_all.paths) != list(serial_all.paths)
            or remote_all.stats != serial_all.stats
        ):
            mismatches += 1
        client.shutdown()
    server.close()
    if latencies:
        ordered = sorted(latencies)
        p50 = ordered[len(ordered) // 2]
        p99 = ordered[min(len(ordered) - 1, (len(ordered) * 99) // 100)]
        print(
            f"serve-bench: {len(pairs)} routes, p50 {p50 * 1e6:.0f}us, "
            f"p99 {p99 * 1e6:.0f}us"
        )
    print(
        f"serve-bench: all-pairs over the wire in {all_pairs_seconds:.3f}s "
        f"({len(remote_all.paths)} paths)"
    )
    print(f"serve-bench: {mismatches} mismatch(es) vs in-process router")
    leak_status = _audit_segments(segments_before)
    if mismatches:
        return EXIT_DISAGREEMENT
    return leak_status


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.server import RouterServer

    network = _load_network(args.network)
    if args.workers < 1:
        print("--workers must be >= 1", file=sys.stderr)
        return EXIT_ERROR
    if args.uds is not None:
        server = RouterServer(
            network, workers=args.workers, uds=args.uds, heap=args.heap
        )
    else:
        server = RouterServer(
            network,
            workers=args.workers,
            host=args.host,
            port=args.port,
            heap=args.heap,
        )
    if args.bench:
        return _serve_bench(server, network, args)
    server.start()
    # SIGTERM/SIGINT drain claimed jobs, unlink the segment, and let
    # join() return — a supervisor's TERM leaves no /dev/shm residue.
    server.install_signal_handlers()
    address = server.address
    shown = address if isinstance(address, str) else f"{address[0]}:{address[1]}"
    print(f"router server listening on {shown}")
    print(
        f"segment {server.segment_name}: {server._shared.num_nodes} aux "
        f"nodes, {server._shared.num_edges} edges, {args.workers} worker(s)"
    )
    try:
        server.join()
    except KeyboardInterrupt:
        print("interrupted; shutting down")
    finally:
        server.close()
    return EXIT_OK


def _chaos_networks(args: argparse.Namespace) -> list[tuple[str, WDMNetwork]]:
    """The networks one chaos run soaks: explicit file, else the golden
    corpus scenarios, else the built-in reference topologies."""
    if args.network:
        return [(args.network, _load_network(args.network))]
    from repro.verify.corpus import iter_corpus

    networks = [
        (case.name, case.scenario.network)
        for case in iter_corpus(args.corpus)
        if len(case.scenario.network.nodes()) >= 2
    ]
    if networks:
        return networks
    from repro.topology.reference import nsfnet_network, paper_figure1_network

    return [
        ("paper-fig1", paper_figure1_network()),
        ("nsfnet", nsfnet_network(num_wavelengths=4, seed=args.seed)),
    ]


def _chaos_cluster(
    args: argparse.Namespace,
    networks: "list[tuple[str, WDMNetwork]]",
    budget: float,
) -> int:
    """``repro chaos --cluster``: soak the sharded tier instead of the
    in-process service stack.  Exit 5 on any violation or leaked segment."""
    from repro.cluster import ClusterSoak
    from repro.shortestpath.shared import leaked_segments

    segments_before = set(leaked_segments())
    total_violations = 0
    for index, (name, network) in enumerate(networks):
        soak = ClusterSoak(
            network,
            shards=args.shards,
            replicas=args.replicas,
            workers=1,
            seconds=budget,
            num_faults=args.faults,
            seed=args.seed + index,
        )
        report = soak.run()
        print(f"[{name}] tier {args.shards}x{args.replicas}:")
        summary = report.to_dict()
        for key in (
            "events_applied", "queries", "verified", "mismatches",
            "certificate_failures", "convergence_failures",
            "parity_failures", "gossip",
        ):
            print(f"  {key}: {summary[key]}")
        for violation in report.violations:
            print(f"  VIOLATION: {violation}")
        total_violations += len(report.violations)
        print()
    leak_status = _audit_segments(segments_before)
    if total_violations:
        print(
            f"chaos --cluster: {total_violations} violation(s) across "
            f"{len(networks)} network(s)",
            file=sys.stderr,
        )
        return EXIT_VIOLATION
    print(
        f"chaos --cluster: all invariants held across {len(networks)} "
        f"network(s)"
    )
    return leak_status


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.faults import ChaosSoak

    if args.seconds <= 0:
        print("--seconds must be > 0", file=sys.stderr)
        return EXIT_ERROR
    if args.faults < 1:
        print("--faults must be >= 1", file=sys.stderr)
        return EXIT_ERROR
    networks = _chaos_networks(args)
    budget = args.seconds / len(networks)
    if args.cluster:
        if args.inject_cost_bug:
            print(
                "--inject-cost-bug targets the in-process service stack; "
                "it cannot be combined with --cluster",
                file=sys.stderr,
            )
            return EXIT_ERROR
        return _chaos_cluster(args, networks, budget)
    perturbation = 0.125 if args.inject_cost_bug else 0.0
    total_violations = 0
    caught = persisted = 0
    for index, (name, network) in enumerate(networks):
        soak = ChaosSoak(
            network,
            seed=args.seed + index,
            duration=budget,
            workers=args.workers,
            num_faults=args.faults,
            cost_perturbation=perturbation,
            corpus_dir=args.repro_dir,
            incremental=args.incremental,
        )
        report = soak.run()
        print(f"[{name}]")
        print(report.format())
        print()
        total_violations += report.violations_total
        if report.violations_total:
            caught += 1
        persisted += len(report.persisted)
    if args.inject_cost_bug:
        # Self-test mode: the soak must CATCH the intentionally broken
        # backend (and persist a shrunk repro), or the guardrail is dead.
        if caught == len(networks) and persisted:
            print(
                f"chaos self-test: injected cost bug caught on all "
                f"{len(networks)} network(s), {persisted} repro(s) persisted"
            )
            return EXIT_OK
        print(
            "chaos self-test FAILED: injected cost bug went undetected",
            file=sys.stderr,
        )
        return EXIT_ERROR
    if total_violations:
        print(
            f"chaos: {total_violations} invariant violation(s) across "
            f"{len(networks)} network(s)",
            file=sys.stderr,
        )
        return EXIT_VIOLATION
    print(f"chaos: all invariants held across {len(networks)} network(s)")
    return EXIT_OK


def _cluster_network(args: argparse.Namespace) -> "tuple[str, WDMNetwork]":
    """The tier's network: an explicit file, else a generated sparse WAN."""
    if args.network:
        return args.network, _load_network(args.network)
    from repro.topology.generators import degree_bounded_network

    return (
        f"degree-bounded-{args.nodes}",
        degree_bounded_network(args.nodes, args.wavelengths, seed=args.seed),
    )


def _cmd_cluster(args: argparse.Namespace) -> int:
    """``repro cluster bench|smoke``: the sharded serving tier.

    ``bench`` runs the closed-loop load harness (a concurrency sweep
    totalling ``--queries`` queries on one live tier), prefixed by a
    byte-identity probe against the in-process router, and writes the
    latency/saturation results to ``--output``.  ``smoke`` runs the
    fault-storm soak (:class:`~repro.cluster.chaos.ClusterSoak`).  Exit
    codes: 4 when the identity probe disagrees, 5 on a soak violation
    or a leaked shared segment.
    """
    from repro.shortestpath.shared import leaked_segments

    if args.shards < 1 or args.replicas < 1 or args.workers < 1:
        print("--shards/--replicas/--workers must be >= 1", file=sys.stderr)
        return EXIT_ERROR
    segments_before = set(leaked_segments())
    name, network = _cluster_network(args)

    if args.mode == "smoke":
        from repro.cluster import ClusterSoak

        soak = ClusterSoak(
            network,
            shards=args.shards,
            replicas=args.replicas,
            workers=args.workers,
            seconds=args.seconds,
            num_faults=args.faults,
            seed=args.seed,
        )
        report = soak.run()
        summary = report.to_dict()
        print(
            f"cluster smoke [{name}] {args.shards}x{args.replicas}: "
            f"{summary['events_applied']} event(s), "
            f"{summary['queries']} queries, {summary['verified']} verified"
        )
        for violation in report.violations:
            print(f"VIOLATION: {violation}", file=sys.stderr)
        leak_status = _audit_segments(segments_before)
        if report.violations:
            return EXIT_VIOLATION
        print("cluster smoke: all invariants held")
        return leak_status

    # bench
    import datetime
    import os
    import random
    import time

    from repro.cluster import (
        ClosedLoopLoadGenerator,
        FrontendRouter,
        ShardManager,
        all_pairs_workload,
    )

    sweep = [int(c) for c in args.concurrency.split(",") if c]
    if not sweep or any(c < 1 for c in sweep):
        print("--concurrency must be positive integers", file=sys.stderr)
        return EXIT_ERROR
    if args.queries < 1:
        print("--queries must be >= 1", file=sys.stderr)
        return EXIT_ERROR
    per_point = -(-args.queries // len(sweep))  # ceil: total >= --queries
    pairs = all_pairs_workload(network, seed=args.seed)
    router = LiangShenRouter(network, heap=args.heap)
    runs = []
    mismatches = 0
    begin = time.perf_counter()
    with ShardManager(
        network,
        shards=args.shards,
        replicas=args.replicas,
        workers=args.workers,
        heap=args.heap,
    ) as manager:
        frontend = FrontendRouter(manager)
        # Identity probe: the tier must answer byte-identically to the
        # in-process router before any throughput number means anything.
        rng = random.Random(args.seed)
        probe_pairs = [
            pairs[rng.randrange(len(pairs))] for _ in range(args.probes)
        ]
        for source, target in probe_pairs:
            try:
                remote = frontend.route(source, target)
            except NoPathError:
                remote = None
            try:
                local = router.route(source, target).path
            except NoPathError:
                local = None
            if remote != local:
                mismatches += 1
        print(
            f"cluster bench [{name}] {args.shards}x{args.replicas} "
            f"(workers={args.workers}): identity probe "
            f"{len(probe_pairs)} pair(s), {mismatches} mismatch(es)"
        )
        for concurrency in sweep:
            frontend.metrics.reset()
            generator = ClosedLoopLoadGenerator(
                frontend,
                pairs,
                concurrency=concurrency,
                batch_size=args.batch,
                total_queries=per_point,
            )
            report = generator.run()
            runs.append(report.to_dict())
            latency = report.latency
            print(
                f"  concurrency {concurrency}: {report.queries} queries in "
                f"{report.elapsed:.1f}s = {report.throughput:.0f} q/s, "
                f"p50 {latency['p50']}ms p99 {latency['p99']}ms "
                f"p999 {latency['p999']}ms, shed {report.shed}"
            )
        frontend.close()
    elapsed = time.perf_counter() - begin
    saturation = max((run["throughput_qps"] for run in runs), default=0.0)
    total_queries = sum(run["queries"] for run in runs)
    document = {
        "generated": datetime.datetime.now(datetime.timezone.utc).isoformat(),
        "cpu_count": os.cpu_count(),
        "network": {
            "name": name,
            "nodes": len(network.nodes()),
            "wavelengths": network.num_wavelengths,
        },
        "tier": {
            "shards": args.shards,
            "replicas": args.replicas,
            "workers_per_replica": args.workers,
            "heap": args.heap,
        },
        "identity_probe": {
            "pairs": len(probe_pairs),
            "mismatches": mismatches,
        },
        "total_queries": total_queries,
        "elapsed_s": round(elapsed, 1),
        "saturation_qps": saturation,
        "runs": runs,
    }
    if args.output:
        Path(args.output).write_text(json.dumps(document, indent=2) + "\n")
        print(
            f"cluster bench: {total_queries} queries total, saturation "
            f"{saturation:.0f} q/s; wrote {args.output}"
        )
    leak_status = _audit_segments(segments_before)
    if mismatches:
        return EXIT_DISAGREEMENT
    return leak_status


def _cmd_multicast(args: argparse.Namespace) -> int:
    from repro.multicast import (
        MulticastHarness,
        MulticastRequest,
        MulticastRouter,
        random_multicast_scenario,
        save_multicast_case,
        shrink_multicast_scenario,
    )

    # One-shot route mode: a network file plus --source/--member.
    if args.network:
        if args.source is None or not args.member:
            print("--source and at least one --member are required with a "
                  "network file", file=sys.stderr)
            return EXIT_ERROR
        network = _load_network(args.network)
        splitters = None
        if args.splitter_density is not None:
            from repro.topology.generators import assign_splitters

            splitters = assign_splitters(
                network, density=args.splitter_density, seed=args.seed
            )
        request = MulticastRequest(
            source=_parse_node(args.source),
            members=tuple(_parse_node(m) for m in args.member),
        )
        try:
            result = MulticastRouter(network, splitters=splitters).route(request)
        except NoPathError as exc:
            print(f"multicast blocked: {exc}", file=sys.stderr)
            return EXIT_ERROR
        hierarchy = result.hierarchy
        print(
            f"light-hierarchy cost {hierarchy.total_cost:g}  "
            f"channels {len(hierarchy.channel_keys())}  "
            f"grafts {result.grafts}  taps {result.taps}"
        )
        for member in hierarchy.members:
            print(f"-> {member!r}: " + _format_path(hierarchy.paths[member]))
        from repro.verify.certificate import check_hierarchy_certificate

        cert = check_hierarchy_certificate(
            network, hierarchy, splitters=splitters,
            source=request.source, members=request.members,
        )
        if not cert.ok:
            for violation in cert.violations:
                print(f"certificate violation: {violation}", file=sys.stderr)
            return EXIT_VIOLATION
        print("certificate: valid")
        return EXIT_OK

    if args.seconds <= 0:
        print("--seconds must be > 0", file=sys.stderr)
        return EXIT_ERROR

    # Churn-soak mode: seeded fault + membership churn over the reference
    # topologies until the budget runs out.
    if args.churn:
        import time as _time

        from repro.multicast import MulticastChurnSoak
        from repro.topology.reference import nsfnet_network, paper_figure1_network

        networks = [
            ("paper-fig1", paper_figure1_network()),
            ("nsfnet", nsfnet_network(num_wavelengths=4, seed=args.seed)),
        ]
        deadline = _time.monotonic() + args.seconds
        soaks = violations = blocked_at_end = 0
        round_seed = args.seed
        while True:
            for index, (name, network) in enumerate(networks):
                soak = MulticastChurnSoak(
                    network,
                    seed=round_seed + index,
                    num_groups=args.groups,
                    num_faults=args.faults,
                    num_membership_events=args.faults,
                )
                report = soak.run()
                soaks += 1
                violations += len(report.violations)
                blocked_at_end += report.final_blocked
                if not report.ok:
                    print(f"[{name} seed={round_seed + index}]")
                    print(report.format())
                    print()
            round_seed += len(networks)
            if _time.monotonic() >= deadline:
                break
        if violations or blocked_at_end:
            print(
                f"multicast churn: {violations} certificate violation(s), "
                f"{blocked_at_end} unrecovered group(s) across {soaks} soak(s)",
                file=sys.stderr,
            )
            return EXIT_VIOLATION
        print(
            f"multicast churn: {soaks} soak(s) clean — severed branches "
            f"rerouted, per-epoch certificates valid"
        )
        return EXIT_OK

    # Self-test mode: an intentionally mispriced hierarchy must be caught
    # on every scenario that routed, and at least one failure must shrink
    # and persist.
    if args.inject_cost_bug:
        harness = MulticastHarness(cost_perturbation=0.125)
        missed = routed_scenarios = 0
        persisted = None
        for index in range(args.scenarios):
            scenario = random_multicast_scenario(args.seed + index)
            report = harness.run(scenario)
            if not report.routed:
                continue
            routed_scenarios += 1
            if report.ok:
                missed += 1
                print(f"seed {args.seed + index}: bug went undetected")
            elif persisted is None:
                shrunk = shrink_multicast_scenario(
                    scenario, lambda s: not harness.run(s).ok
                )
                disagreements = tuple(
                    d.summary() for d in harness.run(shrunk).disagreements
                )
                persisted = save_multicast_case(args.corpus, shrunk, disagreements)
                members = max(
                    (len(r.members) for r in shrunk.requests), default=0
                )
                print(
                    f"shrunk to {shrunk.network.num_nodes} node(s), "
                    f"{len(shrunk.requests)} request(s), minimal member "
                    f"set of {members}; persisted to {persisted}"
                )
        if missed == 0 and routed_scenarios and persisted is not None:
            print(
                f"multicast self-test: injected cost bug caught on all "
                f"{routed_scenarios} routed scenario(s)"
            )
            return EXIT_OK
        print(
            "multicast self-test FAILED: injected cost bug went undetected",
            file=sys.stderr,
        )
        return EXIT_ERROR

    # Default: time-budgeted fuzz of the heuristic against the exact
    # small-instance oracle plus the hierarchy certificate.
    harness = MulticastHarness()
    result = harness.fuzz(seconds=args.seconds, seed=args.seed)
    print(
        f"multicast fuzz: {result.scenarios_run} scenario(s), "
        f"{result.requests_checked} request(s) "
        f"({result.oracle_checked} oracle-compared, {result.blocked} "
        f"heuristic-blocked) in {result.elapsed:.1f}s (seed {result.seed}); "
        f"{len(result.failures)} failure(s)"
    )
    for report in result.failures:
        print()
        print(report.format())
        scenario = report.scenario
        if not args.no_shrink:
            scenario = shrink_multicast_scenario(
                scenario, lambda s: not harness.run(s).ok
            )
            print(f"shrunk to {scenario!r}")
        disagreements = tuple(
            d.summary() for d in harness.run(scenario).disagreements
        )
        path = save_multicast_case(args.corpus, scenario, disagreements)
        print(f"persisted to {path}")
    return EXIT_OK if result.ok else EXIT_DISAGREEMENT


def _cmd_plan(args: argparse.Namespace) -> int:
    from repro.topology.traffic_matrices import gravity_demands, uniform_demands
    from repro.wdm.planner import Demand, StaticPlanner

    network = _load_network(args.network)
    if args.demands:
        document = json.loads(Path(args.demands).read_text())
        demands = [
            Demand(d["source"], d["target"], int(d.get("count", 1)))
            for d in document
        ]
    elif args.gravity:
        demands = gravity_demands(network.nodes(), args.gravity, seed=args.seed)
    else:
        demands = uniform_demands(network.nodes(), probability=0.3, seed=args.seed)
    plan = StaticPlanner(
        network, ordering=args.ordering, restarts=args.restarts, seed=args.seed
    ).plan(demands)
    print(
        f"carried {plan.circuits_carried}/{plan.circuits_requested} circuits "
        f"({plan.acceptance_ratio:.0%}) at total cost {plan.total_cost:g}"
    )
    for demand in plan.rejected:
        print(f"  rejected: {demand.source!r} -> {demand.target!r} x{demand.count}")
    return EXIT_OK if not plan.rejected else EXIT_REJECTED


def _cmd_experiments(args: argparse.Namespace) -> int:
    from repro.analysis.experiments import EXPERIMENTS, run_all

    if args.only:
        unknown = [name for name in args.only if name not in EXPERIMENTS]
        if unknown:
            print(
                f"unknown experiments: {unknown}; "
                f"available: {sorted(EXPERIMENTS)}",
                file=sys.stderr,
            )
            return EXIT_ERROR
    report = run_all(scale=args.scale, only=args.only)
    if args.markdown:
        from repro.analysis.reporting import render_markdown

        text = render_markdown(report)
    else:
        text = json.dumps(report, indent=2)
    if args.output:
        Path(args.output).write_text(text)
        print(f"wrote {len(report)} experiment results to {args.output}")
    else:
        print(text)
    return EXIT_OK


def _cmd_dot(args: argparse.Namespace) -> int:
    network = _load_network(args.network)
    figure = args.figure
    if figure == "fig1":
        print(network_to_dot(network))
    elif figure == "fig2":
        print(multigraph_to_dot(network))
    elif figure == "fig3":
        if args.node is None:
            print("--node is required for fig3", file=sys.stderr)
            return EXIT_ERROR
        print(bipartite_to_dot(network, _parse_node(args.node)))
    elif figure == "gst":
        if args.source is None or args.target is None:
            print("--source and --target are required for gst", file=sys.stderr)
            return EXIT_ERROR
        print(
            routing_graph_to_dot(
                network, _parse_node(args.source), _parse_node(args.target)
            )
        )
    return EXIT_OK


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Optimal lightpath/semilightpath routing (Liang & Shen, ICDCS 1998)",
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"repro {__version__}",
        help="print the package version and exit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_route = sub.add_parser("route", help="find an optimal semilightpath")
    p_route.add_argument("network", help="network JSON file")
    p_route.add_argument("source")
    p_route.add_argument("target")
    p_route.add_argument(
        "--max-conversions", type=int, default=None, help="conversion budget"
    )
    p_route.add_argument(
        "--alternatives", type=int, default=1, help="K shortest alternatives"
    )
    p_route.add_argument("--json", action="store_true", help="machine-readable output")
    p_route.set_defaults(fn=_cmd_route)

    p_all = sub.add_parser(
        "all-pairs",
        help="route every ordered pair (Corollary 1), optionally process-parallel",
    )
    p_all.add_argument("network")
    p_all.add_argument(
        "--workers", type=int, default=None,
        help="fan the n tree runs across this many processes (default: serial)",
    )
    p_all.add_argument(
        "--heap", choices=["flat", "binary", "pairing", "fibonacci"],
        default="flat", help="shortest-path kernel",
    )
    p_all.add_argument("-o", "--output", default=None, help="write pair costs JSON")
    p_all.set_defaults(fn=_cmd_all_pairs)

    p_gen = sub.add_parser("generate", help="generate a network JSON document")
    p_gen.add_argument(
        "kind",
        choices=[
            "ring", "grid", "waxman", "degree-bounded",
            "nsfnet", "arpanet", "paper-fig1",
        ],
    )
    p_gen.add_argument("--nodes", type=int, default=16)
    p_gen.add_argument("--wavelengths", type=int, default=4)
    p_gen.add_argument("--seed", type=int, default=0)
    p_gen.add_argument("-o", "--output", default=None)
    p_gen.set_defaults(fn=_cmd_generate)

    p_sizes = sub.add_parser(
        "sizes", help="auxiliary-graph sizes vs the paper's Observation bounds"
    )
    p_sizes.add_argument("network")
    p_sizes.set_defaults(fn=_cmd_sizes)

    p_prov = sub.add_parser("provision", help="dynamic-traffic blocking run")
    p_prov.add_argument("network")
    p_prov.add_argument("--load", type=float, default=20.0, help="Erlang load")
    p_prov.add_argument("--holding", type=float, default=1.0)
    p_prov.add_argument("--requests", type=int, default=300)
    p_prov.add_argument("--seed", type=int, default=0)
    p_prov.add_argument(
        "--policy", choices=["semilightpath", "first-fit"], default="semilightpath"
    )
    p_prov.set_defaults(fn=_cmd_provision)

    p_serve = sub.add_parser(
        "serve-bench",
        help="synthetic query load through the cached RoutingService",
    )
    p_serve.add_argument("network")
    p_serve.add_argument("--requests", type=int, default=1000)
    p_serve.add_argument(
        "--workers", type=int, default=4, help="0 = synchronous serving"
    )
    p_serve.add_argument("--queue-limit", type=int, default=256)
    p_serve.add_argument("--seed", type=int, default=0)
    p_serve.add_argument(
        "--invalidate-every", type=int, default=0, metavar="N",
        help="full cache invalidation every N requests (0 = never)",
    )
    p_serve.set_defaults(fn=_cmd_serve_bench)

    p_srv = sub.add_parser(
        "serve",
        help="persistent shared-memory router server (TCP or UDS)",
    )
    p_srv.add_argument("network")
    p_srv.add_argument(
        "--host", type=valid_ip, default="127.0.0.1",
        help="TCP bind address (IPv4)",
    )
    p_srv.add_argument(
        "--port", type=valid_port, default=0,
        help="TCP port (0 = ephemeral)",
    )
    p_srv.add_argument(
        "--uds", default=None, metavar="PATH",
        help="serve on a unix-domain socket instead of TCP "
        "('' = a generated temp path)",
    )
    p_srv.add_argument(
        "--workers", type=int, default=2, help="warm worker processes"
    )
    p_srv.add_argument("--heap", default="flat", help="tree-run kernel name")
    p_srv.add_argument(
        "--bench", action="store_true",
        help="start, drive a latency/identity probe, shut down, and audit "
        "shared segments (exit 4 on mismatch, 5 on a leaked segment)",
    )
    p_srv.add_argument(
        "--requests", type=int, default=200,
        help="--bench: number of single-pair probes",
    )
    p_srv.add_argument("--seed", type=int, default=0)
    p_srv.set_defaults(fn=_cmd_serve)

    p_verify = sub.add_parser(
        "verify",
        help="replay the golden corpus and a seeded scenario sweep "
        "through the differential oracle matrix",
    )
    p_verify.add_argument(
        "--corpus", default="tests/verify/corpus",
        help="golden corpus directory (missing = empty corpus)",
    )
    p_verify.add_argument(
        "--scenarios", type=int, default=25,
        help="number of fresh seeded scenarios to sweep",
    )
    p_verify.add_argument("--seed", type=int, default=0)
    p_verify.add_argument(
        "--max-nodes", type=int, default=9, help="scenario size ceiling"
    )
    p_verify.add_argument(
        "--server", action="store_true",
        help="add the liang:server oracle: every scenario is also routed "
        "through a live UDS router server (PATCH churn included) and must "
        "answer byte-identically; leaked segments exit 5",
    )
    p_verify.set_defaults(fn=_cmd_verify)

    p_fuzz = sub.add_parser(
        "fuzz",
        help="time-budgeted differential fuzzing; failures are shrunk "
        "and persisted to the corpus",
    )
    p_fuzz.add_argument("--seconds", type=float, default=30.0)
    p_fuzz.add_argument("--seed", type=int, default=0)
    p_fuzz.add_argument(
        "--corpus", default="tests/verify/corpus",
        help="where shrunk counterexamples are written",
    )
    p_fuzz.add_argument(
        "--max-nodes", type=int, default=9, help="scenario size ceiling"
    )
    p_fuzz.add_argument(
        "--no-shrink", action="store_true",
        help="persist failing scenarios unshrunk (faster triage loop)",
    )
    p_fuzz.add_argument(
        "--server", action="store_true",
        help="add the liang:server oracle (live UDS server per scenario, "
        "byte-identical answers required; leaked segments exit 5)",
    )
    p_fuzz.set_defaults(fn=_cmd_fuzz)

    p_chaos = sub.add_parser(
        "chaos",
        help="time-budgeted fault-injection soak asserting serving invariants",
    )
    p_chaos.add_argument(
        "network", nargs="?", default=None,
        help="network JSON file (default: golden corpus networks, else "
        "built-in reference topologies)",
    )
    p_chaos.add_argument(
        "--seconds", type=float, default=30.0,
        help="total wall-clock budget, split across the soaked networks",
    )
    p_chaos.add_argument("--seed", type=int, default=0)
    p_chaos.add_argument(
        "--faults", type=int, default=20,
        help="injected faults per network (recoveries are implied)",
    )
    p_chaos.add_argument(
        "--workers", type=int, default=2, help="query-engine worker threads"
    )
    p_chaos.add_argument(
        "--corpus", default="tests/verify/corpus",
        help="golden corpus whose networks are soaked when no network "
        "file is given",
    )
    p_chaos.add_argument(
        "--repro-dir", default="chaos-repros",
        help="where shrunk violation repros are persisted",
    )
    p_chaos.add_argument(
        "--incremental", action="store_true",
        help="run the epoch cache in incremental (delta-overlay) mode and "
        "parity-check every patched answer against a fresh router",
    )
    p_chaos.add_argument(
        "--inject-cost-bug", action="store_true",
        help="self-test: run with an intentionally mispricing backend and "
        "succeed only if the soak catches and persists it",
    )
    p_chaos.add_argument(
        "--cluster", action="store_true",
        help="soak the sharded serving tier (live RouterServer replicas "
        "with gossip) instead of the in-process service stack",
    )
    p_chaos.add_argument(
        "--shards", type=int, default=2, help="--cluster: shard count"
    )
    p_chaos.add_argument(
        "--replicas", type=int, default=2,
        help="--cluster: replicas per shard",
    )
    p_chaos.set_defaults(fn=_cmd_chaos)

    p_cluster = sub.add_parser(
        "cluster",
        help="sharded, replicated serving tier: closed-loop load bench "
        "or fault-storm smoke",
    )
    sub_cluster = p_cluster.add_subparsers(dest="mode", required=True)
    for mode, mode_help in (
        ("bench", "closed-loop load sweep + identity probe, results to JSON"),
        ("smoke", "fault storm with exact oracles against a live tier"),
    ):
        p_mode = sub_cluster.add_parser(mode, help=mode_help)
        p_mode.add_argument(
            "network", nargs="?", default=None,
            help="network JSON file (default: a generated degree-bounded "
            "WAN, see --nodes/--wavelengths)",
        )
        p_mode.add_argument(
            "--shards", type=int, default=2, help="shard count"
        )
        p_mode.add_argument(
            "--replicas", type=int, default=2, help="replicas per shard"
        )
        p_mode.add_argument(
            "--workers", type=int, default=1,
            help="worker processes per replica",
        )
        p_mode.add_argument(
            "--nodes", type=int, default=32,
            help="generated-network node count",
        )
        p_mode.add_argument(
            "--wavelengths", type=int, default=4,
            help="generated-network wavelength count",
        )
        p_mode.add_argument("--seed", type=int, default=1998)
        p_mode.add_argument("--heap", default="flat", help="tree-run kernel")
        if mode == "bench":
            p_mode.add_argument(
                "--queries", type=int, default=1_000_000,
                help="minimum total queries across the sweep",
            )
            p_mode.add_argument(
                "--concurrency", default="1,2,4,8",
                help="comma-separated closed-loop concurrency sweep",
            )
            p_mode.add_argument(
                "--batch", type=int, default=64,
                help="queries per ROUTE_BATCH frame",
            )
            p_mode.add_argument(
                "--probes", type=int, default=200,
                help="identity-probe pairs vs the in-process router",
            )
            p_mode.add_argument(
                "--output", default="BENCH_serving.json",
                help="result JSON path ('' = don't write)",
            )
        else:
            p_mode.add_argument(
                "--seconds", type=float, default=30.0,
                help="storm wall-clock budget",
            )
            p_mode.add_argument(
                "--faults", type=int, default=8,
                help="faults in the seeded plan (recoveries implied)",
            )
        p_mode.set_defaults(fn=_cmd_cluster, mode=mode)

    p_mc = sub.add_parser(
        "multicast",
        help="light-hierarchy multicast: route one-to-many demands, fuzz "
        "the heuristic against the exact oracle, or soak under churn",
    )
    p_mc.add_argument(
        "network", nargs="?", default=None,
        help="network JSON file for one-shot routing (omit to fuzz)",
    )
    p_mc.add_argument("--source", default=None, help="multicast source node")
    p_mc.add_argument(
        "--member", action="append", default=[], metavar="NODE",
        help="destination member (repeatable)",
    )
    p_mc.add_argument(
        "--splitter-density", type=float, default=None, metavar="D",
        help="fraction of multicast-capable nodes for one-shot routing "
        "(default: all nodes fully capable)",
    )
    p_mc.add_argument(
        "--seconds", type=float, default=30.0,
        help="fuzz/churn wall-clock budget",
    )
    p_mc.add_argument("--seed", type=int, default=0)
    p_mc.add_argument(
        "--corpus", default="tests/multicast/corpus",
        help="where shrunk counterexamples are written",
    )
    p_mc.add_argument(
        "--no-shrink", action="store_true",
        help="persist failing scenarios unshrunk (faster triage loop)",
    )
    p_mc.add_argument(
        "--scenarios", type=int, default=25,
        help="seeded scenarios swept by --inject-cost-bug",
    )
    p_mc.add_argument(
        "--inject-cost-bug", action="store_true",
        help="self-test: misprice every hierarchy by +0.125 and succeed "
        "only if the certificate catches it and a shrunk repro persists",
    )
    p_mc.add_argument(
        "--churn", action="store_true",
        help="fault + membership churn soak instead of fuzzing",
    )
    p_mc.add_argument(
        "--groups", type=int, default=2, help="multicast groups per churn soak"
    )
    p_mc.add_argument(
        "--faults", type=int, default=10,
        help="faults (and membership events) per churn soak",
    )
    p_mc.set_defaults(fn=_cmd_multicast)

    p_plan = sub.add_parser("plan", help="static RWA planning over a demand matrix")
    p_plan.add_argument("network")
    p_plan.add_argument(
        "--demands", default=None,
        help="JSON file: [{source, target, count}, ...]; default: uniform matrix",
    )
    p_plan.add_argument(
        "--gravity", type=int, default=None, metavar="CIRCUITS",
        help="generate a gravity-model matrix with ~CIRCUITS total circuits",
    )
    p_plan.add_argument(
        "--ordering",
        choices=["shortest-first", "longest-first", "given", "random"],
        default="longest-first",
    )
    p_plan.add_argument("--restarts", type=int, default=1)
    p_plan.add_argument("--seed", type=int, default=0)
    p_plan.set_defaults(fn=_cmd_plan)

    p_exp = sub.add_parser(
        "experiments", help="regenerate the EXPERIMENTS.md measurements"
    )
    p_exp.add_argument("--scale", type=int, default=1, help="1 = quick, 2 = fuller")
    p_exp.add_argument(
        "--only", nargs="*", default=None, help="subset of experiment ids"
    )
    p_exp.add_argument("-o", "--output", default=None, help="write JSON here")
    p_exp.add_argument(
        "--markdown", action="store_true", help="render tables instead of JSON"
    )
    p_exp.set_defaults(fn=_cmd_experiments)

    p_dot = sub.add_parser("dot", help="Graphviz DOT export (paper figures)")
    p_dot.add_argument("network")
    p_dot.add_argument(
        "--figure", choices=["fig1", "fig2", "fig3", "gst"], default="fig1"
    )
    p_dot.add_argument("--node", default=None, help="node for fig3")
    p_dot.add_argument("--source", default=None, help="source for gst")
    p_dot.add_argument("--target", default=None, help="target for gst")
    p_dot.set_defaults(fn=_cmd_dot)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except SemilightError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_ERROR
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_ERROR
