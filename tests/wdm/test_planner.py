"""Unit tests for the static RWA planner."""

import pytest

from repro.core.conversion import NoConversion
from repro.core.network import WDMNetwork
from repro.topology.reference import nsfnet_network
from repro.wdm.planner import Demand, Plan, StaticPlanner


class TestDemand:
    def test_validation(self):
        with pytest.raises(ValueError):
            Demand("a", "a")
        with pytest.raises(ValueError):
            Demand("a", "b", count=0)

    def test_plan_counters(self):
        plan = Plan()
        assert plan.acceptance_ratio == 1.0
        assert plan.circuits_requested == 0


class TestPlanner:
    def test_all_fit_when_capacity_ample(self):
        net = nsfnet_network(num_wavelengths=8)
        demands = [Demand("WA", "NY", 2), Demand("CA1", "GA", 1), Demand("TX", "MI", 3)]
        plan = StaticPlanner(net).plan(demands)
        assert plan.acceptance_ratio == 1.0
        assert plan.circuits_carried == 6
        assert not plan.rejected

    def test_routed_paths_are_channel_disjoint(self):
        net = nsfnet_network(num_wavelengths=4)
        demands = [Demand("WA", "NY", 3), Demand("CA2", "NJ", 2)]
        plan = StaticPlanner(net).plan(demands)
        seen = set()
        for paths in plan.routed.values():
            for path in paths:
                for hop in path.hops:
                    channel = (hop.tail, hop.head, hop.wavelength)
                    assert channel not in seen
                    seen.add(channel)

    def test_rejection_when_capacity_exhausted(self):
        net = WDMNetwork(num_wavelengths=1, default_conversion=NoConversion())
        net.add_nodes(["a", "b"])
        net.add_link("a", "b", {0: 1.0})
        plan = StaticPlanner(net).plan([Demand("a", "b", 2)])
        # All-or-nothing: a 2-circuit demand on a 1-channel link rejects.
        assert plan.circuits_carried == 0
        assert plan.rejected == [Demand("a", "b", 2)]

    def test_all_or_nothing_releases_partials(self):
        net = WDMNetwork(num_wavelengths=1, default_conversion=NoConversion())
        net.add_nodes(["a", "b"])
        net.add_link("a", "b", {0: 1.0})
        planner = StaticPlanner(net, ordering="given")
        plan = planner.plan([Demand("a", "b", 2), Demand("a", "b", 1)])
        # The big demand rejects and releases; the small one then fits.
        assert plan.circuits_carried == 1
        assert plan.total_cost == pytest.approx(1.0)

    def test_orderings_validated(self):
        net = nsfnet_network(num_wavelengths=2)
        with pytest.raises(ValueError):
            StaticPlanner(net, ordering="alphabetical")
        with pytest.raises(ValueError):
            StaticPlanner(net, restarts=0)

    def test_shortest_first_orders_by_hops(self):
        net = nsfnet_network(num_wavelengths=8)
        near = Demand("WA", "CA1")   # adjacent
        far = Demand("WA", "NY")     # across the country
        planner = StaticPlanner(net, ordering="shortest-first")
        import random

        ordered = planner._order([far, near], random.Random(0))
        assert ordered[0] == near

    def test_random_restarts_never_worse_than_one_shot(self):
        net = nsfnet_network(num_wavelengths=2)
        demands = [
            Demand("WA", "NY", 2),
            Demand("CA1", "NJ", 2),
            Demand("CA2", "MI", 2),
            Demand("TX", "WA", 2),
            Demand("GA", "UT", 2),
        ]
        single = StaticPlanner(net, ordering="random", restarts=1, seed=5).plan(demands)
        multi = StaticPlanner(net, ordering="random", restarts=8, seed=5).plan(demands)
        assert multi.circuits_carried >= single.circuits_carried

    def test_total_cost_matches_paths(self):
        net = nsfnet_network(num_wavelengths=4)
        plan = StaticPlanner(net).plan([Demand("WA", "NY", 2), Demand("UT", "GA")])
        recomputed = sum(
            p.total_cost for paths in plan.routed.values() for p in paths
        )
        assert plan.total_cost == pytest.approx(recomputed)

    def test_unreachable_demand_rejected_cleanly(self):
        net = WDMNetwork(num_wavelengths=1)
        net.add_nodes(["a", "b", "c"])
        net.add_link("a", "b", {0: 1.0})
        plan = StaticPlanner(net).plan([Demand("a", "c"), Demand("a", "b")])
        assert Demand("a", "c") in plan.rejected
        assert plan.circuits_carried == 1
