"""Unit tests for simulation event logging."""

import pytest

from repro.topology.reference import nsfnet_network
from repro.wdm.events import EventLog
from repro.wdm.provisioning import SemilightpathProvisioner
from repro.wdm.simulation import DynamicSimulation
from repro.wdm.traffic import TrafficGenerator


@pytest.fixture
def run_with_log():
    net = nsfnet_network(num_wavelengths=2)
    log = EventLog()
    trace = TrafficGenerator(net.nodes(), 25.0, 1.0, seed=61).generate(150)
    stats = DynamicSimulation(SemilightpathProvisioner(net), observer=log).run(trace)
    return stats, log


class TestEventLog:
    def test_event_counts_match_stats(self, run_with_log):
        stats, log = run_with_log
        summary = log.summary()
        assert summary.get("admit", 0) == stats.admitted
        assert summary.get("block", 0) == stats.blocked
        assert summary.get("depart", 0) == stats.admitted  # all released

    def test_event_times_ordered_per_kind(self, run_with_log):
        _stats, log = run_with_log
        admit_times = [e["time"] for e in log.of_kind("admit")]
        assert admit_times == sorted(admit_times)

    def test_admit_payload(self, run_with_log):
        _stats, log = run_with_log
        admit = log.of_kind("admit")[0]
        assert admit["cost"] > 0
        assert admit["hops"] >= 1
        assert "connection_id" in admit

    def test_jsonl_round_trip(self, run_with_log):
        _stats, log = run_with_log
        restored = EventLog.from_jsonl(log.to_jsonl())
        assert restored.num_events == log.num_events
        assert restored.events == log.events

    def test_no_observer_still_works(self):
        net = nsfnet_network(num_wavelengths=2)
        trace = TrafficGenerator(net.nodes(), 5.0, 1.0, seed=1).generate(20)
        stats = DynamicSimulation(SemilightpathProvisioner(net)).run(trace)
        assert stats.offered == 20

    def test_path_document_helper(self, paper_net):
        from repro.core.routing import LiangShenRouter

        path = LiangShenRouter(paper_net).route(1, 7).path
        document = EventLog.path_document(path)
        assert document["total_cost"] == 2.0
        assert len(document["hops"]) == 2
