"""Unit tests for the traffic generator."""

import statistics

import pytest

from repro.wdm.traffic import TrafficGenerator


class TestValidation:
    def test_needs_two_nodes(self):
        with pytest.raises(ValueError):
            TrafficGenerator(["only"], 1.0, 1.0)

    def test_positive_rates(self):
        with pytest.raises(ValueError):
            TrafficGenerator(["a", "b"], 0.0, 1.0)
        with pytest.raises(ValueError):
            TrafficGenerator(["a", "b"], 1.0, 0.0)


class TestStream:
    def test_deterministic(self):
        a = TrafficGenerator(["a", "b", "c"], 2.0, 1.0, seed=5).generate(20)
        b = TrafficGenerator(["a", "b", "c"], 2.0, 1.0, seed=5).generate(20)
        assert a == b

    def test_different_seeds_differ(self):
        a = TrafficGenerator(["a", "b", "c"], 2.0, 1.0, seed=1).generate(20)
        b = TrafficGenerator(["a", "b", "c"], 2.0, 1.0, seed=2).generate(20)
        assert a != b

    def test_arrivals_increase(self):
        trace = TrafficGenerator(["a", "b"], 3.0, 1.0, seed=0).generate(50)
        times = [r.arrival_time for r in trace]
        assert times == sorted(times)
        assert all(t > 0 for t in times)

    def test_endpoints_distinct(self):
        trace = TrafficGenerator(["a", "b", "c", "d"], 1.0, 1.0, seed=0).generate(100)
        assert all(r.source != r.target for r in trace)

    def test_request_ids_sequential(self):
        trace = TrafficGenerator(["a", "b"], 1.0, 1.0, seed=0).generate(10)
        assert [r.request_id for r in trace] == list(range(1, 11))

    def test_departure_time(self):
        trace = TrafficGenerator(["a", "b"], 1.0, 1.0, seed=0).generate(5)
        for r in trace:
            assert r.departure_time == pytest.approx(r.arrival_time + r.holding_time)


class TestStatistics:
    def test_mean_interarrival_matches_rate(self):
        rate = 4.0
        trace = TrafficGenerator(["a", "b"], rate, 1.0, seed=42).generate(4000)
        gaps = [
            b.arrival_time - a.arrival_time for a, b in zip(trace, trace[1:])
        ]
        assert statistics.mean(gaps) == pytest.approx(1.0 / rate, rel=0.1)

    def test_mean_holding_matches(self):
        trace = TrafficGenerator(["a", "b"], 1.0, 2.5, seed=42).generate(4000)
        assert statistics.mean(r.holding_time for r in trace) == pytest.approx(
            2.5, rel=0.1
        )

    def test_offered_load(self):
        gen = TrafficGenerator(["a", "b"], 4.0, 2.0, seed=0)
        assert gen.offered_load_erlang == 8.0


class TestPairSampler:
    def test_custom_sampler_used(self):
        gen = TrafficGenerator(
            ["a", "b", "c"],
            1.0,
            1.0,
            seed=0,
            pair_sampler=lambda rng: ("a", "c"),
        )
        trace = gen.generate(10)
        assert all((r.source, r.target) == ("a", "c") for r in trace)
