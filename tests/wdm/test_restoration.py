"""Unit tests for fiber-cut restoration."""

import pytest

from repro.core.conversion import FixedCostConversion, NoConversion
from repro.core.network import WDMNetwork
from repro.exceptions import UnknownLinkError
from repro.topology.reference import cost239_network, nsfnet_network
from repro.wdm.provisioning import SemilightpathProvisioner
from repro.wdm.restoration import cut_fiber, restore, restore_channels


def ring5() -> WDMNetwork:
    net = WDMNetwork(num_wavelengths=2, default_conversion=FixedCostConversion(0.1))
    for i in range(5):
        net.add_node(i)
    for i in range(5):
        a, b = i, (i + 1) % 5
        net.add_link(a, b, {0: 1.0, 1: 1.0})
        net.add_link(b, a, {0: 1.0, 1: 1.0})
    return net


class TestCutFiber:
    def test_identifies_victims(self):
        prov = SemilightpathProvisioner(ring5())
        conn = prov.establish(0, 2)  # takes 0-1-2
        assert conn.path.nodes() == [0, 1, 2]
        assert cut_fiber(prov, 0, 1) == [conn]
        assert cut_fiber(prov, 2, 3) == []

    def test_either_direction_counts(self):
        prov = SemilightpathProvisioner(ring5())
        conn = prov.establish(0, 2)
        assert cut_fiber(prov, 1, 0) == [conn]  # reversed fiber name

    def test_unknown_fiber(self):
        prov = SemilightpathProvisioner(ring5())
        with pytest.raises(UnknownLinkError):
            cut_fiber(prov, 0, 3)


class TestRestore:
    def test_reroutes_around_the_cut(self):
        prov = SemilightpathProvisioner(ring5())
        prov.establish(0, 2)
        report = restore(prov, 0, 1)
        assert len(report.affected) == 1
        assert len(report.restored) == 1
        assert not report.lost
        new = report.restored[0]
        assert new.path.nodes() == [0, 4, 3, 2]  # the long way round
        assert report.restoration_ratio == 1.0
        assert report.extra_cost > 0  # 3 hops instead of 2

    def test_unaffected_connections_untouched(self):
        prov = SemilightpathProvisioner(ring5())
        prov.establish(0, 2)
        safe = prov.establish(3, 4)
        restore(prov, 0, 1)
        assert safe in prov.active_connections()

    def test_lost_when_no_alternative(self):
        net = WDMNetwork(num_wavelengths=1, default_conversion=NoConversion())
        net.add_nodes(["a", "b"])
        net.add_link("a", "b", {0: 1.0})
        prov = SemilightpathProvisioner(net)
        prov.establish("a", "b")
        report = restore(prov, "a", "b")
        assert len(report.lost) == 1
        assert report.restoration_ratio == 0.0
        assert prov.num_active == 0

    def test_restored_avoid_surviving_reservations(self):
        """Restoration must not steal channels from survivors."""
        net = ring5()
        prov = SemilightpathProvisioner(net)
        prov.establish(0, 2)
        survivor = prov.establish(0, 4)  # direct 0-4 hop (λ free)
        report = restore(prov, 0, 1)
        restored = report.restored[0]
        survivor_channels = {
            (h.tail, h.head, h.wavelength) for h in survivor.path.hops
        }
        restored_channels = {
            (h.tail, h.head, h.wavelength) for h in restored.path.hops
        }
        assert not (survivor_channels & restored_channels)

    def test_no_victims_noop(self):
        prov = SemilightpathProvisioner(ring5())
        prov.establish(2, 4)
        report = restore(prov, 0, 1)
        assert report.restoration_ratio == 1.0
        assert not report.affected
        assert prov.num_active == 1

    def test_realistic_wan_restoration_ratio(self):
        """On a dense mesh most victims restore."""
        net = cost239_network(num_wavelengths=4)
        prov = SemilightpathProvisioner(net)
        import itertools
        import random

        rng = random.Random(3)
        pairs = list(itertools.permutations(net.nodes(), 2))
        for s, t in rng.sample(pairs, 25):
            prov.try_establish(s, t)
        before = prov.num_active
        report = restore(prov, "London", "Paris")
        assert report.restoration_ratio >= 0.8
        assert prov.num_active == before - len(report.lost)

    def test_nsfnet_cut_reported_consistently(self):
        net = nsfnet_network(num_wavelengths=3)
        prov = SemilightpathProvisioner(net)
        for s, t in [("WA", "NY"), ("CA1", "GA"), ("TX", "MI"), ("WA", "DC")]:
            prov.establish(s, t)
        report = restore(prov, "IL", "PA")
        assert len(report.affected) == len(report.restored) + len(report.lost)


class TestRestoreChannels:
    def test_reroutes_victims_of_a_single_channel(self):
        prov = SemilightpathProvisioner(ring5())
        conn = prov.establish(0, 2)  # takes 0-1-2
        hop = conn.path.hops[0]
        report = restore_channels(
            prov, [(hop.tail, hop.head, hop.wavelength)]
        )
        assert report.affected == [conn]
        assert len(report.restored) == 1
        assert not report.lost
        assert report.fiber is None
        assert report.channels == ((hop.tail, hop.head, hop.wavelength),)
        # The replacement avoids the failed channel.
        restored_channels = {
            (h.tail, h.head, h.wavelength) for h in report.restored[0].path.hops
        }
        assert (hop.tail, hop.head, hop.wavelength) not in restored_channels

    def test_sibling_wavelength_survives(self):
        """Dropping λ0 on one link must not disturb a λ1 connection there."""
        prov = SemilightpathProvisioner(ring5())
        first = prov.establish(0, 2)  # grabs λ on 0-1 and 1-2
        second = prov.establish(0, 2)  # forced onto the other wavelength
        victim_hop = first.path.hops[0]
        report = restore_channels(
            prov, [(victim_hop.tail, victim_hop.head, victim_hop.wavelength)]
        )
        assert second in prov.active_connections()
        assert second not in report.affected

    def test_lost_when_no_residual_capacity(self):
        net = WDMNetwork(num_wavelengths=1, default_conversion=NoConversion())
        net.add_nodes(["a", "b"])
        net.add_link("a", "b", {0: 1.0})
        prov = SemilightpathProvisioner(net)
        prov.establish("a", "b")
        report = restore_channels(prov, [("a", "b", 0)])
        assert len(report.lost) == 1
        assert prov.num_active == 0

    def test_no_victims_noop(self):
        prov = SemilightpathProvisioner(ring5())
        conn = prov.establish(0, 2)
        free_wavelength = next(
            w
            for w in prov.network.link(3, 4).costs
            if (3, 4, w)
            not in {(h.tail, h.head, h.wavelength) for h in conn.path.hops}
        )
        report = restore_channels(prov, [(3, 4, free_wavelength)])
        assert not report.affected
        assert report.restoration_ratio == 1.0
        assert prov.num_active == 1

    def test_unknown_link_rejected(self):
        prov = SemilightpathProvisioner(ring5())
        with pytest.raises(UnknownLinkError):
            restore_channels(prov, [(0, 3, 0)])
