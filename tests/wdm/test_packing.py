"""Unit tests for wavelength-packing policies in the provisioner."""

import pytest

from repro.core.network import WDMNetwork
from repro.core.conversion import NoConversion
from repro.topology.reference import nsfnet_network
from repro.wdm.provisioning import SemilightpathProvisioner
from repro.wdm.simulation import DynamicSimulation
from repro.wdm.traffic import TrafficGenerator


class TestPolicyValidation:
    def test_unknown_policy_rejected(self, paper_net):
        with pytest.raises(ValueError):
            SemilightpathProvisioner(paper_net, packing="random")

    @pytest.mark.parametrize("packing", ["none", "most-used", "least-used"])
    def test_policies_construct(self, paper_net, packing):
        SemilightpathProvisioner(paper_net, packing=packing)


class TestTieBreaking:
    def _two_channel_net(self):
        """Two equal-cost wavelengths on a 2-hop line; no conversion so a
        connection stays on one λ end-to-end."""
        net = WDMNetwork(num_wavelengths=2, default_conversion=NoConversion())
        net.add_nodes(["a", "b", "c"])
        net.add_link("a", "b", {0: 1.0, 1: 1.0})
        net.add_link("b", "c", {0: 1.0, 1: 1.0})
        return net

    def test_most_used_packs_onto_busy_wavelength(self):
        net = self._two_channel_net()
        prov = SemilightpathProvisioner(net, packing="most-used")
        first = prov.establish("a", "b")
        lam = first.path.wavelengths()[0]
        # The b->c hop is untouched; most-used must pick the same λ.
        second = prov.establish("b", "c")
        assert second.path.wavelengths() == [lam]

    def test_least_used_spreads(self):
        net = self._two_channel_net()
        prov = SemilightpathProvisioner(net, packing="least-used")
        first = prov.establish("a", "b")
        lam = first.path.wavelengths()[0]
        second = prov.establish("b", "c")
        assert second.path.wavelengths() == [1 - lam]

    @pytest.mark.parametrize("packing", ["most-used", "least-used"])
    def test_perturbation_only_breaks_ties(self, packing):
        """For one admission against a *fixed* occupancy state, the biased
        policy's path must cost exactly the unbiased optimum (the nudges
        are below every real cost difference).

        Note this is a per-decision property: over a whole trace the
        occupancy states diverge between policies, so aggregate costs may
        legitimately differ.
        """
        net = nsfnet_network(num_wavelengths=3)
        seed_trace = TrafficGenerator(net.nodes(), 10.0, 10.0, seed=31).generate(25)
        plain = SemilightpathProvisioner(net)
        biased = SemilightpathProvisioner(net, packing=packing)
        # Drive both to the SAME occupancy state.
        for request in seed_trace:
            admitted = plain.try_establish(request.source, request.target)
            if admitted is None:
                continue
            # Mirror the exact channels into the biased provisioner.
            biased.state.reserve_path(admitted.path)
        # Now compare a single decision on identical states.
        for s, t in [("WA", "NY"), ("CA2", "NJ"), ("UT", "GA")]:
            expected = plain.try_establish(s, t)
            actual = biased.try_establish(s, t)
            if expected is None:
                assert actual is None
                continue
            assert actual is not None
            assert actual.path.total_cost == pytest.approx(
                expected.path.total_cost
            )
            # Undo so each pair sees the same state.
            plain.teardown(expected)
            biased.teardown(actual)


class TestBlockingEffect:
    def test_most_used_never_much_worse_than_spread(self):
        """Statistical check at moderate load: packing should not lose to
        spreading by more than noise (classically it wins)."""
        net = nsfnet_network(num_wavelengths=3)
        trace = TrafficGenerator(net.nodes(), 30.0, 1.0, seed=37).generate(500)
        packed = DynamicSimulation(
            SemilightpathProvisioner(net, packing="most-used")
        ).run(trace)
        spread = DynamicSimulation(
            SemilightpathProvisioner(net, packing="least-used")
        ).run(trace)
        assert packed.blocked <= spread.blocked + 10
