"""Unit tests for the first-fit baseline provisioner."""

import pytest

from repro.core.network import WDMNetwork
from repro.exceptions import NoPathError
from repro.topology.reference import nsfnet_network
from repro.wdm.first_fit import FirstFitProvisioner


@pytest.fixture
def prov():
    return FirstFitProvisioner(nsfnet_network(num_wavelengths=3))


class TestFirstFit:
    def test_picks_lowest_index(self, prov):
        conn = prov.establish("WA", "NY")
        assert set(conn.path.wavelengths()) == {0}

    def test_wavelength_continuity(self, prov):
        for _ in range(3):
            conn = prov.try_establish("WA", "NY")
            if conn is None:
                break
            assert len(set(conn.path.wavelengths())) == 1  # single λ end-to-end

    def test_no_conversions_ever(self, prov):
        conn = prov.establish("WA", "GA")
        assert conn.path.num_conversions == 0

    def test_fixed_route_is_cached(self, prov):
        a = prov.establish("WA", "NY")
        b = prov.establish("WA", "NY")
        assert a.path.nodes() == b.path.nodes()  # same physical route
        assert a.path.wavelengths() != b.path.wavelengths()

    def test_blocks_when_wavelengths_exhausted(self, prov):
        admitted = 0
        while prov.try_establish("WA", "NY") is not None:
            admitted += 1
            assert admitted < 50, "should have blocked by now"
        assert admitted == 3  # k = 3 wavelengths on the fixed route

    def test_teardown_recycles(self, prov):
        conns = []
        while True:
            c = prov.try_establish("WA", "NY")
            if c is None:
                break
            conns.append(c)
        prov.teardown(conns[0])
        assert prov.try_establish("WA", "NY") is not None

    def test_unroutable_pair(self):
        net = WDMNetwork(num_wavelengths=2)
        net.add_nodes(["a", "b"])
        prov = FirstFitProvisioner(net)
        with pytest.raises(NoPathError):
            prov.establish("a", "b")

    def test_same_endpoints_rejected(self, prov):
        with pytest.raises(ValueError):
            prov.establish("WA", "WA")

    def test_skips_partially_available_wavelengths(self):
        """First-fit must skip a wavelength missing on any route link."""
        net = WDMNetwork(num_wavelengths=2)
        net.add_nodes(["a", "b", "c"])
        net.add_link("a", "b", {0: 1.0, 1: 1.0})
        net.add_link("b", "c", {1: 1.0})  # λ1 missing here
        prov = FirstFitProvisioner(net)
        conn = prov.establish("a", "c")
        assert conn.path.wavelengths() == [1, 1]
