"""Unit tests for the dynamic-traffic simulation."""

import pytest

from repro.topology.reference import nsfnet_network
from repro.wdm.first_fit import FirstFitProvisioner
from repro.wdm.provisioning import SemilightpathProvisioner
from repro.wdm.simulation import DynamicSimulation
from repro.wdm.traffic import TrafficGenerator, TrafficRequest


def make_trace(net, rate, count, seed=7):
    return TrafficGenerator(net.nodes(), rate, 1.0, seed=seed).generate(count)


class TestAccounting:
    def test_offered_equals_admitted_plus_blocked(self):
        net = nsfnet_network(num_wavelengths=2)
        stats = DynamicSimulation(SemilightpathProvisioner(net)).run(
            make_trace(net, 30.0, 200)
        )
        assert stats.offered == 200
        assert stats.admitted + stats.blocked == stats.offered

    def test_all_connections_released_at_end(self):
        net = nsfnet_network(num_wavelengths=2)
        prov = SemilightpathProvisioner(net)
        DynamicSimulation(prov).run(make_trace(net, 30.0, 200))
        assert prov.num_active == 0
        assert prov.state.num_occupied == 0

    def test_zero_load_zero_blocking(self):
        net = nsfnet_network(num_wavelengths=4)
        stats = DynamicSimulation(SemilightpathProvisioner(net)).run(
            make_trace(net, 0.01, 30)
        )
        assert stats.blocking_probability == 0.0

    def test_empty_trace(self):
        net = nsfnet_network(num_wavelengths=2)
        stats = DynamicSimulation(SemilightpathProvisioner(net)).run([])
        assert stats.offered == 0
        assert stats.blocking_probability == 0.0

    def test_means(self):
        net = nsfnet_network(num_wavelengths=4)
        stats = DynamicSimulation(SemilightpathProvisioner(net)).run(
            make_trace(net, 5.0, 100)
        )
        assert stats.mean_hops >= 1.0
        assert stats.mean_cost >= stats.mean_hops  # unit link costs + conv
        assert stats.peak_active >= 1


class TestDepartures:
    def test_resources_recycle(self):
        """Sequential non-overlapping requests on a bottleneck never block."""
        net = nsfnet_network(num_wavelengths=1)
        nodes = net.nodes()
        trace = [
            TrafficRequest(
                request_id=i,
                arrival_time=float(10 * i),
                holding_time=1.0,
                source=nodes[0],
                target=nodes[-1],
            )
            for i in range(20)
        ]
        stats = DynamicSimulation(SemilightpathProvisioner(net)).run(trace)
        assert stats.blocked == 0

    def test_overlapping_requests_block_on_bottleneck(self):
        net = nsfnet_network(num_wavelengths=1)
        nodes = net.nodes()
        trace = [
            TrafficRequest(
                request_id=i,
                arrival_time=0.5,
                holding_time=100.0,
                source=nodes[0],
                target=nodes[1],
            )
            for i in range(30)
        ]
        stats = DynamicSimulation(SemilightpathProvisioner(net)).run(trace)
        assert stats.blocked > 0


class TestPolicyComparison:
    def test_semilightpath_blocks_no_more_than_first_fit(self):
        """On identical traces the conversion-capable optimal router should
        not lose to fixed-path first-fit (the RWA benchmark's headline)."""
        net = nsfnet_network(num_wavelengths=3)
        trace = make_trace(net, 25.0, 400, seed=13)
        semilight = DynamicSimulation(SemilightpathProvisioner(net)).run(trace)
        first_fit = DynamicSimulation(FirstFitProvisioner(net)).run(trace)
        assert semilight.blocked <= first_fit.blocked

    def test_blocking_increases_with_load(self):
        net = nsfnet_network(num_wavelengths=2)
        low = DynamicSimulation(SemilightpathProvisioner(net)).run(
            make_trace(net, 5.0, 300, seed=3)
        )
        high = DynamicSimulation(SemilightpathProvisioner(net)).run(
            make_trace(net, 60.0, 300, seed=3)
        )
        assert high.blocking_probability >= low.blocking_probability
