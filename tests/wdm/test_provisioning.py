"""Unit tests for the semilightpath provisioner."""

import pytest

from repro.exceptions import NoPathError, ReservationError
from repro.topology.reference import paper_figure1_network
from repro.wdm.provisioning import SemilightpathProvisioner


@pytest.fixture
def prov():
    return SemilightpathProvisioner(paper_figure1_network())


class TestEstablishTeardown:
    def test_establish_reserves_channels(self, prov):
        conn = prov.establish(1, 7)
        assert prov.num_active == 1
        for hop in conn.path.hops:
            assert not prov.state.is_free(hop.tail, hop.head, hop.wavelength)

    def test_teardown_releases(self, prov):
        conn = prov.establish(1, 7)
        prov.teardown(conn)
        assert prov.num_active == 0
        assert prov.state.num_occupied == 0

    def test_double_teardown_rejected(self, prov):
        conn = prov.establish(1, 7)
        prov.teardown(conn)
        with pytest.raises(ReservationError):
            prov.teardown(conn)

    def test_connection_ids_unique(self, prov):
        a = prov.establish(1, 7)
        b = prov.establish(5, 7)
        assert a.connection_id != b.connection_id

    def test_path_costs_refer_to_full_network(self, prov):
        conn = prov.establish(1, 7)
        conn.path.validate(prov.network)


class TestResidualRouting:
    def test_later_connections_avoid_taken_channels(self, prov):
        first = prov.establish(1, 7)
        second = prov.establish(1, 7)
        used_first = {(h.tail, h.head, h.wavelength) for h in first.path.hops}
        used_second = {(h.tail, h.head, h.wavelength) for h in second.path.hops}
        assert not (used_first & used_second)

    def test_exhaustion_blocks(self, prov):
        # Λ(<4,5>) = {λ3} only: the 4->5 bottleneck carries one connection.
        first = prov.establish(4, 5)
        assert first.path.num_hops == 1
        with pytest.raises(NoPathError):
            prov.establish(4, 5)

    def test_release_unblocks(self, prov):
        first = prov.establish(4, 5)
        prov.teardown(first)
        second = prov.establish(4, 5)  # must succeed again
        assert second.path.num_hops == 1

    def test_try_establish_returns_none_when_blocked(self, prov):
        prov.establish(4, 5)
        assert prov.try_establish(4, 5) is None

    def test_residual_network_removes_occupied(self, prov):
        prov.establish(4, 5)
        residual = prov.residual_network()
        assert residual.available_wavelengths(4, 5) == frozenset()
        assert prov.network.available_wavelengths(4, 5) == frozenset({2})

    def test_conversion_rescues_blocked_lightpath(self):
        """Semilightpath routing admits where pure lightpaths cannot."""
        from repro.core.conversion import FixedCostConversion
        from repro.core.network import WDMNetwork

        net = WDMNetwork(num_wavelengths=2, default_conversion=FixedCostConversion(0.1))
        net.add_nodes(["a", "b", "c"])
        net.add_link("a", "b", {0: 1.0, 1: 1.0})
        net.add_link("b", "c", {0: 1.0, 1: 1.0})
        prov = SemilightpathProvisioner(net)
        # Occupy λ1 on a->b and λ2 on b->c: no continuous wavelength left.
        prov.state.reserve_channels([("a", "b", 0), ("b", "c", 1)])
        conn = prov.establish("a", "c")
        assert conn.path.wavelengths() == [1, 0]
        assert conn.path.num_conversions == 1


class TestActiveBookkeeping:
    def test_active_connections_snapshot(self, prov):
        a = prov.establish(1, 7)
        conns = prov.active_connections()
        assert conns == [a]
        conns.clear()  # mutating the snapshot must not affect the provisioner
        assert prov.num_active == 1
