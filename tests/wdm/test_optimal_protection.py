"""Unit tests for jointly-optimal channel-disjoint pairs (min-cost flow)."""

import pytest

from repro.core.conversion import FixedCostConversion, NoConversion
from repro.core.network import WDMNetwork
from repro.exceptions import NoPathError
from repro.wdm.optimal_protection import route_optimal_channel_disjoint_pair
from repro.wdm.protection import route_disjoint_pair


def trap_network() -> WDMNetwork:
    """The classic trap: the single-path optimum destroys all backups.

    s->a->b->t is the cheapest path (3), but removing it leaves s->b and
    a->t stranded.  The only disjoint pair is {s-a-t, s-b-t} (total 10).
    """
    net = WDMNetwork(num_wavelengths=1, default_conversion=NoConversion())
    for node in "sabt":
        net.add_node(node)
    net.add_link("s", "a", {0: 1.0})
    net.add_link("a", "b", {0: 1.0})
    net.add_link("b", "t", {0: 1.0})
    net.add_link("s", "b", {0: 4.0})
    net.add_link("a", "t", {0: 4.0})
    return net


class TestTrapTopology:
    def test_apf_fails_on_the_trap(self):
        with pytest.raises(NoPathError):
            route_disjoint_pair(trap_network(), "s", "t", disjointness="channel")

    def test_optimal_solves_the_trap(self):
        pair = route_optimal_channel_disjoint_pair(trap_network(), "s", "t")
        assert not pair.shares_channels()
        assert pair.total_cost == pytest.approx(10.0)
        routes = {tuple(pair.working.nodes()), tuple(pair.backup.nodes())}
        assert routes == {("s", "a", "t"), ("s", "b", "t")}

    def test_working_leg_individually_suboptimal(self):
        """Joint optimality means neither leg is the single-path optimum."""
        from repro.core.routing import LiangShenRouter

        net = trap_network()
        single = LiangShenRouter(net).route("s", "t").cost
        pair = route_optimal_channel_disjoint_pair(net, "s", "t")
        assert pair.working.total_cost > single


class TestGeneralBehavior:
    def test_matches_apf_when_no_trap(self):
        """On a clean diamond both methods find the same pair."""
        net = WDMNetwork(num_wavelengths=1, default_conversion=NoConversion())
        for node in "sabt":
            net.add_node(node)
        net.add_link("s", "a", {0: 1.0})
        net.add_link("a", "t", {0: 1.0})
        net.add_link("s", "b", {0: 2.0})
        net.add_link("b", "t", {0: 2.0})
        apf = route_disjoint_pair(net, "s", "t", disjointness="channel")
        opt = route_optimal_channel_disjoint_pair(net, "s", "t")
        assert opt.total_cost == pytest.approx(apf.total_cost)

    def test_wavelength_level_disjointness(self):
        """Two wavelengths on one fiber support a channel-disjoint pair."""
        net = WDMNetwork(num_wavelengths=2, default_conversion=FixedCostConversion(0.1))
        net.add_nodes(["s", "m", "t"])
        net.add_link("s", "m", {0: 1.0, 1: 2.0})
        net.add_link("m", "t", {0: 1.0, 1: 2.0})
        pair = route_optimal_channel_disjoint_pair(net, "s", "t")
        assert not pair.shares_channels()
        assert pair.shares_links()
        assert pair.total_cost == pytest.approx(2.0 + 4.0)

    def test_no_pair_raises(self):
        net = WDMNetwork(num_wavelengths=1, default_conversion=NoConversion())
        net.add_nodes(["s", "t"])
        net.add_link("s", "t", {0: 1.0})
        with pytest.raises(NoPathError):
            route_optimal_channel_disjoint_pair(net, "s", "t")

    def test_totally_disconnected_raises(self):
        net = WDMNetwork(num_wavelengths=1)
        net.add_nodes(["s", "t"])
        with pytest.raises(NoPathError):
            route_optimal_channel_disjoint_pair(net, "s", "t")

    def test_pair_costs_sum_to_flow_cost(self, paper_net):
        pair = route_optimal_channel_disjoint_pair(paper_net, 1, 7)
        # Both legs priced under Eq. (1) on the full network.
        pair.working.validate(paper_net)
        pair.backup.validate(paper_net)
        assert pair.working.total_cost <= pair.backup.total_cost

    @pytest.mark.parametrize("trial", range(12))
    def test_never_worse_than_apf(self, trial):
        """When APF finds a pair, the MCF pair's total is <= APF's."""
        from tests.conftest import make_random_net

        net = make_random_net(8800 + trial, max_nodes=8, max_k=3)
        nodes = net.nodes()
        try:
            apf = route_disjoint_pair(net, nodes[0], nodes[-1], disjointness="channel")
        except NoPathError:
            return
        opt = route_optimal_channel_disjoint_pair(net, nodes[0], nodes[-1])
        assert opt.total_cost <= apf.total_cost + 1e-9
        assert not opt.shares_channels()
