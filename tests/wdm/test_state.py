"""Unit tests for the wavelength occupancy ledger."""

import pytest

from repro.core.semilightpath import Semilightpath
from repro.exceptions import ReservationError, UnknownLinkError
from repro.wdm.state import WavelengthState


@pytest.fixture
def state(paper_net):
    return WavelengthState(paper_net)


class TestQueries:
    def test_initially_all_free(self, state):
        assert state.num_occupied == 0
        assert state.utilization == 0.0
        assert state.is_free(1, 2, 0)

    def test_nonexistent_wavelength_not_free(self, state):
        assert not state.is_free(1, 2, 1)  # λ2 not in Λ(<1,2>)

    def test_unknown_link_raises(self, state):
        with pytest.raises(UnknownLinkError):
            state.is_free(1, 3, 0)

    def test_free_on(self, state):
        assert state.free_on(1, 2) == frozenset({0, 2})
        state.reserve_channels([(1, 2, 0)])
        assert state.free_on(1, 2) == frozenset({2})

    def test_occupied_on(self, state):
        state.reserve_channels([(1, 2, 0), (1, 4, 1)])
        assert state.occupied_on(1, 2) == frozenset({0})
        assert state.occupied_on(1, 4) == frozenset({1})

    def test_total_channels(self, state):
        assert state.total_channels == 24

    def test_occupied_channels_snapshot_is_frozen(self, state):
        assert state.occupied_channels() == frozenset()
        state.reserve_channels([(1, 2, 0), (1, 4, 1)])
        snapshot = state.occupied_channels()
        assert snapshot == frozenset({(1, 2, 0), (1, 4, 1)})
        # Later mutations do not bleed into an already-taken snapshot.
        state.release_channels([(1, 2, 0)])
        assert snapshot == frozenset({(1, 2, 0), (1, 4, 1)})
        assert state.occupied_channels() == frozenset({(1, 4, 1)})


class TestReserveRelease:
    def test_round_trip(self, state):
        state.reserve_channels([(1, 2, 0)])
        assert not state.is_free(1, 2, 0)
        state.release_channels([(1, 2, 0)])
        assert state.is_free(1, 2, 0)

    def test_double_reserve_rejected(self, state):
        state.reserve_channels([(1, 2, 0)])
        with pytest.raises(ReservationError, match="already reserved"):
            state.reserve_channels([(1, 2, 0)])

    def test_release_unheld_rejected(self, state):
        with pytest.raises(ReservationError, match="not reserved"):
            state.release_channels([(1, 2, 0)])

    def test_reserve_nonexistent_channel_rejected(self, state):
        with pytest.raises(ReservationError, match="does not exist"):
            state.reserve_channels([(1, 2, 1)])

    def test_atomicity_on_failure(self, state):
        state.reserve_channels([(2, 3, 0)])
        with pytest.raises(ReservationError):
            state.reserve_channels([(1, 2, 0), (2, 3, 0)])  # second conflicts
        assert state.is_free(1, 2, 0)  # first must not have been taken

    def test_duplicate_in_one_request_rejected(self, state):
        with pytest.raises(ReservationError, match="duplicate"):
            state.reserve_channels([(1, 2, 0), (1, 2, 0)])

    def test_utilization_tracks(self, state):
        state.reserve_channels([(1, 2, 0), (1, 2, 2), (2, 7, 1)])
        assert state.utilization == pytest.approx(3 / 24)


class TestPathHelpers:
    def test_reserve_and_release_path(self, state, paper_net):
        path = Semilightpath.from_sequence([1, 2, 7], [0, 0], paper_net)
        state.reserve_path(path)
        assert not state.is_free(1, 2, 0)
        assert not state.is_free(2, 7, 0)
        state.release_path(path)
        assert state.num_occupied == 0

    def test_conflicting_paths(self, state, paper_net):
        path = Semilightpath.from_sequence([1, 2, 7], [0, 0], paper_net)
        state.reserve_path(path)
        with pytest.raises(ReservationError):
            state.reserve_path(path)
